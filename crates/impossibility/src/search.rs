//! The impossibility search: conflict-directed DFS over partial rule
//! tables, wrapped in a CEGIS loop.
//!
//! ## Why this is a proof
//!
//! * The DFS branches on the first view an execution needs; a failing
//!   execution refutes **every** completion of the current partial
//!   table, because the deterministic prefix only depends on the entries
//!   already assigned.
//! * [`crate::sim::simulate_tracked`] reports exactly which views a
//!   verdict depends on, so refutations *backjump*: if a subtree's
//!   refutation does not mention the branched view, its siblings are
//!   refuted by the same conflict and are skipped (conflict-directed
//!   backjumping, CBJ).
//! * UNSAT on a subset of the required initial classes is sound for
//!   UNSAT on all of them, so the CEGIS loop grows the class core only
//!   as far as needed.

use crate::sim::{simulate_tracked, SimResult};
use crate::table::{RuleTable, TableAlgorithm, ACTIONS};
use robots::{engine, Configuration, Limits, Outcome};
use serde::{Deserialize, Serialize};
use trigrid::Coord;

/// Statistics of one DFS run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// DFS nodes visited (branch points).
    pub nodes: u64,
    /// Simulations executed.
    pub simulations: u64,
    /// Maximum branching depth reached.
    pub max_depth: usize,
    /// Backjumps taken (siblings skipped thanks to CBJ).
    pub backjumps: u64,
}

impl SearchStats {
    fn absorb(&mut self, other: SearchStats) {
        self.nodes += other.nodes;
        self.simulations += other.simulations;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.backjumps += other.backjumps;
    }
}

/// The result of a completed impossibility proof.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Certificate {
    /// The initial classes that jointly admit no algorithm. UNSAT on
    /// this subset is sound for UNSAT on all connected classes.
    pub core_classes: Vec<Configuration>,
    /// CEGIS iterations (candidate algorithms refuted by counterexample
    /// extension).
    pub cegis_rounds: usize,
    /// Accumulated DFS statistics.
    pub stats: SearchStats,
}

/// Outcome of a (possibly budget-limited) DFS.
enum DfsOutcome {
    /// A partial table satisfying every class in the core.
    Sat(RuleTable),
    /// The subtree is exhausted; the refutation depends only on the
    /// views in this mask (conflict set for backjumping).
    Refuted(u64),
    /// The node budget ran out before a verdict.
    Budget,
}

/// Per-class simulation cache: the verdict and its read set. An entry
/// stays valid after assigning view `v` unless the simulation read `v`
/// (or was waiting to branch on it) — the watched-reads rule.
type ClassCache = Vec<(SimResult, u64)>;

fn affected(entry: &(SimResult, u64), v: u8) -> bool {
    entry.1 & (1u64 << v) != 0 || matches!(entry.0, SimResult::NeedsBranch(u) if u == v)
}

/// Simulates every class from scratch.
fn fresh_cache(
    table: &RuleTable,
    classes: &[Configuration],
    stats: &mut SearchStats,
) -> ClassCache {
    classes
        .iter()
        .map(|c| {
            stats.simulations += 1;
            simulate_tracked(c, table)
        })
        .collect()
}

/// Entry point for the conflict-directed DFS.
fn dfs(
    table: &mut RuleTable,
    classes: &[Configuration],
    depth: usize,
    stats: &mut SearchStats,
    budget: &mut u64,
) -> DfsOutcome {
    let cache = fresh_cache(table, classes, stats);
    dfs_cached(table, classes, &cache, depth, stats, budget)
}

/// Conflict-directed DFS with watched-reads caching (see module docs).
fn dfs_cached(
    table: &mut RuleTable,
    classes: &[Configuration],
    cache: &ClassCache,
    depth: usize,
    stats: &mut SearchStats,
    budget: &mut u64,
) -> DfsOutcome {
    stats.nodes += 1;
    stats.max_depth = stats.max_depth.max(depth);
    if *budget == 0 {
        return DfsOutcome::Budget;
    }
    *budget -= 1;

    // Fail-first scan using the cached verdicts.
    let mut branch: Option<u8> = None;
    for (res, reads) in cache {
        match res {
            SimResult::Gathers => {}
            SimResult::Fails(_) => return DfsOutcome::Refuted(*reads),
            SimResult::NeedsBranch(v) => {
                if branch.is_none() {
                    branch = Some(*v);
                }
            }
        }
    }
    let Some(v) = branch else {
        return DfsOutcome::Sat(table.clone());
    };

    let vbit = 1u64 << v;
    let mut conflict_acc: u64 = 0;
    for action in ACTIONS {
        table.assign(v, action);
        // Refresh only the classes whose verdict watched view v.
        let mut child_cache = cache.clone();
        for (entry, class) in child_cache.iter_mut().zip(classes) {
            if affected(entry, v) {
                stats.simulations += 1;
                *entry = simulate_tracked(class, table);
            }
        }
        let sub = dfs_cached(table, classes, &child_cache, depth + 1, stats, budget);
        table.unassign(v);
        match sub {
            DfsOutcome::Sat(t) => return DfsOutcome::Sat(t),
            DfsOutcome::Budget => return DfsOutcome::Budget,
            DfsOutcome::Refuted(c) => {
                if c & vbit == 0 {
                    // The refutation does not involve v: every sibling
                    // fails identically — backjump.
                    stats.backjumps += 1;
                    return DfsOutcome::Refuted(c);
                }
                conflict_acc |= c & !vbit;
            }
        }
    }
    DfsOutcome::Refuted(conflict_acc)
}

/// Collects the open frontier of the DFS at `depth_limit` as
/// `(view, action)` paths; `Err` carries a satisfying table if one is
/// found during collection.
fn collect_frontier(
    table: &mut RuleTable,
    classes: &[Configuration],
    depth_limit: usize,
    path: &mut Vec<(u8, u8)>,
    out: &mut Vec<Vec<(u8, u8)>>,
    stats: &mut SearchStats,
) -> Result<(), RuleTable> {
    stats.nodes += 1;
    let mut branch: Option<u8> = None;
    for class in classes {
        stats.simulations += 1;
        let (res, _) = simulate_tracked(class, table);
        match res {
            SimResult::Gathers => {}
            SimResult::Fails(_) => return Ok(()), // refuted leaf
            SimResult::NeedsBranch(v) => {
                if branch.is_none() {
                    branch = Some(v);
                }
            }
        }
    }
    let Some(v) = branch else {
        return Err(table.clone());
    };
    if path.len() == depth_limit {
        out.push(path.clone());
        return Ok(());
    }
    for action in ACTIONS {
        table.assign(v, action);
        path.push((v, action));
        let r = collect_frontier(table, classes, depth_limit, path, out, stats);
        path.pop();
        table.unassign(v);
        r?;
    }
    Ok(())
}

/// Parallel exhaustive DFS below a shallow frontier; early-exits on SAT.
fn dfs_parallel(
    base: &RuleTable,
    classes: &[Configuration],
    stats: &mut SearchStats,
) -> Option<RuleTable> {
    let mut table = base.clone();
    let mut path = Vec::new();
    let mut frontier = Vec::new();
    // Depth 4 gives up to 7^4 = 2401 subtrees; with single-item claiming
    // below, that smooths out the (massively skewed) subtree costs.
    if let Err(solution) = collect_frontier(&mut table, classes, 4, &mut path, &mut frontier, stats)
    {
        return Some(solution);
    }
    if frontier.is_empty() {
        return None;
    }
    use parking_lot::Mutex;
    let task_stats: Mutex<SearchStats> = Mutex::new(SearchStats::default());
    let found = parallel::par_find_any_chunked(&frontier, 0, 1, |path| {
        let mut t = base.clone();
        for &(bits, action) in path {
            t.assign(bits, action);
        }
        let mut local = SearchStats::default();
        let mut budget = u64::MAX;
        let out = dfs(&mut t, classes, path.len(), &mut local, &mut budget);
        task_stats.lock().absorb(local);
        match out {
            DfsOutcome::Sat(t) => Some(t),
            DfsOutcome::Refuted(_) => None,
            DfsOutcome::Budget => unreachable!("unbounded task budget"),
        }
    });
    stats.absorb(task_stats.into_inner());
    found.map(|(_, t)| t)
}

/// Runs a total candidate algorithm over all connected `n`-robot
/// classes and returns up to `want` classes it does not gather from,
/// spread across the enumeration (consecutive failing classes are often
/// near-identical shapes; spreading them adds more independent
/// constraints per CEGIS round).
fn find_counterexamples(candidate: &RuleTable, n: usize, want: usize) -> Vec<Configuration> {
    let algo = TableAlgorithm::new(candidate);
    let limits = Limits { max_rounds: 4000, detect_livelock: true };
    let mut failing: Vec<Configuration> = Vec::new();
    polyhex::for_each_fixed(n, |cells| {
        let initial: Configuration = cells.iter().copied().collect();
        let ex = engine::run(&initial, &algo, limits);
        if !matches!(ex.outcome, Outcome::Gathered { .. }) {
            failing.push(initial);
        }
    });
    if failing.len() <= want {
        return failing;
    }
    let step = failing.len() / want;
    failing.into_iter().step_by(step.max(1)).take(want).collect()
}

/// Mirror of a 6-bit view across the x-axis: E↔E, NE↔SE, NW↔SW, W↔W
/// (bit order is `Dir::ALL`: E, NE, NW, W, SW, SE).
#[must_use]
pub fn mirror_view_bits(v: u8) -> u8 {
    (v & 0b001001) // E and W stay
        | ((v & 0b000010) << 4) // NE -> SE
        | ((v & 0b100000) >> 4) // SE -> NE
        | ((v & 0b000100) << 2) // NW -> SW
        | ((v & 0b010000) >> 2) // SW -> NW
}

/// Mirror of an encoded action across the x-axis.
#[must_use]
pub fn mirror_action(code: u8) -> u8 {
    match crate::table::decode(code) {
        None => crate::table::STAY,
        Some(d) => crate::table::encode(Some(d.mirror_x())),
    }
}

/// Conflict-directed DFS restricted to **mirror-symmetric** tables:
/// assigning view `v` simultaneously assigns `mirror(v)` the mirrored
/// action; mirror-fixed views only take mirror-fixed actions (stay, E,
/// W). Exhausting this tree proves the *restricted* Theorem 1: no
/// mirror-symmetric visibility-1 algorithm gathers every class.
fn dfs_symmetric(
    table: &mut RuleTable,
    classes: &[Configuration],
    cache: &ClassCache,
    depth: usize,
    stats: &mut SearchStats,
    budget: &mut u64,
) -> DfsOutcome {
    stats.nodes += 1;
    stats.max_depth = stats.max_depth.max(depth);
    if *budget == 0 {
        return DfsOutcome::Budget;
    }
    *budget -= 1;

    let mut branch: Option<u8> = None;
    for (res, reads) in cache {
        match res {
            SimResult::Gathers => {}
            SimResult::Fails(_) => return DfsOutcome::Refuted(*reads),
            SimResult::NeedsBranch(v) => {
                if branch.is_none() {
                    branch = Some(*v);
                }
            }
        }
    }
    let Some(v) = branch else {
        return DfsOutcome::Sat(table.clone());
    };

    let m = mirror_view_bits(v);
    let pair_mask = (1u64 << v) | (1u64 << m);
    let mut conflict_acc: u64 = 0;
    for action in ACTIONS {
        if m == v && mirror_action(action) != action {
            continue; // a mirror-fixed view needs a mirror-fixed action
        }
        table.assign(v, action);
        table.assign(m, mirror_action(action));
        let mut child_cache = cache.clone();
        for (entry, class) in child_cache.iter_mut().zip(classes) {
            if affected(entry, v) || affected(entry, m) {
                stats.simulations += 1;
                *entry = simulate_tracked(class, table);
            }
        }
        let sub = dfs_symmetric(table, classes, &child_cache, depth + 1, stats, budget);
        table.unassign(v);
        if m != v {
            table.unassign(m);
        }
        match sub {
            DfsOutcome::Sat(t) => return DfsOutcome::Sat(t),
            DfsOutcome::Budget => return DfsOutcome::Budget,
            DfsOutcome::Refuted(c) => {
                if c & pair_mask == 0 {
                    stats.backjumps += 1;
                    return DfsOutcome::Refuted(c);
                }
                conflict_acc |= c & !pair_mask;
            }
        }
    }
    DfsOutcome::Refuted(conflict_acc)
}

/// Mirrors a configuration across the x-axis.
fn mirror_config(c: &Configuration) -> Configuration {
    c.positions().iter().map(|&p| trigrid::transform::mirror_x(p)).collect()
}

/// Proves the *restricted* Theorem 1 for mirror-symmetric algorithms:
/// no visibility-1 rule table satisfying
/// `action(mirror(view)) = mirror(action(view))` gathers seven robots
/// from every connected initial configuration.
///
/// Same CEGIS structure as [`prove_impossibility`]; because candidates
/// are symmetric, every counterexample is added together with its
/// mirror image.
///
/// # Panics
/// Panics on budget exhaustion (`sat_hunt_budget` bounds each round's
/// whole search here) or if a symmetric algorithm solves everything.
#[must_use]
pub fn prove_impossibility_symmetric(sat_hunt_budget: u64, progress: bool) -> Certificate {
    let mut core = seed_classes();
    let mut stats = SearchStats::default();
    let mut cegis_rounds = 0;

    loop {
        cegis_rounds += 1;
        let mut table = RuleTable::with_forced_stays();
        let mut budget = sat_hunt_budget;
        let cache = fresh_cache(&table, &core, &mut stats);
        match dfs_symmetric(&mut table, &core, &cache, 0, &mut stats, &mut budget) {
            DfsOutcome::Budget => panic!("symmetric search budget exhausted"),
            DfsOutcome::Refuted(_) => {
                if progress {
                    eprintln!(
                        "SYMMETRIC UNSAT with {} core classes after {} CEGIS rounds ({} nodes, {} sims, {} backjumps)",
                        core.len(),
                        cegis_rounds,
                        stats.nodes,
                        stats.simulations,
                        stats.backjumps
                    );
                }
                return Certificate { core_classes: core, cegis_rounds, stats };
            }
            DfsOutcome::Sat(surviving) => {
                let candidate = surviving.complete_with_stay();
                let counterexamples = find_counterexamples(&candidate, 7, 2);
                assert!(
                    !counterexamples.is_empty(),
                    "a symmetric visibility-1 algorithm gathered everything — even the restricted Theorem 1 would be false"
                );
                if progress {
                    eprintln!(
                        "symmetric round {cegis_rounds}: candidate with {} moving views survives; adding {} counterexamples (+mirrors)",
                        candidate.moving_views().len(),
                        counterexamples.len()
                    );
                }
                for cls in counterexamples {
                    core.insert(0, mirror_config(&cls).canonical());
                    core.insert(0, cls);
                }
            }
        }
    }
}

/// Seed classes that constrain the search quickly: the three line
/// orientations of seven robots (the paper's proof also starts from
/// lines, Fig. 4).
#[must_use]
pub fn seed_classes() -> Vec<Configuration> {
    let line = |dx: i32, dy: i32| -> Configuration {
        (0..7).map(|i| Coord::new(i * dx, i * dy)).collect()
    };
    vec![
        line(2, 0),  // E–W line
        line(1, 1),  // SW–NE line
        line(-1, 1), // SE–NW line (the Fig. 4 diagonal)
    ]
}

/// Proves Theorem 1 mechanically: no total visibility-1 rule table
/// gathers seven robots from every connected initial configuration.
///
/// Each CEGIS round first hunts a satisfying table sequentially with a
/// bounded conflict-directed DFS; on budget exhaustion it switches to
/// the parallel exhaustive search. When the DFS exhausts the whole tree
/// the theorem is proved and a [`Certificate`] returned.
///
/// # Panics
/// Panics if a candidate algorithm gathers from every class (which
/// would *disprove* the paper's Theorem 1).
#[must_use]
pub fn prove_impossibility(sat_hunt_budget: u64, progress: bool) -> Certificate {
    let mut core = seed_classes();
    let mut stats = SearchStats::default();
    let mut cegis_rounds = 0;

    loop {
        cegis_rounds += 1;
        let mut table = RuleTable::with_forced_stays();
        let mut budget = sat_hunt_budget;
        let outcome = match dfs(&mut table, &core, 0, &mut stats, &mut budget) {
            DfsOutcome::Budget => {
                if progress {
                    eprintln!(
                        "round {cegis_rounds}: SAT hunt budget exhausted, switching to parallel exhaustive search over {} classes",
                        core.len()
                    );
                }
                dfs_parallel(&RuleTable::with_forced_stays(), &core, &mut stats)
            }
            DfsOutcome::Sat(t) => Some(t),
            DfsOutcome::Refuted(_) => None,
        };
        match outcome {
            None => {
                if progress {
                    eprintln!(
                        "UNSAT with {} core classes after {} CEGIS rounds ({} nodes, {} sims, {} backjumps)",
                        core.len(),
                        cegis_rounds,
                        stats.nodes,
                        stats.simulations,
                        stats.backjumps
                    );
                }
                return Certificate { core_classes: core, cegis_rounds, stats };
            }
            Some(surviving) => {
                let candidate = surviving.complete_with_stay();
                let counterexamples = find_counterexamples(&candidate, 7, 4);
                assert!(
                    !counterexamples.is_empty(),
                    "a visibility-1 algorithm gathered all 3652 classes — Theorem 1 would be false"
                );
                if progress {
                    eprintln!(
                        "round {cegis_rounds}: candidate with {} moving views survives; adding {} counterexamples",
                        candidate.moving_views().len(),
                        counterexamples.len()
                    );
                }
                // Newest counterexamples first: they refute the most
                // recent candidate family early in the scan.
                for cls in counterexamples {
                    core.insert(0, cls);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::STAY;

    #[test]
    fn seed_classes_are_connected_lines() {
        for c in seed_classes() {
            assert_eq!(c.len(), 7);
            assert!(c.is_connected());
            assert_eq!(c.diameter(), 6);
        }
    }

    #[test]
    fn dfs_refutes_stay_only_table_on_a_line() {
        let mut table = RuleTable::empty().complete_with_stay();
        let classes = seed_classes();
        let mut stats = SearchStats::default();
        let mut budget = 1_000;
        assert!(matches!(
            dfs(&mut table, &classes, 0, &mut stats, &mut budget),
            DfsOutcome::Refuted(_)
        ));
        assert!(stats.simulations >= 1);
    }

    #[test]
    fn dfs_finds_trivial_solution_for_the_hexagon_alone() {
        let mut table = RuleTable::with_forced_stays();
        let classes = vec![robots::hexagon(trigrid::ORIGIN)];
        let mut stats = SearchStats::default();
        let mut budget = 1_000;
        match dfs(&mut table, &classes, 0, &mut stats, &mut budget) {
            DfsOutcome::Sat(t) => {
                for bits in crate::table::gathered_views() {
                    assert_eq!(t.get(bits), Some(STAY));
                }
            }
            _ => panic!("hexagon alone is satisfiable"),
        }
    }

    #[test]
    fn dfs_respects_budget() {
        let mut table = RuleTable::with_forced_stays();
        let classes = seed_classes();
        let mut stats = SearchStats::default();
        let mut budget = 1; // one node, guaranteed to need branching
        assert!(matches!(
            dfs(&mut table, &classes, 0, &mut stats, &mut budget),
            DfsOutcome::Budget | DfsOutcome::Sat(_)
        ));
    }

    #[test]
    fn find_counterexamples_for_stay_table() {
        let t = RuleTable::empty().complete_with_stay();
        let cls = find_counterexamples(&t, 7, 4);
        assert_eq!(cls.len(), 4, "stay fails on 3651 classes; four were requested");
        for c in &cls {
            assert!(!c.is_gathered());
        }
    }

    #[test]
    fn refutation_conflicts_are_subsets_of_assigned_views() {
        // A stay-only table fails on a line purely via the views it read.
        let mut table = RuleTable::empty().complete_with_stay();
        let classes = seed_classes();
        let mut stats = SearchStats::default();
        let mut budget = 10;
        if let DfsOutcome::Refuted(c) = dfs(&mut table, &classes, 0, &mut stats, &mut budget) {
            assert_ne!(c, 0, "a concrete failing simulation reads at least one view");
        } else {
            panic!("expected refutation");
        }
    }
}

#[cfg(test)]
mod symmetric_tests {
    use super::*;

    #[test]
    fn mirror_view_bits_is_an_involution() {
        for v in 0..64u8 {
            assert_eq!(mirror_view_bits(mirror_view_bits(v)), v);
            assert_eq!(mirror_view_bits(v).count_ones(), v.count_ones());
        }
        // E-only and W-only are fixed; NE-only maps to SE-only.
        assert_eq!(mirror_view_bits(0b000001), 0b000001);
        assert_eq!(mirror_view_bits(0b001000), 0b001000);
        assert_eq!(mirror_view_bits(0b000010), 0b100000);
    }

    #[test]
    fn mirror_action_is_an_involution() {
        for code in crate::table::ACTIONS {
            assert_eq!(mirror_action(mirror_action(code)), code);
        }
        assert_eq!(mirror_action(crate::table::STAY), crate::table::STAY);
    }

    #[test]
    fn mirrored_configs_are_connected() {
        for c in seed_classes() {
            let m = mirror_config(&c);
            assert!(m.is_connected());
            assert_eq!(m.len(), c.len());
        }
    }
}

#[cfg(test)]
mod theorem_tests {
    use super::*;

    #[test]
    fn restricted_theorem1_mirror_symmetric_algorithms_cannot_gather() {
        // Completes in microseconds: mirror-fixed views only admit
        // mirror-fixed actions (stay/E/W), which confine the x-axis line
        // to its own row — the hexagon needs three rows.
        let cert = prove_impossibility_symmetric(u64::MAX, false);
        assert!(cert.stats.nodes > 0);
        assert!(!cert.core_classes.is_empty());
    }
}
