//! FSYNC simulation under a partial visibility-1 rule table.

use crate::table::{decode, view_bits, RuleTable, STAY};
use robots::visited::ClassSet;
use robots::{engine, Configuration, View};
use trigrid::{Coord, Dir};

/// Result of simulating one initial class under a partial table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimResult {
    /// The execution gathered and stopped: this class is satisfied.
    Gathers,
    /// The execution failed (collision, non-gathered fixpoint, livelock
    /// or disconnection): no completion of the current partial table can
    /// change this prefix, so the table is refuted.
    Fails(FailKind),
    /// A robot's view has no assigned action yet: the search must branch
    /// on this view.
    NeedsBranch(u8),
}

/// Why an execution failed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FailKind {
    /// Two robots collided (swap or shared target).
    Collision,
    /// A fixpoint that is not the gathered hexagon.
    StuckFixpoint,
    /// A translation class repeated: deterministic FSYNC livelock.
    Livelock,
    /// The configuration became disconnected (terminal per the paper's
    /// §II-A/§III reading).
    Disconnected,
}

/// Simulates the deterministic FSYNC execution from `initial` under the
/// partial `table`.
///
/// The execution is uniquely determined by the table entries for the
/// views actually encountered; the first unassigned view aborts the
/// simulation with [`SimResult::NeedsBranch`]. Because failures are
/// detected on the deterministic prefix, a `Fails` verdict refutes every
/// completion of the partial table — the key soundness property of the
/// search.
#[must_use]
pub fn simulate(initial: &Configuration, table: &RuleTable) -> SimResult {
    simulate_tracked(initial, table).0
}

/// Like [`simulate`], additionally returning the set of views whose
/// table entries were read, as a 64-bit mask.
///
/// The verdict is a function of exactly those entries: any other partial
/// table agreeing on the read views produces the same verdict. The
/// search uses this as the *conflict set* for backjumping.
#[must_use]
pub fn simulate_tracked(initial: &Configuration, table: &RuleTable) -> (SimResult, u64) {
    let mut cfg = initial.clone();
    let mut visited = ClassSet::new();
    let mut reads: u64 = 0;

    // Any legal collision-free, connected execution stays within the
    // connected 7-node translation classes, of which there are 3652: a
    // longer run must revisit one.
    for _ in 0..4000 {
        // Look & Compute under the partial table.
        let mut moves: Vec<Option<Dir>> = Vec::with_capacity(cfg.len());
        for &p in cfg.positions() {
            let bits = view_bits(&View::observe(&cfg, p, 1));
            match table.get(bits) {
                None => return (SimResult::NeedsBranch(bits), reads),
                Some(code) => {
                    reads |= 1u64 << bits;
                    moves.push(if code == STAY { None } else { decode(code) });
                }
            }
        }
        if moves.iter().all(Option::is_none) {
            return if cfg.is_gathered() {
                (SimResult::Gathers, reads)
            } else {
                (SimResult::Fails(FailKind::StuckFixpoint), reads)
            };
        }
        if !visited.insert(&cfg) {
            return (SimResult::Fails(FailKind::Livelock), reads);
        }
        // The round itself — validation and application — goes through
        // the engine's single round-semantics implementation.
        match engine::step_moves(&cfg, &moves) {
            Err(_) => return (SimResult::Fails(FailKind::Collision), reads),
            Ok(result) => cfg = result.config,
        }
        if !cfg.is_connected() {
            return (SimResult::Fails(FailKind::Disconnected), reads);
        }
    }
    // Unreachable for legal executions; classify as livelock.
    (SimResult::Fails(FailKind::Livelock), reads)
}

/// Convenience: a connected configuration from `(x, y)` pairs.
#[must_use]
pub fn config(cells: &[(i32, i32)]) -> Configuration {
    Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{encode, RuleTable};
    use trigrid::ORIGIN;

    #[test]
    fn stay_everywhere_gathers_only_the_hexagon() {
        let t = RuleTable::empty().complete_with_stay();
        let hexagon = robots::hexagon(ORIGIN);
        assert_eq!(simulate(&hexagon, &t), SimResult::Gathers);
        let line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
        assert_eq!(simulate(&line, &t), SimResult::Fails(FailKind::StuckFixpoint));
    }

    #[test]
    fn partial_table_requests_branching() {
        let t = RuleTable::with_forced_stays();
        let line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
        // The line's views (E-only, W-only, E+W) are all unassigned; the
        // simulation must ask for one of them.
        match simulate(&line, &t) {
            SimResult::NeedsBranch(bits) => {
                let e_only = 0b000001u8;
                let w_only = 0b001000u8;
                let ew = 0b001001u8;
                assert!([e_only, w_only, ew].contains(&bits), "unexpected branch view {bits:#b}");
            }
            other => panic!("expected NeedsBranch, got {other:?}"),
        }
    }

    #[test]
    fn marching_east_livelocks() {
        // Assign *every* view the action E: the whole line marches east
        // forever, a translation-class livelock.
        let mut t = RuleTable::empty();
        for v in 0..64u8 {
            t.assign(v, encode(Some(Dir::E)));
        }
        let line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
        assert_eq!(simulate(&line, &t), SimResult::Fails(FailKind::Livelock));
    }

    #[test]
    fn head_on_swap_collides() {
        // E-only view moves W, W-only view moves E: the two ends of a
        // 2-robot... use 7 robots: a pair at the ends of a line pointing
        // inward, middles stay.
        let mut t = RuleTable::empty().complete_with_stay();
        let e_only = 0b000001u8; // sees only its east neighbour
        t.assign(e_only, encode(Some(Dir::E))); // move onto the neighbour
        let line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
        assert_eq!(simulate(&line, &t), SimResult::Fails(FailKind::Collision));
    }

    #[test]
    fn fleeing_disconnects() {
        // W-only view moves E (away from its neighbour): the east end of
        // the line runs away.
        let mut t = RuleTable::empty().complete_with_stay();
        let w_only = 0b001000u8;
        t.assign(w_only, encode(Some(Dir::E)));
        let line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
        assert_eq!(simulate(&line, &t), SimResult::Fails(FailKind::Disconnected));
    }
}
