//! Partial visibility-1 rule tables.

use robots::View;
use serde::{Deserialize, Serialize};
use trigrid::Dir;

/// Number of distinct radius-1 views (occupancy of the six neighbours).
pub const VIEWS: usize = 64;

/// Encoding of an action: `STAY`, or `1 + dir.index()`.
pub const STAY: u8 = 0;
/// Sentinel: view not yet assigned.
pub const UNASSIGNED: u8 = 0xFF;

/// Encodes an action.
#[must_use]
pub fn encode(a: Option<Dir>) -> u8 {
    a.map_or(STAY, |d| 1 + d.index() as u8)
}

/// Decodes an action (must not be [`UNASSIGNED`]).
#[must_use]
pub fn decode(code: u8) -> Option<Dir> {
    assert_ne!(code, UNASSIGNED, "cannot decode an unassigned action");
    (code != STAY).then(|| Dir::from_index((code - 1) as usize))
}

/// All seven action codes, stay first.
pub const ACTIONS: [u8; 7] = [0, 1, 2, 3, 4, 5, 6];

/// A (partial) deterministic visibility-1 algorithm: one action per
/// view, some possibly still unassigned. The view index is the radius-1
/// occupancy bitmask in `Dir::ALL` order (E, NE, NW, W, SW, SE).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RuleTable {
    #[serde(with = "serde_actions")]
    actions: [u8; VIEWS],
}

mod serde_actions {
    use super::VIEWS;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(a: &[u8; VIEWS], s: S) -> Result<S::Ok, S::Error> {
        a.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u8; VIEWS], D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        v.try_into().map_err(|_| serde::de::Error::custom("expected 64 actions"))
    }
}

impl Default for RuleTable {
    fn default() -> Self {
        Self::empty()
    }
}

impl RuleTable {
    /// The fully unassigned table.
    #[must_use]
    pub fn empty() -> Self {
        RuleTable { actions: [UNASSIGNED; VIEWS] }
    }

    /// The table with the seven gathered-hexagon views pre-forced to
    /// *stay* — a requirement of Definition 1 ("no robot moves
    /// thereafter"), hence sound for any candidate algorithm.
    #[must_use]
    pub fn with_forced_stays() -> Self {
        let mut t = Self::empty();
        for bits in gathered_views() {
            t.assign(bits, STAY);
        }
        t
    }

    /// The action for a view, or `None` if unassigned.
    #[must_use]
    pub fn get(&self, view_bits: u8) -> Option<u8> {
        let a = self.actions[view_bits as usize];
        (a != UNASSIGNED).then_some(a)
    }

    /// Assigns an action to a view.
    pub fn assign(&mut self, view_bits: u8, action: u8) {
        debug_assert!(action < 7);
        self.actions[view_bits as usize] = action;
    }

    /// Clears a view's assignment.
    pub fn unassign(&mut self, view_bits: u8) {
        self.actions[view_bits as usize] = UNASSIGNED;
    }

    /// Number of assigned views.
    #[must_use]
    pub fn assigned(&self) -> usize {
        self.actions.iter().filter(|&&a| a != UNASSIGNED).count()
    }

    /// A total algorithm: unassigned views act as *stay*. Used by the
    /// CEGIS loop to extract a concrete candidate for counterexample
    /// hunting.
    #[must_use]
    pub fn complete_with_stay(&self) -> RuleTable {
        let mut t = self.clone();
        for a in &mut t.actions {
            if *a == UNASSIGNED {
                *a = STAY;
            }
        }
        t
    }

    /// Views this table assigns a *move* to (for reporting).
    #[must_use]
    pub fn moving_views(&self) -> Vec<(u8, Dir)> {
        (0..VIEWS as u8)
            .filter_map(|v| match self.actions[v as usize] {
                UNASSIGNED | STAY => None,
                code => Some((v, decode(code).unwrap())),
            })
            .collect()
    }
}

/// The radius-1 view of one robot in a configuration, as a 6-bit mask.
#[must_use]
pub fn view_bits(view: &View) -> u8 {
    debug_assert_eq!(view.radius(), 1);
    view.bits() as u8
}

/// The seven views occurring in the gathered hexagon: the centre sees
/// all six neighbours; each petal sees the centre and its two adjacent
/// petals.
#[must_use]
pub fn gathered_views() -> Vec<u8> {
    let hexagon = robots::hexagon(trigrid::ORIGIN);
    hexagon.positions().iter().map(|&p| view_bits(&View::observe(&hexagon, p, 1))).collect()
}

/// A [`robots::Algorithm`] adapter for a **total** rule table.
pub struct TableAlgorithm<'a> {
    table: &'a RuleTable,
}

impl<'a> TableAlgorithm<'a> {
    /// Wraps a table; all views must be assigned.
    #[must_use]
    pub fn new(table: &'a RuleTable) -> Self {
        assert_eq!(table.assigned(), VIEWS, "TableAlgorithm requires a total table");
        TableAlgorithm { table }
    }
}

impl robots::Algorithm for TableAlgorithm<'_> {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        decode(self.table.get(view_bits(view)).expect("total table"))
    }
    fn name(&self) -> &str {
        "visibility-1 rule table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(decode(encode(None)), None);
        for d in Dir::ALL {
            assert_eq!(decode(encode(Some(d))), Some(d));
        }
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn decode_rejects_unassigned() {
        let _ = decode(UNASSIGNED);
    }

    #[test]
    fn gathered_views_are_seven_with_centre_full() {
        let views = gathered_views();
        assert_eq!(views.len(), 7);
        assert!(views.contains(&0b111111), "centre sees all six neighbours");
        // Each petal sees exactly three robots.
        assert_eq!(views.iter().filter(|&&v| v.count_ones() == 3).count(), 6);
        // All six petal views are distinct (orientation agreement makes
        // them distinguishable).
        let mut sorted = views.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }

    #[test]
    fn forced_stays_preassign_exactly_the_gathered_views() {
        let t = RuleTable::with_forced_stays();
        assert_eq!(t.assigned(), 7);
        for bits in gathered_views() {
            assert_eq!(t.get(bits), Some(STAY));
        }
    }

    #[test]
    fn assign_unassign() {
        let mut t = RuleTable::empty();
        assert_eq!(t.get(5), None);
        t.assign(5, encode(Some(Dir::W)));
        assert_eq!(decode(t.get(5).unwrap()), Some(Dir::W));
        t.unassign(5);
        assert_eq!(t.get(5), None);
        assert_eq!(t.assigned(), 0);
    }

    #[test]
    fn complete_with_stay_fills_everything() {
        let t = RuleTable::with_forced_stays().complete_with_stay();
        assert_eq!(t.assigned(), VIEWS);
        assert!(t.moving_views().is_empty());
    }

    #[test]
    fn table_algorithm_runs_stay_table() {
        let t = RuleTable::empty().complete_with_stay();
        let algo = TableAlgorithm::new(&t);
        let h = robots::hexagon(trigrid::ORIGIN);
        let ex = robots::run(&h, &algo, robots::Limits::default());
        assert!(ex.outcome.is_gathered());
    }
}
