//! Mechanical replay of the paper's §III proof witnesses.
//!
//! The manual proof of Theorem 1 is a case analysis built from two kinds
//! of steps:
//!
//! 1. **Prohibited pairs** (Prop. 1, Figs. 6/7/9/14/16/29/31): "if rule
//!    X is in the algorithm, rule Y cannot be" — justified by a
//!    configuration in which the two moves collide. [`collision_witness`]
//!    finds such a configuration mechanically by searching the connected
//!    classes of up to seven robots.
//! 2. **Livelock cycles** (Figs. 12/13): specific hypothesis rule sets
//!    make the system oscillate with period 2 forever.
//!    [`livelock_witness`] exhibits a class and the cycle period.
//!
//! The exhaustive [`crate::search`] subsumes these checks (it refutes
//! *every* rule table, not just the paper's case order); the replay ties
//! the machine proof back to the printed argument.

use crate::table::{encode, RuleTable, TableAlgorithm};
use robots::{engine, Configuration, Limits, Outcome, View};
use trigrid::Dir;

/// A visibility-1 hypothesis rule: robots whose view is exactly
/// `view_bits` move in direction `dir`.
#[derive(Clone, Copy, Debug)]
pub struct Hypothesis {
    /// The exact 6-bit view (in `Dir::ALL` order).
    pub view_bits: u8,
    /// The move the hypothesis assigns to that view.
    pub dir: Dir,
}

impl Hypothesis {
    /// Builds a hypothesis from the directions of the occupied
    /// neighbours, as the paper words them ("a robot with one adjacent
    /// robot node SE moves to SW").
    #[must_use]
    pub fn new(occupied: &[Dir], moves_to: Dir) -> Self {
        let mut bits = 0u8;
        for d in occupied {
            bits |= 1 << d.index();
        }
        Hypothesis { view_bits: bits, dir: moves_to }
    }
}

/// Searches the connected classes of `2..=n` robots for a configuration
/// in which two *distinct* robots match `a` and `b` respectively and
/// their simultaneous moves collide (same destination, or an edge swap).
/// Returns the first witness found.
#[must_use]
pub fn collision_witness(a: Hypothesis, b: Hypothesis, n: usize) -> Option<Configuration> {
    for size in 2..=n {
        let mut witness: Option<Configuration> = None;
        polyhex::for_each_fixed(size, |cells| {
            if witness.is_some() {
                return;
            }
            let cfg: Configuration = cells.iter().copied().collect();
            let views: Vec<u8> =
                cfg.positions().iter().map(|&p| View::observe(&cfg, p, 1).bits() as u8).collect();
            for (i, &pi) in cfg.positions().iter().enumerate() {
                if views[i] != a.view_bits {
                    continue;
                }
                for (j, &pj) in cfg.positions().iter().enumerate() {
                    if i == j || views[j] != b.view_bits {
                        continue;
                    }
                    let ti = pi.step(a.dir);
                    let tj = pj.step(b.dir);
                    let same_target = ti == tj;
                    let swap = ti == pj && tj == pi;
                    if same_target || swap {
                        witness = Some(cfg.clone());
                        return;
                    }
                }
            }
        });
        if witness.is_some() {
            return witness;
        }
    }
    None
}

/// Completes the hypothesis set with *stay* and searches all connected
/// seven-robot classes for one whose execution livelocks; returns the
/// class and the cycle period.
#[must_use]
pub fn livelock_witness(hypotheses: &[Hypothesis]) -> Option<(Configuration, usize)> {
    let mut table = RuleTable::empty();
    for h in hypotheses {
        table.assign(h.view_bits, encode(Some(h.dir)));
    }
    let table = table.complete_with_stay();
    let algo = TableAlgorithm::new(&table);
    let limits = Limits { max_rounds: 4000, detect_livelock: true };

    let mut found: Option<(Configuration, usize)> = None;
    polyhex::for_each_fixed(7, |cells| {
        if found.is_some() {
            return;
        }
        let initial: Configuration = cells.iter().copied().collect();
        let ex = engine::run(&initial, &algo, limits);
        if let Outcome::Livelock { period, .. } = ex.outcome {
            found = Some((initial, period));
        }
    });
    found
}

/// The base hypothesis of the whole §III case analysis: "robot ri with
/// one adjacent robot node SE moves to SW" (chosen w.l.o.g. after
/// Corollary 1).
#[must_use]
pub fn base_hypothesis() -> Hypothesis {
    Hypothesis::new(&[Dir::SE], Dir::SW)
}

/// Proposition 1's four prohibited behaviours, each paired with the
/// base hypothesis (paper Fig. 6).
#[must_use]
pub fn proposition1_claims() -> Vec<(&'static str, Hypothesis)> {
    vec![
        ("(a) one adjacent NE moves NW", Hypothesis::new(&[Dir::NE], Dir::NW)),
        ("(b) adjacent NW and SW moves W", Hypothesis::new(&[Dir::NW, Dir::SW], Dir::W)),
        ("(c) one adjacent E moves NE", Hypothesis::new(&[Dir::E], Dir::NE)),
        ("(d) adjacent NW and E moves NE", Hypothesis::new(&[Dir::NW, Dir::E], Dir::NE)),
    ]
}

/// The Case 2-1 hypothesis set (paper Fig. 12): the base hypothesis,
/// Case 2's "one adjacent SW moves SE", Case 2-1's "adjacent SW and E
/// moves SE", and the derived "one adjacent E moves SE" (Fig. 11 (a)).
#[must_use]
pub fn case_2_1_rules() -> Vec<Hypothesis> {
    vec![
        base_hypothesis(),
        Hypothesis::new(&[Dir::SW], Dir::SE),
        Hypothesis::new(&[Dir::SW, Dir::E], Dir::SE),
        Hypothesis::new(&[Dir::E], Dir::SE),
    ]
}

/// The Case 2-2 hypothesis set (paper Fig. 13): the base hypothesis,
/// Case 2-2's "adjacent W and SE moves SW", and the derived "one
/// adjacent W moves SW" (Fig. 11 (b)).
#[must_use]
pub fn case_2_2_rules() -> Vec<Hypothesis> {
    vec![
        base_hypothesis(),
        Hypothesis::new(&[Dir::W, Dir::SE], Dir::SW),
        Hypothesis::new(&[Dir::W], Dir::SW),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposition1_all_four_claims_have_witnesses() {
        let base = base_hypothesis();
        for (name, claim) in proposition1_claims() {
            let w = collision_witness(base, claim, 7)
                .unwrap_or_else(|| panic!("no collision witness for Prop. 1 {name}"));
            assert!(w.is_connected());
        }
    }

    #[test]
    fn fig12_case_2_1_livelocks() {
        let (cfg, period) =
            livelock_witness(&case_2_1_rules()).expect("Case 2-1 must oscillate (Fig. 12)");
        assert!(cfg.is_connected());
        assert!(period >= 1, "a genuine cycle");
    }

    #[test]
    fn fig13_case_2_2_livelocks() {
        let (cfg, period) =
            livelock_witness(&case_2_2_rules()).expect("Case 2-2 must oscillate (Fig. 13)");
        assert!(cfg.is_connected());
        assert!(period >= 1);
    }

    #[test]
    fn hypothesis_bit_encoding() {
        let h = Hypothesis::new(&[Dir::E, Dir::W], Dir::NE);
        assert_eq!(h.view_bits, 0b001001);
        assert_eq!(h.dir, Dir::NE);
    }

    #[test]
    fn no_witness_for_compatible_rules() {
        // Two rules that move robots in the same direction from disjoint
        // relative positions… E-only moving E and W-only moving W collide
        // only in a 2-robot swap — which IS a witness. Use rules whose
        // moves can never meet: E-only moves NE, NE-only moves NW — their
        // movers sit in positions that cannot share a target in any
        // connected placement where both views are exact.
        let a = Hypothesis::new(&[Dir::E], Dir::E); // onto its neighbour?
        let b = Hypothesis::new(&[Dir::E], Dir::E);
        // Same rule twice: two E-only robots cannot be adjacent… they can
        // both exist though; check the function simply runs.
        let _ = collision_witness(a, b, 4);
    }
}
