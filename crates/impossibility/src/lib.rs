//! # impossibility — machine verification of Theorem 1
//!
//! *"For robots with visibility range 1, there exists no collision-free
//! algorithm to solve the gathering problem even in the fully
//! synchronous (FSYNC) model."* (paper §III)
//!
//! A visibility-1 algorithm for oblivious robots that agree on the
//! x-axis and chirality is nothing but a total function from the 2^6 =
//! 64 possible views (occupancy of the six neighbours) to one of seven
//! actions (stay or one of six directions). The paper proves by a long
//! manual case analysis that **no** such function gathers seven robots
//! from every connected initial configuration. This crate proves the
//! same statement mechanically:
//!
//! * [`table::RuleTable`] — a (partial) visibility-1 rule table;
//! * [`sim`] — FSYNC simulation under a partial table, reporting the
//!   first unassigned view it needs (the branching literal);
//! * [`search`] — a DFS over partial tables with fail-first pruning,
//!   wrapped in a CEGIS loop: start from a small set of initial
//!   classes, and whenever some table survives them, find a concrete
//!   counterexample class from the full 3652 and add it. If the DFS
//!   exhausts the tree, **no algorithm exists** — impossibility proved
//!   (UNSAT on a subset of required instances is sound for UNSAT on all
//!   of them);
//! * [`replay`] — mechanical checks of the witnesses used by the
//!   paper's own proof (the Fig. 5 forced-stay configurations, the
//!   Fig. 12/13 livelock cycles, the deadlock configurations).
//!
//! ## Failure semantics (matching the paper)
//!
//! An execution fails when it collides, reaches a non-gathered fixpoint,
//! revisits a translation class (deterministic FSYNC ⇒ livelock), or
//! disconnects. The disconnection rule follows the paper's own reading
//! (§II-A: an oblivious robot that loses all neighbours "cannot know the
//! direction to reconstruct a connected configuration"); the search
//! treats *any* disconnection as terminal, exactly as the case analysis
//! of §III does ("a collision occurs or the configuration becomes
//! unconnected"). See EXPERIMENTS.md for a discussion of this
//! assumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod search;
pub mod sim;
pub mod table;

pub use search::{prove_impossibility, prove_impossibility_symmetric, Certificate, SearchStats};
pub use table::RuleTable;
