//! Tests for the visibility-radius generalisation of the enumerator
//! (the paper's §V relaxed-connectivity future-work item).

use polyhex::{count_fixed, count_fixed_radius, for_each_fixed_radius};
use trigrid::{path, Coord};

#[test]
fn radius_1_matches_the_classic_enumeration() {
    for n in 1..=6 {
        assert_eq!(count_fixed_radius(n, 1), count_fixed(n), "n={n}");
    }
}

#[test]
fn radius_2_counts_are_pinned() {
    // Measured ground truth for this repository (no OEIS series known to
    // us for distance-2 connectivity on the triangular lattice).
    let expected = [1u64, 9, 99, 1194, 15198];
    for (i, &e) in expected.iter().enumerate() {
        assert_eq!(count_fixed_radius(i + 1, 2), e, "n={}", i + 1);
    }
}

#[test]
fn radius_2_pairs_are_exactly_the_disk() {
    // n = 2: one robot at the origin plus one at any of the 18 nodes of
    // the distance-2 disk, up to translation: 9 classes (half of 18,
    // because translation identifies (0,0)+d with (0,0)+(-d)).
    let mut pairs = Vec::new();
    for_each_fixed_radius(2, 2, |cells| pairs.push(cells.to_vec()));
    assert_eq!(pairs.len(), 9);
    for p in &pairs {
        assert_eq!(p.len(), 2);
        assert!(p[0].distance(p[1]) <= 2);
    }
}

#[test]
fn radius_2_classes_are_visibility_connected_and_distinct() {
    let mut seen = std::collections::HashSet::new();
    for_each_fixed_radius(4, 2, |cells| {
        // Visibility connectivity: BFS over the distance-≤2 graph.
        let mut reached = vec![cells[0]];
        let mut frontier = vec![cells[0]];
        while let Some(c) = frontier.pop() {
            for &other in cells {
                if !reached.contains(&other) && c.distance(other) <= 2 {
                    reached.push(other);
                    frontier.push(other);
                }
            }
        }
        assert_eq!(reached.len(), cells.len(), "not visibility-connected: {cells:?}");
        assert!(seen.insert(cells.to_vec()), "duplicate class: {cells:?}");
    });
    assert_eq!(seen.len(), 1194);
}

#[test]
fn adjacency_connected_classes_are_a_subset_of_radius_2() {
    // Every radius-1 class appears among the radius-2 classes.
    let mut radius2: std::collections::HashSet<Vec<Coord>> = std::collections::HashSet::new();
    for_each_fixed_radius(5, 2, |cells| {
        radius2.insert(cells.to_vec());
    });
    let mut missing = 0;
    polyhex::for_each_fixed(5, |cells| {
        if !radius2.contains(cells) {
            missing += 1;
        }
    });
    assert_eq!(missing, 0);
}

#[test]
fn strictly_relaxed_classes_exist_and_are_adjacency_disconnected() {
    let mut strictly_relaxed = 0;
    for_each_fixed_radius(3, 2, |cells| {
        if !path::is_connected(cells) {
            strictly_relaxed += 1;
        }
    });
    assert_eq!(99 - count_fixed(3), strictly_relaxed as u64);
}
