//! Random connected-set generation for sampling experiments at sizes
//! where exhaustive enumeration is infeasible.

use rand::seq::IndexedRandom;
use rand::Rng;
use std::collections::HashSet;
use trigrid::{Coord, ORIGIN};

/// Generates a random connected set of `n` nodes containing the origin,
/// by repeatedly attaching a uniformly random unoccupied neighbour of a
/// uniformly random *open* occupied node ("Eden growth"). Anchors are
/// sampled only among cells that still have at least one unoccupied
/// neighbour, so every draw attaches a cell — generation is loop-free
/// (exactly `n - 1` growth steps) instead of retrying on saturated
/// anchors, which matters once large sets develop big solid cores.
///
/// The distribution over shapes is **not** uniform; it is intended for
/// stress tests and scaling experiments, not statistics over the class
/// space. Returned sorted in [`crate::key`] order with its key-minimal
/// node at the origin (i.e. already canonical under translation).
#[must_use]
pub fn random_connected<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Coord> {
    if n == 0 {
        return Vec::new();
    }
    let mut cells: Vec<Coord> = vec![ORIGIN];
    let mut occupied: HashSet<Coord> = HashSet::from([ORIGIN]);
    // Cells with at least one unoccupied neighbour, with an index map
    // for O(1) removal; a cell leaves the list the moment its last
    // free neighbour is taken.
    let mut open: Vec<Coord> = vec![ORIGIN];
    let mut open_index: std::collections::HashMap<Coord, usize> =
        std::collections::HashMap::from([(ORIGIN, 0)]);
    let close = |open: &mut Vec<Coord>,
                 open_index: &mut std::collections::HashMap<Coord, usize>,
                 cell: Coord| {
        if let Some(i) = open_index.remove(&cell) {
            open.swap_remove(i);
            if let Some(&moved) = open.get(i) {
                open_index.insert(moved, i);
            }
        }
    };
    while cells.len() < n {
        let &anchor = open.choose(rng).expect("a finite set always has an open boundary cell");
        let free: Vec<Coord> =
            anchor.neighbors().into_iter().filter(|c| !occupied.contains(c)).collect();
        let &next = free.choose(rng).expect("open cells have a free neighbour");
        occupied.insert(next);
        cells.push(next);
        open.push(next);
        open_index.insert(next, open.len() - 1);
        // Occupying `next` may have saturated it or any occupied
        // neighbour (including the anchor).
        for cell in next.neighbors().into_iter().chain([next]) {
            if open_index.contains_key(&cell)
                && cell.neighbors().into_iter().all(|c| occupied.contains(&c))
            {
                close(&mut open, &mut open_index, cell);
            }
        }
    }
    crate::canonical_translation(&cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trigrid::path::is_connected;

    #[test]
    fn generates_connected_sets_of_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 7, 20, 50] {
            let cells = random_connected(n, &mut rng);
            assert_eq!(cells.len(), n);
            assert!(is_connected(&cells));
        }
    }

    #[test]
    fn output_is_canonical() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let cells = random_connected(9, &mut rng);
            assert_eq!(crate::canonical_translation(&cells), cells);
        }
    }

    #[test]
    fn zero_size_is_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_connected(0, &mut rng).is_empty());
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = random_connected(15, &mut StdRng::seed_from_u64(42));
        let b = random_connected(15, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
