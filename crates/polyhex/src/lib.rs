//! # polyhex — connected node sets on the triangular lattice
//!
//! The initial configurations of the paper are exactly the **connected
//! sets of seven nodes** of the triangular grid, counted *up to
//! translation* (robots agree on the x-axis and chirality, so rotated or
//! mirrored configurations are genuinely different inputs). These objects
//! are known as *fixed polyhexes*; their counts are OEIS A001207:
//!
//! | n | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 8 |
//! |---|---|---|---|---|---|---|---|---|
//! | fixed polyhexes | 1 | 3 | 11 | 44 | 186 | 814 | **3652** | 16689 |
//!
//! The paper's exhaustive correctness check runs over the 3652 classes
//! for n = 7 (§IV-B); the repo's parameterized sweeps extend the same
//! enumeration to other robot counts. This crate enumerates the
//! classes with Redelmeier's algorithm, provides canonical forms under
//! translation and under the full symmetry group, and a random
//! generator for larger sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use trigrid::transform::PointSymmetry;
use trigrid::{Coord, ORIGIN};

mod random;
pub use random::random_connected;

/// Row-major ordering key used by the enumerator and canonical forms:
/// compare by `y`, then by `x`.
#[inline]
#[must_use]
pub fn key(c: Coord) -> (i32, i32) {
    (c.y, c.x)
}

/// Whether `c` comes strictly after the origin in [`key`] order.
#[inline]
fn after_origin(c: Coord) -> bool {
    c.y > 0 || (c.y == 0 && c.x > 0)
}

/// Translates the set so its [`key`]-minimal node is the origin and
/// sorts it by [`key`]. Two sets are translates of each other iff their
/// canonical translations are equal.
#[must_use]
pub fn canonical_translation(cells: &[Coord]) -> Vec<Coord> {
    let Some(&min) = cells.iter().min_by_key(|c| key(**c)) else {
        return Vec::new();
    };
    let mut out: Vec<Coord> = cells.iter().map(|&c| c - min).collect();
    out.sort_unstable_by_key(|c| key(*c));
    out.dedup();
    out
}

/// Canonical form under the full lattice symmetry group (translations,
/// rotations and reflections): the [`key`]-lexicographically smallest
/// canonical translation over all twelve point symmetries. Two sets are
/// congruent iff their free canonical forms are equal.
#[must_use]
pub fn canonical_free(cells: &[Coord]) -> Vec<Coord> {
    PointSymmetry::ALL
        .iter()
        .map(|s| {
            let mapped: Vec<Coord> = cells.iter().map(|&c| s.apply(c)).collect();
            canonical_translation(&mapped)
        })
        .min_by(|a, b| {
            let ka: Vec<(i32, i32)> = a.iter().map(|c| key(*c)).collect();
            let kb: Vec<(i32, i32)> = b.iter().map(|c| key(*c)).collect();
            ka.cmp(&kb)
        })
        .unwrap_or_default()
}

/// Calls `f` once for every fixed polyhex of size `n` (connected set of
/// `n` nodes up to translation). The slice passed to `f` is sorted by
/// [`key`] with its minimal node at the origin.
///
/// Uses Redelmeier's algorithm: grow from the origin into the half-plane
/// of nodes strictly after the origin in row-major order; every
/// translation class is produced exactly once.
pub fn for_each_fixed<F: FnMut(&[Coord])>(n: usize, f: F) {
    for_each_fixed_radius(n, 1, f);
}

/// Generalisation of [`for_each_fixed`] to *visibility connectivity*:
/// two nodes are adjacent when their grid distance is at most `radius`.
/// For `radius = 1` this is ordinary polyhex connectivity; `radius = 2`
/// enumerates the relaxed initial configurations of the paper's §V
/// future-work item ("the visibility relationship among robots
/// constitutes one connected graph").
pub fn for_each_fixed_radius<F: FnMut(&[Coord])>(n: usize, radius: u32, mut f: F) {
    if n == 0 {
        return;
    }
    let mut current = vec![ORIGIN];
    if n == 1 {
        f(&current);
        return;
    }
    let hood: Vec<Coord> = trigrid::region::disk(ORIGIN, radius).into_iter().skip(1).collect();
    let mut seen: HashSet<Coord> = HashSet::from([ORIGIN]);
    let initial: Vec<Coord> =
        hood.iter().map(|&d| ORIGIN + d).filter(|&c| after_origin(c)).collect();
    seen.extend(initial.iter().copied());
    let mut scratch = Vec::new();
    redelmeier(&mut current, initial, &mut seen, n, &hood, &mut scratch, &mut f);
}

fn redelmeier<F: FnMut(&[Coord])>(
    current: &mut Vec<Coord>,
    mut untried: Vec<Coord>,
    seen: &mut HashSet<Coord>,
    n: usize,
    hood: &[Coord],
    emit_buf: &mut Vec<Coord>,
    f: &mut F,
) {
    while let Some(c) = untried.pop() {
        current.push(c);
        if current.len() == n {
            emit_buf.clear();
            emit_buf.extend_from_slice(current);
            emit_buf.sort_by_key(|c| key(*c));
            f(emit_buf);
        } else {
            let mut added: Vec<Coord> = Vec::with_capacity(hood.len());
            let mut next_untried = untried.clone();
            for &d in hood {
                let nb = c + d;
                if after_origin(nb) && seen.insert(nb) {
                    next_untried.push(nb);
                    added.push(nb);
                }
            }
            redelmeier(current, next_untried, seen, n, hood, emit_buf, f);
            for nb in added {
                seen.remove(&nb);
            }
        }
        current.pop();
        // `c` stays in `seen`: it is "tried" for the remainder of this
        // level and all deeper ones; the level that discovered it will
        // remove it when unwinding.
    }
}

/// Number of translation classes of `n`-node sets connected under
/// distance-`radius` visibility (see [`for_each_fixed_radius`]).
#[must_use]
pub fn count_fixed_radius(n: usize, radius: u32) -> u64 {
    let mut count = 0;
    for_each_fixed_radius(n, radius, |_| count += 1);
    count
}

/// Number of fixed polyhexes of size `n` (OEIS A001207).
#[must_use]
pub fn count_fixed(n: usize) -> u64 {
    let mut count = 0;
    for_each_fixed(n, |_| count += 1);
    count
}

/// All fixed polyhexes of size `n`, each sorted by [`key`] with the
/// minimal node at the origin, in enumeration order.
#[must_use]
pub fn enumerate_fixed(n: usize) -> Vec<Vec<Coord>> {
    let mut out = Vec::new();
    for_each_fixed(n, |cells| out.push(cells.to_vec()));
    out
}

/// All *free* polyhexes of size `n`: representatives of the classes of
/// connected `n`-node sets up to translation, rotation and reflection
/// (OEIS A000228: 1, 1, 3, 7, 22, 82, 333, …).
#[must_use]
pub fn enumerate_free(n: usize) -> Vec<Vec<Coord>> {
    let mut reps: HashSet<Vec<Coord>> = HashSet::new();
    for_each_fixed(n, |cells| {
        reps.insert(canonical_free(cells));
    });
    let mut out: Vec<Vec<Coord>> = reps.into_iter().collect();
    out.sort();
    out
}

/// Number of free polyhexes of size `n` (OEIS A000228).
#[must_use]
pub fn count_free(n: usize) -> u64 {
    enumerate_free(n).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::path::is_connected;

    #[test]
    fn counts_match_oeis_a001207() {
        // The paper's "3652 patterns in total" (§IV-B) is the n = 7 entry.
        let expected = [1u64, 3, 11, 44, 186, 814, 3652];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(count_fixed(i + 1), e, "fixed polyhexes of size {}", i + 1);
        }
    }

    #[test]
    fn count_zero_is_zero() {
        assert_eq!(count_fixed(0), 0);
    }

    #[test]
    fn count_n8_matches_oeis_a001207() {
        // The first class space past the paper's n = 7 experiment;
        // the n = 8 sweep cells cover exactly these 16689 classes.
        assert_eq!(count_fixed(8), 16_689);
    }

    #[test]
    fn free_counts_match_oeis_a000228() {
        let expected = [1u64, 1, 3, 7, 22, 82];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(count_free(i + 1), e, "free polyhexes of size {}", i + 1);
        }
    }

    #[test]
    fn free_count_n7_is_333() {
        assert_eq!(count_free(7), 333);
    }

    #[test]
    fn all_enumerated_sets_are_connected_canonical_and_distinct() {
        for n in 1..=7 {
            let all = enumerate_fixed(n);
            let mut set = HashSet::new();
            for cells in &all {
                assert_eq!(cells.len(), n);
                assert!(is_connected(cells), "disconnected output for n={n}: {cells:?}");
                assert_eq!(&canonical_translation(cells), cells, "not canonical: {cells:?}");
                assert!(set.insert(cells.clone()), "duplicate: {cells:?}");
            }
        }
    }

    #[test]
    fn canonical_translation_identifies_translates() {
        let a = vec![Coord::new(0, 0), Coord::new(2, 0), Coord::new(1, 1)];
        let shift = Coord::new(5, 3);
        let b: Vec<Coord> = a.iter().map(|&c| c + shift).collect();
        assert_eq!(canonical_translation(&a), canonical_translation(&b));
    }

    #[test]
    fn canonical_translation_min_is_origin() {
        let a = vec![Coord::new(4, 2), Coord::new(6, 2), Coord::new(5, 3)];
        let c = canonical_translation(&a);
        assert_eq!(*c.iter().min_by_key(|c| key(**c)).unwrap(), ORIGIN);
    }

    #[test]
    fn canonical_free_identifies_congruent_sets() {
        use trigrid::transform::{mirror_x, rotate_ccw};
        let a = vec![Coord::new(0, 0), Coord::new(2, 0), Coord::new(3, 1), Coord::new(5, 1)];
        let rotated: Vec<Coord> = a.iter().map(|&c| rotate_ccw(c, 2) + Coord::new(4, 2)).collect();
        let mirrored: Vec<Coord> = a.iter().map(|&c| mirror_x(c) - Coord::new(2, 2)).collect();
        assert_eq!(canonical_free(&a), canonical_free(&rotated));
        assert_eq!(canonical_free(&a), canonical_free(&mirrored));
    }

    #[test]
    fn canonical_free_distinguishes_incongruent_sets() {
        let line = vec![Coord::new(0, 0), Coord::new(2, 0), Coord::new(4, 0)];
        let bent = vec![Coord::new(0, 0), Coord::new(2, 0), Coord::new(3, 1)];
        assert_ne!(canonical_free(&line), canonical_free(&bent));
    }

    #[test]
    fn hexagon_is_among_the_3652() {
        let hexagon = canonical_translation(&trigrid::region::disk(ORIGIN, 1));
        let mut found = false;
        for_each_fixed(7, |cells| {
            if cells == hexagon.as_slice() {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn enumeration_is_deterministic() {
        assert_eq!(enumerate_fixed(5), enumerate_fixed(5));
    }

    #[test]
    fn canonical_of_empty_is_empty() {
        assert!(canonical_translation(&[]).is_empty());
        assert!(canonical_free(&[]).is_empty());
    }
}
