//! Integration tests of the completed rule set's moving parts: the
//! adversarial horizon checks, the synthesized overrides, and the
//! dominant stuck clusters they resolve.

use gathering::rules::{self, RuleOptions};
use gathering::{base, completion, SevenGather};
use robots::{engine, Algorithm, Configuration, Limits, View};
use trigrid::{Coord, Dir, ORIGIN};

fn cfg(cells: &[(i32, i32)]) -> Configuration {
    Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
}

/// The dominant stuck cluster of the printed rules (471 initial classes
/// end here): a near-hexagon with a north-west overhang.
fn cluster_a() -> Configuration {
    cfg(&[(0, 0), (-3, 1), (-1, 1), (1, 1), (0, 2), (-3, 3), (-1, 3)])
}

#[test]
fn printed_rules_strand_cluster_a() {
    let printed = SevenGather::with_options(RuleOptions {
        fix_line25_misprint: true,
        connectivity_guard: true,
        ..RuleOptions::PAPER
    });
    let moves = engine::compute_moves(&cluster_a(), &printed);
    assert!(moves.iter().all(Option::is_none), "cluster A is a printed-rules fixpoint");
}

#[test]
fn verified_rules_resolve_cluster_a() {
    let ex = engine::run(&cluster_a(), &SevenGather::verified(), Limits::default());
    assert!(ex.outcome.is_gathered(), "{:?}", ex.outcome);
}

#[test]
fn adversarial_printed_check_is_conservative_about_the_horizon() {
    // From the north overhang of cluster A, the descending robot at
    // (-3,3) cannot see two cells that decide whether the west pole
    // fires line 8's virtual-base branch into the contested slot
    // (rel-west-pole (3,-1) and (-2,-2) are beyond the observer's
    // disk). The checker must therefore answer "may enter" — which is
    // exactly why the completion cannot descend here and a synthesized
    // override carries the progress instead.
    let c = cluster_a();
    let v = View::observe(&c, Coord::new(-3, 3), 2);
    let target = Coord::new(1, -1); // abs (-2,2), relative to (-3,3)
    let west_pole = Coord::new(0, -2); // abs (-3,1)
    assert!(v.is_robot(west_pole));
    assert!(
        completion::may_printed_enter(&v, west_pole, target, RuleOptions::VERIFIED),
        "the virtual-base line 8 might fire for all the observer knows"
    );
    // Consequently the completion must stay...
    assert_eq!(completion::compute(&v, RuleOptions::VERIFIED), None);
    // ...while the full verified algorithm (with overrides) still makes
    // progress somewhere in the configuration.
    let moves = engine::compute_moves(&c, &SevenGather::verified());
    assert!(moves.iter().any(Option::is_some), "an override unsticks cluster A");
}

#[test]
fn entry_priorities_serialise_all_six_directions() {
    let mut seen = std::collections::HashSet::new();
    for d in Dir::ALL {
        assert!(seen.insert(completion::entry_priority(d)));
    }
}

#[test]
fn overrides_only_fire_on_stay_views() {
    // Every synthesized override replaces a *stay* verdict of the
    // underlying rule set (they unstick fixpoints, never redirect an
    // existing move).
    for &(bits, _code) in gathering::overrides::OVERRIDES {
        let v = View::from_bits(2, bits as u64);
        assert_eq!(
            rules::compute(&v, RuleOptions::VERIFIED),
            None,
            "override on view {bits:#x} must shadow a stay verdict"
        );
    }
}

#[test]
fn overrides_move_to_empty_nodes_only() {
    for &(bits, code) in gathering::overrides::OVERRIDES {
        let v = View::from_bits(2, bits as u64);
        let d = rules::decode_decision(code).expect("overrides always move");
        assert!(v.is_empty_node(d.delta()), "override {bits:#x} targets an occupied node");
    }
}

#[test]
fn overrides_never_move_west() {
    for &(_bits, code) in gathering::overrides::OVERRIDES {
        assert_ne!(rules::decode_decision(code), Some(Dir::W), "no rule of the system moves west");
    }
}

#[test]
fn no_rule_of_the_verified_system_moves_west() {
    // The collision-freedom argument (east node of a target never
    // competes) rests on this global invariant; check the whole table.
    let table = gathering::table::verified_table();
    for (bits, &code) in table.iter().enumerate() {
        if rules::decode_decision(code) == Some(Dir::W) {
            panic!("view {bits:#x} moves west");
        }
    }
}

#[test]
fn verified_table_agrees_with_the_algorithm_object() {
    let algo = SevenGather::verified();
    let table = gathering::table::verified_table();
    // Spot-check a spread of views, including all override views.
    for bits in (0..(1u64 << 18)).step_by(9973) {
        let v = View::from_bits(2, bits);
        assert_eq!(algo.compute(&v), rules::decode_decision(table[bits as usize]), "{bits:#x}");
    }
    for &(bits, _) in gathering::overrides::OVERRIDES {
        let v = View::from_bits(2, bits as u64);
        assert_eq!(algo.compute(&v), rules::decode_decision(table[bits as usize]));
    }
}

#[test]
fn base_table_matches_direct_determination() {
    let table = base::base_table();
    for bits in (0..(1u64 << 18)).step_by(7919) {
        let v = View::from_bits(2, bits);
        assert_eq!(base::decode(table[bits as usize]), base::determine(&v), "{bits:#x}");
    }
}

#[test]
fn dependents_hug_target_examples() {
    let view_of = |cells: &[(i32, i32)]| {
        let mut nodes = vec![ORIGIN];
        nodes.extend(cells.iter().map(|&(x, y)| Coord::new(x, y)));
        View::observe(&Configuration::new(nodes), ORIGIN, 2)
    };
    // Neighbour at E, moving NE: (2,0) is adjacent to (1,1) — hugs.
    assert!(completion::dependents_hug_target(&view_of(&[(2, 0)]), Dir::NE));
    // Neighbour at W, moving E: (-2,0) is not adjacent to (2,0) — no hug.
    assert!(!completion::dependents_hug_target(&view_of(&[(-2, 0)]), Dir::E));
    // Two neighbours NE+SE, moving E: both adjacent to (2,0) — hugs.
    assert!(completion::dependents_hug_target(&view_of(&[(1, 1), (1, -1)]), Dir::E));
}

#[test]
fn paper_and_verified_agree_on_the_gathered_fixpoint() {
    let h = robots::hexagon(ORIGIN);
    for &p in h.positions() {
        let v = View::observe(&h, p, 2);
        assert_eq!(SevenGather::paper().compute(&v), None);
        assert_eq!(SevenGather::verified().compute(&v), None);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full reachability sweep is release-only")]
fn every_override_view_is_reached_by_some_execution() {
    // The overrides are not dead weight: each synthesized view occurs in
    // at least one of the 3652 executions (otherwise the synthesizer
    // could never have improved the gathered count by adding it).
    use std::collections::HashSet;
    let algo = SevenGather::verified();
    let mut reached: HashSet<u32> = HashSet::new();
    for cells in polyhex::enumerate_fixed(7) {
        let initial = Configuration::new(cells.iter().copied());
        let ex = engine::run_traced(&initial, &algo, Limits::default());
        for cfg in ex.trace.expect("traced") {
            for &p in cfg.positions() {
                reached.insert(View::observe(&cfg, p, 2).bits() as u32);
            }
        }
    }
    for &(bits, _) in gathering::overrides::OVERRIDES {
        assert!(reached.contains(&bits), "override view {bits:#x} is never exercised");
    }
    // Perspective: how much of the 2^18 view space real executions touch.
    assert!(reached.len() < (1 << 18) / 4, "executions touch a small corner of the view space");
}
