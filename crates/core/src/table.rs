//! Table form of the decision function, plus the synthesized overrides.
//!
//! A radius-2 view is 18 bits, so the whole algorithm is a function
//! `[u8; 2^18]` (encoded with [`crate::rules::encode_decision`]). The
//! table form serves two purposes:
//!
//! * **speed** — the exhaustive §IV-B verification and the benches do a
//!   table lookup per robot per round instead of re-evaluating guards;
//! * **completion synthesis** — the paper omits "several robot
//!   behaviors"; we recover them the same way the authors validated
//!   their algorithm, by exhaustive simulation: a synthesizer
//!   (`simlab`'s `synthesize` binary) proposes per-view move overrides
//!   for robots stranded in stuck fixpoints and keeps an override only
//!   if full re-verification strictly increases the number of gathering
//!   classes while keeping zero collisions, disconnections and
//!   livelocks. The accepted overrides are checked in as
//!   [`crate::overrides::OVERRIDES`] and are part of the verified
//!   algorithm.

use crate::rules::{self, RuleOptions};
use robots::View;

/// Number of distinct radius-2 views.
pub const VIEWS: usize = 1 << 18;

/// Builds the full decision table for the given rule options (printed
/// rules, vetoes and completion — everything except the synthesized
/// overrides).
#[must_use]
pub fn full_table(opts: RuleOptions) -> Vec<u8> {
    let mut table = vec![0u8; VIEWS];
    // Force the level-0 table to be materialised first so the
    // completion's adversarial lookups hit a warm cache.
    let _ = rules::level0_table(opts);
    let chunks: Vec<usize> = (0..VIEWS).step_by(VIEWS / 64).collect();
    let parts = parallel_build(&chunks, opts);
    for (start, part) in chunks.into_iter().zip(parts) {
        table[start..start + part.len()].copy_from_slice(&part);
    }
    table
}

fn parallel_build(starts: &[usize], opts: RuleOptions) -> Vec<Vec<u8>> {
    let step = VIEWS / 64;
    let compute_chunk = |&start: &usize| -> Vec<u8> {
        (start..(start + step).min(VIEWS))
            .map(|bits| {
                rules::encode_decision(rules::compute(&View::from_bits(2, bits as u64), opts))
            })
            .collect()
    };
    // Plain sequential fallback keeps this crate free of the parallel
    // dependency; the build is ~seconds and runs once per process.
    starts.iter().map(compute_chunk).collect()
}

/// Applies the synthesized overrides to a decision table in place.
pub fn apply_overrides(table: &mut [u8]) {
    for &(view, decision) in crate::overrides::OVERRIDES {
        table[view as usize] = decision;
    }
}

/// The decision table of the *verified* algorithm: `full_table` of
/// [`RuleOptions::VERIFIED`] plus the synthesized overrides. Cached for
/// the process lifetime.
#[must_use]
pub fn verified_table() -> &'static [u8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<u8>> = OnceLock::new();
    TABLE
        .get_or_init(|| {
            let mut t = full_table(RuleOptions::VERIFIED);
            apply_overrides(&mut t);
            t
        })
        .as_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::{Coord, Dir};

    #[test]
    fn table_matches_direct_evaluation_on_samples() {
        let opts = RuleOptions::PAPER;
        let table = full_table(opts);
        // Spot-check a spread of views.
        for bits in (0..VIEWS as u64).step_by(4097) {
            let v = View::from_bits(2, bits);
            assert_eq!(
                rules::decode_decision(table[bits as usize]),
                rules::compute(&v, opts),
                "view {bits:#x}"
            );
        }
    }

    #[test]
    fn verified_table_is_stable_and_has_movement() {
        let t = verified_table();
        assert_eq!(t.len(), VIEWS);
        // The all-west-line view must produce the line-8 NE move: robots
        // at (2,0) and (4,0) (the westmost robot of a 3+-line).
        let v = View::from_labels(2, &[Coord::new(2, 0), Coord::new(4, 0)]);
        assert_eq!(
            rules::decode_decision(t[v.bits() as usize]),
            Some(Dir::NE),
            "west tail climbs NE (line 8)"
        );
    }

    #[test]
    fn overrides_are_sorted_and_unique() {
        let o = crate::overrides::OVERRIDES;
        for w in o.windows(2) {
            assert!(w[0].0 < w[1].0, "overrides must be strictly sorted by view bits");
        }
        for &(view, decision) in o {
            assert!((view as usize) < VIEWS);
            assert!(decision <= 6, "decision must encode stay or one of six directions");
        }
    }
}
