//! A naive baseline: eastward compaction *without* the paper's guards.
//!
//! The paper has no algorithmic baseline (its contribution is the first
//! algorithm for this setting), but the guards of Algorithm 1 are its
//! entire technical substance. This baseline keeps the base-node idea
//! and the movement preferences but drops every collision/connectivity
//! guard; the `rules_ablation` bench and the integration tests use it to
//! demonstrate that the guards are load-bearing (it collides or
//! livelocks on many of the 3652 initial configurations).

use crate::base::{determine, BaseDecision};
use robots::{Algorithm, View};
use trigrid::{Coord, Dir};

/// Guard-free eastward compaction (see module docs).
pub struct GreedyEast;

impl Algorithm for GreedyEast {
    fn radius(&self) -> u32 {
        2
    }

    fn compute(&self, v: &View) -> Option<Dir> {
        let far_base = match determine(v) {
            BaseDecision::Base(b) if b.x_element() >= 2 && b != Coord::new(2, 0) => true,
            BaseDecision::VirtualEast => true,
            BaseDecision::SelfPromotion => return Some(Dir::E),
            _ => false,
        };
        if !far_base {
            return None;
        }
        // Move to the first empty node among E, NE, SE — the ordinal
        // preference of Fig. 50 — with no safety guards at all.
        [Dir::E, Dir::NE, Dir::SE].into_iter().find(|&d| v.is_empty_node(d.delta()))
    }

    fn name(&self) -> &str {
        "greedy-east-baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robots::{engine, Configuration, Limits, Outcome};
    use trigrid::ORIGIN;

    #[test]
    fn baseline_destroys_even_the_gathered_hexagon() {
        // Without the guards the NW petal still sees a "far" base and
        // walks out of the hexagon: the gathered configuration is not
        // even a fixpoint. This is exactly why Algorithm 1's stay
        // conditions (line 31) matter.
        let h = robots::hexagon(ORIGIN);
        let moves = engine::compute_moves(&h, &GreedyEast);
        assert!(moves.iter().any(Option::is_some), "some robot leaves the hexagon");
        let ex = engine::run(&h, &GreedyEast, Limits::default());
        assert_ne!(ex.outcome, Outcome::Gathered { rounds: 0 });
    }

    #[test]
    fn baseline_fails_on_some_configuration() {
        // The guards exist for a reason: without them some connected
        // 7-robot configuration collides, disconnects or livelocks.
        let mut failed = false;
        polyhex::for_each_fixed(7, |cells| {
            if failed {
                return;
            }
            let cfg = Configuration::new(cells.iter().copied());
            let ex = engine::run(&cfg, &GreedyEast, Limits::default());
            if !ex.outcome.is_gathered() {
                failed = true;
            }
        });
        assert!(failed, "guard-free compaction should not solve every configuration");
    }
}
