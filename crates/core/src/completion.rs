//! Completion rules: the paper's omitted behaviours.
//!
//! §IV-A ends with: *"Although there still exist several robot behaviors
//! that avoid a collision or an unconnected configuration, we omit the
//! detail."* The printed pseudocode alone strands roughly half of the
//! 3652 initial classes in non-gathered fixpoints. This module supplies
//! the missing progress moves; together with the [`crate::safety`] veto
//! they complete Algorithm 1 so that the exhaustive §IV-B verification
//! passes.
//!
//! Design, following the paper's own mechanism (Figs. 50–52):
//!
//! * a robot whose base is still far (labels `(4,0)`, `(3,±1)`,
//!   `(2,±2)`) tries the movement candidates of Fig. 50 in preference
//!   order;
//! * a candidate is taken only if the target is empty, the move is
//!   locally connectivity-safe, and the robot *wins the target*: among
//!   all robots adjacent to the target (all of which are within
//!   visibility range 2 — the key property that makes local conflict
//!   resolution possible), it has the highest static priority. Priority
//!   follows the eastward-compaction order of Fig. 50(b): a mover coming
//!   from the west of the target outranks one coming from the northwest,
//!   and so on. No rule ever moves west, so a robot due east of the
//!   target is never a competitor.

use crate::base::{determine, BaseDecision};
use crate::safety::connectivity_safe;
use robots::View;
use trigrid::{Coord, Dir, ORIGIN};

/// Priority of a mover entering a target node by moving in direction
/// `d`; higher wins, strictly.
///
/// The ranking follows the paper's Fig. 52 tie-break — "the robot with
/// the smaller x-element of the node label moves to the node and the
/// other robot stays" — read as the x-element of the *entry position*
/// relative to the contested node: an E-mover enters from label
/// `(-2,0)`, SE/NE movers from `(∓1,±1)` (x = −1), NW/SW movers from
/// x = +1. The x-element ties are broken north-first (SE-mover over
/// NE-mover), matching the paper's north/south guard asymmetries.
#[must_use]
pub fn entry_priority(d: Dir) -> u8 {
    match d {
        Dir::E => 5,  // enters from (-2,0)
        Dir::SE => 4, // enters from (-1,1)
        Dir::NE => 3, // enters from (-1,-1)
        Dir::NW => 2, // enters from (1,-1)
        Dir::SW => 1, // enters from (1,1)
        Dir::W => 0,  // no rule moves west; lowest for completeness
    }
}

/// Whether the observer, moving along `d` into the (empty) target, has
/// strictly the highest entry priority among **all** robots adjacent to
/// the target. Every such robot is within view (distance ≤ 2), so all
/// potential same-target competitors are visible, and each of them
/// evaluates the same predicate symmetrically: for any node, at most one
/// robot in the whole system can win it.
///
/// When *every* movement rule (printed and completion) is filtered
/// through this predicate — the `priority_guard` rule option — two
/// robots can never enter the same node, and since every rule targets an
/// empty node, edge swaps are impossible too: the algorithm becomes
/// collision-free **by construction**, which is exactly the property the
/// paper's Fig. 51/52 ordinal/x-element tie-breaks are after.
#[must_use]
pub fn wins_target(v: &View, d: Dir) -> bool {
    let target = d.delta();
    let my_priority = entry_priority(d);
    for u in target.neighbors() {
        if u == ORIGIN || !v.is_robot(u) {
            continue;
        }
        let entry = Dir::from_delta(target - u).expect("neighbours are one step away");
        if entry_priority(entry) >= my_priority {
            return false;
        }
    }
    true
}

/// The movement candidates for each far-base label, in preference order
/// (Fig. 50(a): compact eastward, wrapping around the forming hexagon).
///
/// Robots with base `(4,0)` (or the virtual base) are deliberately
/// *excluded*: they occupy the west-pole region of the forming hexagon
/// and the printed lines 7–9 already describe their movements
/// exhaustively — adding fallback moves for them creates
/// advance-and-retreat livelocks against the printed line-15/25
/// standstill breakers.
#[must_use]
pub fn candidates(base: BaseDecision) -> &'static [Dir] {
    match base {
        BaseDecision::Base(b) => match (b.x, b.y) {
            (3, -1) => &[Dir::SE, Dir::E],
            (3, 1) => &[Dir::NE, Dir::E],
            (2, -2) => &[Dir::SW, Dir::SE],
            (2, 2) => &[Dir::NW, Dir::NE],
            _ => &[],
        },
        BaseDecision::VirtualEast | BaseDecision::SelfPromotion | BaseDecision::Tie => &[],
    }
}

/// Whether the visible robot at label `u` might, under **some**
/// occupancy of the cells outside the observer's visibility disk, fire a
/// *completion* move into `target`: i.e. some consistent view gives `u`
/// a base whose candidate set contains the step onto `target`. Guards
/// (`connectivity`, `hug`, conflicts) are ignored — a sound
/// over-approximation of `u`'s willingness.
#[must_use]
pub fn may_complete_enter(v: &View, u: Coord, target: Coord) -> bool {
    let Some(needed) = Dir::from_delta(target - u) else {
        return false;
    };
    let table = crate::base::base_table();
    for_each_consistent_view(v, u, |bits| {
        candidates(crate::base::decode(table[bits as usize])).contains(&needed)
    })
}

/// Enumerates the bitmasks of every radius-2 view of the robot at label
/// `u` that is consistent with what the observer sees, calling `hit` on
/// each; returns `true` as soon as one callback does. The observer
/// itself appears as a robot in all of them.
fn for_each_consistent_view(v: &View, u: Coord, hit: impl Fn(u64) -> bool) -> bool {
    debug_assert!(v.is_robot(u) && u != ORIGIN);
    let mut base_bits = 0u64;
    let mut unknown: Vec<usize> = Vec::new();
    for (i, &l) in robots::view::labels(2).iter().enumerate() {
        let abs = u + l; // the cell, in the observer's frame
        if abs == ORIGIN {
            base_bits |= 1 << i; // the observer itself: a robot
        } else if robots::view::label_index(2, abs).is_some() {
            if v.is_robot(abs) {
                base_bits |= 1 << i;
            }
        } else {
            unknown.push(i);
        }
    }
    for assign in 0u64..(1 << unknown.len()) {
        let mut bits = base_bits;
        for (j, &pos) in unknown.iter().enumerate() {
            if assign & (1 << j) != 0 {
                bits |= 1 << pos;
            }
        }
        if hit(bits) {
            return true;
        }
    }
    false
}

/// Whether the visible robot at label `u` might, under **some**
/// occupancy of the cells outside the observer's visibility disk, be
/// moved by the *printed* rules onto the node at label `target`.
///
/// The observer sees only part of `u`'s view (`u` is within distance 2,
/// its view reaches distance 4). The check enumerates every assignment
/// of the invisible cells and consults the precomputed printed-rule
/// table; if any assignment sends `u` into `target`, the completion must
/// yield (the true assignment is among those enumerated, so this is a
/// sound over-approximation).
#[must_use]
pub fn may_printed_enter(
    v: &View,
    u: Coord,
    target: Coord,
    opts: crate::rules::RuleOptions,
) -> bool {
    let Some(needed) = Dir::from_delta(target - u) else {
        return false; // target is not adjacent to u: it cannot enter
    };
    let table = crate::rules::level0_table(opts);
    let needed_code = crate::rules::encode_decision(Some(needed));
    for_each_consistent_view(v, u, |bits| table[bits as usize] == needed_code)
}

/// Whether every robot currently adjacent to the observer is *directly*
/// adjacent to the move's target as well.
///
/// This is stronger than [`connectivity_safe`]: the latter allows a
/// dependent to stay connected through a chain of other robots, but
/// under FSYNC those other robots may move in the same round, so a
/// chain-based argument is unsound. Direct adjacency to the target is
/// robust: a dependent either stays put (still adjacent to the mover's
/// new node) or itself satisfies this same condition toward its own
/// target, keeping the old-neighbourhood relation intact hop by hop.
#[must_use]
pub fn dependents_hug_target(v: &View, d: Dir) -> bool {
    let target = d.delta();
    Dir::ALL
        .iter()
        .map(|d| d.delta())
        .filter(|&n| n != target && v.is_robot(n))
        .all(|n| n.is_adjacent(target))
}

/// Whether the move along `d` is free of same-target conflicts: no
/// visible robot adjacent to the target may enter it by a printed rule
/// (under any occupancy of its hidden cells), and every robot that may
/// enter it by a *completion* rule has strictly lower entry priority.
/// Completion-vs-completion conflicts are serialised by the strict
/// priority; completion-vs-printed conflicts are excluded outright.
#[must_use]
pub fn conflict_free(v: &View, d: Dir, opts: crate::rules::RuleOptions) -> bool {
    let target = d.delta();
    let my_priority = entry_priority(d);
    for u in target.neighbors() {
        if u == ORIGIN || !v.is_robot(u) {
            continue;
        }
        if may_printed_enter(v, u, target, opts) {
            return false;
        }
        if may_complete_enter(v, u, target) {
            let entry = Dir::from_delta(target - u).expect("neighbours are one step away");
            if entry_priority(entry) >= my_priority {
                return false;
            }
        }
    }
    true
}

/// The completion fallback: first candidate toward the base that is
/// locally safe on all three axes — empty target, dependents directly
/// hugging the target, and conflict-freedom against both possible
/// level-0 movers and other completion movers. Returns `None` when the
/// level-0 "stay" verdict stands.
#[must_use]
pub fn compute(v: &View, opts: crate::rules::RuleOptions) -> Option<Dir> {
    let base = determine(v);
    candidates(base).iter().copied().find(|&d| {
        let target = d.delta();
        v.is_empty_node(target)
            && connectivity_safe(v, d)
            && dependents_hug_target(v, d)
            && conflict_free(v, d, opts)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use robots::Configuration;

    fn view_of(cells: &[(i32, i32)]) -> View {
        let mut nodes = vec![ORIGIN];
        nodes.extend(cells.iter().map(|&(x, y)| Coord::new(x, y)));
        View::observe(&Configuration::new(nodes), ORIGIN, 2)
    }

    #[test]
    fn priorities_are_distinct() {
        let mut ps: Vec<u8> = Dir::ALL.iter().map(|&d| entry_priority(d)).collect();
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ps.len(), 6);
    }

    #[test]
    fn wins_target_unique_winner() {
        // Observer and a robot at (1,1) both flank the empty node (2,0):
        // the observer enters moving E (priority 5), the other would
        // enter moving SE (priority 3): observer wins, and by symmetry
        // the other robot loses.
        let v = view_of(&[(1, 1)]);
        assert!(wins_target(&v, Dir::E));
        // Mirrored view from the other robot's perspective: it sees the
        // observer at (-1,-1) and the target at (1,-1); it enters SE.
        let other = view_of(&[(-1, -1)]);
        assert!(!wins_target(&other, Dir::SE));
    }

    #[test]
    fn east_of_target_never_competes() {
        // A robot at (4,0) is due east of the target (2,0): it cannot
        // move west, so the observer still wins.
        let v = view_of(&[(4, 0), (3, 1)]);
        assert!(wins_target(&v, Dir::E));
    }

    #[test]
    fn descending_into_the_petal_slot() {
        // A stuck-cluster pattern: base (2,-2), SW slot free — the
        // printed line 19 refuses when any western support exists; the
        // completion descends when it is safe and unconteste.
        let v = view_of(&[(2, -2), (1, -1)]);
        assert_eq!(determine(&v), BaseDecision::Base(Coord::new(2, -2)));
        assert_eq!(compute(&v, crate::rules::RuleOptions::VERIFIED), Some(Dir::SW));
    }

    #[test]
    fn yields_to_a_higher_priority_competitor() {
        // With a robot at (-2,0), that robot could enter my SW target by
        // moving SE (priority 3 beats my SW priority 2): I yield.
        let v = view_of(&[(2, -2), (-2, 0), (1, -1)]);
        assert_eq!(compute(&v, crate::rules::RuleOptions::VERIFIED), None);
    }

    #[test]
    fn no_candidates_near_base() {
        for cells in [&[(2, 0)][..], &[(1, 1)][..], &[(-2, 0)][..]] {
            assert_eq!(compute(&view_of(cells), crate::rules::RuleOptions::VERIFIED), None);
        }
    }
}
