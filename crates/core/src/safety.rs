//! View-local safety checks used by the completed rule set.
//!
//! The paper's Algorithm 1 encodes collision- and
//! connectivity-avoidance as per-line occupancy guards, and admits that
//! "there still exist several robot behaviors that avoid a collision or
//! an unconnected configuration" which the text omits. The completed
//! rule set factors the *connectivity* half of those omitted guards into
//! one generic, view-local check: a move is vetoed unless every robot
//! currently adjacent to the mover remains connected — within the
//! mover's visibility disk, assuming the others stand still — to the
//! mover's new node.
//!
//! The check is deliberately conservative (paths through nodes outside
//! the visibility disk are ignored) and, like the paper's own guards,
//! heuristic under simultaneity (a supporting robot may itself move).
//! The exhaustive §IV-B verification is the final referee.

use robots::View;
use std::collections::{HashSet, VecDeque};
use trigrid::{Coord, Dir, ORIGIN};

/// Whether moving one step in direction `d` is locally
/// connectivity-safe (see module docs). Also requires the target node to
/// be empty (all of Algorithm 1's moves target empty nodes, which is
/// what makes edge swaps impossible).
#[must_use]
pub fn connectivity_safe(v: &View, d: Dir) -> bool {
    let target = d.delta();
    if v.is_robot(target) {
        return false;
    }

    // Robot nodes after my move, as seen from my (old) position.
    let mut nodes: HashSet<Coord> = v.robot_labels().collect();
    nodes.insert(target);

    // My current robot neighbours — the ones my departure could orphan.
    let dependents: Vec<Coord> =
        Dir::ALL.iter().map(|d| d.delta()).filter(|&n| n != target && nodes.contains(&n)).collect();
    if dependents.is_empty() {
        // A robot with no neighbour is already disconnected; moving
        // cannot make connectivity worse.
        return true;
    }

    // BFS from the target over the post-move robot nodes (old node
    // vacated). Every dependent must be reachable.
    let mut seen: HashSet<Coord> = HashSet::with_capacity(nodes.len());
    let mut queue = VecDeque::from([target]);
    seen.insert(target);
    while let Some(c) = queue.pop_front() {
        for n in c.neighbors() {
            if nodes.contains(&n) && n != ORIGIN && seen.insert(n) {
                queue.push_back(n);
            }
        }
    }
    dependents.iter().all(|d| seen.contains(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robots::{Configuration, View};

    fn view_of(cells: &[(i32, i32)]) -> View {
        let mut nodes = vec![ORIGIN];
        nodes.extend(cells.iter().map(|&(x, y)| Coord::new(x, y)));
        View::observe(&Configuration::new(nodes), ORIGIN, 2)
    }

    #[test]
    fn occupied_target_is_unsafe() {
        let v = view_of(&[(2, 0)]);
        assert!(!connectivity_safe(&v, Dir::E));
    }

    #[test]
    fn abandoning_a_pendant_neighbour_is_unsafe() {
        // The Fig.-58-style hole: observer at (0,0) with a lone dependent
        // at SE (1,-1); moving NW to (-1,1) would orphan it.
        let v = view_of(&[(1, -1), (1, 1)]);
        assert!(!connectivity_safe(&v, Dir::NW));
        // Moving E keeps both neighbours adjacent to the new node.
        assert!(connectivity_safe(&v, Dir::E));
    }

    #[test]
    fn dependent_with_own_support_is_fine() {
        // The SE dependent also touches (3,-1): leaving NW is safe only
        // if (3,-1) connects it back to the rest — within my view the
        // component {(1,-1),(3,-1)} does NOT reach (-1,1), so the
        // conservative check still vetoes.
        let v = view_of(&[(1, -1), (3, -1), (1, 1)]);
        assert!(!connectivity_safe(&v, Dir::NW));
        // But if the chain wraps back up to (2,0),(1,1) it is safe.
        let v = view_of(&[(1, -1), (2, 0), (1, 1)]);
        assert!(connectivity_safe(&v, Dir::NW));
    }

    #[test]
    fn lonely_robot_moves_freely() {
        let v = view_of(&[]);
        for d in Dir::ALL {
            assert!(connectivity_safe(&v, d));
        }
    }

    #[test]
    fn train_like_follow_is_safe() {
        // Neighbour to the west, empty east: stepping east is vetoed
        // because the west dependent cannot reach the new node within
        // view... unless it is within distance 2 of the target via other
        // robots. Pure two-robot case: unsafe (the pair would stretch).
        let v = view_of(&[(-2, 0)]);
        assert!(!connectivity_safe(&v, Dir::E));
        // With a robot bridging at (-1,1)/(1,1) the move keeps contact.
        let v = view_of(&[(-2, 0), (-1, 1), (1, 1)]);
        assert!(connectivity_safe(&v, Dir::E));
    }

    #[test]
    fn all_six_directions_safe_inside_dense_cluster() {
        // Observer inside a ring of robots: any move to an empty node
        // keeps everyone connected. Fill the whole distance-1 ring except
        // east, and the ring stays mutually adjacent.
        let v = view_of(&[(1, 1), (-1, 1), (-2, 0), (-1, -1), (1, -1), (3, 1)]);
        assert!(connectivity_safe(&v, Dir::E));
    }
}
