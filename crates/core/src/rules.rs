//! Line-by-line transcription of Algorithm 1 (paper §IV-A).
//!
//! Every branch below carries the pseudocode line number it implements.
//! Labels are the relative coordinates of Fig. 48: the observing robot
//! is `(0,0)`, its east neighbour `(2,0)`, the node two east `(4,0)`,
//! NE-NE is `(2,2)`, and so on — identical to `trigrid` doubled
//! coordinates, so labels are used directly.
//!
//! The printed pseudocode is the *explained* part of the algorithm; the
//! paper explicitly omits "several robot behaviors that avoid a
//! collision or an unconnected configuration". [`RuleOptions`] names
//! each completion/fix this reproduction needed in order to pass the
//! exhaustive 3652-configuration verification; `RuleOptions::PAPER`
//! disables them all (verbatim pseudocode), `RuleOptions::VERIFIED`
//! enables them all. Each flag is documented where it is used and in
//! DESIGN.md §6.

use crate::base::{determine, BaseDecision};
use robots::View;
use serde::{Deserialize, Serialize};
use trigrid::{Coord, Dir};

/// Named deviations of the verified rule set from the printed
/// pseudocode. See DESIGN.md §6 for the full rationale of each flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RuleOptions {
    /// Line 25 as printed demands node `(1,-1)` be simultaneously a
    /// robot node and an empty node, so the branch can never fire. By
    /// mirror symmetry with line 15 the empty node should be `(-1,1)`
    /// (this is also what the Fig. 53 discussion describes). When this
    /// flag is off the misprint is kept and the branch is dead code.
    pub fix_line25_misprint: bool,
    /// Veto any printed move that fails the view-local connectivity
    /// check of [`crate::safety::connectivity_safe`]. Closes the
    /// disconnection holes of the printed retreat rules (lines 19/29 can
    /// orphan a pendant dependent the guards never look at).
    pub connectivity_guard: bool,
    /// Filter **every** move (printed and completion) through the shared
    /// entry-priority protocol of [`crate::completion::wins_target`]:
    /// since all rules target empty nodes and at most one robot can win
    /// any node, the algorithm becomes collision-free by construction —
    /// the uniform version of the paper's Fig. 51/52 tie-breaks.
    pub priority_guard: bool,
    /// Enable the [`crate::completion`] fallback moves — the paper's
    /// omitted "several robot behaviors"; without them roughly half of
    /// the 3652 classes strand in non-gathered fixpoints.
    pub completion: bool,
    /// Add the missing `(0,2) is empty` conjunct to line 23. Line 13
    /// (the south-side mirror of line 23) requires `(0,-2)` to be empty;
    /// line 23 as printed lacks the mirrored guard. Without it, a robot
    /// descending into a contested slot from the north can never rule
    /// out — within its visibility horizon — that the robot below might
    /// fire line 23 into the same node, and the completion deadlocks on
    /// the most common stuck shapes.
    pub mirror_line23_guard: bool,
}

impl RuleOptions {
    /// The pseudocode exactly as printed.
    pub const PAPER: RuleOptions = RuleOptions {
        fix_line25_misprint: false,
        connectivity_guard: false,
        priority_guard: false,
        completion: false,
        mirror_line23_guard: false,
    };

    /// The completed rule set (passes the exhaustive verification).
    ///
    /// `priority_guard` stays **off**: the printed rules are already
    /// mutually collision-free (their occupancy guards choreograph who
    /// moves), and filtering them through the generic entry-priority
    /// protocol vetoes the standstill-breaking retreats (lines 15/25),
    /// collapsing progress — see the `rules_ablation` bench.
    pub const VERIFIED: RuleOptions = RuleOptions {
        fix_line25_misprint: true,
        connectivity_guard: true,
        priority_guard: false,
        completion: true,
        mirror_line23_guard: true,
    };
}

/// The *level-0* decision: printed rules plus the (optional) priority
/// and connectivity vetoes, with no completion fallback. This is the
/// behaviour the completion layer must reason about adversarially.
#[must_use]
pub fn level0(v: &View, opts: RuleOptions) -> Option<Dir> {
    let mut mv = printed(v, opts);
    if opts.priority_guard {
        if let Some(d) = mv {
            if !crate::completion::wins_target(v, d) {
                mv = None;
            }
        }
    }
    if opts.connectivity_guard {
        if let Some(d) = mv {
            if !crate::safety::connectivity_safe(v, d) {
                mv = None;
            }
        }
    }
    mv
}

/// The full decision table of [`level0`] over all 2^18 radius-2 views
/// for the given options, built once per option combination.
#[must_use]
pub fn level0_table(opts: RuleOptions) -> &'static [u8] {
    use std::sync::OnceLock;
    const N: usize = 16;
    static TABLES: [OnceLock<Vec<u8>>; N] = [const { OnceLock::new() }; N];
    let key = usize::from(opts.fix_line25_misprint)
        | (usize::from(opts.priority_guard) << 1)
        | (usize::from(opts.connectivity_guard) << 2)
        | (usize::from(opts.mirror_line23_guard) << 3);
    TABLES[key]
        .get_or_init(|| {
            (0u64..(1 << 18))
                .map(|bits| encode_decision(level0(&View::from_bits(2, bits), opts)))
                .collect()
        })
        .as_slice()
}

/// Algorithm 1 with the selected options: the level-0 decision, then
/// the completion fallback.
#[must_use]
pub fn compute(v: &View, opts: RuleOptions) -> Option<Dir> {
    let mut mv = level0(v, opts);
    if mv.is_none() && opts.completion {
        mv = crate::completion::compute(v, opts);
    }
    mv
}

/// Encodes a move decision in one byte for the rule tables:
/// `0` = stay, `1 + dir.index()` = move.
#[must_use]
pub fn encode_decision(d: Option<Dir>) -> u8 {
    d.map_or(0, |d| 1 + d.index() as u8)
}

/// Inverse of [`encode_decision`].
#[must_use]
pub fn decode_decision(b: u8) -> Option<Dir> {
    (b != 0).then(|| Dir::from_index((b - 1) as usize))
}

/// The full decision table of the **printed** rules over all 2^18
/// radius-2 views, for the given `fix_line25_misprint` setting. Built
/// once (≈ 30 ms) and cached; the completion rules consult it to decide
/// whether a partially visible competitor *might* move into a contested
/// node under some occupancy of the cells outside the observer's view.
#[must_use]
pub fn printed_table(fix_line25: bool) -> &'static [u8] {
    use std::sync::OnceLock;
    static TABLES: [OnceLock<Vec<u8>>; 2] = [OnceLock::new(), OnceLock::new()];
    TABLES[usize::from(fix_line25)]
        .get_or_init(|| {
            let opts = RuleOptions { fix_line25_misprint: fix_line25, ..RuleOptions::PAPER };
            (0u64..(1 << 18))
                .map(|bits| encode_decision(printed(&View::from_bits(2, bits), opts)))
                .collect()
        })
        .as_slice()
}

/// The printed pseudocode of Algorithm 1 (lines 1–33), verbatim up to
/// the `fix_line25_misprint` flag.
#[must_use]
pub fn printed(v: &View, opts: RuleOptions) -> Option<Dir> {
    debug_assert_eq!(v.radius(), 2);
    let r = |x: i32, y: i32| v.is_robot(Coord::new(x, y));
    let e = |x: i32, y: i32| v.is_empty_node(Coord::new(x, y));

    let base = determine(v);
    let base_is = |x: i32, y: i32| base == BaseDecision::Base(Coord::new(x, y));

    // ---- Lines 1–3: the base node is (2,0) but it is an empty node ----
    // Guard (line 1): "(node (2,0) is an empty node) ∧ (nodes (1,1) and
    // (1,-1) are robot nodes) ∧ (the other robot nodes have x-elements of
    // the labels at most 0)" — i.e. the SelfPromotion base decision.
    if base == BaseDecision::SelfPromotion && e(2, 0) {
        // Line 3: "(node (-2,0) is an empty node) ∨ ((node (-2,0) is a
        // robot node) ∧ (node (-1,1) or (-1,-1) is a robot node))".
        if e(-2, 0) || (r(-2, 0) && (r(-1, 1) || r(-1, -1))) {
            return Some(Dir::E); // move to (2,0)
        }
        return None;
    }

    // ---- Lines 5–9: the base node is (4,0) (possibly the virtual base:
    // "(node (4,0) is an empty node) ∧ (nodes (3,1) and (3,-1) are robot
    // nodes)") ----
    if base_is(4, 0) || base == BaseDecision::VirtualEast {
        // Line 7: move east to (2,0).
        if e(2, 0)
            && ((e(-1, 1) && e(-2, 0) && e(-1, -1))
                || (r(1, -1) && e(-2, 0) && e(-1, 1))
                || (r(1, 1) && e(-2, 0) && e(-1, -1))
                || (r(1, -1) && r(-1, -1) && r(-2, 0) && e(-1, 1))
                || (r(-2, 0) && r(-1, 1) && r(1, 1) && e(-1, -1)))
        {
            return Some(Dir::E);
        }
        // Line 8: move northeast to (1,1).
        if r(2, 0)
            && e(1, 1)
            && e(-2, 0)
            && e(-1, 1)
            && ((e(-1, -1) && e(2, 2)) || (r(2, 2) && r(3, 1) && r(3, -1) && r(-2, -2)))
        {
            return Some(Dir::NE);
        }
        // Line 9: move southeast to (1,-1). (The printed trailing
        // disjunct "(node (1,1) is a robot node) ∨ (node (2,2) is a robot
        // node)" is subsumed by the leading "(nodes (2,0) and (1,1) are
        // robot nodes)" and is kept verbatim.)
        if r(2, 0)
            && r(1, 1)
            && e(1, -1)
            && e(-1, -1)
            && e(-2, 0)
            && e(-1, 1)
            && e(2, -2)
            && (r(1, 1) || r(2, 2))
        {
            return Some(Dir::SE);
        }
        return None;
    }

    // ---- Lines 11–15: the base node is (3,-1) ----
    if base_is(3, -1) {
        // Line 13: move southeast to (1,-1).
        if e(1, -1)
            && e(-1, -1)
            && e(0, -2)
            && ((e(-2, 0) && e(-1, 1)) || (r(-1, 1) && r(1, 1) && e(0, 2)))
        {
            return Some(Dir::SE);
        }
        // Line 14: move east to (2,0).
        if r(1, -1) && e(2, 0) && e(-1, 1) && (e(-2, 0) || (r(-2, 0) && r(-1, -1))) {
            return Some(Dir::E);
        }
        // Line 15: the "retreat" move southwest to (-1,-1), freeing the
        // observer's node for the robot at (1,1) (Fig. 53's standstill
        // breaker, southern mirror).
        if r(1, -1) && r(2, 0) && r(1, 1) && e(-1, -1) && e(-2, 0) && e(-2, -2) {
            return Some(Dir::SW);
        }
        return None;
    }

    // ---- Lines 17–19: the base node is (2,-2) ----
    if base_is(2, -2) {
        // Line 19: move southwest to (-1,-1).
        if e(-1, -1) && e(-2, 0) && e(-3, -1) && e(-1, 1) {
            return Some(Dir::SW);
        }
        return None;
    }

    // ---- Lines 21–25: the base node is (3,1) ----
    if base_is(3, 1) {
        // Line 23: move northeast to (1,1). (`mirror_line23_guard`
        // additionally demands (0,2) be empty, mirroring line 13's
        // printed (0,-2) guard; see RuleOptions.)
        if e(1, 1)
            && ((e(-1, 1) && e(-2, 0) && e(-1, -1))
                || (r(1, -1) && r(-1, -1) && e(0, -2) && e(-1, 1)))
            && (!opts.mirror_line23_guard || e(0, 2))
        {
            return Some(Dir::NE);
        }
        // Line 24: move east to (2,0).
        if r(1, 1) && e(2, 0) && ((e(-2, 0) && e(-1, -1)) || (e(-1, -1) && r(-2, 0) && r(-1, 1))) {
            return Some(Dir::E);
        }
        // Line 25: the retreat move northwest to (-1,1) (Fig. 53's
        // standstill breaker). As printed the guard demands (1,-1) be
        // both a robot node and empty — unsatisfiable; the verified rule
        // set reads the empty node as (-1,1), mirroring line 15.
        let line25_empty_ok =
            if opts.fix_line25_misprint { e(-1, 1) } else { r(1, -1) && e(1, -1) };
        if r(1, 1) && r(2, 0) && r(1, -1) && line25_empty_ok && e(-2, 0) && e(-2, 2) {
            return Some(Dir::NW);
        }
        return None;
    }

    // ---- Lines 27–29: the base node is (2,2) ----
    if base_is(2, 2) {
        // Line 29: move northwest to (-1,1).
        if e(-1, 1) && e(-3, 1) && e(-2, 0) && e(-1, -1) {
            return Some(Dir::NW);
        }
        return None;
    }

    // ---- Lines 31–33: base is (0,0), (2,0), (1,-1), (1,1), or no base
    // (tie): "robot ri is close to the base node and it does not need to
    // leave the current node" ----
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use robots::{Configuration, View};
    use trigrid::ORIGIN;

    fn view_of(cells: &[(i32, i32)]) -> View {
        let mut nodes = vec![ORIGIN];
        nodes.extend(cells.iter().map(|&(x, y)| Coord::new(x, y)));
        View::observe(&Configuration::new(nodes), ORIGIN, 2)
    }

    const P: RuleOptions = RuleOptions::PAPER;
    const V: RuleOptions = RuleOptions::VERIFIED;

    #[test]
    fn gathered_hexagon_is_a_fixpoint_for_every_robot() {
        // Centre of the hexagon: base is (2,0) -> stay (line 31).
        let centre = view_of(&[(2, 0), (1, 1), (-1, 1), (-2, 0), (-1, -1), (1, -1)]);
        assert_eq!(compute(&centre, V), None);
        // East pole: everyone is west; base is self -> stay.
        let east = view_of(&[(-2, 0), (-1, 1), (-1, -1), (-3, 1), (-3, -1), (-4, 0)]);
        assert_eq!(compute(&east, V), None);
        // North-east petal: base is (1,-1)... robots at E? Compute from a
        // real configuration instead, for all seven robots.
        let hexagon = robots::hexagon(ORIGIN);
        for &p in hexagon.positions() {
            let v = View::observe(&hexagon, p, 2);
            assert_eq!(compute(&v, V), None, "robot at {p} must stay in the hexagon");
            assert_eq!(compute(&v, P), None, "paper rules agree on the fixpoint");
        }
    }

    #[test]
    fn line1_self_promotion_moves_east() {
        // (1,1) and (1,-1) are the rightmost robots; (2,0) and (-2,0) empty.
        let v = view_of(&[(1, 1), (1, -1), (-1, 1)]);
        assert_eq!(compute(&v, V), Some(Dir::E));
    }

    #[test]
    fn line3_guard_blocks_when_west_would_disconnect() {
        // Fig. 55 (a): west neighbour occupied, no (-1,±1) support — the
        // move east could disconnect the west robot; stay.
        let v = view_of(&[(1, 1), (1, -1), (-2, 0)]);
        assert_eq!(compute(&v, V), None);
        // Fig. 55 (b): with (-1,-1) also occupied the move is safe.
        let v = view_of(&[(1, 1), (1, -1), (-2, 0), (-1, -1)]);
        assert_eq!(compute(&v, V), Some(Dir::E));
    }

    #[test]
    fn line7_east_toward_base_4_0() {
        // Base (4,0) real robot; path east is clear and the west side empty.
        let v = view_of(&[(4, 0), (3, 1)]);
        assert_eq!(compute(&v, V), Some(Dir::E));
    }

    #[test]
    fn line7_blocked_when_sw_support_missing() {
        // Fig. 56 (a): (-1,-1) robot with nothing else west — moving east
        // may disconnect it; the printed disjuncts all fail.
        let v = view_of(&[(4, 0), (3, 1), (-1, -1)]);
        assert_eq!(compute(&v, V), None);
        // Fig. 56 (b): with (1,-1) a robot the move is allowed... line 7's
        // fourth disjunct also wants (-2,0) robot; use that full shape.
        let v = view_of(&[(4, 0), (3, 1), (1, -1), (-1, -1), (-2, 0)]);
        assert_eq!(compute(&v, V), Some(Dir::E));
    }

    #[test]
    fn line8_northeast_when_east_is_blocked() {
        let v = view_of(&[(4, 0), (2, 0)]);
        assert_eq!(compute(&v, V), Some(Dir::NE));
    }

    #[test]
    fn line9_southeast_when_east_and_ne_blocked() {
        let v = view_of(&[(4, 0), (2, 0), (1, 1)]);
        assert_eq!(compute(&v, V), Some(Dir::SE));
    }

    #[test]
    fn line13_southeast_toward_base_3_m1() {
        let v = view_of(&[(3, -1)]);
        assert_eq!(compute(&v, V), Some(Dir::SE));
    }

    #[test]
    fn line14_east_when_se_occupied() {
        let v = view_of(&[(3, -1), (1, -1)]);
        assert_eq!(compute(&v, V), Some(Dir::E));
    }

    #[test]
    fn line15_retreat_southwest() {
        // The observer blocks the hexagon slot needed by the robot at
        // (1,1); it steps aside to (-1,-1).
        let v = view_of(&[(3, -1), (1, -1), (2, 0), (1, 1)]);
        assert_eq!(compute(&v, V), Some(Dir::SW));
    }

    #[test]
    fn line19_southwest_toward_base_2_m2() {
        let v = view_of(&[(2, -2)]);
        assert_eq!(compute(&v, V), Some(Dir::SW));
    }

    #[test]
    fn line23_northeast_toward_base_3_1() {
        let v = view_of(&[(3, 1)]);
        assert_eq!(compute(&v, V), Some(Dir::NE));
    }

    #[test]
    fn line24_east_when_ne_occupied() {
        let v = view_of(&[(3, 1), (1, 1)]);
        assert_eq!(compute(&v, V), Some(Dir::E));
    }

    #[test]
    fn line25_retreat_fires_only_with_the_fix() {
        // Fig. 53: base (3,1); (1,1),(2,0),(1,-1) robots; (-1,1) empty.
        let v = view_of(&[(3, 1), (1, 1), (2, 0), (1, -1)]);
        assert_eq!(compute(&v, P), None, "printed guard is unsatisfiable");
        assert_eq!(compute(&v, V), Some(Dir::NW), "verified rules step aside NW");
    }

    #[test]
    fn line29_northwest_toward_base_2_2() {
        let v = view_of(&[(2, 2)]);
        assert_eq!(compute(&v, V), Some(Dir::NW));
    }

    #[test]
    fn line31_stay_cases() {
        for cells in [
            &[(2, 0)][..],         // base east neighbour
            &[(1, 1)][..],         // base NE neighbour
            &[(1, -1)][..],        // base SE neighbour
            &[(-2, 0)][..],        // base is self
            &[(2, 0), (2, 2)][..], // tie -> no base
        ] {
            let v = view_of(cells);
            assert_eq!(compute(&v, V), None, "must stay with robots {cells:?}");
        }
    }

    #[test]
    fn translation_invariance_by_construction() {
        // Views carry no absolute position, so the same view from two
        // different absolute positions yields the same decision.
        let cfg_a = Configuration::new([ORIGIN, Coord::new(2, 0), Coord::new(4, 0)]);
        let cfg_b = cfg_a.translate(Coord::new(7, 3));
        let va = View::observe(&cfg_a, ORIGIN, 2);
        let vb = View::observe(&cfg_b, Coord::new(7, 3), 2);
        assert_eq!(va, vb);
        assert_eq!(compute(&va, V), compute(&vb, V));
    }
}

#[cfg(test)]
mod table_tests {
    use super::*;
    use robots::View;

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(decode_decision(encode_decision(None)), None);
        for d in Dir::ALL {
            assert_eq!(decode_decision(encode_decision(Some(d))), Some(d));
        }
    }

    #[test]
    fn printed_table_matches_direct_evaluation() {
        let table = printed_table(true);
        let opts = RuleOptions { fix_line25_misprint: true, ..RuleOptions::PAPER };
        for bits in (0..(1u64 << 18)).step_by(12289) {
            let v = View::from_bits(2, bits);
            assert_eq!(decode_decision(table[bits as usize]), printed(&v, opts), "{bits:#x}");
        }
    }

    #[test]
    fn level0_table_reflects_the_connectivity_guard() {
        let base = RuleOptions { fix_line25_misprint: true, ..RuleOptions::PAPER };
        let guarded = RuleOptions { connectivity_guard: true, ..base };
        let tb = level0_table(base);
        let tg = level0_table(guarded);
        // The guard only ever turns moves into stays.
        let mut vetoed = 0usize;
        for i in 0..tb.len() {
            if tb[i] != tg[i] {
                assert_ne!(tb[i], 0, "guard cannot introduce a move");
                assert_eq!(tg[i], 0, "guard can only veto");
                vetoed += 1;
            }
        }
        assert!(vetoed > 0, "the guard must bite somewhere");
    }

    #[test]
    fn priority_guard_only_vetoes() {
        let base = RuleOptions { fix_line25_misprint: true, ..RuleOptions::PAPER };
        let prio = RuleOptions { priority_guard: true, ..base };
        let tb = level0_table(base);
        let tp = level0_table(prio);
        for i in 0..tb.len() {
            if tb[i] != tp[i] {
                assert_eq!(tp[i], 0, "priority guard can only veto");
            }
        }
    }

    #[test]
    fn no_printed_rule_moves_west() {
        let table = printed_table(true);
        for (bits, &code) in table.iter().enumerate() {
            assert_ne!(decode_decision(code), Some(Dir::W), "view {bits:#x}");
        }
    }
}
