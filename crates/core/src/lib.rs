//! # gathering — the paper's contribution (Theorem 2)
//!
//! The collision-free gathering algorithm for **seven** oblivious robots
//! with **visibility range 2** on the triangular grid, from §IV of
//! Shibata et al. 2021.
//!
//! ## How the algorithm works (paper §IV-A)
//!
//! Each robot interprets its 18-node view through the label system of
//! Fig. 48 (itself at `(0,0)`, east neighbour `(2,0)`, the node two east
//! `(4,0)`, …). It then:
//!
//! 1. **Determines the base node** — the robot node with the strictly
//!    largest *x-element* in view (possibly itself). Ties mean "wait",
//!    with two exceptions: the *virtual base* `(4,0)` (empty but flanked
//!    by robots at `(3,1)` and `(3,-1)`), and the *self-promotion* case
//!    where `(1,1)`/`(1,-1)` hold the maximum and the robot moves east to
//!    become the base itself. See [`base`].
//! 2. **Moves toward the base** — robots treat the base as the east pole
//!    of the target hexagon and compact eastward, with guards that make
//!    every move locally provably collision-free and
//!    connectivity-preserving. See [`rules`], a line-by-line
//!    transcription of Algorithm 1.
//!
//! ## Two rule sets
//!
//! The printed pseudocode is not quite the algorithm the authors
//! verified: it contains an unsatisfiable guard (line 25) and the paper
//! itself says "there still exist several robot behaviors that avoid a
//! collision or an unconnected configuration, we omit the detail". This
//! crate therefore ships:
//!
//! * [`SevenGather::paper`] — the pseudocode exactly as printed, and
//! * [`SevenGather::verified`] — the completed rule set that passes the
//!   exhaustive verification over all 3652 connected initial
//!   configurations (the paper's §IV-B experiment). Every deviation is a
//!   named flag in [`rules::RuleOptions`] and is documented in
//!   `DESIGN.md` §6.
//!
//! ```
//! use gathering::SevenGather;
//! use robots::{engine, Configuration, Limits};
//! use trigrid::Coord;
//!
//! // Seven robots in a row gather into the hexagon.
//! let line = Configuration::new((0..7).map(|i| Coord::new(2 * i, 0)));
//! let ex = engine::run(&line, &SevenGather::verified(), Limits::default());
//! assert!(ex.outcome.is_gathered());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod baseline;
pub mod completion;
pub mod overrides;
pub mod rules;
pub mod safety;
pub mod table;

use robots::{Algorithm, View};
use std::sync::atomic::{AtomicU8, Ordering};
use trigrid::Dir;

/// Sentinel for "not yet computed" in the decision cache (valid
/// decisions are 0..=6).
const UNCACHED: u8 = 0xFF;

/// The paper's gathering algorithm for seven robots with visibility
/// range 2 (Algorithm 1).
///
/// Decisions are memoised per view in a lock-free cache (the decision
/// function is pure, so robots stay oblivious; the cache is invisible to
/// the model).
pub struct SevenGather {
    opts: rules::RuleOptions,
    name: &'static str,
    use_overrides: bool,
    cache: Vec<AtomicU8>,
}

impl SevenGather {
    fn new(opts: rules::RuleOptions, name: &'static str, use_overrides: bool) -> Self {
        let mut cache = Vec::with_capacity(table::VIEWS);
        cache.resize_with(table::VIEWS, || AtomicU8::new(UNCACHED));
        SevenGather { opts, name, use_overrides, cache }
    }

    /// Algorithm 1 exactly as printed in the paper (including its
    /// misprinted line 25, which can never fire).
    #[must_use]
    pub fn paper() -> Self {
        SevenGather::new(rules::RuleOptions::PAPER, "seven-gather/paper", false)
    }

    /// The completed rule set — printed rules with the documented fixes,
    /// the completion fallback, and the synthesized overrides — which
    /// passes the exhaustive verification over all 3652 connected
    /// initial configurations.
    #[must_use]
    pub fn verified() -> Self {
        SevenGather::new(rules::RuleOptions::VERIFIED, "seven-gather/verified", true)
    }

    /// A custom rule-option combination, without the synthesized
    /// overrides (for ablation experiments).
    #[must_use]
    pub fn with_options(opts: rules::RuleOptions) -> Self {
        SevenGather::new(opts, "seven-gather/custom", false)
    }

    /// The active rule options.
    #[must_use]
    pub fn options(&self) -> rules::RuleOptions {
        self.opts
    }

    fn decide(&self, view: &View) -> Option<Dir> {
        if self.use_overrides {
            if let Ok(i) = overrides::OVERRIDES.binary_search_by_key(&(view.bits() as u32), |o| o.0)
            {
                return rules::decode_decision(overrides::OVERRIDES[i].1);
            }
        }
        rules::compute(view, self.opts)
    }
}

impl Clone for SevenGather {
    fn clone(&self) -> Self {
        SevenGather::new(self.opts, self.name, self.use_overrides)
    }
}

impl std::fmt::Debug for SevenGather {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SevenGather").field("opts", &self.opts).field("name", &self.name).finish()
    }
}

impl Algorithm for SevenGather {
    fn radius(&self) -> u32 {
        2
    }

    fn compute(&self, view: &View) -> Option<Dir> {
        let idx = view.bits() as usize;
        let cached = self.cache[idx].load(Ordering::Relaxed);
        if cached != UNCACHED {
            return rules::decode_decision(cached);
        }
        let decision = self.decide(view);
        self.cache[idx].store(rules::encode_decision(decision), Ordering::Relaxed);
        decision
    }

    fn name(&self) -> &str {
        self.name
    }
}
