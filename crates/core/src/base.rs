//! Base-node determination (paper §IV-A, first half).
//!
//! "The basic idea is that each robot firstly determines the base node
//! that is the rightmost robot node within its visibility range and then
//! it moves toward the base node to achieve gathering."

use robots::View;
use trigrid::Coord;

/// The possible x-elements of labels in a radius-2 view run from −4 to 4.
const MAX_X_ELEMENT: i32 = 4;

/// The outcome of a robot's base-node determination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaseDecision {
    /// A unique robot node holds the strictly largest x-element; it is
    /// the base. The label may be `(0,0)` (the robot itself is the base).
    Base(Coord),
    /// Exception 1: node `(4,0)` is empty but `(3,1)` and `(3,-1)` are
    /// robot nodes; `(4,0)` is adopted as a *virtual* base so that the
    /// symmetric pair does not deadlock.
    VirtualEast,
    /// Exception 2: robot nodes `(1,1)` and `(1,-1)` (jointly) hold the
    /// largest x-element; the robot is expected to move east to `(2,0)`
    /// "so that it becomes a base" (subject to the guards of Algorithm 1
    /// lines 1–3).
    SelfPromotion,
    /// Several robot nodes tie for the largest x-element: the robot
    /// "does not determine the base node at that time and waits at the
    /// current node until the configuration changes".
    Tie,
}

/// Determines the base node from a radius-2 view, per §IV-A.
///
/// The observing robot's own node `(0,0)` counts as a robot node, so the
/// maximum x-element is always ≥ 0.
#[must_use]
pub fn determine(view: &View) -> BaseDecision {
    debug_assert_eq!(view.radius(), 2);

    // Exception 1 (virtual base). The paper states it as an override for
    // the tie between (3,1) and (3,-1): "if node (4,0) is an empty node
    // and nodes (3,1) and (3,-1) are robot nodes, ri determines node
    // (4,0) as the base node".
    if view.is_empty_node(Coord::new(4, 0))
        && view.is_robot(Coord::new(3, 1))
        && view.is_robot(Coord::new(3, -1))
    {
        return BaseDecision::VirtualEast;
    }

    let mut max_x = i32::MIN;
    let mut argmax: Option<Coord> = None;
    let mut tied = false;
    // Own node participates with label (0,0).
    for label in std::iter::once(trigrid::ORIGIN).chain(view.robot_labels()) {
        match label.x_element().cmp(&max_x) {
            std::cmp::Ordering::Greater => {
                max_x = label.x_element();
                argmax = Some(label);
                tied = false;
            }
            std::cmp::Ordering::Equal => tied = true,
            std::cmp::Ordering::Less => {}
        }
    }
    debug_assert!((0..=MAX_X_ELEMENT).contains(&max_x));

    if tied {
        // Exception 2 (self-promotion): "(1,1) and (1,-1) have the
        // largest x-element among all the labels of robot nodes within
        // ri's visibility range" — i.e. the tie is exactly at x = 1.
        if max_x == 1 && view.is_robot(Coord::new(1, 1)) && view.is_robot(Coord::new(1, -1)) {
            return BaseDecision::SelfPromotion;
        }
        return BaseDecision::Tie;
    }
    BaseDecision::Base(argmax.expect("own node always contributes"))
}

/// Encodes a [`BaseDecision`] in one byte for the base table.
#[must_use]
pub fn encode(b: BaseDecision) -> u8 {
    match b {
        BaseDecision::Tie => 0,
        BaseDecision::SelfPromotion => 1,
        BaseDecision::VirtualEast => 2,
        BaseDecision::Base(c) => {
            let idx = BASE_LABELS.iter().position(|&l| l == (c.x, c.y)).expect("valid base label");
            3 + idx as u8
        }
    }
}

/// Inverse of [`encode`].
#[must_use]
pub fn decode(b: u8) -> BaseDecision {
    match b {
        0 => BaseDecision::Tie,
        1 => BaseDecision::SelfPromotion,
        2 => BaseDecision::VirtualEast,
        _ => {
            let (x, y) = BASE_LABELS[(b - 3) as usize];
            BaseDecision::Base(Coord::new(x, y))
        }
    }
}

/// The nine labels a unique base can have (x-element 0..=4).
const BASE_LABELS: [(i32, i32); 9] =
    [(0, 0), (1, 1), (1, -1), (2, 0), (2, 2), (2, -2), (3, 1), (3, -1), (4, 0)];

/// The base decision for every possible radius-2 view, precomputed once
/// (used by the completion rules to reason about partially visible
/// competitors).
#[must_use]
pub fn base_table() -> &'static [u8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<u8>> = OnceLock::new();
    TABLE
        .get_or_init(|| {
            (0u64..(1 << 18)).map(|bits| encode(determine(&View::from_bits(2, bits)))).collect()
        })
        .as_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robots::{Configuration, View};
    use trigrid::{Coord, ORIGIN};

    fn view_of(cells: &[(i32, i32)]) -> View {
        let mut nodes = vec![ORIGIN];
        nodes.extend(cells.iter().map(|&(x, y)| Coord::new(x, y)));
        let cfg = Configuration::new(nodes);
        View::observe(&cfg, ORIGIN, 2)
    }

    #[test]
    fn unique_max_is_base() {
        // Fig. 49 (a): a robot node strictly east of everything is the base.
        let v = view_of(&[(2, 0), (4, 0), (-1, 1)]);
        assert_eq!(determine(&v), BaseDecision::Base(Coord::new(4, 0)));
    }

    #[test]
    fn self_can_be_base() {
        let v = view_of(&[(-2, 0), (-1, 1)]);
        assert_eq!(determine(&v), BaseDecision::Base(ORIGIN));
    }

    #[test]
    fn tie_waits() {
        // Fig. 49 (b): two robot nodes with equal largest x-element.
        let v = view_of(&[(2, 0), (2, 2)]);
        assert_eq!(determine(&v), BaseDecision::Tie);
    }

    #[test]
    fn tie_at_zero_with_vertical_neighbours() {
        let v = view_of(&[(0, 2)]);
        assert_eq!(determine(&v), BaseDecision::Tie);
    }

    #[test]
    fn virtual_east_exception() {
        // Fig. 49 (c)-style: (3,1) and (3,-1) robots, (4,0) empty.
        let v = view_of(&[(3, 1), (3, -1), (1, 1)]);
        assert_eq!(determine(&v), BaseDecision::VirtualEast);
    }

    #[test]
    fn no_virtual_east_when_4_0_is_occupied() {
        let v = view_of(&[(3, 1), (3, -1), (4, 0)]);
        assert_eq!(determine(&v), BaseDecision::Base(Coord::new(4, 0)));
    }

    #[test]
    fn self_promotion_exception() {
        // (1,1) and (1,-1) are the rightmost robots in view.
        let v = view_of(&[(1, 1), (1, -1), (-2, 0)]);
        assert_eq!(determine(&v), BaseDecision::SelfPromotion);
    }

    #[test]
    fn no_self_promotion_when_x1_not_the_max() {
        let v = view_of(&[(1, 1), (1, -1), (2, 0)]);
        assert_eq!(determine(&v), BaseDecision::Base(Coord::new(2, 0)));
    }

    #[test]
    fn tie_at_one_without_both_wing_robots_is_plain_tie() {
        // x-element 1 tie can only be {(1,1),(1,-1)}; sanity: a tie at
        // x = 2 is not self-promotion.
        let v = view_of(&[(2, 2), (2, -2)]);
        assert_eq!(determine(&v), BaseDecision::Tie);
    }

    #[test]
    fn lone_robot_is_its_own_base() {
        let v = view_of(&[]);
        assert_eq!(determine(&v), BaseDecision::Base(ORIGIN));
    }
}
