//! Property coverage for the metrics core: histogram record/merge
//! associativity and snapshot serde round-trips. These are the
//! guarantees the sweep layer leans on when it folds per-shard
//! snapshots into a cell summary in nondeterministic completion order.

use proptest::prelude::*;
use telemetry::{Histogram, Snapshot};

/// Record a batch of samples into a fresh histogram, read it out under
/// a fixed name.
fn hist_of(samples: &[u64], name: &str) -> telemetry::HistogramEntry {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.read(name)
}

/// Build a snapshot with a few counters and one histogram from raw parts.
fn snapshot_of(counters: &[(u8, u64)], samples: &[u64]) -> Snapshot {
    let mut s = Snapshot::new();
    for &(name_id, v) in counters {
        s.add_counter(&format!("c{}", name_id % 4), v % (1 << 40));
    }
    s.add_histogram(hist_of(samples, "h"));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging (A + B) + C and A + (B + C) must agree, and both must
    /// equal the histogram built from all samples at once — merge is a
    /// faithful, associative fold.
    fn histogram_merge_is_associative(
        xs in proptest::collection::vec(0u64..1 << 48, 5),
        ys in proptest::collection::vec(0u64..1 << 48, 4),
        zs in proptest::collection::vec(0u64..1 << 48, 3),
    ) {
        let (a, b, c) = (hist_of(&xs, "h"), hist_of(&ys, "h"), hist_of(&zs, "h"));

        let mut left = Snapshot::new();
        left.add_histogram(a.clone());
        left.add_histogram(b.clone());
        let mut left_outer = Snapshot::new();
        left_outer.merge(&left);
        let mut c_snap = Snapshot::new();
        c_snap.add_histogram(c.clone());
        left_outer.merge(&c_snap);

        let mut right_inner = Snapshot::new();
        right_inner.add_histogram(b);
        right_inner.add_histogram(c);
        let mut right = Snapshot::new();
        right.add_histogram(a);
        right.merge(&right_inner);

        prop_assert_eq!(&left_outer, &right);

        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let mut direct = Snapshot::new();
        direct.add_histogram(hist_of(&all, "h"));
        prop_assert_eq!(&left_outer, &direct);
    }

    /// Counter merge is commutative and order-independent.
    fn counter_merge_is_commutative(
        a in proptest::collection::vec((0u8..8, 0u64..1 << 40), 6),
        b in proptest::collection::vec((0u8..8, 0u64..1 << 40), 6),
    ) {
        let build = |pairs: &[(u8, u64)]| {
            let mut s = Snapshot::new();
            for &(id, v) in pairs {
                s.add_counter(&format!("c{id}"), v);
            }
            s
        };
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(ab, ba);
    }

    /// A snapshot survives a JSON round-trip byte-exactly (u64 readings
    /// included — the serde shim keeps integers lossless).
    fn snapshot_roundtrips_through_json(
        counters in proptest::collection::vec((0u8..4, 0u64..u64::MAX / 2), 5),
        samples in proptest::collection::vec(0u64..1 << 52, 6),
    ) {
        let snap = snapshot_of(&counters, &samples);
        let text = serde_json::to_string(&snap).expect("serializes");
        let back: Snapshot = serde_json::from_str(&text).expect("parses");
        prop_assert_eq!(snap, back);
    }
}
