//! In-tree, dependency-free metrics core for the checker stack.
//!
//! The exploration layers (`robots::explore`, the work-stealing pool, the
//! sweep driver) decide tens of thousands of symmetry classes per cell; this
//! crate gives them a way to explain *where the time and state growth went*
//! without ever perturbing the byte-pinned verdict digests. Everything here
//! is strictly out-of-band:
//!
//! * **Primitives are lock-free.** [`Counter`], [`Gauge`] and [`Histogram`]
//!   are relaxed atomics — safe to bump from every worker of the
//!   work-stealing pool without serializing them. Hot loops are expected to
//!   tally into plain `u64` locals and [`Counter::add`] once per batch
//!   (per-worker sharding), so the instrumented path costs one uncontended
//!   atomic add per worker per phase, not per event.
//! * **Timers are gated.** [`Stopwatch`] consults the process-wide
//!   [`enabled`] flag before touching the clock, so with telemetry disabled
//!   a phase timer is a single relaxed load and two untaken branches.
//! * **Snapshots are data.** [`Snapshot`] is a name-sorted list of counter
//!   and histogram readings with associative, commutative [`Snapshot::merge`]
//!   — shard snapshots merge into cell snapshots in any order with the same
//!   result — and it serializes through the vendored serde shim so sweeps
//!   can persist a `metrics` block next to (never inside) the digest stream.
//!
//! Nothing in this crate feeds back into control flow: readings are only
//! ever written, merged, and reported.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b >= 1`
/// holds values in `[2^(b-1), 2^b)`, up to bucket 64 for `u64::MAX`.
const BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable the *timing* side of telemetry.
///
/// Counters and histograms always record (an uncontended relaxed add is
/// cheaper than a well-predicted branch would make it worth guarding);
/// the flag exists so clock reads — the only measurably costly part —
/// can be skipped wholesale. Disabling telemetry can never change any
/// checker verdict or digest: readings are write-only from the checkers'
/// point of view.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether phase timers currently read the clock. See [`set_enabled`].
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` — the per-worker flush point for locally tallied batches.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current reading.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-water-mark gauge: `record` keeps the maximum ever seen.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Fold `v` into the running maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current maximum.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of `u64` samples (relaxed atomics throughout).
///
/// Bucket 0 counts exact zeros; bucket `b >= 1` counts samples in
/// `[2^(b-1), 2^b)`. Alongside the buckets it tracks the sample count,
/// the exact sum (for means), and the maximum (for peaks such as the
/// widest BFS frontier).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample: 0 for 0, else `floor(log2 v) + 1`.
    #[inline]
    fn index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Read the histogram out as snapshot data (nonzero buckets only).
    pub fn read(&self, name: &str) -> HistogramEntry {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(log2, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some(BucketEntry { log2: log2 as u64, count })
            })
            .collect();
        HistogramEntry {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A phase timer that only touches the clock while telemetry is
/// [`enabled`]; finish it with [`Stopwatch::flush`] to bank the elapsed
/// nanoseconds into a [`Counter`].
#[derive(Debug)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Start timing now (a no-op recorder when telemetry is disabled).
    #[inline]
    pub fn started() -> Self {
        Stopwatch { start: enabled().then(Instant::now) }
    }

    /// Nanoseconds elapsed so far (0 when started disabled), saturating
    /// at `u64::MAX` far beyond any realistic phase duration.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Bank the elapsed nanoseconds into `into` and consume the watch.
    #[inline]
    pub fn flush(self, into: &Counter) {
        if self.start.is_some() {
            into.add(self.elapsed_ns());
        }
    }
}

/// One named counter reading inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Dotted metric name, e.g. `explore.phase_a_ns` or `memo.info.hit`.
    pub name: String,
    /// The reading.
    pub value: u64,
}

/// One nonzero log2 bucket of a [`HistogramEntry`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketEntry {
    /// Bucket index: 0 holds exact zeros, `b >= 1` holds `[2^(b-1), 2^b)`.
    pub log2: u64,
    /// Samples that fell in this bucket.
    pub count: u64,
}

/// One named histogram reading inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Dotted metric name, e.g. `explore.frontier_width`.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Nonzero buckets, ascending by `log2`.
    pub buckets: Vec<BucketEntry>,
}

impl HistogramEntry {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn merge_from(&mut self, other: &HistogramEntry) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for b in &other.buckets {
            match self.buckets.binary_search_by_key(&b.log2, |e| e.log2) {
                Ok(i) => self.buckets[i].count += b.count,
                Err(i) => self.buckets.insert(i, b.clone()),
            }
        }
    }
}

/// A point-in-time, name-sorted reading of a set of counters and
/// histograms. Snapshots are plain data: they clone, compare, merge
/// associatively/commutatively, and round-trip through the serde shim.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter readings, ascending by name.
    pub counters: Vec<CounterEntry>,
    /// Histogram readings, ascending by name.
    pub histograms: Vec<HistogramEntry>,
    /// High-water-mark gauge readings, ascending by name. Defaulted on
    /// deserialization so metrics blocks written before gauges existed
    /// still parse.
    #[serde(default)]
    pub gauges: Vec<CounterEntry>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Add `value` to the counter `name` (creating it if absent).
    /// Zero-valued adds still create the entry, so a snapshot always
    /// names every metric its producer tracks.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        match self.counters.binary_search_by(|e| e.name.as_str().cmp(name)) {
            Ok(i) => self.counters[i].value += value,
            Err(i) => self.counters.insert(i, CounterEntry { name: name.to_string(), value }),
        }
    }

    /// Fold a histogram reading in (merging with any same-named entry).
    pub fn add_histogram(&mut self, entry: HistogramEntry) {
        match self.histograms.binary_search_by(|e| e.name.cmp(&entry.name)) {
            Ok(i) => self.histograms[i].merge_from(&entry),
            Err(i) => self.histograms.insert(i, entry),
        }
    }

    /// Fold `value` into the gauge `name` as a running maximum
    /// (creating it if absent). Zero-valued records still create the
    /// entry, mirroring [`Snapshot::add_counter`].
    pub fn add_gauge(&mut self, name: &str, value: u64) {
        match self.gauges.binary_search_by(|e| e.name.as_str().cmp(name)) {
            Ok(i) => self.gauges[i].value = self.gauges[i].value.max(value),
            Err(i) => self.gauges.insert(i, CounterEntry { name: name.to_string(), value }),
        }
    }

    /// Reading of gauge `name`, 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .map(|i| self.gauges[i].value)
            .unwrap_or(0)
    }

    /// Reading of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .map(|i| self.counters[i].value)
            .unwrap_or(0)
    }

    /// Histogram entry `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramEntry> {
        self.histograms
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Hit rate `hits / (hits + misses)` over two counters (0.0 when
    /// neither fired) — the standard memo-efficiency readout.
    pub fn rate(&self, hits: &str, misses: &str) -> f64 {
        let h = self.counter(hits);
        let m = self.counter(misses);
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Merge another snapshot in: counters add, histograms merge
    /// bucket-wise, gauges take the maximum. Associative and
    /// commutative, so shard snapshots can be folded into a cell
    /// snapshot in any order.
    pub fn merge(&mut self, other: &Snapshot) {
        for c in &other.counters {
            self.add_counter(&c.name, c.value);
        }
        for h in &other.histograms {
            self.add_histogram(h.clone());
        }
        for g in &other.gauges {
            self.add_gauge(&g.name, g.value);
        }
    }

    /// True when no entry has a nonzero reading.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|c| c.value == 0)
            && self.histograms.iter().all(|h| h.count == 0)
            && self.gauges.iter().all(|g| g.value == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_by_log2() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let e = h.read("t");
        assert_eq!(e.count, 7);
        assert_eq!(e.sum, 2057);
        assert_eq!(e.max, 1024);
        let bucket = |log2| e.buckets.iter().find(|b| b.log2 == log2).map(|b| b.count);
        assert_eq!(bucket(0), Some(1)); // 0
        assert_eq!(bucket(1), Some(1)); // 1
        assert_eq!(bucket(2), Some(2)); // 2, 3
        assert_eq!(bucket(3), Some(1)); // 4
        assert_eq!(bucket(10), Some(1)); // 1023
        assert_eq!(bucket(11), Some(1)); // 1024
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let mut a = Snapshot::new();
        a.add_counter("x", 2);
        let h = Histogram::new();
        h.record(5);
        a.add_histogram(h.read("w"));

        let mut b = Snapshot::new();
        b.add_counter("x", 3);
        b.add_counter("y", 1);
        let h2 = Histogram::new();
        h2.record(5);
        h2.record(9);
        b.add_histogram(h2.read("w"));

        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let w = a.histogram("w").unwrap();
        assert_eq!(w.count, 3);
        assert_eq!(w.sum, 19);
        assert_eq!(w.max, 9);
    }

    #[test]
    fn disabled_stopwatch_reads_zero() {
        set_enabled(false);
        let w = Stopwatch::started();
        let c = Counter::new();
        w.flush(&c);
        assert_eq!(c.get(), 0);
        set_enabled(true);
        let w = Stopwatch::started();
        let c2 = Counter::new();
        w.flush(&c2);
        // Enabled watches bank a real (possibly zero-rounded) reading by
        // taking the flush path; just assert the flag round-trips.
        assert!(enabled());
        let _ = c2.get();
    }

    #[test]
    fn snapshot_gauges_merge_by_maximum() {
        let mut a = Snapshot::new();
        a.add_gauge("peak", 100);
        a.add_gauge("peak", 40);
        assert_eq!(a.gauge("peak"), 100, "same-snapshot records keep the max");
        let mut b = Snapshot::new();
        b.add_gauge("peak", 250);
        b.add_gauge("other", 7);
        a.merge(&b);
        assert_eq!(a.gauge("peak"), 250, "merge takes the max, not the sum");
        assert_eq!(a.gauge("other"), 7);
        assert_eq!(a.gauge("absent"), 0);
        // Old metrics blocks have no gauges field: they must still parse.
        let legacy: Snapshot =
            serde_json::from_str(r#"{"counters":[],"histograms":[]}"#).expect("legacy parses");
        assert!(legacy.gauges.is_empty());
    }

    #[test]
    fn zero_adds_still_name_the_metric() {
        let mut s = Snapshot::new();
        s.add_counter("never_fired", 0);
        assert_eq!(s.counter("never_fired"), 0);
        assert!(s.counters.iter().any(|c| c.name == "never_fired"));
        assert!(s.is_empty());
    }
}
