//! Integration contracts for the parallel executors: input order is
//! preserved under every thread count, the early-exit search actually
//! exits early, and the work-stealing executor agrees with the chunked
//! one on skewed workloads.

use parallel::{par_find_any, par_fold, par_map, stealing::par_map_stealing};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A mildly expensive pure function so multi-thread runs really
/// interleave.
fn scramble(x: u64) -> u64 {
    let mut acc = x;
    for _ in 0..32 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
    }
    acc
}

#[test]
fn par_map_preserves_order_across_thread_counts() {
    let items: Vec<u64> = (0..4096).collect();
    let expected: Vec<u64> = items.iter().map(|&x| scramble(x)).collect();
    for threads in [1, 2, 0] {
        let out = par_map(&items, threads, |&x| scramble(x));
        assert_eq!(out, expected, "threads={threads}");
    }
}

#[test]
fn par_fold_is_scheduling_independent() {
    let items: Vec<u64> = (1..=5000).collect();
    let expected: u64 = items.iter().map(|&x| x * 3 + 1).sum();
    for threads in [1, 2, 0] {
        let total = par_fold(&items, threads, || 0u64, |acc, &x| *acc += x * 3 + 1, |a, b| a + b);
        assert_eq!(total, expected, "threads={threads}");
    }
}

#[test]
fn par_find_any_early_exits_sequentially() {
    // The single-threaded path is deterministic: the search must stop
    // at the hit, visiting exactly the items before and including it.
    let items: Vec<u64> = (0..100_000).collect();
    let visited = AtomicUsize::new(0);
    let hit = par_find_any(&items, 1, |&x| {
        visited.fetch_add(1, Ordering::Relaxed);
        (x == 500).then_some(x)
    });
    assert_eq!(hit, Some((500, 500)));
    assert_eq!(visited.load(Ordering::Relaxed), 501);
}

#[test]
fn par_find_any_early_exits_in_parallel() {
    // Worker interleaving is nondeterministic, but the finder breaks
    // out of its chunk at the hit, so the items after the hit in that
    // chunk are never visited — visiting all items would disprove the
    // early exit. (In practice the stop flag prunes far more.)
    let items: Vec<u64> = (0..100_000).collect();
    let visited = AtomicUsize::new(0);
    let hit = par_find_any(&items, 4, |&x| {
        visited.fetch_add(1, Ordering::Relaxed);
        (x == 500).then_some(x)
    });
    assert_eq!(hit, Some((500, 500)));
    let count = visited.load(Ordering::Relaxed);
    assert!(count < items.len(), "all {count} items visited: no early exit");
}

#[test]
fn par_find_any_exhausts_when_absent() {
    let items: Vec<u64> = (0..10_000).collect();
    let visited = AtomicUsize::new(0);
    let hit = par_find_any(&items, 4, |&_x| -> Option<()> {
        visited.fetch_add(1, Ordering::Relaxed);
        None
    });
    assert_eq!(hit, None);
    assert_eq!(visited.load(Ordering::Relaxed), items.len());
}

#[test]
fn stealing_matches_chunked_on_skewed_workloads() {
    // The first few items are ~1000x more expensive than the rest —
    // the shape of a sweep where some classes run to the step limit.
    let items: Vec<u64> = (0..512).collect();
    let work = |&x: &u64| {
        let iters = if x < 4 { 200_000 } else { 200 };
        let mut acc = x;
        for _ in 0..iters {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        (x, acc)
    };
    for threads in [1, 2, 0] {
        let chunked = par_map(&items, threads, work);
        let stolen = par_map_stealing(&items, threads, work);
        assert_eq!(chunked, stolen, "threads={threads}");
    }
}

#[test]
fn executors_agree_on_empty_and_single_inputs() {
    let empty: Vec<u64> = Vec::new();
    assert!(par_map(&empty, 0, |&x| x).is_empty());
    assert!(par_map_stealing(&empty, 0, |&x| x).is_empty());
    assert_eq!(par_map(&[9u64], 0, |&x| x + 1), vec![10]);
    assert_eq!(par_map_stealing(&[9u64], 0, |&x| x + 1), vec![10]);
}
