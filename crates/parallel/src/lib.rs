//! # parallel — small parallel executors for embarrassingly parallel sweeps
//!
//! The paper's evaluation is an exhaustive sweep over 3652 independent
//! simulations — a textbook embarrassingly parallel workload. Rather than
//! pulling in a full data-parallelism framework, this crate provides two
//! small, auditable executors built on `std::thread::scope`,
//! `crossbeam` and `parking_lot` (the crates allowed for this
//! reproduction):
//!
//! * [`par_map`] / [`par_for_each`] / [`par_fold`] — chunked
//!   self-scheduling: workers repeatedly claim fixed-size index chunks
//!   from a shared atomic counter. Minimal overhead, good for uniform
//!   work items.
//! * [`stealing::par_map_stealing`] — a crossbeam-deque work-stealing
//!   executor, better when item costs are highly skewed (e.g. livelock
//!   candidates that run to the step limit). The `parallel_scaling`
//!   bench compares the two.
//! * [`par_find_any`] — early-exit parallel search (used by the
//!   impossibility engine to hunt counterexamples).
//!
//! All entry points take a `threads` argument; `0` means "use all
//! available cores". Results preserve input order regardless of
//! scheduling. Worker panics propagate to the caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub mod stealing;

/// Chunk size for the self-scheduling executors. Large enough to keep
/// counter contention negligible, small enough to balance 3652-item
/// sweeps across a handful of cores.
pub const CHUNK: usize = 16;

/// Resolves a `threads` argument: `0` becomes the number of available
/// cores (at least 1).
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item in parallel, returning results in input
/// order.
///
/// Workers claim `CHUNK`-sized index ranges from an atomic counter.
/// With `threads == 1` (or a single item) the call degrades to a
/// sequential loop with no thread spawns.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + CHUNK).min(items.len());
                    let chunk: Vec<R> = items[start..end].iter().map(&f).collect();
                    local.push((start, chunk));
                }
                if !local.is_empty() {
                    collected.lock().append(&mut local);
                }
            });
        }
    });
    let mut parts = collected.into_inner();
    parts.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(items.len());
    for (_, mut chunk) in parts {
        out.append(&mut chunk);
    }
    debug_assert_eq!(out.len(), items.len());
    out
}

/// Runs `f` on every item in parallel, discarding results.
pub fn par_for_each<T, F>(items: &[T], threads: usize, f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        items.iter().for_each(f);
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + CHUNK).min(items.len());
                items[start..end].iter().for_each(&f);
            });
        }
    });
}

/// Parallel fold: maps every item with `f` into a per-worker accumulator
/// created by `init`, then reduces the accumulators with `reduce`.
///
/// `reduce` must be associative and `init` a neutral element for the
/// result to be independent of scheduling.
pub fn par_fold<T, A, F, I, Rd>(items: &[T], threads: usize, init: I, f: F, reduce: Rd) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &T) + Sync,
    Rd: Fn(A, A) -> A,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        let mut acc = init();
        items.iter().for_each(|t| f(&mut acc, t));
        return acc;
    }
    let next = AtomicUsize::new(0);
    let accs: Mutex<Vec<A>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut acc = init();
                loop {
                    let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + CHUNK).min(items.len());
                    items[start..end].iter().for_each(|t| f(&mut acc, t));
                }
                accs.lock().push(acc);
            });
        }
    });
    accs.into_inner().into_iter().fold(init(), reduce)
}

/// Searches the items in parallel for one where `f` returns `Some`,
/// stopping all workers as soon as any hit is found. Returns the index
/// and value of *a* hit (the lowest-indexed hit found before shutdown;
/// which hit wins may vary between runs when several exist).
pub fn par_find_any<T, R, F>(items: &[T], threads: usize, f: F) -> Option<(usize, R)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    par_find_any_chunked(items, threads, CHUNK, f)
}

/// [`par_find_any`] with an explicit claim granularity. Use
/// `chunk == 1` when per-item costs are wildly skewed (e.g. exhaustive
/// subtree searches) so no worker hoards a batch of heavy items.
pub fn par_find_any_chunked<T, R, F>(
    items: &[T],
    threads: usize,
    chunk: usize,
    f: F,
) -> Option<(usize, R)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    let chunk = chunk.max(1);
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().find_map(|(i, t)| f(t).map(|r| (i, r)));
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let best: Mutex<Option<(usize, R)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                for (i, t) in items[start..end].iter().enumerate() {
                    if let Some(r) = f(t) {
                        let idx = start + i;
                        let mut guard = best.lock();
                        if guard.as_ref().is_none_or(|(j, _)| idx < *j) {
                            *guard = Some((idx, r));
                        }
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    best.into_inner()
}

/// Deterministic early-exit search: returns the **lowest-indexed** item
/// for which `f` returns `Some`, independent of thread count and
/// scheduling.
///
/// Unlike [`par_find_any`], which returns whichever hit was found
/// before shutdown, this keeps scanning every index below the best hit
/// so far, and only prunes indices above it. Use it when the result
/// feeds deterministic records (e.g. the sweep pipeline's fail-fast
/// counterexample hunt).
pub fn par_find_min<T, R, F>(items: &[T], threads: usize, f: F) -> Option<(usize, R)>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().find_map(|(i, t)| f(t).map(|r| (i, r)));
    }
    let next = AtomicUsize::new(0);
    // Lowest hit index so far; items above it need not be scanned.
    let bound = AtomicUsize::new(usize::MAX);
    let best: Mutex<Option<(usize, R)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() || i > bound.load(Ordering::Relaxed) {
                    // Claims are handed out in ascending order, so every
                    // later claim would be above the bound too.
                    break;
                }
                if let Some(r) = f(&items[i]) {
                    bound.fetch_min(i, Ordering::Relaxed);
                    let mut guard = best.lock();
                    if guard.as_ref().is_none_or(|(j, _)| i < *j) {
                        *guard = Some((i, r));
                    }
                }
            });
        }
    });
    best.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [0, 1, 2, 3, 8] {
            let out = par_map(&items, threads, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty_and_tiny() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_for_each_visits_everything_once() {
        let items: Vec<usize> = (0..500).collect();
        let visits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
        par_for_each(&items, 4, |&i| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn par_fold_sums() {
        let items: Vec<u64> = (1..=10_000).collect();
        let total = par_fold(&items, 0, || 0u64, |acc, &x| *acc += x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn par_fold_single_thread_matches_sequential() {
        let items: Vec<u64> = (0..97).collect();
        let p = par_fold(&items, 1, || 0u64, |acc, &x| *acc += 2 * x + 1, |a, b| a + b);
        let s: u64 = items.iter().map(|&x| 2 * x + 1).sum();
        assert_eq!(p, s);
    }

    #[test]
    fn par_find_any_finds_lowest_when_unique() {
        let items: Vec<u64> = (0..10_000).collect();
        let hit = par_find_any(&items, 4, |&x| (x == 7777).then_some(x * 2));
        assert_eq!(hit, Some((7777, 15554)));
    }

    #[test]
    fn par_find_any_none_when_absent() {
        let items: Vec<u64> = (0..1000).collect();
        assert_eq!(par_find_any(&items, 4, |&x| (x > 5000).then_some(())), None);
    }

    #[test]
    fn par_find_any_sequential_finds_first() {
        let items = [1u32, 2, 3, 4, 5, 6];
        assert_eq!(par_find_any(&items, 1, |&x| (x % 2 == 0).then_some(x)), Some((1, 2)));
    }

    #[test]
    fn resolve_threads_contract() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn par_find_min_always_returns_the_lowest_hit() {
        // Many hits: the deterministic variant must return the lowest
        // index regardless of thread count, every time.
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [0, 1, 2, 3, 8] {
            for _ in 0..5 {
                let hit = par_find_min(&items, threads, |&x| (x % 1000 == 137).then_some(x));
                assert_eq!(hit, Some((137, 137)), "threads={threads}");
            }
        }
    }

    #[test]
    fn par_find_min_none_when_absent() {
        let items: Vec<u64> = (0..2000).collect();
        assert_eq!(par_find_min(&items, 4, |&x| (x > 5000).then_some(())), None);
        let empty: Vec<u64> = vec![];
        assert_eq!(par_find_min(&empty, 4, |&x| Some(x)), None);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map(&items, 4, |&x| {
            assert!(x != 50, "boom");
            x
        });
    }
}
