//! Work-stealing executor on `crossbeam::deque`.
//!
//! Each worker owns an LIFO deque preloaded with an even share of the
//! item indices; when its own deque runs dry it steals batches from the
//! other workers. This beats chunked self-scheduling when the per-item
//! cost is heavily skewed (e.g. simulations that run to the step limit
//! next to simulations that finish in two rounds); the
//! `parallel_scaling` bench measures the difference.

use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;
use telemetry::Counter;

/// Process-lifetime totals for the stealing executor. Workers tally
/// into plain locals and flush here once when they retire, so the hot
/// pop/steal loop never touches shared cache lines (per-worker
/// sharding — see DESIGN.md §16).
static POOL_TASKS: Counter = Counter::new();
static POOL_STEAL_BATCHES: Counter = Counter::new();
static POOL_STEAL_RETRIES: Counter = Counter::new();
static POOL_IDLE_PROBES: Counter = Counter::new();
static POOL_SERIAL_CALLS: Counter = Counter::new();

/// A point-in-time reading of the executor totals; subtract two
/// readings (["delta_since"](PoolStats::delta_since)) to attribute pool
/// activity to one sweep shard or one exploration phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Items executed inside stealing workers.
    pub tasks: u64,
    /// Successful `steal_batch` transfers between workers.
    pub steal_batches: u64,
    /// `Steal::Retry` collisions while stealing.
    pub steal_retries: u64,
    /// Probes of a peer deque that found it empty.
    pub idle_probes: u64,
    /// Calls that fell back to the serial path (`threads <= 1`).
    pub serial_calls: u64,
}

impl PoolStats {
    /// Component-wise difference against an earlier reading
    /// (saturating, so a stale `earlier` cannot underflow).
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            steal_batches: self.steal_batches.saturating_sub(earlier.steal_batches),
            steal_retries: self.steal_retries.saturating_sub(earlier.steal_retries),
            idle_probes: self.idle_probes.saturating_sub(earlier.idle_probes),
            serial_calls: self.serial_calls.saturating_sub(earlier.serial_calls),
        }
    }
}

/// Current process-lifetime executor totals.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        tasks: POOL_TASKS.get(),
        steal_batches: POOL_STEAL_BATCHES.get(),
        steal_retries: POOL_STEAL_RETRIES.get(),
        idle_probes: POOL_IDLE_PROBES.get(),
        serial_calls: POOL_SERIAL_CALLS.get(),
    }
}

/// Like [`crate::par_map`], but with work stealing instead of chunked
/// self-scheduling. Results are returned in input order.
///
/// The pool is unwind-safe: a panic inside `f` does not tear down the
/// scope mid-drain. The panicking item's worker catches the payload,
/// every worker finishes the remaining items, and the *first* payload
/// is re-raised on the calling thread after the pool drains — so a
/// caller that isolates panics per item (e.g. the sweep's per-class
/// `catch_unwind`) never loses the work of innocent items to a
/// poisoned sibling.
pub fn par_map_stealing<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = crate::resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        POOL_SERIAL_CALLS.inc();
        POOL_TASKS.add(items.len() as u64);
        return items.iter().map(f).collect();
    }

    // Preload each worker's deque with a contiguous share of indices.
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    for (i, _) in items.iter().enumerate() {
        workers[i % threads].push(i);
    }

    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    // First panic payload caught in any worker; re-raised after the
    // drain so the caller sees the same panic it would have seen
    // serially, just without losing the rest of the batch.
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for (me, worker) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let collected = &collected;
            let panic_payload = &panic_payload;
            let f = &f;
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                // Worker-local tallies, flushed to the pool counters once
                // at retirement so the hot loop stays contention-free.
                let (mut batches, mut retries, mut probes) = (0u64, 0u64, 0u64);
                'work: loop {
                    // Drain our own deque first.
                    while let Some(i) = worker.pop() {
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || f(&items[i]),
                        )) {
                            Ok(r) => local.push((i, r)),
                            Err(payload) => {
                                let mut slot = panic_payload.lock();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                            }
                        }
                    }
                    // Then try to steal a batch from any other worker.
                    for (other, stealer) in stealers.iter().enumerate() {
                        if other == me {
                            continue;
                        }
                        loop {
                            match stealer.steal_batch(&worker) {
                                Steal::Success(()) => {
                                    batches += 1;
                                    continue 'work;
                                }
                                Steal::Retry => {
                                    retries += 1;
                                    continue;
                                }
                                Steal::Empty => {
                                    probes += 1;
                                    break;
                                }
                            }
                        }
                    }
                    break; // everyone is empty
                }
                POOL_TASKS.add(local.len() as u64);
                POOL_STEAL_BATCHES.add(batches);
                POOL_STEAL_RETRIES.add(retries);
                POOL_IDLE_PROBES.add(probes);
                if !local.is_empty() {
                    collected.lock().append(&mut local);
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner() {
        std::panic::resume_unwind(payload);
    }
    let mut pairs = collected.into_inner();
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..2000).collect();
        for threads in [0, 1, 2, 4, 7] {
            let out = par_map_stealing(&items, threads, |&x| x.wrapping_mul(2654435761));
            let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn handles_skewed_workloads() {
        // Items at the front are 1000x more expensive; stealing must still
        // cover everything exactly once and keep order.
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_stealing(&items, 4, |&x| {
            let iters = if x < 8 { 100_000 } else { 100 };
            let mut acc = x;
            for _ in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_stealing(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_stealing(&items, 16, |&x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn panic_drains_remaining_items_then_reraises() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let items: Vec<u64> = (0..200).collect();
        let started = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_stealing(&items, 4, |&x| {
                started.fetch_add(1, Ordering::Relaxed);
                assert!(x != 13, "poisoned item");
                x
            })
        }));
        let payload = result.expect_err("the caught panic must re-raise on the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("poisoned item"), "payload was: {msg}");
        // Every item ran despite the mid-drain panic — the pool kept
        // draining instead of tearing down the scope.
        assert_eq!(started.load(Ordering::Relaxed), items.len() as u64);
    }
}
