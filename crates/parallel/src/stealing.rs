//! Work-stealing executor on `crossbeam::deque`.
//!
//! Each worker owns an LIFO deque preloaded with an even share of the
//! item indices; when its own deque runs dry it steals batches from the
//! other workers. This beats chunked self-scheduling when the per-item
//! cost is heavily skewed (e.g. simulations that run to the step limit
//! next to simulations that finish in two rounds); the
//! `parallel_scaling` bench measures the difference.

use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;

/// Like [`crate::par_map`], but with work stealing instead of chunked
/// self-scheduling. Results are returned in input order.
pub fn par_map_stealing<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = crate::resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    // Preload each worker's deque with a contiguous share of indices.
    let workers: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();
    for (i, _) in items.iter().enumerate() {
        workers[i % threads].push(i);
    }

    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for (me, worker) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let collected = &collected;
            let f = &f;
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                'work: loop {
                    // Drain our own deque first.
                    while let Some(i) = worker.pop() {
                        local.push((i, f(&items[i])));
                    }
                    // Then try to steal a batch from any other worker.
                    for (other, stealer) in stealers.iter().enumerate() {
                        if other == me {
                            continue;
                        }
                        loop {
                            match stealer.steal_batch(&worker) {
                                Steal::Success(()) => continue 'work,
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                    }
                    break; // everyone is empty
                }
                if !local.is_empty() {
                    collected.lock().append(&mut local);
                }
            });
        }
    });

    let mut pairs = collected.into_inner();
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..2000).collect();
        for threads in [0, 1, 2, 4, 7] {
            let out = par_map_stealing(&items, threads, |&x| x.wrapping_mul(2654435761));
            let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn handles_skewed_workloads() {
        // Items at the front are 1000x more expensive; stealing must still
        // cover everything exactly once and keep order.
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_stealing(&items, 4, |&x| {
            let iters = if x < 8 { 100_000 } else { 100 };
            let mut acc = x;
            for _ in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_stealing(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_stealing(&items, 16, |&x| x * 10), vec![10, 20, 30]);
    }
}
