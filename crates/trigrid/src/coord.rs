//! Lattice nodes in doubled coordinates.

use crate::Dir;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A node of the infinite triangular grid, in doubled coordinates.
///
/// Invariant: `x + y` is even. [`Coord::new`] panics on violation;
/// [`Coord::try_new`] returns `None` instead.
///
/// The ordering (derived) is lexicographic on `(x, y)`; it is used for
/// canonical forms of configurations, where any fixed total order works.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Doubled x component (parallel to the paper's x-axis).
    pub x: i32,
    /// y component (number of rows above the x-axis).
    pub y: i32,
}

impl Coord {
    /// Creates a coordinate, checking the parity invariant.
    ///
    /// # Panics
    /// Panics if `x + y` is odd (not a lattice node).
    #[inline]
    #[must_use]
    pub fn new(x: i32, y: i32) -> Self {
        assert!((x + y) % 2 == 0, "({x},{y}) is not a triangular-lattice node: x+y must be even");
        Self { x, y }
    }

    /// Creates a coordinate, returning `None` if `x + y` is odd.
    #[inline]
    #[must_use]
    pub fn try_new(x: i32, y: i32) -> Option<Self> {
        ((x + y) % 2 == 0).then_some(Self { x, y })
    }

    /// The six adjacent nodes, in the fixed order
    /// `[E, NE, NW, W, SW, SE]` (counter-clockwise from east).
    #[inline]
    #[must_use]
    pub fn neighbors(self) -> [Coord; 6] {
        Dir::ALL.map(|d| self + d.delta())
    }

    /// The neighbour in direction `d`.
    #[inline]
    #[must_use]
    pub fn step(self, d: Dir) -> Coord {
        self + d.delta()
    }

    /// Grid distance (length of a shortest path) to `other`.
    ///
    /// In doubled coordinates: `max(|dy|, (|dx| + |dy|) / 2)`.
    #[inline]
    #[must_use]
    pub fn distance(self, other: Coord) -> u32 {
        let dx = (self.x - other.x).unsigned_abs();
        let dy = (self.y - other.y).unsigned_abs();
        dy.max((dx + dy) / 2)
    }

    /// Whether `other` is one of the six neighbours.
    #[inline]
    #[must_use]
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.distance(other) == 1
    }

    /// Returns the direction from `self` to an **adjacent** node, or
    /// `None` if `other` is not adjacent.
    #[must_use]
    pub fn direction_to(self, other: Coord) -> Option<Dir> {
        Dir::from_delta(other - self)
    }

    /// The *x-element* of this node when interpreted as a label relative
    /// to an observing robot at the origin (paper, Fig. 48). This is just
    /// the doubled x coordinate; the paper breaks base-node ties on it.
    #[inline]
    #[must_use]
    pub fn x_element(self) -> i32 {
        self.x
    }

    /// The *y-element* of the label (paper, Fig. 48).
    #[inline]
    #[must_use]
    pub fn y_element(self) -> i32 {
        self.y
    }
}

impl Add for Coord {
    type Output = Coord;
    #[inline]
    fn add(self, rhs: Coord) -> Coord {
        Coord { x: self.x + rhs.x, y: self.y + rhs.y }
    }
}

impl AddAssign for Coord {
    #[inline]
    fn add_assign(&mut self, rhs: Coord) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Coord {
    type Output = Coord;
    #[inline]
    fn sub(self, rhs: Coord) -> Coord {
        Coord { x: self.x - rhs.x, y: self.y - rhs.y }
    }
}

impl SubAssign for Coord {
    #[inline]
    fn sub_assign(&mut self, rhs: Coord) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Coord {
    type Output = Coord;
    #[inline]
    fn neg(self) -> Coord {
        Coord { x: -self.x, y: -self.y }
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Coord {
    /// Convenience conversion; panics on parity violation like [`Coord::new`].
    fn from((x, y): (i32, i32)) -> Self {
        Coord::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_enforced() {
        assert!(Coord::try_new(1, 0).is_none());
        assert!(Coord::try_new(0, 1).is_none());
        assert!(Coord::try_new(1, 1).is_some());
        assert!(Coord::try_new(-3, 1).is_some());
        assert!(Coord::try_new(0, 0).is_some());
    }

    #[test]
    #[should_panic(expected = "not a triangular-lattice node")]
    fn new_panics_on_odd_parity() {
        let _ = Coord::new(2, 1);
    }

    #[test]
    fn neighbors_match_paper_fig48_inner_ring() {
        // Fig. 48: E=(2,0), NE=(1,1), NW=(-1,1), W=(-2,0), SW=(-1,-1), SE=(1,-1).
        let n = crate::ORIGIN.neighbors();
        assert_eq!(
            n.to_vec(),
            vec![
                Coord::new(2, 0),
                Coord::new(1, 1),
                Coord::new(-1, 1),
                Coord::new(-2, 0),
                Coord::new(-1, -1),
                Coord::new(1, -1),
            ]
        );
    }

    #[test]
    fn distance_matches_paper_fig48_outer_ring() {
        // All twelve distance-2 labels from Fig. 48.
        let ring2 = [
            (4, 0),
            (3, 1),
            (2, 2),
            (0, 2),
            (-2, 2),
            (-3, 1),
            (-4, 0),
            (-3, -1),
            (-2, -2),
            (0, -2),
            (2, -2),
            (3, -1),
        ];
        for (x, y) in ring2 {
            assert_eq!(
                crate::ORIGIN.distance(Coord::new(x, y)),
                2,
                "({x},{y}) should be at distance 2"
            );
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Coord::new(5, 3);
        let b = Coord::new(-2, -4);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    fn distance_triangle_small_cases() {
        // One E step then one NE step = (3,1): distance 2.
        assert_eq!(crate::ORIGIN.distance(Coord::new(3, 1)), 2);
        // NE then NW = (0,2): distance 2 (cannot be reached in one step).
        assert_eq!(crate::ORIGIN.distance(Coord::new(0, 2)), 2);
        // Pure vertical-ish: (0,4) needs 4 steps (alternate NE/NW).
        assert_eq!(crate::ORIGIN.distance(Coord::new(0, 4)), 4);
        // Pure horizontal: (8,0) needs 4 E steps.
        assert_eq!(crate::ORIGIN.distance(Coord::new(8, 0)), 4);
    }

    #[test]
    fn adjacency() {
        let c = Coord::new(3, 1);
        for n in c.neighbors() {
            assert!(c.is_adjacent(n));
            assert_eq!(c.direction_to(n).map(|d| c.step(d)), Some(n));
        }
        assert!(!c.is_adjacent(c));
        assert!(!c.is_adjacent(Coord::new(3, 3)));
        assert_eq!(c.direction_to(Coord::new(3, 3)), None);
    }

    #[test]
    fn arithmetic() {
        let a = Coord::new(2, 0);
        let b = Coord::new(1, 1);
        assert_eq!(a + b, Coord::new(3, 1));
        assert_eq!(a - b, Coord::new(1, -1));
        assert_eq!(-b, Coord::new(-1, -1));
        let mut c = a;
        c += b;
        assert_eq!(c, Coord::new(3, 1));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Coord::new(2, 0), Coord::new(0, 2), Coord::new(0, 0), Coord::new(2, -2)];
        v.sort();
        assert_eq!(
            v,
            vec![Coord::new(0, 0), Coord::new(0, 2), Coord::new(2, -2), Coord::new(2, 0)]
        );
    }
}
