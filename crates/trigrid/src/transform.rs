//! The symmetry group of the triangular lattice.
//!
//! A lattice symmetry is a composition of a point-group element (one of
//! the twelve elements of the dihedral group D6: six rotations by
//! multiples of 60° and six reflections) with a translation. The robots
//! of the paper agree on the x-axis *and* chirality, so algorithms are
//! invariant only under **translations**; the full group is still needed
//! for analysis (e.g. classifying configurations up to symmetry, and for
//! the mirror argument in the Theorem 1 proof).

use crate::{Coord, Dir};
use serde::{Deserialize, Serialize};

/// Rotation by `k * 60°` counter-clockwise about the origin.
///
/// In doubled coordinates a 60° CCW rotation maps `(x, y)` to
/// `((x - 3y) / 2, (x + y) / 2)`; both divisions are exact on lattice
/// nodes.
#[must_use]
pub fn rotate_ccw(c: Coord, k: usize) -> Coord {
    let mut r = c;
    for _ in 0..(k % 6) {
        r = Coord::new((r.x - 3 * r.y) / 2, (r.x + r.y) / 2);
    }
    r
}

/// Rotation by `k * 60°` clockwise about the origin.
#[must_use]
pub fn rotate_cw(c: Coord, k: usize) -> Coord {
    rotate_ccw(c, 6 - (k % 6))
}

/// Reflection across the x-axis: `(x, y) → (x, -y)`.
#[must_use]
pub fn mirror_x(c: Coord) -> Coord {
    Coord::new(c.x, -c.y)
}

/// Reflection across the y-axis of the *plane* (east↔west):
/// `(x, y) → (-x, y)`.
///
/// Note: the paper's "y-axis" is the lattice axis through the origin and
/// its NE neighbour; this function is the ordinary planar mirror, which
/// together with the rotations generates all six reflections of D6.
#[must_use]
pub fn mirror_y(c: Coord) -> Coord {
    Coord::new(-c.x, c.y)
}

/// An element of the point group D6 (order 12): `Rot(k)` is rotation by
/// `k * 60°` CCW; `Ref(k)` is `Rot(k)` composed with [`mirror_x`]
/// (mirror first, then rotate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PointSymmetry {
    /// Rotation by `k * 60°` counter-clockwise (`k` in `0..6`).
    Rot(u8),
    /// Reflection: mirror across the x-axis, then rotate `k * 60°` CCW.
    Ref(u8),
}

impl PointSymmetry {
    /// All twelve elements of D6.
    pub const ALL: [PointSymmetry; 12] = [
        PointSymmetry::Rot(0),
        PointSymmetry::Rot(1),
        PointSymmetry::Rot(2),
        PointSymmetry::Rot(3),
        PointSymmetry::Rot(4),
        PointSymmetry::Rot(5),
        PointSymmetry::Ref(0),
        PointSymmetry::Ref(1),
        PointSymmetry::Ref(2),
        PointSymmetry::Ref(3),
        PointSymmetry::Ref(4),
        PointSymmetry::Ref(5),
    ];

    /// The six rotations only (the chirality-preserving subgroup C6).
    pub const ROTATIONS: [PointSymmetry; 6] = [
        PointSymmetry::Rot(0),
        PointSymmetry::Rot(1),
        PointSymmetry::Rot(2),
        PointSymmetry::Rot(3),
        PointSymmetry::Rot(4),
        PointSymmetry::Rot(5),
    ];

    /// Applies this symmetry to a coordinate (fixing the origin).
    #[must_use]
    pub fn apply(self, c: Coord) -> Coord {
        match self {
            PointSymmetry::Rot(k) => rotate_ccw(c, k as usize),
            PointSymmetry::Ref(k) => rotate_ccw(mirror_x(c), k as usize),
        }
    }

    /// Applies this symmetry to a direction.
    #[must_use]
    pub fn apply_dir(self, d: Dir) -> Dir {
        Dir::from_delta(self.apply(d.delta())).expect("point symmetries permute unit steps")
    }

    /// Whether this symmetry preserves chirality (is a pure rotation).
    #[must_use]
    pub fn preserves_chirality(self) -> bool {
        matches!(self, PointSymmetry::Rot(_))
    }

    /// Group composition: `self ∘ other` (apply `other` first).
    #[must_use]
    pub fn compose(self, other: PointSymmetry) -> PointSymmetry {
        use PointSymmetry::{Ref, Rot};
        match (self, other) {
            (Rot(a), Rot(b)) => Rot((a + b) % 6),
            (Rot(a), Ref(b)) => Ref((a + b) % 6),
            // Ref(a)∘Rot(b): mirror∘rot(b) = rot(-b)∘mirror, so
            // rot(a)∘mirror∘rot(b) = rot(a - b)∘mirror = Ref(a - b).
            (Ref(a), Rot(b)) => Ref((a + 6 - b) % 6),
            // Ref(a)∘Ref(b) = rot(a)∘mirror∘rot(b)∘mirror = rot(a - b).
            (Ref(a), Ref(b)) => Rot((a + 6 - b) % 6),
        }
    }

    /// The inverse element.
    #[must_use]
    pub fn inverse(self) -> PointSymmetry {
        match self {
            PointSymmetry::Rot(k) => PointSymmetry::Rot((6 - k) % 6),
            r @ PointSymmetry::Ref(_) => r, // reflections are involutions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_permutes_neighbors() {
        // 60° CCW must map E to NE, NE to NW, etc.
        for d in Dir::ALL {
            assert_eq!(rotate_ccw(d.delta(), 1), d.rotate_ccw(1).delta());
        }
    }

    #[test]
    fn rotation_has_order_six() {
        let c = Coord::new(5, 3);
        assert_eq!(rotate_ccw(c, 6), c);
        assert_eq!(rotate_ccw(rotate_ccw(c, 2), 4), c);
        assert_eq!(rotate_cw(rotate_ccw(c, 2), 2), c);
    }

    #[test]
    fn rotation_preserves_distance() {
        let a = Coord::new(7, 1);
        let b = Coord::new(-2, -4);
        for k in 0..6 {
            assert_eq!(rotate_ccw(a, k).distance(rotate_ccw(b, k)), a.distance(b));
        }
    }

    #[test]
    fn mirrors_preserve_distance_and_are_involutions() {
        let a = Coord::new(7, 1);
        let b = Coord::new(-2, -4);
        assert_eq!(mirror_x(a).distance(mirror_x(b)), a.distance(b));
        assert_eq!(mirror_y(a).distance(mirror_y(b)), a.distance(b));
        assert_eq!(mirror_x(mirror_x(a)), a);
        assert_eq!(mirror_y(mirror_y(a)), a);
    }

    #[test]
    fn point_group_closure_and_inverses() {
        let probe = [Coord::new(2, 0), Coord::new(1, 1), Coord::new(5, 3)];
        for s in PointSymmetry::ALL {
            for t in PointSymmetry::ALL {
                let st = s.compose(t);
                for c in probe {
                    assert_eq!(st.apply(c), s.apply(t.apply(c)), "compose({s:?},{t:?})");
                }
            }
            let inv = s.inverse();
            for c in probe {
                assert_eq!(inv.apply(s.apply(c)), c, "inverse of {s:?}");
            }
        }
    }

    #[test]
    fn chirality_flag() {
        let a = Dir::E;
        for s in PointSymmetry::ALL {
            // A symmetry preserves chirality iff it maps (E, NE) to a pair
            // that is still one CCW step apart.
            let e = s.apply_dir(a);
            let ne = s.apply_dir(a.rotate_ccw(1));
            let preserved = ne == e.rotate_ccw(1);
            assert_eq!(preserved, s.preserves_chirality(), "{s:?}");
        }
    }

    #[test]
    fn apply_dir_matches_apply_on_deltas() {
        for s in PointSymmetry::ALL {
            for d in Dir::ALL {
                assert_eq!(s.apply_dir(d).delta(), s.apply(d.delta()));
            }
        }
    }
}
