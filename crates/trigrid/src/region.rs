//! Disks, rings and bounding boxes on the triangular lattice.

use crate::Coord;

/// All nodes at grid distance exactly `r` from `center`, in a fixed
/// deterministic order (counter-clockwise starting from due east).
///
/// `ring(c, 0)` is `[c]`; `ring(c, r)` has `6r` nodes for `r ≥ 1`.
#[must_use]
pub fn ring(center: Coord, r: u32) -> Vec<Coord> {
    if r == 0 {
        return vec![center];
    }
    let r = r as i32;
    let mut out = Vec::with_capacity(6 * r as usize);
    // Start at the due-east node (2r, 0) and walk CCW: r steps in each of
    // NW, W, SW, SE, E, NE.
    let mut cur = center + Coord::new(2 * r, 0);
    for d in [
        crate::Dir::NW,
        crate::Dir::W,
        crate::Dir::SW,
        crate::Dir::SE,
        crate::Dir::E,
        crate::Dir::NE,
    ] {
        for _ in 0..r {
            out.push(cur);
            cur = cur.step(d);
        }
    }
    debug_assert_eq!(cur, center + Coord::new(2 * r, 0));
    out
}

/// All nodes at grid distance at most `r` from `center`
/// (`1 + 3r(r+1)` nodes), ring by ring, centre first.
#[must_use]
pub fn disk(center: Coord, r: u32) -> Vec<Coord> {
    let mut out = Vec::with_capacity(1 + 3 * (r as usize) * (r as usize + 1));
    for k in 0..=r {
        out.extend(ring(center, k));
    }
    out
}

/// Axis-aligned bounding box of a set of nodes in doubled coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BoundingBox {
    /// Minimum doubled-x.
    pub min_x: i32,
    /// Maximum doubled-x.
    pub max_x: i32,
    /// Minimum y.
    pub min_y: i32,
    /// Maximum y.
    pub max_y: i32,
}

impl BoundingBox {
    /// Bounding box of a non-empty iterator of coordinates; `None` when
    /// empty.
    #[must_use]
    pub fn of<I: IntoIterator<Item = Coord>>(nodes: I) -> Option<BoundingBox> {
        let mut it = nodes.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox { min_x: first.x, max_x: first.x, min_y: first.y, max_y: first.y };
        for c in it {
            bb.min_x = bb.min_x.min(c.x);
            bb.max_x = bb.max_x.max(c.x);
            bb.min_y = bb.min_y.min(c.y);
            bb.max_y = bb.max_y.max(c.y);
        }
        Some(bb)
    }

    /// Width in doubled-x units.
    #[must_use]
    pub fn width(&self) -> i32 {
        self.max_x - self.min_x
    }

    /// Height in rows.
    #[must_use]
    pub fn height(&self) -> i32 {
        self.max_y - self.min_y
    }

    /// Whether `c` lies inside the box (inclusive).
    #[must_use]
    pub fn contains(&self, c: Coord) -> bool {
        (self.min_x..=self.max_x).contains(&c.x) && (self.min_y..=self.max_y).contains(&c.y)
    }
}

/// Maximum pairwise grid distance of a finite node set (its diameter);
/// 0 for empty or singleton sets. Quadratic, intended for small sets.
#[must_use]
pub fn diameter(nodes: &[Coord]) -> u32 {
    let mut best = 0;
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            best = best.max(a.distance(b));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ORIGIN;

    #[test]
    fn ring_sizes() {
        assert_eq!(ring(ORIGIN, 0).len(), 1);
        assert_eq!(ring(ORIGIN, 1).len(), 6);
        assert_eq!(ring(ORIGIN, 2).len(), 12);
        assert_eq!(ring(ORIGIN, 5).len(), 30);
    }

    #[test]
    fn ring_nodes_have_exact_distance() {
        for r in 0..5 {
            for c in ring(Coord::new(3, 1), r) {
                assert_eq!(Coord::new(3, 1).distance(c), r);
            }
        }
    }

    #[test]
    fn ring_has_no_duplicates() {
        for r in 1..5 {
            let mut v = ring(ORIGIN, r);
            v.sort();
            v.dedup();
            assert_eq!(v.len(), 6 * r as usize);
        }
    }

    #[test]
    fn disk_sizes_match_formula() {
        for r in 0..6u32 {
            assert_eq!(disk(ORIGIN, r).len(), (1 + 3 * r * (r + 1)) as usize);
        }
        // Visibility range 2 sees 18 nodes besides itself (paper §II-A).
        assert_eq!(disk(ORIGIN, 2).len() - 1, 18);
    }

    #[test]
    fn disk_is_monotone_and_complete() {
        // Every node within distance r is in the disk.
        let d2: Vec<Coord> = disk(ORIGIN, 2);
        for x in -6..=6 {
            for y in -6..=6 {
                if let Some(c) = Coord::try_new(x, y) {
                    assert_eq!(d2.contains(&c), ORIGIN.distance(c) <= 2, "{c}");
                }
            }
        }
    }

    #[test]
    fn bounding_box() {
        let bb = BoundingBox::of([Coord::new(0, 0), Coord::new(4, 2), Coord::new(-2, 0)]).unwrap();
        assert_eq!(bb.min_x, -2);
        assert_eq!(bb.max_x, 4);
        assert_eq!(bb.min_y, 0);
        assert_eq!(bb.max_y, 2);
        assert_eq!(bb.width(), 6);
        assert_eq!(bb.height(), 2);
        assert!(bb.contains(Coord::new(0, 2)));
        assert!(!bb.contains(Coord::new(0, 4)));
        assert_eq!(BoundingBox::of(std::iter::empty()), None);
    }

    #[test]
    fn diameter_small_sets() {
        assert_eq!(diameter(&[]), 0);
        assert_eq!(diameter(&[ORIGIN]), 0);
        let hexagon: Vec<Coord> = disk(ORIGIN, 1);
        assert_eq!(diameter(&hexagon), 2);
        let line: Vec<Coord> = (0..7).map(|i| Coord::new(2 * i, 0)).collect();
        assert_eq!(diameter(&line), 6);
    }
}
