//! # trigrid — infinite triangular-grid geometry
//!
//! Geometry substrate for the reproduction of *"Gathering of seven
//! autonomous mobile robots on triangular grids"* (Shibata et al., 2021).
//!
//! The paper's triangular grid is the infinite 6-regular lattice: every
//! node has six neighbours, named **E, NE, NW, W, SW, SE**. Robots agree
//! on the direction and orientation of the x-axis and on chirality, so
//! the six direction names are globally consistent.
//!
//! ## Coordinate system
//!
//! We use *doubled* coordinates, which are exactly the label system of
//! the paper's Fig. 48:
//!
//! * moving **E** adds `(2, 0)`,
//! * moving **NE** adds `(1, 1)`,
//! * moving **NW** adds `(-1, 1)`,
//! * and W, SW, SE are the negations.
//!
//! Every reachable node satisfies `x + y ≡ 0 (mod 2)`; the constructor
//! [`Coord::new`] enforces this invariant. The node two steps east of the
//! origin is `(4, 0)`, the node NE-NE is `(2, 2)` — matching the labels
//! used throughout Algorithm 1 of the paper, so the pseudocode
//! transcribes into code with no coordinate translation.
//!
//! ## Contents
//!
//! * [`Coord`] — a lattice node in doubled coordinates.
//! * [`Dir`] — the six axial directions with rotation/reflection algebra.
//! * [`transform`] — the symmetry group of the lattice (translations,
//!   rotations by 60°, reflections).
//! * [`region`] — disks, rings and bounding boxes.
//! * [`path`] — grid distance, shortest paths, and BFS/connectivity over
//!   finite node sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod dir;
pub mod path;
pub mod region;
pub mod transform;

pub use coord::Coord;
pub use dir::Dir;

/// The origin node `(0, 0)` (the paper's distinguished node `v_o`,
/// which robots themselves cannot observe).
pub const ORIGIN: Coord = Coord { x: 0, y: 0 };
