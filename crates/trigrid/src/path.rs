//! Shortest paths and connectivity over finite node sets.

use crate::{Coord, Dir};
use std::collections::{HashMap, HashSet, VecDeque};

/// One shortest path (sequence of directions) from `from` to `to` on the
/// unobstructed infinite grid. Deterministic: at each step it takes the
/// first direction (in [`Dir::ALL`] order) that reduces the distance.
#[must_use]
pub fn shortest_path(from: Coord, to: Coord) -> Vec<Dir> {
    let mut path = Vec::with_capacity(from.distance(to) as usize);
    let mut cur = from;
    while cur != to {
        let d = Dir::ALL
            .into_iter()
            .find(|d| cur.step(*d).distance(to) < cur.distance(to))
            .expect("some neighbour is always closer on the unobstructed grid");
        path.push(d);
        cur = cur.step(d);
    }
    path
}

/// Whether the subgraph induced by `nodes` (adjacency = grid adjacency)
/// is connected. Empty sets are considered connected.
///
/// Small sets (≤ 16 nodes — every robot configuration) take an
/// allocation-free path: the adjacency relation is folded into one
/// bitmask per node and connectivity is a bitmask flood fill. This is
/// a hot function for the exploration checkers, which test every
/// successor configuration once per expanded edge.
#[must_use]
pub fn is_connected(nodes: &[Coord]) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    if nodes.len() <= 16 {
        return small_is_connected(nodes);
    }
    let set: HashSet<Coord> = nodes.iter().copied().collect();
    let mut seen = HashSet::with_capacity(set.len());
    let mut queue = VecDeque::new();
    queue.push_back(nodes[0]);
    seen.insert(nodes[0]);
    while let Some(c) = queue.pop_front() {
        for n in c.neighbors() {
            if set.contains(&n) && seen.insert(n) {
                queue.push_back(n);
            }
        }
    }
    seen.len() == set.len()
}

/// Bitmask flood fill for at most 16 nodes. Duplicate nodes are merged
/// by treating distance-0 pairs as adjacent, matching the set
/// semantics of the general path.
fn small_is_connected(nodes: &[Coord]) -> bool {
    let n = nodes.len();
    let mut adj = [0u32; 16];
    for i in 0..n {
        for j in i + 1..n {
            if nodes[i].distance(nodes[j]) <= 1 {
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
        }
    }
    let all: u32 = (1u32 << n) - 1;
    mask_connected(&adj[..n], all)
}

/// Whether the nodes selected by `occ` form a connected subgraph of the
/// ≤ 32-node graph whose adjacency rows are `adj` (`adj[i]` = bitmask
/// of `i`'s neighbours). The whole check is word operations: one
/// bitmask flood fill from the lowest occupied node, each step folding
/// an entire adjacency row into the frontier. Empty and singleton
/// selections count as connected.
///
/// This is the shared bit-parallel connectivity kernel: the per-set
/// path above builds its rows from pairwise grid distances, and the
/// exploration engine's round tables precompute rows over a
/// positions ∪ targets node universe so every activation subset's
/// successor connectivity is a handful of `u32` ops (no coordinate
/// materialisation per subset).
#[must_use]
pub fn mask_connected(adj: &[u32], occ: u32) -> bool {
    if occ & occ.wrapping_sub(1) == 0 {
        return true; // zero or one node
    }
    let start = occ.trailing_zeros() as usize;
    let mut seen: u32 = 1 << start;
    let mut frontier: u32 = seen;
    while frontier != 0 {
        let i = frontier.trailing_zeros() as usize;
        frontier &= frontier - 1;
        let fresh = adj[i] & occ & !seen;
        seen |= fresh;
        frontier |= fresh;
    }
    seen == occ
}

/// The connected components of the subgraph induced by `nodes`, each
/// sorted; components are ordered by their smallest element.
#[must_use]
pub fn components(nodes: &[Coord]) -> Vec<Vec<Coord>> {
    let set: HashSet<Coord> = nodes.iter().copied().collect();
    let mut remaining: Vec<Coord> = {
        let mut v: Vec<Coord> = set.iter().copied().collect();
        v.sort();
        v
    };
    let mut out = Vec::new();
    let mut assigned: HashSet<Coord> = HashSet::new();
    while let Some(&seed) = remaining.iter().find(|c| !assigned.contains(c)) {
        let mut comp = vec![seed];
        let mut queue = VecDeque::from([seed]);
        assigned.insert(seed);
        while let Some(c) = queue.pop_front() {
            for n in c.neighbors() {
                if set.contains(&n) && assigned.insert(n) {
                    comp.push(n);
                    queue.push_back(n);
                }
            }
        }
        comp.sort();
        out.push(comp);
        remaining.retain(|c| !assigned.contains(c));
    }
    out
}

/// Breadth-first distances from `source` restricted to the node set
/// `allowed` (which must contain `source`). Unreachable members of
/// `allowed` are absent from the map.
#[must_use]
pub fn bfs_distances(source: Coord, allowed: &HashSet<Coord>) -> HashMap<Coord, u32> {
    let mut dist = HashMap::new();
    if !allowed.contains(&source) {
        return dist;
    }
    dist.insert(source, 0);
    let mut queue = VecDeque::from([source]);
    while let Some(c) = queue.pop_front() {
        let d = dist[&c];
        for n in c.neighbors() {
            if allowed.contains(&n) && !dist.contains_key(&n) {
                dist.insert(n, d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ORIGIN;

    #[test]
    fn shortest_path_length_matches_distance() {
        let cases = [
            (ORIGIN, Coord::new(4, 0)),
            (ORIGIN, Coord::new(0, 4)),
            (Coord::new(-3, 1), Coord::new(5, -3)),
            (ORIGIN, ORIGIN),
        ];
        for (a, b) in cases {
            let p = shortest_path(a, b);
            assert_eq!(p.len() as u32, a.distance(b));
            let mut cur = a;
            for d in p {
                cur = cur.step(d);
            }
            assert_eq!(cur, b);
        }
    }

    #[test]
    fn connectivity_basic() {
        assert!(is_connected(&[]));
        assert!(is_connected(&[ORIGIN]));
        let line: Vec<Coord> = (0..7).map(|i| Coord::new(2 * i, 0)).collect();
        assert!(is_connected(&line));
        let mut broken = line.clone();
        broken[3] = Coord::new(20, 0); // tear the line apart
        assert!(!is_connected(&broken));
    }

    #[test]
    fn hexagon_is_connected() {
        let hexagon = crate::region::disk(ORIGIN, 1);
        assert!(is_connected(&hexagon));
    }

    #[test]
    fn mask_connected_respects_occupancy() {
        // Path 0-1-2-3: full and prefix selections are connected,
        // dropping the middle node splits the ends.
        let adj = [0b0010u32, 0b0101, 0b1010, 0b0100];
        assert!(mask_connected(&adj, 0b1111));
        assert!(mask_connected(&adj, 0b0011));
        assert!(!mask_connected(&adj, 0b1011));
        assert!(mask_connected(&adj, 0b0000));
        assert!(mask_connected(&adj, 0b1000));
    }

    #[test]
    fn components_split_correctly() {
        let a = vec![ORIGIN, Coord::new(2, 0)];
        let b = vec![Coord::new(10, 0), Coord::new(11, 1)];
        let all: Vec<Coord> = a.iter().chain(b.iter()).copied().collect();
        let comps = components(&all);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], a);
        assert_eq!(comps[1], b);
    }

    #[test]
    fn components_of_connected_set_is_single() {
        let hexagon = crate::region::disk(ORIGIN, 1);
        assert_eq!(components(&hexagon).len(), 1);
    }

    #[test]
    fn bfs_distances_on_line() {
        let line: HashSet<Coord> = (0..5).map(|i| Coord::new(2 * i, 0)).collect();
        let d = bfs_distances(ORIGIN, &line);
        assert_eq!(d.len(), 5);
        assert_eq!(d[&Coord::new(8, 0)], 4);
        // Restricted BFS can exceed free-grid distance when the set bends.
        let bent: HashSet<Coord> =
            [ORIGIN, Coord::new(2, 0), Coord::new(3, 1), Coord::new(2, 2), Coord::new(0, 2)]
                .into_iter()
                .collect();
        let d = bfs_distances(ORIGIN, &bent);
        // Free-grid distance from (0,0) to (0,2) is 2, but inside the bent
        // set the only route is E, NE, NW, W: length 4.
        assert_eq!(d[&Coord::new(0, 2)], 4);
        assert_eq!(d[&Coord::new(3, 1)], 2);
    }

    #[test]
    fn bfs_source_not_in_set_is_empty() {
        let set: HashSet<Coord> = [Coord::new(2, 0)].into_iter().collect();
        assert!(bfs_distances(ORIGIN, &set).is_empty());
    }
}
