//! The six axial directions of the triangular grid.

use crate::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six directions of the triangular grid, named as in the
/// paper (§II-A): east, northeast, northwest, west, southwest, southeast.
///
/// The discriminant order is counter-clockwise starting from east, so
/// rotating by 60° counter-clockwise is `(index + 1) mod 6`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dir {
    /// East: delta `(2, 0)`.
    E = 0,
    /// Northeast: delta `(1, 1)`.
    NE = 1,
    /// Northwest: delta `(-1, 1)`.
    NW = 2,
    /// West: delta `(-2, 0)`.
    W = 3,
    /// Southwest: delta `(-1, -1)`.
    SW = 4,
    /// Southeast: delta `(1, -1)`.
    SE = 5,
}

impl Dir {
    /// All six directions, counter-clockwise from east.
    pub const ALL: [Dir; 6] = [Dir::E, Dir::NE, Dir::NW, Dir::W, Dir::SW, Dir::SE];

    /// The displacement of one step in this direction, in doubled
    /// coordinates (paper Fig. 48 labels of the inner ring).
    #[inline]
    #[must_use]
    pub const fn delta(self) -> Coord {
        match self {
            Dir::E => Coord { x: 2, y: 0 },
            Dir::NE => Coord { x: 1, y: 1 },
            Dir::NW => Coord { x: -1, y: 1 },
            Dir::W => Coord { x: -2, y: 0 },
            Dir::SW => Coord { x: -1, y: -1 },
            Dir::SE => Coord { x: 1, y: -1 },
        }
    }

    /// Recovers a direction from a unit displacement, if it is one.
    #[must_use]
    pub fn from_delta(delta: Coord) -> Option<Dir> {
        Dir::ALL.into_iter().find(|d| d.delta() == delta)
    }

    /// The direction index `0..6` (counter-clockwise from east).
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Direction with the given index modulo 6.
    #[inline]
    #[must_use]
    pub fn from_index(i: usize) -> Dir {
        Dir::ALL[i % 6]
    }

    /// The opposite direction (rotation by 180°).
    #[inline]
    #[must_use]
    pub fn opposite(self) -> Dir {
        Dir::from_index(self.index() + 3)
    }

    /// Rotation by `k * 60°` counter-clockwise.
    #[inline]
    #[must_use]
    pub fn rotate_ccw(self, k: usize) -> Dir {
        Dir::from_index(self.index() + k)
    }

    /// Rotation by `k * 60°` clockwise.
    #[inline]
    #[must_use]
    pub fn rotate_cw(self, k: usize) -> Dir {
        Dir::from_index(self.index() + 6 - (k % 6))
    }

    /// Reflection across the x-axis (E↔E, NE↔SE, NW↔SW, W↔W).
    ///
    /// This is the "mirror" used by the paper's without-loss-of-generality
    /// arguments in §III. Note it flips chirality, so it maps an algorithm
    /// to a *different* (mirrored) algorithm.
    #[inline]
    #[must_use]
    pub fn mirror_x(self) -> Dir {
        match self {
            Dir::E => Dir::E,
            Dir::NE => Dir::SE,
            Dir::NW => Dir::SW,
            Dir::W => Dir::W,
            Dir::SW => Dir::NW,
            Dir::SE => Dir::NE,
        }
    }

    /// Reflection across the y-axis (the axis through the origin and its
    /// NE neighbour is *not* this one; this mirrors east↔west).
    #[inline]
    #[must_use]
    pub fn mirror_y(self) -> Dir {
        self.mirror_x().opposite()
    }
}

impl fmt::Debug for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::E => "E",
            Dir::NE => "NE",
            Dir::NW => "NW",
            Dir::W => "W",
            Dir::SW => "SW",
            Dir::SE => "SE",
        })
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_have_unit_distance_and_even_parity() {
        for d in Dir::ALL {
            assert_eq!(crate::ORIGIN.distance(crate::ORIGIN + d.delta()), 1);
            assert_eq!((d.delta().x + d.delta().y) % 2, 0);
        }
    }

    #[test]
    fn opposite_is_involution_and_negates_delta() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.opposite().delta(), -d.delta());
        }
    }

    #[test]
    fn rotation_algebra() {
        for d in Dir::ALL {
            assert_eq!(d.rotate_ccw(6), d);
            assert_eq!(d.rotate_cw(6), d);
            assert_eq!(d.rotate_ccw(3), d.opposite());
            for k in 0..12 {
                assert_eq!(d.rotate_ccw(k).rotate_cw(k), d);
            }
        }
        assert_eq!(Dir::E.rotate_ccw(1), Dir::NE);
        assert_eq!(Dir::E.rotate_cw(1), Dir::SE);
    }

    #[test]
    fn mirrors() {
        assert_eq!(Dir::NE.mirror_x(), Dir::SE);
        assert_eq!(Dir::W.mirror_x(), Dir::W);
        assert_eq!(Dir::E.mirror_y(), Dir::W);
        assert_eq!(Dir::NE.mirror_y(), Dir::NW);
        for d in Dir::ALL {
            assert_eq!(d.mirror_x().mirror_x(), d);
            assert_eq!(d.mirror_y().mirror_y(), d);
            // mirror_x negates the y component of the delta.
            assert_eq!(d.mirror_x().delta(), Coord { x: d.delta().x, y: -d.delta().y });
        }
    }

    #[test]
    fn from_delta_roundtrip() {
        for d in Dir::ALL {
            assert_eq!(Dir::from_delta(d.delta()), Some(d));
        }
        assert_eq!(Dir::from_delta(Coord { x: 4, y: 0 }), None);
        assert_eq!(Dir::from_delta(Coord { x: 0, y: 0 }), None);
    }

    #[test]
    fn index_roundtrip() {
        for (i, d) in Dir::ALL.into_iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dir::from_index(i), d);
        }
    }
}
