//! Property-based tests for the triangular-grid geometry.

use proptest::prelude::*;
use trigrid::transform::{mirror_x, mirror_y, rotate_ccw, PointSymmetry};
use trigrid::{path, region, Coord, Dir, ORIGIN};

/// Strategy producing arbitrary lattice nodes in a bounded window.
fn coord() -> impl Strategy<Value = Coord> {
    (-50i32..50, -50i32..50).prop_map(|(x, y)| {
        // Snap to the lattice by fixing parity via x.
        if (x + y) % 2 == 0 {
            Coord::new(x, y)
        } else {
            Coord::new(x + 1, y)
        }
    })
}

fn dir() -> impl Strategy<Value = Dir> {
    (0usize..6).prop_map(Dir::from_index)
}

proptest! {
    #[test]
    fn distance_is_a_metric(a in coord(), b in coord(), c in coord()) {
        // symmetry
        prop_assert_eq!(a.distance(b), b.distance(a));
        // identity
        prop_assert_eq!(a.distance(a), 0);
        prop_assert!(a == b || a.distance(b) > 0);
        // triangle inequality
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c));
    }

    #[test]
    fn distance_is_translation_invariant(a in coord(), b in coord(), t in coord()) {
        prop_assert_eq!((a + t).distance(b + t), a.distance(b));
    }

    #[test]
    fn one_step_changes_distance_by_at_most_one(a in coord(), b in coord(), d in dir()) {
        let before = a.distance(b);
        let after = a.step(d).distance(b);
        prop_assert!(before.abs_diff(after) <= 1);
    }

    #[test]
    fn shortest_path_realises_distance(a in coord(), b in coord()) {
        let p = path::shortest_path(a, b);
        prop_assert_eq!(p.len() as u32, a.distance(b));
        let mut cur = a;
        for d in p { cur = cur.step(d); }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn rotations_preserve_distance(a in coord(), b in coord(), k in 0usize..6) {
        prop_assert_eq!(rotate_ccw(a, k).distance(rotate_ccw(b, k)), a.distance(b));
    }

    #[test]
    fn mirrors_preserve_distance(a in coord(), b in coord()) {
        prop_assert_eq!(mirror_x(a).distance(mirror_x(b)), a.distance(b));
        prop_assert_eq!(mirror_y(a).distance(mirror_y(b)), a.distance(b));
    }

    #[test]
    fn point_symmetries_are_lattice_automorphisms(a in coord(), d in dir()) {
        for s in PointSymmetry::ALL {
            // adjacency is preserved edge-by-edge
            let mapped_edge = s.apply(a.step(d)) - s.apply(a);
            prop_assert_eq!(Dir::from_delta(mapped_edge), Some(s.apply_dir(d)));
        }
    }

    #[test]
    fn ring_membership_is_exact(r in 0u32..5, c in coord()) {
        for n in region::ring(c, r) {
            prop_assert_eq!(c.distance(n), r);
        }
    }

    #[test]
    fn disk_count_formula(r in 0u32..6) {
        prop_assert_eq!(region::disk(ORIGIN, r).len() as u32, 1 + 3 * r * (r + 1));
    }

    #[test]
    fn neighbors_are_mutual(a in coord()) {
        for n in a.neighbors() {
            prop_assert!(n.neighbors().contains(&a));
        }
    }

    #[test]
    fn connectivity_of_path_sets(a in coord(), b in coord()) {
        // The trace of a shortest path is connected.
        let mut trace = vec![a];
        let mut cur = a;
        for d in path::shortest_path(a, b) {
            cur = cur.step(d);
            trace.push(cur);
        }
        prop_assert!(path::is_connected(&trace));
    }

    #[test]
    fn diameter_bounds(a in coord(), b in coord(), c in coord()) {
        let set = [a, b, c];
        let d = region::diameter(&set);
        prop_assert!(d >= a.distance(b));
        prop_assert!(d >= a.distance(c));
        prop_assert!(d >= b.distance(c));
        prop_assert!(d == a.distance(b) || d == a.distance(c) || d == b.distance(c));
    }
}
