//! # failpoints — deterministic fault injection for the sweep stack
//!
//! Production model checkers need their *failure* paths tested as
//! rigorously as their happy paths: a torn shard write or a panicking
//! class must be reproducible on demand, or the recovery code in
//! `simlab::sweep` is dead weight. This crate provides named fault
//! *sites* that library code hits via [`fire`], and that tests (or the
//! `FAILPOINTS` environment variable) arm with a fault *spec*.
//!
//! ## Zero cost when disarmed
//!
//! The entire disarmed fast path is a single relaxed atomic load: when
//! nothing is armed (the production configuration), [`fire`] returns
//! immediately without taking any lock, reading any environment
//! variable after the first call, or allocating. This is what lets the
//! sweep pipeline keep fault sites compiled in permanently while
//! staying inside the perf envelope of the committed baselines.
//!
//! ## Spec grammar
//!
//! ```text
//! FAILPOINTS = spec (";" spec)*
//! spec       = site "=" action ["@" nth]
//! action     = "abort" | "panic" [":" msg] | "sleep" ":" millis | "torn" ":" bytes
//! ```
//!
//! * `abort` — `std::process::abort()`: the moral equivalent of
//!   `kill -9` (no destructors, no atexit, no flushing).
//! * `panic[:msg]` — panic with the given payload (default `"failpoint"`).
//! * `sleep:ms` — block the calling thread for `ms` milliseconds
//!   (injected slow class, for deadline-watchdog tests).
//! * `torn:bytes` — does nothing itself; [`fire`] returns
//!   `Some(Fault::Torn(bytes))` and the *call site* is responsible for
//!   truncating its write. Only I/O sites honour it.
//! * `@nth` — fire only on the `nth` hit of the site (1-based); without
//!   it, every hit fires. Hits are counted per site from arming.
//!
//! Example: `FAILPOINTS="sweep.class=panic:boom@3;shard.journal=abort@2"`
//! panics while checking the 3rd class and aborts the process at the
//! 2nd journal append.
//!
//! Tests in-process use [`arm`] / [`disarm_all`] instead of the
//! environment. Sites are plain strings; firing an unknown site is a
//! no-op, so library code never needs to feature-gate its sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Tri-state arming flag. `UNKNOWN` until the `FAILPOINTS` environment
/// variable has been consulted once; then `DISARMED` (steady-state fast
/// path: one relaxed load) or `ARMED`.
static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);
const UNKNOWN: u8 = 0;
const DISARMED: u8 = 1;
const ARMED: u8 = 2;

static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();

/// A fault that [`fire`] cannot execute itself and hands back to the
/// call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Truncate the current write to this many bytes, then stop (and in
    /// particular skip any atomic-rename step). Simulates a torn write.
    Torn(usize),
}

#[derive(Debug, Clone)]
enum Action {
    Abort,
    Panic(String),
    SleepMs(u64),
    Torn(usize),
}

#[derive(Debug, Clone)]
struct SiteState {
    action: Action,
    /// Fire only on this 1-based hit, or on every hit when `None`.
    nth: Option<u64>,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Parses one `site=action[@nth]` spec. Returns `(site, state)`.
fn parse_spec(spec: &str) -> Result<(String, SiteState), String> {
    let (site, rhs) =
        spec.split_once('=').ok_or_else(|| format!("failpoint spec `{spec}`: missing `=`"))?;
    let site = site.trim();
    if site.is_empty() {
        return Err(format!("failpoint spec `{spec}`: empty site"));
    }
    let (action_str, nth) = match rhs.rsplit_once('@') {
        Some((a, n)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("failpoint spec `{spec}`: bad hit count `{n}`"))?;
            if n == 0 {
                return Err(format!("failpoint spec `{spec}`: hit count is 1-based"));
            }
            (a, Some(n))
        }
        None => (rhs, None),
    };
    let (verb, arg) = match action_str.split_once(':') {
        Some((v, a)) => (v.trim(), Some(a.trim())),
        None => (action_str.trim(), None),
    };
    let action = match verb {
        "abort" => Action::Abort,
        "panic" => Action::Panic(arg.unwrap_or("failpoint").to_string()),
        "sleep" => {
            let ms = arg
                .and_then(|a| a.parse().ok())
                .ok_or_else(|| format!("failpoint spec `{spec}`: sleep needs `:millis`"))?;
            Action::SleepMs(ms)
        }
        "torn" => {
            let bytes = arg
                .and_then(|a| a.parse().ok())
                .ok_or_else(|| format!("failpoint spec `{spec}`: torn needs `:bytes`"))?;
            Action::Torn(bytes)
        }
        other => return Err(format!("failpoint spec `{spec}`: unknown action `{other}`")),
    };
    Ok((site.to_string(), SiteState { action, nth, hits: 0 }))
}

/// Consults `FAILPOINTS` exactly once and transitions `STATE` out of
/// `UNKNOWN`. Malformed env specs are reported on stderr and skipped —
/// a typo in an operator's environment must not change checker
/// behaviour silently, but must not abort it either.
fn init_from_env() {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    // Re-check under the lock so two racing first calls don't both parse.
    if STATE.load(Ordering::Relaxed) != UNKNOWN {
        return;
    }
    let mut any = false;
    if let Ok(raw) = std::env::var("FAILPOINTS") {
        for spec in raw.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            match parse_spec(spec) {
                Ok((site, state)) => {
                    reg.insert(site, state);
                    any = true;
                }
                Err(msg) => eprintln!("warning: ignoring {msg}"),
            }
        }
    }
    STATE.store(if any { ARMED } else { DISARMED }, Ordering::Release);
}

/// Returns `true` if any fault site is currently armed. One relaxed
/// load in the steady state.
#[must_use]
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        UNKNOWN => {
            init_from_env();
            STATE.load(Ordering::Relaxed) == ARMED
        }
        DISARMED => false,
        _ => true,
    }
}

/// Hits the named fault site. Disarmed (the production default) this is
/// a single relaxed atomic load. Armed, it executes `abort` / `panic` /
/// `sleep` actions itself and returns `torn` faults for the caller to
/// honour; sites with no matching spec, or whose `@nth` hit has not
/// been reached, return `None`.
pub fn fire(site: &str) -> Option<Fault> {
    if !armed() {
        return None;
    }
    let action = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let state = reg.get_mut(site)?;
        state.hits += 1;
        match state.nth {
            Some(n) if state.hits != n => return None,
            _ => state.action.clone(),
        }
    };
    match action {
        Action::Abort => {
            eprintln!("failpoint `{site}`: aborting process");
            std::process::abort();
        }
        Action::Panic(msg) => panic!("failpoint `{site}`: {msg}"),
        Action::SleepMs(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Action::Torn(bytes) => Some(Fault::Torn(bytes)),
    }
}

/// Arms one fault site programmatically from a `site=action[@nth]`
/// spec, for in-process tests. Returns an error string on a malformed
/// spec. Overwrites any previous spec for the same site and resets its
/// hit counter.
pub fn arm(spec: &str) -> Result<(), String> {
    // Make sure env parsing has happened first so it cannot later
    // clobber STATE back to DISARMED.
    let _ = armed();
    let (site, state) = parse_spec(spec)?;
    registry().lock().unwrap_or_else(|e| e.into_inner()).insert(site, state);
    STATE.store(ARMED, Ordering::Release);
    Ok(())
}

/// Disarms every fault site and restores the zero-cost fast path.
pub fn disarm_all() {
    let _ = armed();
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    STATE.store(DISARMED, Ordering::Release);
}

/// Number of times the named site has been hit since it was armed (the
/// count includes hits that did not fire because of `@nth`). Returns 0
/// for unknown sites. Intended for test assertions.
#[must_use]
pub fn hits(site: &str) -> u64 {
    if !armed() {
        return 0;
    }
    registry().lock().unwrap_or_else(|e| e.into_inner()).get(site).map_or(0, |s| s.hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so tests that arm sites must not
    // assume exclusive ownership of STATE; each uses unique site names
    // and disarms only what it armed is not possible (disarm_all is
    // global), so the suite serializes via a lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_fire_is_none() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        assert!(!armed());
        assert_eq!(fire("nonexistent.site"), None);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(parse_spec("no-equals").is_err());
        assert!(parse_spec("=abort").is_err());
        assert!(parse_spec("s=frobnicate").is_err());
        assert!(parse_spec("s=sleep").is_err());
        assert!(parse_spec("s=torn:xyz").is_err());
        assert!(parse_spec("s=abort@0").is_err());
        assert!(parse_spec("s=abort@x").is_err());
    }

    #[test]
    fn parse_accepts_full_grammar() {
        let (site, st) = parse_spec("shard.write=torn:17@2").unwrap();
        assert_eq!(site, "shard.write");
        assert_eq!(st.nth, Some(2));
        assert!(matches!(st.action, Action::Torn(17)));
        let (_, st) = parse_spec("sweep.class=panic:boom").unwrap();
        assert!(matches!(st.action, Action::Panic(ref m) if m == "boom"));
        let (_, st) = parse_spec("sweep.class=panic").unwrap();
        assert!(matches!(st.action, Action::Panic(ref m) if m == "failpoint"));
        let (_, st) = parse_spec("s=sleep:40").unwrap();
        assert!(matches!(st.action, Action::SleepMs(40)));
    }

    #[test]
    fn torn_fires_only_on_nth_hit() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("t.site=torn:9@3").unwrap();
        assert_eq!(fire("t.site"), None);
        assert_eq!(fire("t.site"), None);
        assert_eq!(fire("t.site"), Some(Fault::Torn(9)));
        assert_eq!(fire("t.site"), None, "nth fires exactly once");
        assert_eq!(hits("t.site"), 4);
        disarm_all();
    }

    #[test]
    fn torn_without_nth_fires_every_hit() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("e.site=torn:5").unwrap();
        assert_eq!(fire("e.site"), Some(Fault::Torn(5)));
        assert_eq!(fire("e.site"), Some(Fault::Torn(5)));
        disarm_all();
        assert_eq!(fire("e.site"), None);
    }

    #[test]
    fn panic_action_panics_with_payload() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("p.site=panic:kaboom").unwrap();
        let err = std::panic::catch_unwind(|| fire("p.site")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("kaboom"), "payload was: {msg}");
        disarm_all();
    }

    #[test]
    fn sleep_action_delays() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("slow.site=sleep:30").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(fire("slow.site"), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        disarm_all();
    }

    #[test]
    fn unknown_site_is_noop_even_when_armed() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm("known.site=torn:1").unwrap();
        assert_eq!(fire("some.other.site"), None);
        assert_eq!(hits("some.other.site"), 0);
        disarm_all();
    }
}
