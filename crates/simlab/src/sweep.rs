//! Sharded, resumable verification sweeps — the §IV-B experiment as a
//! production pipeline.
//!
//! [`verify_all`](crate::verify_all) answers the paper's question in one
//! shot; this module turns it into a reusable pipeline over the
//! **scheduler matrix** the paper leaves as future work (§V):
//!
//! * a sweep **cell** is a pair of [`AlgoSpec`] (the paper rules, the
//!   verified rules, or a named ablation of [`RuleOptions`]) and
//!   [`SchedSpec`] (FSYNC, round-robin, seeded random subsets, or one
//!   of the exhaustive model checkers: the SSYNC adversary, the
//!   crash-fault adversary, or the ASYNC phase-interleaving
//!   adversary);
//! * the 3652-class space is split into contiguous **shards**, each
//!   fanned across one of the `parallel` executors (the
//!   crossbeam-deque **work-stealing pool** by default for every
//!   non-FSYNC cell — the per-class adversary/crash checker runs are
//!   wildly skewed: a proof explores thousands of states where a
//!   refutation stops at its first bad terminal) and persisted as a
//!   serde-serialised [`ShardRecord`]. Work items carry their class
//!   index and results are merged in index order, so the record
//!   stream is **byte-identical for every worker-thread count** —
//!   `tests/determinism.rs` pins this for the model-checking cells;
//! * a **merge** step loads the shard records, checks they tile the
//!   class space exactly, and folds them into a [`SweepSummary`];
//! * reruns with `resume` skip shards whose record on disk already
//!   matches the cell, so an interrupted sweep continues where it
//!   stopped and a finished sweep is free to re-query.
//!
//! The `sweep` binary exposes the pipeline on the command line; the
//! golden-file regression test pins the merged summary for the
//! verified-rules FSYNC cell at 3652/3652 gathered.
//!
//! # Fault tolerance (DESIGN.md §17)
//!
//! Long cells survive crashes, kills and poisoned classes:
//!
//! * shard records are published **atomically** (tmp file + fsync +
//!   rename) and carry a **self-digest** verified on resume; records
//!   that fail to parse, fail their digest, or hold inconsistent
//!   results are **quarantined** to `<record>.corrupt` with a warning
//!   and recomputed;
//! * each computing shard appends completed class chunks to an
//!   intra-shard **journal** (`*.journal`, length-and-digest-framed
//!   JSONL), so a killed process resumes mid-shard instead of
//!   re-running the whole range; the torn tail of a journal is
//!   detected by its framing and dropped;
//! * a **panicking class** is caught per item, degraded to a counted
//!   [`Outcome::Undecided`] row carrying the panic payload, and the
//!   rest of the shard keeps draining;
//! * wall-clock **watchdogs**: [`SweepConfig::class_timeout_ms`] bounds
//!   one class's check (yielding a `Timeout` undecided verdict), and
//!   [`SweepConfig::cell_deadline_secs`] checkpoints the journal and
//!   stops the sweep cleanly ([`SweepRun::DeadlineStopped`]) for a
//!   later resume.
//!
//! All of it is exercised deterministically through the `failpoints`
//! crate (`FAILPOINTS=site=action` in tests); with failpoints disarmed
//! every path costs one relaxed atomic load.

use gathering::rules::RuleOptions;
use gathering::SevenGather;
use robots::adversary::{self, AdversaryOptions, AdversaryVerdict, Checker, DEFAULT_FAIR_DEPTH};
use robots::async_model::{AsyncChecker, AsyncOptions, AsyncVerdict};
use robots::explore::UndecidedReason;
use robots::faults::{self, CrashChecker, CrashOptions, CrashVerdict};
use robots::sched::{RandomSubset, RoundRobin};
use robots::{engine, sched, Algorithm, Configuration, Limits, Outcome};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use trigrid::Coord;

/// Which algorithm variant a sweep cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AlgoSpec {
    /// Algorithm 1 exactly as printed ([`SevenGather::paper`]).
    Paper,
    /// The completed rule set ([`SevenGather::verified`]).
    Verified,
    /// A custom [`RuleOptions`] combination without the synthesized
    /// overrides ([`SevenGather::with_options`]) — the ablation axis.
    Ablation(RuleOptions),
}

impl AlgoSpec {
    /// Parses an algorithm spec: `paper`, `verified`, or a
    /// `+`-separated ablation flag list out of `fix25`, `conn`, `prio`,
    /// `compl`, `mirror` (e.g. `fix25+conn+compl`). `none` names the
    /// empty ablation (printed rules via the ablation path).
    #[must_use]
    pub fn parse(s: &str) -> Option<AlgoSpec> {
        match s {
            "paper" => return Some(AlgoSpec::Paper),
            "verified" => return Some(AlgoSpec::Verified),
            _ => {}
        }
        let mut opts = RuleOptions::PAPER;
        if s != "none" {
            for flag in s.split('+') {
                match flag {
                    "fix25" => opts.fix_line25_misprint = true,
                    "conn" => opts.connectivity_guard = true,
                    "prio" => opts.priority_guard = true,
                    "compl" => opts.completion = true,
                    "mirror" => opts.mirror_line23_guard = true,
                    _ => return None,
                }
            }
        }
        Some(AlgoSpec::Ablation(opts))
    }

    /// Canonical name used in filenames and records.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            AlgoSpec::Paper => "paper".to_string(),
            AlgoSpec::Verified => "verified".to_string(),
            AlgoSpec::Ablation(opts) => {
                let mut flags = Vec::new();
                if opts.fix_line25_misprint {
                    flags.push("fix25");
                }
                if opts.connectivity_guard {
                    flags.push("conn");
                }
                if opts.priority_guard {
                    flags.push("prio");
                }
                if opts.completion {
                    flags.push("compl");
                }
                if opts.mirror_line23_guard {
                    flags.push("mirror");
                }
                if flags.is_empty() {
                    "none".to_string()
                } else {
                    flags.join("+")
                }
            }
        }
    }

    /// Instantiates the algorithm.
    #[must_use]
    pub fn build(&self) -> SevenGather {
        match self {
            AlgoSpec::Paper => SevenGather::paper(),
            AlgoSpec::Verified => SevenGather::verified(),
            AlgoSpec::Ablation(opts) => SevenGather::with_options(*opts),
        }
    }
}

/// Which activation scheduler a sweep cell runs under.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SchedSpec {
    /// Everyone, every round — the paper's model; livelock detection by
    /// class repetition is sound here and stays on.
    Fsync,
    /// Exactly one robot per round (maximally sequential adversary).
    RoundRobin,
    /// Each robot independently active with probability `p`; the
    /// per-class generator is derived from `seed` and the class index,
    /// so every cell is reproducible run-to-run and shard-to-shard.
    RandomSubset {
        /// Base seed for the sweep cell.
        seed: u64,
        /// Activation probability in `(0, 1]`.
        p: f64,
    },
    /// The exhaustive SSYNC adversary model checker
    /// ([`robots::adversary`]): every class is classified as
    /// adversary-proof, refuted (with a replayable counterexample
    /// schedule stored in the record), or undecided at fair-cycle
    /// search depth `depth`.
    Adversary {
        /// Fair-cycle search depth (`D` of `--sched adversary:D`).
        depth: usize,
    },
    /// The exhaustive crash-fault model checker ([`robots::faults`]):
    /// the SSYNC adversary may additionally crash up to `f` robots
    /// permanently, and every class is classified as f-crash-proof,
    /// refuted (with a replayable schedule + crash assignment), or
    /// undecided at fair-cycle search depth `depth`.
    Crash {
        /// Maximal number of crashed robots (`F` of `--sched crash:F`).
        f: u8,
        /// Fair-cycle search depth (`D` of `--sched crash:F:D`).
        depth: usize,
    },
    /// The exhaustive ASYNC phase-interleaving model checker
    /// ([`robots::async_model`]): the adversary advances one robot's
    /// Look-Compute-Move phase per tick (pending moves execute from
    /// possibly stale snapshots), and every class is classified as
    /// async-proof, refuted (with a replayable tick schedule), or
    /// undecided at fair-cycle search depth `depth`.
    LcmAsync {
        /// Fair-cycle search depth (`D` of `--sched lcm-async:D`).
        depth: usize,
    },
}

/// The scheduler specs `SchedSpec::parse` accepts, for CLI error
/// messages and usage strings. Every spec listed here round-trips
/// through [`SchedSpec::parse`] (pinned by a unit test below).
pub const SCHED_SPECS: &str =
    "fsync, round-robin (rr), random[:SEED:P], adversary[:DEPTH], crash:F[:DEPTH], \
     lcm-async[:DEPTH]";

/// One concrete example per spec family of [`SCHED_SPECS`], with and
/// without the optional parameters — the round-trip test's fixture.
pub const SCHED_SPEC_EXAMPLES: &[&str] = &[
    "fsync",
    "round-robin",
    "rr",
    "random",
    "random:9:0.25",
    "adversary",
    "adversary:5",
    "crash:1",
    "crash:2:6",
    "lcm-async",
    "lcm-async:5",
];

impl SchedSpec {
    /// Parses a scheduler spec: `fsync`, `round-robin` (or `rr`),
    /// `random` (optionally `random:SEED:P`), `adversary` (optionally
    /// `adversary:DEPTH`), `crash:F` (optionally `crash:F:DEPTH`) with
    /// `F <= 7` crashed robots, or `lcm-async` (optionally
    /// `lcm-async:DEPTH`).
    #[must_use]
    pub fn parse(s: &str) -> Option<SchedSpec> {
        match s {
            "fsync" => return Some(SchedSpec::Fsync),
            "round-robin" | "rr" => return Some(SchedSpec::RoundRobin),
            "random" => return Some(SchedSpec::RandomSubset { seed: 1, p: 0.5 }),
            "adversary" => return Some(SchedSpec::Adversary { depth: DEFAULT_FAIR_DEPTH }),
            "lcm-async" => return Some(SchedSpec::LcmAsync { depth: DEFAULT_FAIR_DEPTH }),
            _ => {}
        }
        let mut parts = s.split(':');
        match parts.next() {
            Some("random") => {
                let seed = parts.next()?.parse().ok()?;
                let p: f64 = parts.next()?.parse().ok()?;
                (parts.next().is_none() && p > 0.0 && p <= 1.0)
                    .then_some(SchedSpec::RandomSubset { seed, p })
            }
            Some("adversary") => {
                let depth: usize = parts.next()?.parse().ok()?;
                (parts.next().is_none() && depth > 0).then_some(SchedSpec::Adversary { depth })
            }
            Some("crash") => {
                let f: u8 = parts.next()?.parse().ok()?;
                let depth: usize = match parts.next() {
                    Some(d) => d.parse().ok()?,
                    None => DEFAULT_FAIR_DEPTH,
                };
                // At most n - 1 robots can crash and n <= MAX_SWEEP_N;
                // the per-cell f < n check lives in
                // [`SweepConfig::validate`].
                (parts.next().is_none() && usize::from(f) < MAX_SWEEP_N && depth > 0)
                    .then_some(SchedSpec::Crash { f, depth })
            }
            Some("lcm-async") => {
                let depth: usize = parts.next()?.parse().ok()?;
                (parts.next().is_none() && depth > 0).then_some(SchedSpec::LcmAsync { depth })
            }
            _ => None,
        }
    }

    /// Canonical name used in filenames and records.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            SchedSpec::Fsync => "fsync".to_string(),
            SchedSpec::RoundRobin => "round-robin".to_string(),
            SchedSpec::RandomSubset { seed, p } => format!("random-s{seed}-p{p}"),
            SchedSpec::Adversary { depth } if *depth == DEFAULT_FAIR_DEPTH => {
                "adversary".to_string()
            }
            SchedSpec::Adversary { depth } => format!("adversary-d{depth}"),
            SchedSpec::Crash { f, depth } if *depth == DEFAULT_FAIR_DEPTH => format!("crash-f{f}"),
            SchedSpec::Crash { f, depth } => format!("crash-f{f}-d{depth}"),
            SchedSpec::LcmAsync { depth } if *depth == DEFAULT_FAIR_DEPTH => {
                "lcm-async".to_string()
            }
            SchedSpec::LcmAsync { depth } => format!("lcm-async-d{depth}"),
        }
    }
}

/// Smallest robot count a sweep cell supports (a single robot is
/// trivially gathered; the class spaces of interest start at two).
pub const MIN_SWEEP_N: usize = 2;

/// Largest robot count a sweep cell supports, bounded by the packed
/// class key's capacity ([`robots::PackedClass::MAX_ROBOTS`]).
pub const MAX_SWEEP_N: usize = robots::PackedClass::MAX_ROBOTS;

/// Full description of one sweep cell plus its execution knobs.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The algorithm axis.
    pub algo: AlgoSpec,
    /// The scheduler axis.
    pub sched: SchedSpec,
    /// Number of robots (7 for the paper's experiment; any
    /// [`MIN_SWEEP_N`]`..=`[`MAX_SWEEP_N`] sweeps soundly).
    pub n: usize,
    /// Number of contiguous shards the class space is split into.
    pub shards: usize,
    /// Worker threads per shard (`0` = all cores).
    pub threads: usize,
    /// Force the work-stealing executor on (`Some(true)`), off
    /// (`Some(false)`), or pick by scheduler (`None`: stealing for
    /// non-FSYNC cells, whose runtimes are skewed by step-limit items).
    pub stealing: Option<bool>,
    /// Per-execution limits. Livelock detection is automatically
    /// disabled for non-deterministic schedulers.
    pub limits: Limits,
    /// Cooperative per-class wall-clock deadline in milliseconds for
    /// model-checking cells: a class whose check outlives it is
    /// degraded to an `Undecided` verdict with
    /// [`UndecidedReason::Timeout`]. Timing-dependent by nature, so
    /// the counter-budgeted default (`None`) keeps digests
    /// reproducible; arm it for exploratory cells where one
    /// pathological class must not wedge a sweep.
    pub class_timeout_ms: Option<u64>,
    /// Deterministic per-class byte budget in mebibytes for
    /// model-checking cells: a class whose live exploration footprint
    /// (a pure function of interned class/state/edge counts) exceeds it
    /// is degraded to an `Undecided` verdict with
    /// [`UndecidedReason::MemBudget`]. Unlike the wall-clock timeout
    /// this trips identically across thread counts, shard layouts and
    /// scratch reuse, so budgeted sweeps stay reproducible.
    pub mem_budget_mb: Option<usize>,
    /// Wall-clock deadline in seconds for the whole cell: once it
    /// passes, the running shard checkpoints its journal at the next
    /// chunk boundary and [`run_sweep_with`] returns
    /// [`SweepRun::DeadlineStopped`] instead of an error — rerun with
    /// resume to continue exactly there. `None` (the default) never
    /// stops.
    pub cell_deadline_secs: Option<u64>,
    /// Classes per journal checkpoint chunk while a shard computes
    /// (`None` = [`DEFAULT_JOURNAL_CHUNK`]). Smaller chunks lose less
    /// work to a kill but append to the journal more often.
    pub journal_chunk: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            algo: AlgoSpec::Verified,
            sched: SchedSpec::Fsync,
            n: 7,
            shards: 8,
            threads: 0,
            stealing: None,
            limits: Limits::default(),
            class_timeout_ms: None,
            mem_budget_mb: None,
            cell_deadline_secs: None,
            journal_chunk: None,
        }
    }
}

impl SweepConfig {
    /// Whether this cell uses the work-stealing executor.
    #[must_use]
    pub fn use_stealing(&self) -> bool {
        self.stealing.unwrap_or(self.sched != SchedSpec::Fsync)
    }

    /// The limits actually applied per execution (livelock detection
    /// off for schedulers where repetition is not proof of livelock).
    #[must_use]
    pub fn effective_limits(&self) -> Limits {
        match self.sched {
            SchedSpec::Fsync => self.limits,
            _ => Limits { detect_livelock: false, ..self.limits },
        }
    }

    /// Checks that the cell is one the pipeline can sweep soundly:
    /// `n` within the packed-key capacity and, for crash cells, a
    /// crash budget below the robot count (crashing every robot leaves
    /// nothing to gather). Call before running: an invalid cell must
    /// fail fast, never panic mid-shard or write bogus records.
    ///
    /// # Errors
    /// A human-readable description of the unsupported combination.
    pub fn validate(&self) -> Result<(), String> {
        if !(MIN_SWEEP_N..=MAX_SWEEP_N).contains(&self.n) {
            return Err(format!(
                "unsupported robot count n={}: packed class keys support n in \
                 {MIN_SWEEP_N}..={MAX_SWEEP_N}",
                self.n
            ));
        }
        if let SchedSpec::Crash { f, .. } = self.sched {
            if usize::from(f) >= self.n {
                return Err(format!(
                    "unsupported crash budget f={f} for n={}: at most n - 1 = {} robots \
                     may crash (use --sched crash:F with F < N)",
                    self.n,
                    self.n - 1
                ));
            }
        }
        Ok(())
    }

    /// `algo-sched` slug for filenames, suffixed with `-nN` for robot
    /// counts other than the paper's seven (whose artifact names
    /// predate the `n` axis and stay stable).
    #[must_use]
    pub fn slug(&self) -> String {
        let base = format!("{}-{}", self.algo.name(), self.sched.name());
        if self.n == 7 {
            base
        } else {
            format!("{base}-n{}", self.n)
        }
    }

    /// Path of the record file for `shard`.
    #[must_use]
    pub fn shard_path(&self, out_dir: &Path, shard: usize) -> PathBuf {
        out_dir.join(format!("sweep-{}-shard{:04}of{:04}.json", self.slug(), shard, self.shards))
    }

    /// Path of the intra-shard progress journal for `shard`: completed
    /// class chunks land here while the shard computes, and a resumed
    /// run continues from the journal's longest valid prefix. Deleted
    /// once the shard's record is published.
    #[must_use]
    pub fn journal_path(&self, out_dir: &Path, shard: usize) -> PathBuf {
        out_dir.join(format!("sweep-{}-shard{:04}of{:04}.journal", self.slug(), shard, self.shards))
    }

    /// Path of the merged summary file.
    #[must_use]
    pub fn summary_path(&self, out_dir: &Path) -> PathBuf {
        out_dir.join(format!("sweep-{}-summary.json", self.slug()))
    }
}

/// The verdict for one class, tagged with its global enumeration index
/// so shards can be merged and validated.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassOutcome {
    /// Index of the class in enumeration order (global, not per-shard).
    pub index: usize,
    /// How the execution ended. For adversary cells this is the
    /// *witness* outcome: the counterexample's terminal outcome for
    /// refuted classes, `Gathered {{ rounds: 0 }}` for proofs, and
    /// `StepLimit` for undecided classes — use `verdict` for the
    /// authoritative classification.
    pub outcome: Outcome,
    /// Deterministic work measure: rounds executed for scheduled cells,
    /// states explored for adversary/crash cells. Feeds
    /// `BENCH_sweep.json`.
    pub expanded: usize,
    /// The model-checking verdict (adversary cells only).
    pub verdict: Option<AdversaryVerdict>,
    /// The crash-fault model-checking verdict (crash cells only;
    /// absent in records written before the crash subsystem).
    #[serde(default)]
    pub crash: Option<CrashVerdict>,
    /// The ASYNC model-checking verdict (lcm-async cells only; absent
    /// in records written before the ASYNC subsystem).
    #[serde(default)]
    pub lcm_async: Option<AsyncVerdict>,
    /// Panic payload when this class's check panicked and the sweep
    /// degraded it to a counted undecided row instead of killing the
    /// cell ([`UndecidedReason::Panicked`]); absent otherwise.
    #[serde(default)]
    pub panic: Option<String>,
}

/// An out-of-band telemetry reading riding along a shard record or a
/// merged summary: phase wall times, memo hit/miss tallies, BFS shape
/// histograms and work-stealing pool activity (see DESIGN.md §16).
///
/// Wall times and pool activity are inherently nondeterministic, so
/// this wrapper's `PartialEq` deliberately ignores the reading:
/// metrics are observability, never part of result equality. Every
/// invariance the pipeline asserts (thread-count invariance, resume
/// equality, digest pinning) is about *classifications*, and those
/// comparisons must keep passing whether telemetry readings differ,
/// are disabled, or are absent.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsBlock {
    /// The merged telemetry snapshot.
    pub snapshot: telemetry::Snapshot,
}

impl PartialEq for MetricsBlock {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// The persisted result of one shard of a sweep cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardRecord {
    /// Algorithm name ([`AlgoSpec::name`]).
    pub algo: String,
    /// Scheduler name ([`SchedSpec::name`]).
    pub sched: String,
    /// Number of robots.
    pub robots: usize,
    /// Round cap the executions ran under. A record computed with a
    /// different cap is not reusable: step-limit outcomes depend on it.
    pub max_rounds: usize,
    /// This shard's index in `0..shards`.
    pub shard: usize,
    /// Total number of shards in the sweep.
    pub shards: usize,
    /// First class index covered (inclusive).
    pub start: usize,
    /// One past the last class index covered.
    pub end: usize,
    /// Per-class outcomes, in enumeration order.
    pub results: Vec<ClassOutcome>,
    /// Telemetry reading for this shard's work (absent in records
    /// written before the observability layer; never affects resume
    /// matching, merging or digests).
    #[serde(default)]
    pub metrics: Option<MetricsBlock>,
    /// FNV-1a self-digest (16 hex digits) over the record's canonical
    /// compact serialization with this field blank, written at publish
    /// time and verified on resume: silent on-disk corruption that
    /// still parses as JSON cannot sneak back into a merged summary.
    /// Absent in records written before the fault-tolerance layer;
    /// those are accepted after the structural checks alone.
    #[serde(default)]
    pub record_digest: Option<String>,
}

impl ShardRecord {
    /// Whether this record is a complete, consistent result for
    /// `shard` of the given sweep cell (used by resume).
    #[must_use]
    pub fn matches(&self, cfg: &SweepConfig, shard: usize, start: usize, end: usize) -> bool {
        self.config_matches(cfg, shard, start, end) && self.validate_results(cfg).is_ok()
    }

    /// The cheap identity half of [`ShardRecord::matches`]: does this
    /// record describe `shard` of this cell at all? A mismatch here is
    /// a *stale* record (different config), not a corrupt one, so
    /// resume silently recomputes instead of quarantining.
    fn config_matches(&self, cfg: &SweepConfig, shard: usize, start: usize, end: usize) -> bool {
        self.algo == cfg.algo.name()
            && self.sched == cfg.sched.name()
            && self.robots == cfg.n
            && self.max_rounds == cfg.limits.max_rounds
            && self.shard == shard
            && self.shards == cfg.shards
            && self.start == start
            && self.end == end
    }

    /// Deep per-record validation of the result rows: the range must
    /// tile exactly (right length, consecutive indices) and every row
    /// must carry exactly the verdict column the cell's scheduler
    /// produces. A record that fails this *while claiming to be this
    /// shard* is corrupt and gets quarantined on resume.
    ///
    /// # Errors
    /// A human-readable description of the first inconsistency.
    fn validate_results(&self, cfg: &SweepConfig) -> Result<(), String> {
        if self.results.len() != self.end - self.start {
            return Err(format!(
                "{} results for range {}..{}",
                self.results.len(),
                self.start,
                self.end
            ));
        }
        let (want_adv, want_crash, want_async) = match cfg.sched {
            SchedSpec::Adversary { .. } => (true, false, false),
            SchedSpec::Crash { .. } => (false, true, false),
            SchedSpec::LcmAsync { .. } => (false, false, true),
            _ => (false, false, false),
        };
        for (res, expected) in self.results.iter().zip(self.start..self.end) {
            if res.index != expected {
                return Err(format!("result index {} where {expected} was expected", res.index));
            }
            if res.verdict.is_some() != want_adv
                || res.crash.is_some() != want_crash
                || res.lcm_async.is_some() != want_async
            {
                return Err(format!(
                    "class {expected} carries verdict columns foreign to a {} cell",
                    cfg.sched.name()
                ));
            }
        }
        Ok(())
    }
}

/// Per-cell tallies of the adversary model checker's verdicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdversaryCounts {
    /// Classes certified: every fair SSYNC schedule gathers.
    pub proof: usize,
    /// Classes refuted by a concrete counterexample schedule.
    pub refuted: usize,
    /// Classes with a cyclic class graph and no fair cycle found.
    pub undecided: usize,
}

/// The merged verdict of a sweep cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Algorithm name.
    pub algo: String,
    /// Scheduler name.
    pub sched: String,
    /// Number of robots.
    pub robots: usize,
    /// Number of shards merged.
    pub shards: usize,
    /// Total classes covered.
    pub total: usize,
    /// Classes that gathered.
    pub gathered: usize,
    /// Classes stuck in a non-gathered fixpoint.
    pub stuck: usize,
    /// Classes that livelocked (FSYNC class-repetition detection).
    pub livelock: usize,
    /// Classes that collided.
    pub collision: usize,
    /// Classes that disconnected.
    pub disconnected: usize,
    /// Classes that hit the round cap.
    pub step_limit: usize,
    /// Classes whose witness outcome is an undecided checker verdict
    /// (a search budget exhausted). Zero for scheduled cells; for
    /// model-checking cells it equals the verdict tally's `undecided`.
    #[serde(default)]
    pub undecided: usize,
    /// Maximum rounds-to-gather over gathered classes.
    pub max_rounds: usize,
    /// Mean rounds-to-gather over gathered classes.
    pub mean_rounds: f64,
    /// Indices of the first non-gathering classes (capped, for triage).
    pub failure_indices: Vec<usize>,
    /// Model-checking verdict tallies (adversary, crash **and**
    /// lcm-async cells; the `sched` name says which model produced
    /// them).
    pub adversary: Option<AdversaryCounts>,
    /// Deterministic FNV-1a digest over the per-class verdict stream
    /// ([`verdict_digest`], as 16 hex digits), present for adversary
    /// and crash cells: two runs agree on this digest iff they
    /// classified every class identically.
    #[serde(default)]
    pub digest: Option<String>,
    /// Merged telemetry reading over all shards (absent for summaries
    /// merged from pre-observability records). Compares equal
    /// regardless of content — see [`MetricsBlock`].
    #[serde(default)]
    pub metrics: Option<MetricsBlock>,
}

impl SweepSummary {
    /// Whether every class gathered — Theorem 2 for the FSYNC cell.
    #[must_use]
    pub fn all_gathered(&self) -> bool {
        self.gathered == self.total
    }

    /// One-line human summary. Cells with undecided classes carry a
    /// trailing `UNDECIDED > 0` flag so pipelines (and `--strict`
    /// sweeps) can spot incomplete tables at a glance.
    #[must_use]
    pub fn line(&self) -> String {
        if let Some(counts) = &self.adversary {
            let flag = if counts.undecided > 0 { " [UNDECIDED > 0]" } else { "" };
            return format!(
                "{}/{}: {} proof, {} refuted, {} undecided of {} classes{}",
                self.algo,
                self.sched,
                counts.proof,
                counts.refuted,
                counts.undecided,
                self.total,
                flag,
            );
        }
        format!(
            "{}/{}: {}/{} gathered (stuck {}, livelock {}, collision {}, disconnected {}, cap {}), rounds max={} mean={:.2}",
            self.algo,
            self.sched,
            self.gathered,
            self.total,
            self.stuck,
            self.livelock,
            self.collision,
            self.disconnected,
            self.step_limit,
            self.max_rounds,
            self.mean_rounds,
        )
    }
}

/// How many failure indices a summary retains.
const FAILURE_INDEX_CAP: usize = 64;

/// What [`run_sweep`] did for each shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStatus {
    /// The shard was executed in this run.
    Computed,
    /// A matching record existed on disk and was reused.
    Reused,
}

/// Progress report of a completed [`run_sweep`] call.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The merged summary (also written next to the shard files).
    pub summary: SweepSummary,
    /// Per-shard status, in shard order.
    pub shard_status: Vec<ShardStatus>,
    /// Total work across all classes (sum of [`ClassOutcome::expanded`]):
    /// rounds executed for scheduled cells, classes explored for
    /// adversary cells.
    pub expanded: u64,
    /// Deterministic digest of the per-class verdict stream
    /// ([`verdict_digest`]).
    pub digest: u64,
}

/// One cell's performance record, written as `BENCH_sweep.json` by the
/// sweep CLI so the perf trajectory has a tracked baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Cell slug (`algo-sched`).
    pub cell: String,
    /// Number of robots.
    pub robots: usize,
    /// Classes covered.
    pub total: usize,
    /// Shards the run used.
    pub shards: usize,
    /// Worker threads per shard (0 = all cores).
    pub threads: usize,
    /// Shards actually computed this run (the rest were resumed).
    pub computed_shards: usize,
    /// Wall-clock seconds for the whole cell.
    pub elapsed_secs: f64,
    /// Classes per wall-clock second.
    pub classes_per_sec: f64,
    /// Total work: rounds executed, or states explored for
    /// adversary/crash cells.
    pub states_expanded: u64,
    /// Model-checking verdict tallies (adversary and crash cells), so
    /// the bench baseline records *what* was classified alongside how
    /// fast.
    #[serde(default)]
    pub verdicts: Option<AdversaryCounts>,
}

/// Writes the run's [`BenchRecord`]s (one per cell) atomically to
/// `path` as a JSON array.
///
/// # Errors
/// Propagates I/O errors from the target directory.
pub fn write_bench(path: &Path, records: &[BenchRecord]) -> io::Result<()> {
    write_json_atomic(path, &records.to_vec())
}

/// Splits `total` items into `shards` near-equal contiguous ranges.
/// Every item is covered exactly once; empty ranges only occur when
/// `shards > total`.
#[must_use]
pub fn shard_ranges(total: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    let base = total / shards;
    let extra = total % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// The adversary checker options for a given search depth and robot
/// count: the state/edge budgets scale with `n` so wide cells cover
/// their whole connected class space ([`AdversaryOptions::for_robots`];
/// exactly the historical defaults for n <= 7), while the fair-cycle
/// depth follows the scheduler spec.
#[must_use]
fn adversary_options(depth: usize, robots: usize) -> AdversaryOptions {
    AdversaryOptions { fair_depth: depth, ..AdversaryOptions::for_robots(robots) }
}

/// Maps a model-checking verdict onto the witness [`Outcome`] stored in
/// the record's `outcome` column (see [`ClassOutcome::outcome`]).
#[must_use]
pub fn outcome_of_verdict(verdict: &AdversaryVerdict, _limits: Limits) -> Outcome {
    match verdict {
        AdversaryVerdict::Proof => Outcome::Gathered { rounds: 0 },
        AdversaryVerdict::Refuted { outcome, .. } => outcome.clone(),
        AdversaryVerdict::Undecided { reason, .. } => Outcome::Undecided { reason: *reason },
    }
}

/// [`outcome_of_verdict`] for crash-fault verdicts.
#[must_use]
pub fn outcome_of_crash_verdict(verdict: &CrashVerdict, _limits: Limits) -> Outcome {
    match verdict {
        CrashVerdict::Proof => Outcome::Gathered { rounds: 0 },
        CrashVerdict::Refuted { outcome, .. } => outcome.clone(),
        CrashVerdict::Undecided { reason, .. } => Outcome::Undecided { reason: *reason },
    }
}

/// [`outcome_of_verdict`] for ASYNC verdicts ([`AsyncVerdict`] and
/// [`CrashVerdict`] share the generic explore verdict type, so this is
/// the same mapping under the ASYNC cell's name).
#[must_use]
pub fn outcome_of_async_verdict(verdict: &AsyncVerdict, limits: Limits) -> Outcome {
    outcome_of_crash_verdict(verdict, limits)
}

/// Deterministic per-class work measure for scheduled executions.
#[must_use]
fn rounds_of(outcome: &Outcome) -> usize {
    match outcome {
        Outcome::Gathered { rounds }
        | Outcome::StuckFixpoint { rounds }
        | Outcome::StepLimit { rounds } => *rounds,
        Outcome::Livelock { entry, period } => entry + period,
        Outcome::Collision { round, .. } => round + 1,
        Outcome::Disconnected { round } => *round,
        Outcome::Undecided { .. } => 0,
    }
}

/// Runs one class of an adversary cell through a shared checker.
#[must_use]
fn run_class_checked<A: Algorithm + ?Sized>(
    initial: &Configuration,
    checker: &Checker<'_, A>,
    index: usize,
    limits: Limits,
) -> ClassOutcome {
    let report = checker.check(initial);
    ClassOutcome {
        index,
        outcome: outcome_of_verdict(&report.verdict, limits),
        expanded: report.classes,
        verdict: Some(report.verdict),
        crash: None,
        lcm_async: None,
        panic: None,
    }
}

/// Runs one class of a crash cell through a shared crash checker.
#[must_use]
fn run_class_crashed<A: Algorithm + ?Sized>(
    initial: &Configuration,
    checker: &CrashChecker<'_, A>,
    index: usize,
    limits: Limits,
) -> ClassOutcome {
    let report = checker.check(initial);
    ClassOutcome {
        index,
        outcome: outcome_of_crash_verdict(&report.verdict, limits),
        expanded: report.states,
        verdict: None,
        crash: Some(report.verdict),
        lcm_async: None,
        panic: None,
    }
}

/// Runs one class of an lcm-async cell through a shared ASYNC checker.
#[must_use]
fn run_class_async<A: Algorithm + ?Sized>(
    initial: &Configuration,
    checker: &AsyncChecker<'_, A>,
    index: usize,
    limits: Limits,
) -> ClassOutcome {
    let report = checker.check(initial);
    ClassOutcome {
        index,
        outcome: outcome_of_async_verdict(&report.verdict, limits),
        expanded: report.states,
        verdict: None,
        crash: None,
        lcm_async: Some(report.verdict),
        panic: None,
    }
}

/// The per-shard checker of a model-checking cell, if any.
enum CellChecker<'a, A: Algorithm + ?Sized> {
    Adversary(Checker<'a, A>),
    Crash(CrashChecker<'a, A>),
    Async(AsyncChecker<'a, A>),
}

impl<'a, A: Algorithm + ?Sized> CellChecker<'a, A> {
    /// Builds the shared checker for model-checking cells (`None` for
    /// scheduled cells). Shared per shard so the algorithm's
    /// equivariance group is computed once, not per class. `robots` is
    /// the cell's robot count; the checkers keep their historical
    /// 8-robot floor so n <= 7 cells stay byte-identical to the
    /// pre-parameterised pipeline. `threads` is the within-class BFS
    /// fan-out width: frontiers past the explorer's spill threshold fan
    /// across the work-stealing pool, so one giant class no longer
    /// serializes a shard's tail. Verdicts are identical at every
    /// width, so the across-class and within-class parallelism compose
    /// without affecting digests.
    fn for_spec(algo: &'a A, spec: SchedSpec, robots: usize, threads: usize) -> Option<Self> {
        let capacity = robots.max(8);
        match spec {
            SchedSpec::Adversary { depth } => {
                let mut checker =
                    Checker::for_robots(algo, adversary_options(depth, robots), capacity);
                checker.set_threads(threads);
                Some(CellChecker::Adversary(checker))
            }
            SchedSpec::Crash { f, depth } => {
                let mut checker =
                    CrashChecker::for_robots(algo, CrashOptions::new(f, depth), capacity);
                checker.set_threads(threads);
                Some(CellChecker::Crash(checker))
            }
            SchedSpec::LcmAsync { depth } => {
                let mut checker =
                    AsyncChecker::for_robots(algo, AsyncOptions::new(depth), capacity);
                checker.set_threads(threads);
                Some(CellChecker::Async(checker))
            }
            _ => None,
        }
    }

    fn run_class(&self, initial: &Configuration, index: usize, limits: Limits) -> ClassOutcome {
        match self {
            CellChecker::Adversary(c) => run_class_checked(initial, c, index, limits),
            CellChecker::Crash(c) => run_class_crashed(initial, c, index, limits),
            CellChecker::Async(c) => run_class_async(initial, c, index, limits),
        }
    }

    /// Arms the cooperative per-class wall-clock deadline on the
    /// underlying explorer (see [`SweepConfig::class_timeout_ms`]).
    fn set_class_timeout(&mut self, timeout: Option<Duration>) {
        match self {
            CellChecker::Adversary(c) => c.set_class_timeout(timeout),
            CellChecker::Crash(c) => c.set_class_timeout(timeout),
            CellChecker::Async(c) => c.set_class_timeout(timeout),
        }
    }

    /// Arms the deterministic per-class byte budget on the underlying
    /// explorer (see [`SweepConfig::mem_budget_mb`]).
    fn set_mem_budget(&mut self, budget: Option<usize>) {
        match self {
            CellChecker::Adversary(c) => c.set_mem_budget(budget),
            CellChecker::Crash(c) => c.set_mem_budget(budget),
            CellChecker::Async(c) => c.set_mem_budget(budget),
        }
    }

    /// Telemetry snapshot of the underlying explorer (phase times,
    /// memo hit rates, verdict tallies, BFS shape).
    fn metrics_snapshot(&self) -> telemetry::Snapshot {
        match self {
            CellChecker::Adversary(c) => c.metrics_snapshot(),
            CellChecker::Crash(c) => c.metrics_snapshot(),
            CellChecker::Async(c) => c.metrics_snapshot(),
        }
    }
}

/// Runs one class under the cell's scheduler and returns its outcome.
/// `index` is the global class index (it seeds the per-class random
/// scheduler, keeping outcomes independent of sharding and threading).
///
/// For [`SchedSpec::Adversary`] and [`SchedSpec::Crash`] this builds a
/// throwaway checker per call; batch paths ([`run_shard`],
/// [`find_failure`]) share one checker across the whole cell instead.
#[must_use]
pub fn run_class<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    spec: SchedSpec,
    index: usize,
    limits: Limits,
) -> Outcome {
    match spec {
        SchedSpec::Fsync => engine::run(initial, algo, limits).outcome,
        SchedSpec::RoundRobin => {
            sched::run_scheduled(initial, algo, &mut RoundRobin, limits).outcome
        }
        SchedSpec::RandomSubset { seed, p } => {
            let class_seed = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut s = RandomSubset::new(class_seed, p);
            sched::run_scheduled(initial, algo, &mut s, limits).outcome
        }
        SchedSpec::Adversary { .. } | SchedSpec::Crash { .. } | SchedSpec::LcmAsync { .. } => {
            let checker =
                CellChecker::for_spec(algo, spec, initial.len(), 1).expect("model-checking cell");
            checker.run_class(initial, index, limits).outcome
        }
    }
}

/// Default classes-per-chunk between journal checkpoints (and cell
/// deadline polls) while a shard computes. Small enough that a kill
/// loses under a minute of n=8 work, large enough that journal appends
/// are noise next to the checking itself.
pub const DEFAULT_JOURNAL_CHUNK: usize = 64;

/// FNV-1a over a byte string, via the same hasher the verdict digests
/// use.
fn fnv64_of(bytes: &[u8]) -> u64 {
    let mut h = adversary::Fnv64::new();
    h.write_all(bytes);
    h.finish()
}

/// Renders a caught panic payload for records and warnings.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The degraded row for a class whose check panicked: a counted
/// undecided outcome in the cell's own verdict column, with the panic
/// payload preserved for triage. The row participates in merges and
/// digests like any other undecided class, so one poisoned class never
/// kills a cell.
fn panicked_outcome(index: usize, sched: SchedSpec, msg: String) -> ClassOutcome {
    let reason = UndecidedReason::Panicked;
    let (verdict, crash, lcm_async) = match sched {
        SchedSpec::Adversary { depth } => {
            (Some(AdversaryVerdict::Undecided { depth, reason }), None, None)
        }
        SchedSpec::Crash { depth, .. } => {
            (None, Some(CrashVerdict::Undecided { depth, reason }), None)
        }
        SchedSpec::LcmAsync { depth } => {
            (None, None, Some(AsyncVerdict::Undecided { depth, reason }))
        }
        _ => (None, None, None),
    };
    ClassOutcome {
        index,
        outcome: Outcome::Undecided { reason },
        expanded: 0,
        verdict,
        crash,
        lcm_async,
        panic: Some(msg),
    }
}

/// First line of a shard journal: binds the journal to its cell and
/// range so a stale file (different config, renamed directory) can
/// never feed results into a foreign shard.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct JournalHeader {
    algo: String,
    sched: String,
    robots: usize,
    max_rounds: usize,
    shard: usize,
    shards: usize,
    start: usize,
    end: usize,
}

impl JournalHeader {
    fn for_cell(cfg: &SweepConfig, shard: usize, start: usize, end: usize) -> JournalHeader {
        JournalHeader {
            algo: cfg.algo.name(),
            sched: cfg.sched.name(),
            robots: cfg.n,
            max_rounds: cfg.limits.max_rounds,
            shard,
            shards: cfg.shards,
            start,
            end,
        }
    }
}

/// One completed chunk of classes, appended to the journal after the
/// chunk's results are in hand.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct JournalEntry {
    start: usize,
    end: usize,
    results: Vec<ClassOutcome>,
}

/// The longest valid prefix recovered from a shard journal: the
/// results it covers (contiguous from the shard start) and how many
/// bytes of the file they occupy, so a resumed writer can truncate a
/// torn tail before appending.
#[derive(Debug, Default)]
struct JournalPrefix {
    results: Vec<ClassOutcome>,
    valid_len: u64,
}

/// Frames one journal line: `<json-byte-len>:<fnv64-hex>:<json>\n`.
/// The length and digest make a torn or bit-flipped tail detectable
/// without trusting the JSON parser to fail.
fn frame_line(json: &str) -> String {
    format!("{}:{:016x}:{json}\n", json.len(), fnv64_of(json.as_bytes()))
}

/// Parses one framed journal line back to its JSON body; `None` marks
/// the line (and everything after it) as the invalid tail.
fn unframe_line(line: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(line).ok()?;
    let (len_s, rest) = text.split_once(':')?;
    let (digest_s, json) = rest.split_once(':')?;
    let len: usize = len_s.parse().ok()?;
    let digest = u64::from_str_radix(digest_s, 16).ok()?;
    (digest_s.len() == 16 && json.len() == len && fnv64_of(json.as_bytes()) == digest)
        .then(|| json.to_string())
}

/// Append-only writer for a shard journal. Appends are plain writes
/// (no fsync): the framing digest makes an unsynced or torn tail
/// detectable on resume, so the worst a crash costs is recomputing the
/// classes of the lost tail — never trusting them.
struct JournalWriter {
    file: std::fs::File,
}

impl JournalWriter {
    /// Starts a fresh journal (truncating any stale one) with the
    /// binding header as its first line.
    fn create(path: &Path, header: &JournalHeader) -> io::Result<JournalWriter> {
        let file =
            std::fs::OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        let mut writer = JournalWriter { file };
        let json = serde_json::to_string(header).map_err(io::Error::other)?;
        writer.append_line(&json, false)?;
        Ok(writer)
    }

    /// Reopens an existing journal whose first `valid_len` bytes were
    /// verified, truncating the invalid tail so new entries never
    /// concatenate onto torn bytes.
    fn resume(path: &Path, valid_len: u64) -> io::Result<JournalWriter> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        use std::io::Seek as _;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(JournalWriter { file })
    }

    fn append_entry(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let json = serde_json::to_string(entry).map_err(io::Error::other)?;
        self.append_line(&json, true)
    }

    fn append_line(&mut self, json: &str, failpoint: bool) -> io::Result<()> {
        use std::io::Write as _;
        let line = frame_line(json);
        // `shard.journal=abort@K` dies before the K-th entry lands
        // (the kill-resume tests' cut point); `shard.journal=torn:N`
        // leaves N bytes of the line, which the framing check must
        // reject on resume.
        if failpoint {
            if let Some(failpoints::Fault::Torn(n)) = failpoints::fire("shard.journal") {
                return self.file.write_all(&line.as_bytes()[..n.min(line.len())]);
            }
        }
        self.file.write_all(line.as_bytes())
    }
}

/// Recovers the longest valid prefix of a shard journal: a framed
/// header binding this exact cell and range, followed by contiguous,
/// index-aligned entries. Scanning stops at the first torn, corrupt,
/// foreign or non-contiguous line; everything before it is trusted
/// (each line carries its own digest), everything after is dropped.
fn read_journal(
    path: &Path,
    cfg: &SweepConfig,
    shard: usize,
    start: usize,
    end: usize,
) -> JournalPrefix {
    let empty = JournalPrefix::default();
    let Ok(bytes) = std::fs::read(path) else {
        return empty;
    };
    let mut results: Vec<ClassOutcome> = Vec::new();
    let mut expected = start;
    let mut saw_header = false;
    let mut pos = 0usize;
    let mut consumed = 0usize;
    while let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') {
        let Some(json) = unframe_line(&bytes[pos..pos + nl]) else {
            break;
        };
        if !saw_header {
            let Ok(header) = serde_json::from_str::<JournalHeader>(&json) else {
                break;
            };
            if header != JournalHeader::for_cell(cfg, shard, start, end) {
                break;
            }
            saw_header = true;
        } else {
            let Ok(entry) = serde_json::from_str::<JournalEntry>(&json) else {
                break;
            };
            let contiguous = entry.start == expected
                && entry.end > entry.start
                && entry.end <= end
                && entry.results.len() == entry.end - entry.start
                && entry.results.iter().zip(entry.start..entry.end).all(|(r, i)| r.index == i);
            if !contiguous {
                break;
            }
            expected = entry.end;
            results.extend(entry.results);
        }
        pos += nl + 1;
        consumed = pos;
    }
    if !saw_header {
        return empty;
    }
    JournalPrefix { results, valid_len: consumed as u64 }
}

/// How far [`run_shard_inner`] got.
enum ShardProgress {
    /// The shard completed; the record is ready to publish (boxed —
    /// a full record dwarfs the other variant).
    Done(Box<ShardRecord>),
    /// The cell deadline passed at a chunk boundary; `journaled`
    /// classes are checkpointed in the journal for the next resume.
    DeadlineStopped { journaled: usize },
}

/// The full shard engine behind [`run_shard`]: chunked execution with
/// optional journal checkpoints, per-class panic isolation, and a
/// cooperative cell deadline polled between chunks. Without a journal
/// and deadline the whole range runs as one chunk — byte-identical to
/// the historical single-pass shard.
#[allow(clippy::too_many_arguments)]
fn run_shard_inner(
    classes: &[Vec<Coord>],
    cfg: &SweepConfig,
    shard: usize,
    start: usize,
    end: usize,
    journal_path: Option<&Path>,
    prior: JournalPrefix,
    deadline: Option<Instant>,
) -> io::Result<ShardProgress> {
    let algo = cfg.algo.build();
    let limits = cfg.effective_limits();
    // Model-checking cells share one checker across the shard, so the
    // algorithm's equivariance group is computed once, not per class.
    let mut checker = CellChecker::for_spec(&algo, cfg.sched, cfg.n, cfg.threads);
    if let Some(c) = checker.as_mut() {
        c.set_class_timeout(cfg.class_timeout_ms.map(Duration::from_millis));
        c.set_mem_budget(cfg.mem_budget_mb.map(|mb| mb * 1024 * 1024));
    }
    let checker = checker;
    let run_one = |offset: usize, cells: &Vec<Coord>| {
        let index = start + offset;
        // Per-class panic isolation: the unwind is caught here, before
        // the pool ever sees it, and degraded to a counted undecided
        // row. AssertUnwindSafe is sound because a panicking class
        // leaves only the explorer's pure memo caches behind, and
        // those are poison-tolerant by construction.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // `sweep.class=panic:MSG@K` / `sleep:MS@K` inject a
            // poisoned or pathologically slow class deterministically.
            failpoints::fire("sweep.class");
            let initial = Configuration::new(cells.iter().copied());
            match &checker {
                Some(checker) => checker.run_class(&initial, index, limits),
                None => {
                    let outcome = run_class(&initial, &algo, cfg.sched, index, limits);
                    let expanded = rounds_of(&outcome);
                    ClassOutcome {
                        index,
                        outcome,
                        expanded,
                        verdict: None,
                        crash: None,
                        lcm_async: None,
                        panic: None,
                    }
                }
            }
        })) {
            Ok(row) => row,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                eprintln!("warning: class {index} panicked ({msg}); counted as undecided");
                panicked_outcome(index, cfg.sched, msg)
            }
        }
    };
    // Telemetry bracketing: the pool totals are process-global, so the
    // before/after delta attributes stealing activity to this shard
    // (approximately, if other executors run concurrently — metrics
    // are observability, not accounting).
    let pool_before = parallel::stealing::pool_stats();
    let watch = telemetry::Stopwatch::started();
    let mut results = prior.results;
    if !results.is_empty() {
        eprintln!("  shard {shard}: journal resumes {} of {} classes", results.len(), end - start);
    }
    let mut writer = match journal_path {
        Some(path) if !results.is_empty() => Some(JournalWriter::resume(path, prior.valid_len)?),
        Some(path) => {
            Some(JournalWriter::create(path, &JournalHeader::for_cell(cfg, shard, start, end))?)
        }
        None => None,
    };
    let chunk = if writer.is_some() || deadline.is_some() {
        cfg.journal_chunk.unwrap_or(DEFAULT_JOURNAL_CHUNK).max(1)
    } else {
        (end - start).max(1)
    };
    let mut cursor = start + results.len();
    while cursor < end {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(ShardProgress::DeadlineStopped { journaled: results.len() });
        }
        let cend = (cursor + chunk).min(end);
        // Work items carry their offset so both executors yield
        // identical, order-preserved records.
        let base = cursor - start;
        let indexed: Vec<(usize, &Vec<Coord>)> = classes[cursor..cend].iter().enumerate().collect();
        let chunk_results = if cfg.use_stealing() {
            parallel::stealing::par_map_stealing(&indexed, cfg.threads, |&(o, c)| {
                run_one(base + o, c)
            })
        } else {
            parallel::par_map(&indexed, cfg.threads, |&(o, c)| run_one(base + o, c))
        };
        if let Some(w) = writer.as_mut() {
            w.append_entry(&JournalEntry {
                start: cursor,
                end: cend,
                results: chunk_results.clone(),
            })?;
        }
        results.extend(chunk_results);
        cursor = cend;
    }
    let mut snapshot = checker.as_ref().map(CellChecker::metrics_snapshot).unwrap_or_default();
    let pool = parallel::stealing::pool_stats().delta_since(&pool_before);
    snapshot.add_counter("parallel.tasks", pool.tasks);
    snapshot.add_counter("parallel.steal_batches", pool.steal_batches);
    snapshot.add_counter("parallel.steal_retries", pool.steal_retries);
    snapshot.add_counter("parallel.idle_probes", pool.idle_probes);
    snapshot.add_counter("parallel.serial_calls", pool.serial_calls);
    snapshot.add_counter("sweep.classes", results.len() as u64);
    snapshot.add_counter("sweep.shard_wall_ns", watch.elapsed_ns());
    let panicked = results.iter().filter(|r| r.panic.is_some()).count() as u64;
    let timed_out = results
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Undecided { reason: UndecidedReason::Timeout }))
        .count() as u64;
    if panicked > 0 {
        snapshot.add_counter("sweep.classes_panicked", panicked);
    }
    if timed_out > 0 {
        snapshot.add_counter("sweep.classes_timed_out", timed_out);
    }
    let over_budget = results
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Undecided { reason: UndecidedReason::MemBudget }))
        .count() as u64;
    if over_budget > 0 {
        snapshot.add_counter("sweep.classes_mem_budget", over_budget);
    }
    let mut record = ShardRecord {
        algo: cfg.algo.name(),
        sched: cfg.sched.name(),
        robots: cfg.n,
        max_rounds: cfg.limits.max_rounds,
        shard,
        shards: cfg.shards,
        start,
        end,
        results,
        metrics: Some(MetricsBlock { snapshot }),
        record_digest: None,
    };
    record.record_digest = shard_self_digest(&record).ok();
    Ok(ShardProgress::Done(Box::new(record)))
}

/// Runs one shard of a sweep cell over the given full class list.
#[must_use]
pub fn run_shard(
    classes: &[Vec<Coord>],
    cfg: &SweepConfig,
    shard: usize,
    start: usize,
    end: usize,
) -> ShardRecord {
    match run_shard_inner(classes, cfg, shard, start, end, None, JournalPrefix::default(), None) {
        Ok(ShardProgress::Done(record)) => *record,
        Ok(ShardProgress::DeadlineStopped { .. }) | Err(_) => {
            unreachable!("journal-free, deadline-free shard runs always complete")
        }
    }
}

/// Merges shard records into a [`SweepSummary`], validating that they
/// tile the class space `0..total` exactly.
///
/// # Errors
/// Returns a description of the first inconsistency (wrong cell, gaps,
/// overlaps, or misaligned indices).
pub fn merge_shards(cfg: &SweepConfig, records: &[ShardRecord]) -> Result<SweepSummary, String> {
    let expected_shards = cfg.shards.max(1); // shard_ranges clamps the same way
    if records.len() != expected_shards {
        return Err(format!(
            "expected {expected_shards} shard records, found {} (incomplete sweep?)",
            records.len()
        ));
    }
    let mut sorted: Vec<&ShardRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.start);
    let mut expected_start = 0;
    for r in &sorted {
        if r.algo != cfg.algo.name() || r.sched != cfg.sched.name() || r.robots != cfg.n {
            return Err(format!(
                "shard {} belongs to cell {}/{} (robots {}), expected {}/{} (robots {})",
                r.shard,
                r.algo,
                r.sched,
                r.robots,
                cfg.algo.name(),
                cfg.sched.name(),
                cfg.n
            ));
        }
        if r.start != expected_start {
            return Err(format!(
                "shard {} starts at {} but {} classes are covered so far",
                r.shard, r.start, expected_start
            ));
        }
        if r.results.len() != r.end - r.start {
            return Err(format!(
                "shard {} holds {} results for range {}..{}",
                r.shard,
                r.results.len(),
                r.start,
                r.end
            ));
        }
        for (res, expected) in r.results.iter().zip(r.start..r.end) {
            if res.index != expected {
                return Err(format!(
                    "shard {} result index {} where {} was expected",
                    r.shard, res.index, expected
                ));
            }
        }
        expected_start = r.end;
    }
    let total = expected_start;

    // Counting is memory-bound and the records are already in order —
    // a sequential pass keeps `failure_indices` deterministically the
    // first (lowest-index) failures.
    #[derive(Default)]
    struct Acc {
        gathered: usize,
        stuck: usize,
        livelock: usize,
        collision: usize,
        disconnected: usize,
        step_limit: usize,
        undecided_outcomes: usize,
        max_rounds: usize,
        total_rounds: usize,
        failures: Vec<usize>,
        proof: usize,
        refuted: usize,
        undecided: usize,
        any_verdict: bool,
    }
    let mut acc = Acc::default();
    for res in sorted.iter().flat_map(|r| r.results.iter()) {
        match res.outcome {
            Outcome::Gathered { rounds } => {
                acc.gathered += 1;
                acc.max_rounds = acc.max_rounds.max(rounds);
                acc.total_rounds += rounds;
            }
            Outcome::StuckFixpoint { .. } => acc.stuck += 1,
            Outcome::Livelock { .. } => acc.livelock += 1,
            Outcome::Collision { .. } => acc.collision += 1,
            Outcome::Disconnected { .. } => acc.disconnected += 1,
            Outcome::StepLimit { .. } => acc.step_limit += 1,
            Outcome::Undecided { .. } => acc.undecided_outcomes += 1,
        }
        if !res.outcome.is_gathered() && acc.failures.len() < FAILURE_INDEX_CAP {
            acc.failures.push(res.index);
        }
        if let Some(verdict) = &res.verdict {
            acc.any_verdict = true;
            match verdict {
                AdversaryVerdict::Proof => acc.proof += 1,
                AdversaryVerdict::Refuted { .. } => acc.refuted += 1,
                AdversaryVerdict::Undecided { .. } => acc.undecided += 1,
            }
        }
        if let Some(verdict) = &res.crash {
            acc.any_verdict = true;
            match verdict {
                CrashVerdict::Proof => acc.proof += 1,
                CrashVerdict::Refuted { .. } => acc.refuted += 1,
                CrashVerdict::Undecided { .. } => acc.undecided += 1,
            }
        }
        if let Some(verdict) = &res.lcm_async {
            acc.any_verdict = true;
            match verdict {
                AsyncVerdict::Proof => acc.proof += 1,
                AsyncVerdict::Refuted { .. } => acc.refuted += 1,
                AsyncVerdict::Undecided { .. } => acc.undecided += 1,
            }
        }
    }
    // The digest is computed over the class-ordered record stream, so
    // it is independent of the order the caller handed the shards in.
    let digest = acc.any_verdict.then(|| {
        let mut h = adversary::Fnv64::new();
        digest_cell_header(&mut h, cfg.n);
        for res in sorted.iter().flat_map(|r| r.results.iter()) {
            digest_class(&mut h, res);
        }
        format!("{:016x}", h.finish())
    });

    // Fold the shard telemetry readings (if any) into one cell-level
    // snapshot; merge is associative and commutative, so shard order
    // cannot matter. This stays strictly after the digest computation
    // and never feeds it.
    let metrics =
        sorted.iter().filter_map(|r| r.metrics.as_ref()).fold(None::<MetricsBlock>, |acc, m| {
            let mut block = acc.unwrap_or_default();
            block.snapshot.merge(&m.snapshot);
            Some(block)
        });

    Ok(SweepSummary {
        algo: cfg.algo.name(),
        sched: cfg.sched.name(),
        robots: cfg.n,
        shards: records.len(),
        total,
        gathered: acc.gathered,
        stuck: acc.stuck,
        livelock: acc.livelock,
        collision: acc.collision,
        disconnected: acc.disconnected,
        step_limit: acc.step_limit,
        undecided: acc.undecided_outcomes,
        max_rounds: acc.max_rounds,
        mean_rounds: if acc.gathered == 0 {
            0.0
        } else {
            acc.total_rounds as f64 / acc.gathered as f64
        },
        failure_indices: acc.failures,
        adversary: acc.any_verdict.then_some(AdversaryCounts {
            proof: acc.proof,
            refuted: acc.refuted,
            undecided: acc.undecided,
        }),
        digest,
        metrics,
    })
}

/// Prefixes a cell digest with its robot count. The n=7 digests
/// predate the `n` axis and stay byte-identical (no prefix); every
/// other count contributes a `0x4E` ('N') tag byte plus the count, so
/// cells over different class spaces can never collide by accident.
fn digest_cell_header(h: &mut adversary::Fnv64, robots: usize) {
    if robots != 7 {
        h.write(0x4E);
        h.write(robots as u8);
    }
}

/// Mixes one class's verdicts into the running digest. Adversary and
/// crash verdicts use disjoint tag bytes so a cell can never be
/// mistaken for the other model.
fn digest_class(h: &mut adversary::Fnv64, res: &ClassOutcome) {
    h.write_all(&(res.index as u64).to_le_bytes());
    match &res.verdict {
        None => {}
        Some(AdversaryVerdict::Proof) => h.write(1),
        Some(AdversaryVerdict::Undecided { .. }) => h.write(2),
        Some(AdversaryVerdict::Refuted { schedule, .. }) => {
            h.write(3);
            h.write_all(&adversary::schedule_hash(schedule).to_le_bytes());
        }
    }
    match &res.crash {
        None => {}
        Some(CrashVerdict::Proof) => h.write(0x11),
        Some(CrashVerdict::Undecided { .. }) => h.write(0x12),
        Some(CrashVerdict::Refuted { schedule, .. }) => {
            h.write(0x13);
            h.write_all(&faults::schedule_hash(schedule).to_le_bytes());
        }
    }
    match &res.lcm_async {
        None => {}
        Some(AsyncVerdict::Proof) => h.write(0x21),
        Some(AsyncVerdict::Undecided { .. }) => h.write(0x22),
        Some(AsyncVerdict::Refuted { schedule, .. }) => {
            h.write(0x23);
            h.write_all(&faults::schedule_hash(schedule).to_le_bytes());
        }
    }
    if res.verdict.is_none() && res.crash.is_none() && res.lcm_async.is_none() {
        h.write(0xFF);
    }
}

/// FNV-1a digest over the merged per-class verdicts of a
/// model-checking (adversary, crash or lcm-async) cell: index, verdict
/// kind, and — for refutations — the counterexample schedule
/// (including crash assignments; ASYNC tick schedules hash through the
/// same [`faults::schedule_hash`] under their own tag bytes). Records are digested in class order (shards
/// sorted by their start index, exactly as [`merge_shards`] does for
/// [`SweepSummary::digest`]), so the value depends only on the
/// classification, never on the order the caller collected the
/// shards in. Two runs agree on this digest iff they classified every
/// class identically; the release golden tests pin it for the full
/// 3652-class space. Cells at robot counts other than seven prefix
/// the stream with their count ([`digest_cell_header`]), so n=7
/// digests are byte-identical to their pre-parameterised values.
#[must_use]
pub fn verdict_digest(records: &[ShardRecord]) -> u64 {
    let mut sorted: Vec<&ShardRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.start);
    let mut h = adversary::Fnv64::new();
    digest_cell_header(&mut h, sorted.first().map_or(7, |r| r.robots));
    for res in sorted.iter().flat_map(|r| r.results.iter()) {
        digest_class(&mut h, res);
    }
    h.finish()
}

/// Crash-safe JSON publish: serialize, write to a sibling tmp file,
/// fsync the data, rename over the target, then fsync the directory so
/// the rename itself is durable. A reader never observes a half-written
/// record — it sees the old file, the new file, or no file.
fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::other(format!("serialise {}: {e}", path.display())))?;
    // `shard.write=torn:N` models the pre-atomic writer a crash caught
    // mid-write: N bytes land in the FINAL path and the caller carries
    // on none the wiser. Resume must detect and quarantine the stump.
    if let Some(failpoints::Fault::Torn(n)) = failpoints::fire("shard.write") {
        return std::fs::write(path, &json.as_bytes()[..n.min(json.len())]);
    }
    let tmp = path.with_extension("json.tmp");
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
    }
    // `shard.rename=abort` dies with the tmp durable but the record
    // unpublished — the cleanest possible kill point for resume tests.
    failpoints::fire("shard.rename");
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Best-effort: a lost rename after a power cut only costs
        // re-running one shard, so failure here is not fatal.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The self-digest a shard record carries ([`ShardRecord::record_digest`]):
/// FNV-1a over the record's canonical compact serialization with the
/// digest field blank. Verification re-serializes the *parsed* record
/// the same way, so any corruption that changes the decoded content —
/// truncation, bit flips, hand edits — breaks the digest even when the
/// result still parses as JSON.
fn shard_self_digest(record: &ShardRecord) -> io::Result<String> {
    let mut unsigned = record.clone();
    unsigned.record_digest = None;
    let json = serde_json::to_string(&unsigned).map_err(io::Error::other)?;
    Ok(format!("{:016x}", fnv64_of(json.as_bytes())))
}

/// Loads and fully validates a shard record for resume.
///
/// * `Ok(Some(record))` — trustworthy and reusable for this exact cell.
/// * `Ok(None)` — missing, or *stale* (a different cell/config wrote
///   it); recompute silently, exactly as resume always has.
/// * `Err(why)` — present and claiming to be this shard, but corrupt:
///   unparseable, failing its self-digest, or holding inconsistent
///   results. The caller quarantines it and recomputes.
fn load_shard_checked(
    path: &Path,
    cfg: &SweepConfig,
    shard: usize,
    start: usize,
    end: usize,
) -> Result<Option<ShardRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("unreadable: {e}")),
    };
    let record: ShardRecord =
        serde_json::from_str(&text).map_err(|e| format!("malformed JSON: {e}"))?;
    if let Some(stored) = &record.record_digest {
        let computed = shard_self_digest(&record).map_err(|e| format!("digest check: {e}"))?;
        if *stored != computed {
            return Err(format!("self-digest mismatch (stored {stored}, computed {computed})"));
        }
    }
    if !record.config_matches(cfg, shard, start, end) {
        return Ok(None);
    }
    record.validate_results(cfg).map_err(|why| format!("inconsistent results: {why}"))?;
    Ok(Some(record))
}

/// Moves a corrupt shard record out of the way (to `<record>.corrupt`)
/// with a stderr warning, so the sweep can recompute the shard while
/// the evidence survives for triage (CI uploads these as artifacts).
fn quarantine_shard(path: &Path, why: &str) {
    let target = PathBuf::from(format!("{}.corrupt", path.display()));
    match std::fs::rename(path, &target) {
        Ok(()) => eprintln!(
            "warning: quarantined corrupt shard record {} -> {} ({why}); recomputing the shard",
            path.display(),
            target.display()
        ),
        Err(e) => eprintln!(
            "warning: corrupt shard record {} ({why}); quarantine rename failed ({e}); \
             recomputing the shard",
            path.display()
        ),
    }
}

/// How far [`run_sweep_with`] got.
// One value exists per cell run, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SweepRun {
    /// Every shard completed and the merged summary was written.
    Complete(SweepOutcome),
    /// The cell deadline ([`SweepConfig::cell_deadline_secs`]) expired.
    /// Finished shards are persisted as records and the interrupted
    /// shard's completed chunks sit in its journal; rerun with resume
    /// to continue from exactly here.
    DeadlineStopped {
        /// Shards fully persisted (records on disk) before stopping.
        completed_shards: usize,
        /// Classes of the interrupted shard already checkpointed in
        /// its journal.
        journaled_classes: usize,
    },
}

/// Runs (or resumes) a full sweep cell: executes every shard whose
/// record is missing or stale, writes each record as it completes,
/// merges, writes the summary, and returns both.
///
/// With `resume`, shards whose on-disk record already matches the cell
/// (including its self-digest and per-record result validation) are
/// loaded instead of re-run; corrupt records are quarantined to
/// `<record>.corrupt` with a warning and recomputed; a partially
/// computed shard continues from its journal's valid prefix. Without
/// `resume` every shard is recomputed.
///
/// # Errors
/// I/O errors from the output directory, or a corrupt/foreign record
/// set that fails [`merge_shards`] validation.
pub fn run_sweep_with(
    cfg: &SweepConfig,
    out_dir: &Path,
    resume: bool,
    mut progress: impl FnMut(usize, ShardStatus, &ShardRecord),
) -> io::Result<SweepRun> {
    // Normalise `shards: 0` once so file names, records and the merge
    // validation all agree with shard_ranges' clamp.
    let cfg = &SweepConfig { shards: cfg.shards.max(1), ..cfg.clone() };
    std::fs::create_dir_all(out_dir)?;
    let classes = polyhex::enumerate_fixed(cfg.n);
    let ranges = shard_ranges(classes.len(), cfg.shards);
    let deadline = cfg.cell_deadline_secs.map(|s| Instant::now() + Duration::from_secs(s));

    let mut records = Vec::with_capacity(ranges.len());
    let mut shard_status = Vec::with_capacity(ranges.len());
    for (shard, &(start, end)) in ranges.iter().enumerate() {
        let path = cfg.shard_path(out_dir, shard);
        let journal_path = cfg.journal_path(out_dir, shard);
        let reused = if resume {
            match load_shard_checked(&path, cfg, shard, start, end) {
                Ok(record) => record,
                Err(why) => {
                    quarantine_shard(&path, &why);
                    None
                }
            }
        } else {
            None
        };
        let (record, status) = match reused {
            Some(r) => {
                // A stale journal next to a complete record is noise
                // from a kill between publish and cleanup.
                let _ = std::fs::remove_file(&journal_path);
                (r, ShardStatus::Reused)
            }
            None => {
                let prior = if resume {
                    read_journal(&journal_path, cfg, shard, start, end)
                } else {
                    JournalPrefix::default()
                };
                match run_shard_inner(
                    &classes,
                    cfg,
                    shard,
                    start,
                    end,
                    Some(&journal_path),
                    prior,
                    deadline,
                )? {
                    ShardProgress::Done(r) => {
                        write_json_atomic(&path, &*r)?;
                        let _ = std::fs::remove_file(&journal_path);
                        (*r, ShardStatus::Computed)
                    }
                    ShardProgress::DeadlineStopped { journaled } => {
                        return Ok(SweepRun::DeadlineStopped {
                            completed_shards: shard,
                            journaled_classes: journaled,
                        });
                    }
                }
            }
        };
        progress(shard, status, &record);
        shard_status.push(status);
        records.push(record);
    }

    let summary = merge_shards(cfg, &records).map_err(io::Error::other)?;
    write_json_atomic(&cfg.summary_path(out_dir), &summary)?;
    let expanded = records.iter().flat_map(|r| r.results.iter()).map(|r| r.expanded as u64).sum();
    let digest = verdict_digest(&records);
    Ok(SweepRun::Complete(SweepOutcome { summary, shard_status, expanded, digest }))
}

/// [`run_sweep_with`] for callers without a cell deadline: the
/// historical entry point, returning the completed outcome directly.
///
/// # Errors
/// Everything [`run_sweep_with`] errors on; additionally, a tripped
/// cell deadline surfaces as an error here (use [`run_sweep_with`] to
/// handle it as a checkpointed stop instead).
pub fn run_sweep(
    cfg: &SweepConfig,
    out_dir: &Path,
    resume: bool,
    progress: impl FnMut(usize, ShardStatus, &ShardRecord),
) -> io::Result<SweepOutcome> {
    match run_sweep_with(cfg, out_dir, resume, progress)? {
        SweepRun::Complete(outcome) => Ok(outcome),
        SweepRun::DeadlineStopped { completed_shards, journaled_classes } => {
            Err(io::Error::other(format!(
                "cell deadline expired after {completed_shards} completed shards \
                 (+{journaled_classes} journaled classes); rerun with resume to continue"
            )))
        }
    }
}

/// Early-exit search for the **lowest-indexed** non-gathering class of
/// a sweep cell (for adversary and crash cells: the lowest class that
/// is not proof), via [`parallel::par_find_min`] — deterministic
/// regardless of thread count. Returns `None` when the cell's claim
/// holds for every class. Orders of magnitude faster than a full sweep
/// when a regression makes many classes fail.
#[must_use]
pub fn find_failure(cfg: &SweepConfig) -> Option<(usize, Outcome)> {
    let classes = polyhex::enumerate_fixed(cfg.n);
    let algo = cfg.algo.build();
    let limits = cfg.effective_limits();
    let mut checker = CellChecker::for_spec(&algo, cfg.sched, cfg.n, cfg.threads);
    if let Some(c) = checker.as_mut() {
        c.set_class_timeout(cfg.class_timeout_ms.map(Duration::from_millis));
        c.set_mem_budget(cfg.mem_budget_mb.map(|mb| mb * 1024 * 1024));
    }
    let checker = checker;
    let indexed: Vec<(usize, &Vec<Coord>)> = classes.iter().enumerate().collect();
    parallel::par_find_min(&indexed, cfg.threads, |&(index, cells)| {
        let initial = Configuration::new(cells.iter().copied());
        let outcome = match &checker {
            Some(checker) => {
                let result = checker.run_class(&initial, index, limits);
                let proof = matches!(result.verdict, Some(AdversaryVerdict::Proof))
                    || matches!(result.crash, Some(CrashVerdict::Proof))
                    || matches!(result.lcm_async, Some(AsyncVerdict::Proof));
                if proof {
                    return None;
                }
                result.outcome
            }
            None => run_class(&initial, &algo, cfg.sched, index, limits),
        };
        (!outcome.is_gathered()).then_some(outcome)
    })
    .map(|(i, outcome)| (indexed[i].0, outcome))
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_tile_exactly() {
        for total in [0, 1, 7, 44, 3652] {
            for shards in [1, 2, 3, 8, 50] {
                let ranges = shard_ranges(total, shards);
                assert_eq!(ranges.len(), shards);
                let mut next = 0;
                for (start, end) in ranges {
                    assert_eq!(start, next);
                    assert!(end >= start);
                    next = end;
                }
                assert_eq!(next, total, "total={total} shards={shards}");
            }
        }
    }

    #[test]
    fn algo_spec_parse_roundtrip() {
        for name in ["paper", "verified", "none", "fix25", "fix25+conn+compl", "prio+mirror"] {
            let spec = AlgoSpec::parse(name).expect(name);
            assert_eq!(spec.name(), name);
        }
        assert_eq!(AlgoSpec::parse("bogus"), None);
        assert_eq!(AlgoSpec::parse("fix25+bogus"), None);
    }

    #[test]
    fn sched_spec_parse() {
        assert_eq!(SchedSpec::parse("fsync"), Some(SchedSpec::Fsync));
        assert_eq!(SchedSpec::parse("rr"), Some(SchedSpec::RoundRobin));
        assert_eq!(
            SchedSpec::parse("random:9:0.25"),
            Some(SchedSpec::RandomSubset { seed: 9, p: 0.25 })
        );
        assert_eq!(SchedSpec::parse("random:9:1.5"), None);
        assert_eq!(SchedSpec::parse("sometimes"), None);
        assert_eq!(
            SchedSpec::parse("adversary"),
            Some(SchedSpec::Adversary { depth: DEFAULT_FAIR_DEPTH })
        );
        assert_eq!(SchedSpec::parse("adversary:5"), Some(SchedSpec::Adversary { depth: 5 }));
        assert_eq!(SchedSpec::parse("adversary:0"), None);
        assert_eq!(SchedSpec::parse("adversary:x"), None);
        assert_eq!(SchedSpec::parse("adversary").unwrap().name(), "adversary");
        assert_eq!(SchedSpec::parse("adversary:5").unwrap().name(), "adversary-d5");
    }

    #[test]
    fn sched_spec_parse_lcm_async() {
        assert_eq!(
            SchedSpec::parse("lcm-async"),
            Some(SchedSpec::LcmAsync { depth: DEFAULT_FAIR_DEPTH })
        );
        assert_eq!(SchedSpec::parse("lcm-async:5"), Some(SchedSpec::LcmAsync { depth: 5 }));
        assert_eq!(SchedSpec::parse("lcm-async:0"), None);
        assert_eq!(SchedSpec::parse("lcm-async:x"), None);
        assert_eq!(SchedSpec::parse("lcm-async:5:3"), None);
        assert_eq!(SchedSpec::parse("lcm-async").unwrap().name(), "lcm-async");
        assert_eq!(SchedSpec::parse("lcm-async:5").unwrap().name(), "lcm-async-d5");
    }

    #[test]
    fn every_listed_sched_spec_round_trips_through_parse() {
        for &example in SCHED_SPEC_EXAMPLES {
            let spec = SchedSpec::parse(example)
                .unwrap_or_else(|| panic!("listed spec {example:?} must parse"));
            // The usage string advertises the example's family.
            let family = example.split(':').next().expect("nonempty spec");
            assert!(
                SCHED_SPECS.contains(family),
                "SCHED_SPECS must advertise the {family:?} family: {SCHED_SPECS}"
            );
            // When a spec's canonical name is itself parseable, it
            // must round-trip to the same spec (parameterised names
            // like `crash-f1` are file slugs, not specs).
            if let Some(by_name) = SchedSpec::parse(&spec.name()) {
                assert_eq!(by_name, spec, "{example}: name {} re-parses", spec.name());
            }
        }
        // The default-parameter specs' canonical names ARE valid specs:
        // summaries and CLI flags agree on them verbatim.
        for base in ["fsync", "round-robin", "adversary", "lcm-async"] {
            let spec = SchedSpec::parse(base).expect("base spec parses");
            assert_eq!(spec.name(), base, "default-parameter names are canonical");
            assert_eq!(SchedSpec::parse(&spec.name()), Some(spec), "{base} round-trips by name");
        }
        // Every family named in SCHED_SPECS has at least one example.
        for family in ["fsync", "round-robin", "random", "adversary", "crash", "lcm-async"] {
            assert!(
                SCHED_SPEC_EXAMPLES.iter().any(|e| e.split(':').next() == Some(family)),
                "family {family:?} lacks an example"
            );
        }
    }

    #[test]
    fn sched_spec_parse_crash() {
        assert_eq!(
            SchedSpec::parse("crash:1"),
            Some(SchedSpec::Crash { f: 1, depth: DEFAULT_FAIR_DEPTH })
        );
        assert_eq!(SchedSpec::parse("crash:2:6"), Some(SchedSpec::Crash { f: 2, depth: 6 }));
        assert_eq!(SchedSpec::parse("crash"), None, "the crash budget is mandatory");
        assert_eq!(
            SchedSpec::parse("crash:9"),
            Some(SchedSpec::Crash { f: 9, depth: DEFAULT_FAIR_DEPTH }),
            "f up to MAX_SWEEP_N - 1 parses; validate() enforces f < n per cell"
        );
        assert_eq!(SchedSpec::parse("crash:10"), None, "f >= MAX_SWEEP_N can never satisfy f < n");
        assert_eq!(SchedSpec::parse("crash:1:0"), None);
        assert_eq!(SchedSpec::parse("crash:1:2:3"), None);
        assert_eq!(SchedSpec::parse("crash:1").unwrap().name(), "crash-f1");
        assert_eq!(SchedSpec::parse("crash:2:6").unwrap().name(), "crash-f2-d6");
    }

    #[test]
    fn validate_accepts_supported_cells_and_rejects_the_rest() {
        for n in MIN_SWEEP_N..=MAX_SWEEP_N {
            let cfg = SweepConfig { n, ..SweepConfig::default() };
            assert!(cfg.validate().is_ok(), "n={n} FSYNC must validate");
            let crash = SchedSpec::Crash { f: (n - 1) as u8, depth: DEFAULT_FAIR_DEPTH };
            let cfg = SweepConfig { n, sched: crash, ..SweepConfig::default() };
            assert!(cfg.validate().is_ok(), "n={n} crash f=n-1 must validate");
        }
        for n in [0, 1, MAX_SWEEP_N + 1] {
            let cfg = SweepConfig { n, ..SweepConfig::default() };
            let err = cfg.validate().expect_err("out-of-range n must be rejected");
            assert!(err.contains(&format!("n={n}")), "error names the bad count: {err}");
        }
        let crash = SchedSpec::Crash { f: 4, depth: DEFAULT_FAIR_DEPTH };
        let cfg = SweepConfig { n: 4, sched: crash, ..SweepConfig::default() };
        let err = cfg.validate().expect_err("f >= n must be rejected");
        assert!(err.contains("f=4"), "error names the bad budget: {err}");
    }

    #[test]
    fn slug_tags_non_default_robot_counts() {
        let seven = SweepConfig::default();
        assert_eq!(seven.slug(), "verified-fsync", "n=7 slugs stay stable");
        let eight = SweepConfig { n: 8, ..SweepConfig::default() };
        assert_eq!(eight.slug(), "verified-fsync-n8");
        let crash = SchedSpec::Crash { f: 1, depth: DEFAULT_FAIR_DEPTH };
        let five = SweepConfig { n: 5, sched: crash, ..SweepConfig::default() };
        assert_eq!(five.slug(), "verified-crash-f1-n5");
    }

    #[test]
    fn verdict_digests_are_robot_count_tagged() {
        // Identical verdict streams over different class spaces must
        // not collide: the n prefix keeps per-n cells apart even when
        // every class is (say) refuted in both.
        let mut record = ShardRecord {
            algo: "verified".into(),
            sched: "adversary".into(),
            robots: 7,
            max_rounds: Limits::default().max_rounds,
            shard: 0,
            shards: 1,
            start: 0,
            end: 1,
            results: vec![ClassOutcome {
                index: 0,
                outcome: Outcome::Gathered { rounds: 0 },
                expanded: 1,
                verdict: Some(AdversaryVerdict::Proof),
                crash: None,
                lcm_async: None,
                panic: None,
            }],
            metrics: None,
            record_digest: None,
        };
        let at_seven = verdict_digest(std::slice::from_ref(&record));
        record.robots = 8;
        let at_eight = verdict_digest(std::slice::from_ref(&record));
        assert_ne!(at_seven, at_eight);
        // And the n=7 stream hashes exactly as the untagged original:
        // no prefix bytes at all.
        let mut h = adversary::Fnv64::new();
        h.write_all(&0u64.to_le_bytes());
        h.write(1);
        assert_eq!(at_seven, h.finish());
    }

    #[test]
    fn crash_cell_records_verdicts_replayable_schedules_and_digest() {
        // The 44-class n=4 space is cheap even in debug. Every
        // refutation's schedule + crash assignment must replay to its
        // recorded outcome, the summary must tally the verdicts, and
        // the digest must be present and sharding-invariant.
        let sched = SchedSpec::parse("crash:1").expect("known scheduler");
        let cfg = SweepConfig { n: 4, sched, shards: 2, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let records: Vec<ShardRecord> = shard_ranges(classes.len(), cfg.shards)
            .into_iter()
            .enumerate()
            .map(|(s, (start, end))| run_shard(&classes, &cfg, s, start, end))
            .collect();
        let summary = merge_shards(&cfg, &records).expect("consistent shards");
        let counts = summary.adversary.expect("crash cells tally verdicts");
        assert_eq!(counts.proof + counts.refuted + counts.undecided, 44);
        let digest = summary.digest.expect("crash cells carry a digest");
        assert_eq!(digest, format!("{:016x}", verdict_digest(&records)));

        let algo = cfg.algo.build();
        let mut replayed = 0;
        for res in records.iter().flat_map(|r| r.results.iter()) {
            assert!(res.verdict.is_none(), "crash cells use the crash column");
            let verdict = res.crash.as_ref().expect("crash cells store verdicts");
            if let CrashVerdict::Refuted { outcome, schedule } = verdict {
                assert_eq!(outcome, &res.outcome, "witness outcome mirrors the verdict");
                let crashes: u32 = schedule.iter().map(|a| a.crash.count_ones()).sum();
                assert!(crashes <= 1, "f = 1 schedules crash at most one robot");
                let initial = Configuration::new(classes[res.index].iter().copied());
                let run = faults::replay(&initial, &algo, verdict).expect("refutations replay");
                assert_eq!(&run.execution.outcome, outcome, "class {}", res.index);
                replayed += 1;
            }
        }
        assert!(replayed > 0, "expected at least one crash-refuted class in the n=4 space");

        // Sharding invariance of verdicts and digest.
        let one = SweepConfig { shards: 1, ..cfg.clone() };
        let whole = run_shard(&classes, &one, 0, 0, classes.len());
        let resharded = verdict_digest(std::slice::from_ref(&whole));
        assert_eq!(verdict_digest(&records), resharded, "digest must be sharding-invariant");
    }

    #[test]
    fn lcm_async_cell_records_verdicts_replayable_schedules_and_digest() {
        // The 44-class n=4 space is cheap even in debug. Every ASYNC
        // refutation's tick schedule must replay to its recorded
        // outcome, the summary must tally the verdicts, and the digest
        // must be present and sharding-invariant.
        let sched = SchedSpec::parse("lcm-async").expect("known scheduler");
        let cfg = SweepConfig { n: 4, sched, shards: 2, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let records: Vec<ShardRecord> = shard_ranges(classes.len(), cfg.shards)
            .into_iter()
            .enumerate()
            .map(|(s, (start, end))| run_shard(&classes, &cfg, s, start, end))
            .collect();
        let summary = merge_shards(&cfg, &records).expect("consistent shards");
        let counts = summary.adversary.expect("lcm-async cells tally verdicts");
        assert_eq!(counts.proof + counts.refuted + counts.undecided, 44);
        let digest = summary.digest.expect("lcm-async cells carry a digest");
        assert_eq!(digest, format!("{:016x}", verdict_digest(&records)));

        let algo = cfg.algo.build();
        let mut replayed = 0;
        for res in records.iter().flat_map(|r| r.results.iter()) {
            assert!(res.verdict.is_none(), "lcm-async cells use the lcm_async column");
            assert!(res.crash.is_none(), "lcm-async cells use the lcm_async column");
            let verdict = res.lcm_async.as_ref().expect("lcm-async cells store verdicts");
            if let robots::AsyncVerdict::Refuted { outcome, schedule } = verdict {
                assert_eq!(outcome, &res.outcome, "witness outcome mirrors the verdict");
                assert!(
                    schedule.iter().all(|a| a.crash == 0 && a.activate.count_ones() == 1),
                    "ASYNC actions are crash-free one-hot phase advances"
                );
                let initial = Configuration::new(classes[res.index].iter().copied());
                let run = robots::async_model::replay(&initial, &algo, verdict)
                    .expect("refutations replay");
                assert_eq!(&run.execution.outcome, outcome, "class {}", res.index);
                replayed += 1;
            }
        }
        assert!(replayed > 0, "expected at least one async-refuted class in the n=4 space");

        // Sharding invariance of verdicts and digest.
        let one = SweepConfig { shards: 1, ..cfg.clone() };
        let whole = run_shard(&classes, &one, 0, 0, classes.len());
        let resharded = verdict_digest(std::slice::from_ref(&whole));
        assert_eq!(verdict_digest(&records), resharded, "digest must be sharding-invariant");
    }

    #[test]
    fn model_checking_digests_are_model_tagged() {
        // The same class space classified under two different models
        // must never produce the same digest, even when the verdict
        // kinds happen to coincide — the tag bytes keep the models
        // apart.
        let classes = polyhex::enumerate_fixed(4);
        let digest_of = |spec: &str| {
            let sched = SchedSpec::parse(spec).expect("known scheduler");
            let cfg = SweepConfig { n: 4, sched, shards: 1, ..SweepConfig::default() };
            verdict_digest(&[run_shard(&classes, &cfg, 0, 0, classes.len())])
        };
        let adversary = digest_of("adversary");
        let crash = digest_of("crash:1");
        let lcm_async = digest_of("lcm-async");
        assert_ne!(adversary, crash);
        assert_ne!(adversary, lcm_async);
        assert_ne!(crash, lcm_async);
    }

    #[test]
    fn fsync_cells_carry_no_digest() {
        let cfg = SweepConfig { n: 4, shards: 1, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let record = run_shard(&classes, &cfg, 0, 0, classes.len());
        let summary = merge_shards(&cfg, std::slice::from_ref(&record)).expect("merges");
        assert!(summary.digest.is_none(), "digests are for model-checking cells");
        assert!(summary.adversary.is_none());
    }

    #[test]
    fn adversary_cell_records_verdicts_and_replayable_schedules() {
        // The 44-class n=4 space is cheap even in debug. The verified
        // algorithm targets seven robots, so plenty of classes refute;
        // every refutation's schedule must replay to its recorded
        // outcome, and the summary must tally the verdicts.
        let sched = SchedSpec::Adversary { depth: DEFAULT_FAIR_DEPTH };
        let cfg = SweepConfig { n: 4, sched, shards: 2, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let records: Vec<ShardRecord> = shard_ranges(classes.len(), cfg.shards)
            .into_iter()
            .enumerate()
            .map(|(s, (start, end))| run_shard(&classes, &cfg, s, start, end))
            .collect();
        let summary = merge_shards(&cfg, &records).expect("consistent shards");
        let counts = summary.adversary.expect("adversary cells tally verdicts");
        assert_eq!(counts.proof + counts.refuted + counts.undecided, 44);

        let algo = cfg.algo.build();
        let mut replayed = 0;
        for res in records.iter().flat_map(|r| r.results.iter()) {
            let verdict = res.verdict.as_ref().expect("adversary cells store verdicts");
            if let AdversaryVerdict::Refuted { outcome, .. } = verdict {
                assert_eq!(outcome, &res.outcome, "witness outcome mirrors the verdict");
                let initial = Configuration::new(classes[res.index].iter().copied());
                let ex = adversary::replay(&initial, &algo, verdict).expect("refutations replay");
                assert_eq!(&ex.outcome, outcome, "class {}", res.index);
                replayed += 1;
            }
        }
        assert!(replayed > 0, "expected at least one refuted class in the n=4 space");
    }

    #[test]
    fn adversary_outcomes_are_sharding_invariant() {
        let sched = SchedSpec::Adversary { depth: DEFAULT_FAIR_DEPTH };
        let one = SweepConfig { n: 4, shards: 1, sched, ..SweepConfig::default() };
        let many = SweepConfig { n: 4, shards: 3, sched, threads: 2, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let whole = run_shard(&classes, &one, 0, 0, classes.len());
        let pieces: Vec<ClassOutcome> = shard_ranges(classes.len(), 3)
            .into_iter()
            .enumerate()
            .flat_map(|(s, (start, end))| run_shard(&classes, &many, s, start, end).results)
            .collect();
        assert_eq!(whole.results.len(), pieces.len());
        for (a, b) in whole.results.iter().zip(&pieces) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.verdict, b.verdict, "class {}", a.index);
            assert_eq!(a.outcome, b.outcome, "class {}", a.index);
        }
    }

    #[test]
    fn fsync_cell_matches_verify_all_counts() {
        // The sharded pipeline must agree with the one-shot verifier.
        let cfg = SweepConfig { n: 5, shards: 3, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(5);
        let records: Vec<ShardRecord> = shard_ranges(classes.len(), cfg.shards)
            .into_iter()
            .enumerate()
            .map(|(s, (start, end))| run_shard(&classes, &cfg, s, start, end))
            .collect();
        let summary = merge_shards(&cfg, &records).expect("consistent shards");
        let report = crate::verify_all(5, &SevenGather::verified(), Limits::default(), 0);
        assert_eq!(summary.total, report.total);
        assert_eq!(summary.gathered, report.gathered);
        assert_eq!(summary.max_rounds, report.max_rounds);
    }

    #[test]
    fn merge_rejects_gaps_and_foreign_cells() {
        let cfg = SweepConfig { n: 4, shards: 2, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let ranges = shard_ranges(classes.len(), 2);
        let a = run_shard(&classes, &cfg, 0, ranges[0].0, ranges[0].1);
        let b = run_shard(&classes, &cfg, 1, ranges[1].0, ranges[1].1);
        assert!(merge_shards(&cfg, &[a.clone(), b.clone()]).is_ok());
        // Incomplete: second shard missing.
        assert!(merge_shards(&cfg, std::slice::from_ref(&a)).is_err());
        // Foreign cell: wrong scheduler name.
        let mut foreign = b;
        foreign.sched = "round-robin".to_string();
        assert!(merge_shards(&cfg, &[a, foreign]).is_err());
    }

    #[test]
    fn random_subset_outcomes_are_sharding_invariant() {
        // The per-class seed derivation must make outcomes identical no
        // matter how the space is sharded or which executor ran it.
        let sched = SchedSpec::RandomSubset { seed: 3, p: 0.6 };
        let one = SweepConfig { n: 4, shards: 1, sched, ..SweepConfig::default() };
        let many =
            SweepConfig { n: 4, shards: 5, sched, stealing: Some(true), ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let whole = run_shard(&classes, &one, 0, 0, classes.len());
        let pieces: Vec<ClassOutcome> = shard_ranges(classes.len(), 5)
            .into_iter()
            .enumerate()
            .flat_map(|(s, (start, end))| run_shard(&classes, &many, s, start, end).results)
            .collect();
        assert_eq!(whole.results.len(), pieces.len());
        for (a, b) in whole.results.iter().zip(&pieces) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.outcome, b.outcome, "class {}", a.index);
        }
    }

    #[test]
    fn resume_skips_completed_shards() {
        let dir = std::env::temp_dir().join(format!("trigather-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SweepConfig { n: 4, shards: 3, ..SweepConfig::default() };
        let first = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("first run");
        assert!(first.shard_status.iter().all(|s| *s == ShardStatus::Computed));
        let second = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("resumed run");
        assert!(second.shard_status.iter().all(|s| *s == ShardStatus::Reused));
        assert_eq!(first.summary, second.summary);
        // Without resume everything recomputes.
        let third = run_sweep(&cfg, &dir, false, |_, _, _| {}).expect("fresh run");
        assert!(third.shard_status.iter().all(|s| *s == ShardStatus::Computed));
        // A different round cap invalidates the records: step-limit
        // outcomes depend on it, so resume must not reuse them.
        let recapped =
            SweepConfig { limits: Limits { max_rounds: 123, ..Limits::default() }, ..cfg.clone() };
        let fourth = run_sweep(&recapped, &dir, true, |_, _, _| {}).expect("recapped run");
        assert!(fourth.shard_status.iter().all(|s| *s == ShardStatus::Computed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn temp_sweep_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("trigather-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_records_carry_a_verifiable_self_digest() {
        let cfg = SweepConfig { n: 4, shards: 1, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let record = run_shard(&classes, &cfg, 0, 0, classes.len());
        let stored = record.record_digest.clone().expect("records are sealed at build time");
        assert_eq!(stored, shard_self_digest(&record).expect("digestible"));
        // The digest survives a JSON round-trip (what resume does).
        let json = serde_json::to_string_pretty(&record).expect("serializes");
        let reread: ShardRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(reread.record_digest.as_deref(), Some(stored.as_str()));
        assert_eq!(stored, shard_self_digest(&reread).expect("digestible"));
        // Tampering with decoded content breaks it.
        let mut tampered = record;
        tampered.results[0].expanded += 1;
        assert_ne!(stored, shard_self_digest(&tampered).expect("digestible"));
    }

    #[test]
    fn resume_quarantines_malformed_records_and_recomputes() {
        let dir = temp_sweep_dir("quarantine");
        let cfg = SweepConfig { n: 4, shards: 2, ..SweepConfig::default() };
        let first = run_sweep(&cfg, &dir, false, |_, _, _| {}).expect("first run");
        // Truncate shard 0's record mid-file: parseable prefix of a
        // JSON document, i.e. malformed.
        let victim = cfg.shard_path(&dir, 0);
        let text = std::fs::read_to_string(&victim).expect("record exists");
        std::fs::write(&victim, &text[..text.len() / 2]).expect("truncate");
        let second = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("resume succeeds anyway");
        assert_eq!(second.shard_status[0], ShardStatus::Computed, "corrupt shard recomputed");
        assert_eq!(second.shard_status[1], ShardStatus::Reused, "healthy shard reused");
        assert_eq!(first.summary, second.summary);
        assert_eq!(first.digest, second.digest);
        let corpse = PathBuf::from(format!("{}.corrupt", victim.display()));
        assert!(corpse.exists(), "the corrupt record is preserved for triage");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_quarantines_digest_mismatches() {
        let dir = temp_sweep_dir("digestcheck");
        let cfg = SweepConfig { n: 4, shards: 1, ..SweepConfig::default() };
        let first = run_sweep(&cfg, &dir, false, |_, _, _| {}).expect("first run");
        // Flip decoded content while keeping the JSON well-formed and
        // the structure valid: bump one class's `expanded` count. Only
        // the self-digest can catch this.
        let victim = cfg.shard_path(&dir, 0);
        let text = std::fs::read_to_string(&victim).expect("record exists");
        let mut record: ShardRecord = serde_json::from_str(&text).expect("parses");
        record.results[3].expanded += 1;
        let tampered = serde_json::to_string_pretty(&record).expect("serializes");
        std::fs::write(&victim, tampered).expect("rewrite");
        let second = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("resume succeeds anyway");
        assert!(second.shard_status.iter().all(|s| *s == ShardStatus::Computed));
        assert_eq!(first.summary, second.summary);
        assert!(
            PathBuf::from(format!("{}.corrupt", victim.display())).exists(),
            "the tampered record is preserved for triage"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_round_trips_and_drops_torn_tails() {
        let dir = temp_sweep_dir("journal");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cfg = SweepConfig { n: 4, shards: 1, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        let full = run_shard(&classes, &cfg, 0, 0, classes.len());
        let path = cfg.journal_path(&dir, 0);
        let header = JournalHeader::for_cell(&cfg, 0, 0, classes.len());
        {
            let mut w = JournalWriter::create(&path, &header).expect("create");
            w.append_entry(&JournalEntry {
                start: 0,
                end: 10,
                results: full.results[..10].to_vec(),
            })
            .expect("append");
            w.append_entry(&JournalEntry {
                start: 10,
                end: 20,
                results: full.results[10..20].to_vec(),
            })
            .expect("append");
        }
        let prefix = read_journal(&path, &cfg, 0, 0, classes.len());
        assert_eq!(prefix.results.len(), 20);
        assert_eq!(prefix.valid_len, std::fs::metadata(&path).expect("meta").len());
        for (a, b) in prefix.results.iter().zip(&full.results[..20]) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.outcome, b.outcome);
        }
        // Tear the tail: chop bytes off the last line. Only the intact
        // first entry survives; its byte length is reported so a
        // resumed writer can truncate the stump.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tear");
        let torn = read_journal(&path, &cfg, 0, 0, classes.len());
        assert_eq!(torn.results.len(), 10, "torn tail dropped, valid prefix kept");
        assert!(torn.valid_len < bytes.len() as u64 - 7);
        // A journal for a different cell is rejected outright.
        let other = SweepConfig { algo: AlgoSpec::Paper, ..cfg.clone() };
        let foreign = read_journal(&path, &other, 0, 0, classes.len());
        assert_eq!(foreign.results.len(), 0, "foreign headers never feed results");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_continues_mid_shard_from_the_journal() {
        let dir = temp_sweep_dir("midshard");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cfg = SweepConfig { n: 4, shards: 1, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(4);
        // Plant a journal covering the first 8 classes with a forged
        // outcome for class 0: if the resumed run reuses the journal
        // (rather than recomputing), the forgery must surface in the
        // merged summary.
        let full = run_shard(&classes, &cfg, 0, 0, classes.len());
        let mut head = full.results[..8].to_vec();
        head[0].outcome = Outcome::Gathered { rounds: 4242 };
        let path = cfg.journal_path(&dir, 0);
        let header = JournalHeader::for_cell(&cfg, 0, 0, classes.len());
        {
            let mut w = JournalWriter::create(&path, &header).expect("create");
            w.append_entry(&JournalEntry { start: 0, end: 8, results: head }).expect("append");
        }
        let outcome = run_sweep(&cfg, &dir, true, |_, _, _| {}).expect("resumed run");
        assert_eq!(
            outcome.summary.max_rounds, 4242,
            "journaled classes must be reused, not recomputed"
        );
        assert!(!path.exists(), "the journal is deleted once the record is published");
        // A fresh (non-resume) run ignores and replaces any journal.
        let clean = run_sweep(&cfg, &dir, false, |_, _, _| {}).expect("fresh run");
        assert_ne!(clean.summary.max_rounds, 4242);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_deadline_stops_cleanly_and_resume_completes() {
        let dir = temp_sweep_dir("deadline");
        let stopped =
            SweepConfig { n: 4, shards: 2, cell_deadline_secs: Some(0), ..SweepConfig::default() };
        match run_sweep_with(&stopped, &dir, false, |_, _, _| {}).expect("stop is not an error") {
            SweepRun::DeadlineStopped { completed_shards, journaled_classes } => {
                assert_eq!(completed_shards, 0, "an already-expired deadline stops immediately");
                assert_eq!(journaled_classes, 0);
            }
            SweepRun::Complete(_) => panic!("a zero deadline cannot complete the cell"),
        }
        // Resuming without the deadline finishes and matches a clean run.
        let relaxed = SweepConfig { cell_deadline_secs: None, ..stopped.clone() };
        let resumed = run_sweep(&relaxed, &dir, true, |_, _, _| {}).expect("resume completes");
        let clean_dir = temp_sweep_dir("deadline-clean");
        let clean = run_sweep(&relaxed, &clean_dir, false, |_, _, _| {}).expect("clean run");
        assert_eq!(resumed.summary, clean.summary);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&clean_dir);
    }

    #[test]
    fn class_timeout_degrades_to_counted_timeout_verdicts() {
        // A zero deadline trips the explorer's first poll, so every
        // class of the cell degrades to Undecided{Timeout} — counted,
        // not fatal, and visible in the summary tallies.
        let sched = SchedSpec::Adversary { depth: DEFAULT_FAIR_DEPTH };
        let cfg = SweepConfig {
            n: 4,
            shards: 1,
            sched,
            class_timeout_ms: Some(0),
            ..SweepConfig::default()
        };
        let classes = polyhex::enumerate_fixed(4);
        let record = run_shard(&classes, &cfg, 0, 0, classes.len());
        assert!(record
            .results
            .iter()
            .all(|r| matches!(r.outcome, Outcome::Undecided { reason: UndecidedReason::Timeout })));
        let summary = merge_shards(&cfg, std::slice::from_ref(&record)).expect("merges");
        assert_eq!(summary.undecided, classes.len());
        let counts = summary.adversary.expect("adversary cells tally verdicts");
        assert_eq!(counts.undecided, classes.len());
    }

    #[test]
    fn mem_budget_degrades_to_counted_mem_budget_verdicts() {
        // A zero-byte budget (the degenerate config value; the CLI
        // rejects it as useless) trips the first budget poll of every
        // class that reaches one, so the cell degrades to counted
        // Undecided{MemBudget} rows — deterministically, no panic —
        // and the shard metrics carry the tally.
        let sched = SchedSpec::Adversary { depth: DEFAULT_FAIR_DEPTH };
        let cfg = SweepConfig {
            n: 4,
            shards: 1,
            sched,
            mem_budget_mb: Some(0),
            ..SweepConfig::default()
        };
        let classes = polyhex::enumerate_fixed(4);
        let record = run_shard(&classes, &cfg, 0, 0, classes.len());
        let over_budget = record
            .results
            .iter()
            .filter(|r| {
                matches!(r.outcome, Outcome::Undecided { reason: UndecidedReason::MemBudget })
            })
            .count();
        assert!(over_budget > 0, "a 1 MiB budget must trip on some n=4 class");
        let metrics = record.metrics.as_ref().expect("shard metrics present");
        assert_eq!(metrics.snapshot.counter("sweep.classes_mem_budget"), over_budget as u64);
        let summary = merge_shards(&cfg, std::slice::from_ref(&record)).expect("merges");
        assert!(summary.undecided >= over_budget);

        // The same cell with no budget decides every class: the budget
        // path never leaks into unbudgeted runs.
        let unbudgeted = SweepConfig { mem_budget_mb: None, ..cfg };
        let record = run_shard(&classes, &unbudgeted, 0, 0, classes.len());
        assert!(record.results.iter().all(|r| !matches!(
            r.outcome,
            Outcome::Undecided { reason: UndecidedReason::MemBudget }
        )));
    }

    #[test]
    fn panicked_rows_validate_and_merge_like_any_undecided() {
        // panicked_outcome must produce rows consistent with each
        // cell's verdict-column contract (validate_results) and merge
        // into the undecided tallies.
        for spec in ["adversary", "crash:1", "lcm-async", "fsync"] {
            let sched = SchedSpec::parse(spec).expect("known scheduler");
            let cfg = SweepConfig { n: 4, shards: 1, sched, ..SweepConfig::default() };
            let classes = polyhex::enumerate_fixed(4);
            let mut record = run_shard(&classes, &cfg, 0, 0, classes.len());
            record.results[5] = panicked_outcome(5, sched, "injected".into());
            record.record_digest = Some(shard_self_digest(&record).expect("digestible"));
            assert!(record.matches(&cfg, 0, 0, classes.len()), "{spec}: row stays consistent");
            let summary =
                merge_shards(&cfg, std::slice::from_ref(&record)).expect("poisoned row merges");
            assert!(summary.undecided >= 1, "{spec}: the panicked class is counted");
        }
    }

    #[test]
    fn find_failure_agrees_with_the_full_sweep() {
        // The algorithm targets exactly seven robots, so n=4 cells may
        // legitimately fail; the contract is that the early-exit search
        // reports a counterexample iff the exhaustive shard run holds
        // one, and never a gathered class.
        for algo in [AlgoSpec::Paper, AlgoSpec::Verified] {
            let cfg = SweepConfig { n: 4, algo, shards: 1, ..SweepConfig::default() };
            let classes = polyhex::enumerate_fixed(4);
            let full = run_shard(&classes, &cfg, 0, 0, classes.len());
            let any_fails = full.results.iter().any(|r| !r.outcome.is_gathered());
            match find_failure(&cfg) {
                None => assert!(!any_fails, "{}: search missed a failing class", cfg.slug()),
                Some((index, outcome)) => {
                    assert!(!outcome.is_gathered());
                    assert_eq!(
                        full.results[index].outcome,
                        outcome,
                        "{}: class {index} outcome mismatch",
                        cfg.slug()
                    );
                }
            }
        }
    }
}
