//! Report export for EXPERIMENTS.md (JSON via `serde_json`, CSV by hand).

use crate::VerificationReport;

/// Serialises a report as pretty JSON.
///
/// # Panics
/// Never panics for reports produced by this crate (all fields are
/// serialisable).
#[must_use]
pub fn report_to_json(report: &VerificationReport) -> String {
    serde_json::to_string_pretty(report).expect("reports are always serialisable")
}

/// Parses a report back from JSON.
///
/// # Errors
/// Returns the underlying `serde_json` error on malformed input.
pub fn report_from_json(json: &str) -> Result<VerificationReport, serde_json::Error> {
    serde_json::from_str(json)
}

/// The rounds histogram as a two-column CSV (`rounds,classes`).
#[must_use]
pub fn histogram_to_csv(report: &VerificationReport) -> String {
    let mut out = String::from("rounds,classes\n");
    for (rounds, &classes) in report.rounds_histogram.iter().enumerate() {
        if classes > 0 {
            out.push_str(&format!("{rounds},{classes}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use robots::{Limits, StayAlgorithm};

    fn sample_report() -> VerificationReport {
        crate::verify_all(3, &StayAlgorithm, Limits::default(), 1)
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_report();
        let json = report_to_json(&r);
        let back = report_from_json(&json).unwrap();
        assert_eq!(back.total, r.total);
        assert_eq!(back.gathered, r.gathered);
        assert_eq!(back.failures.len(), r.failures.len());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = sample_report();
        r.rounds_histogram = vec![2, 0, 5];
        let csv = histogram_to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "rounds,classes");
        assert_eq!(lines[1], "0,2");
        assert_eq!(lines[2], "2,5");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(report_from_json("{not json").is_err());
    }
}
