//! The paper's §IV-B experiment: exhaustive verification over all
//! connected initial configurations.

use parallel::par_map;
use robots::{engine, Algorithm, Configuration, Limits, Outcome};
use serde::{Deserialize, Serialize};
use trigrid::Coord;

/// The verdict for one initial configuration class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassResult {
    /// Index of the class in enumeration order.
    pub index: usize,
    /// The canonical initial configuration.
    pub initial: Configuration,
    /// How the execution ended.
    pub outcome: Outcome,
}

impl ClassResult {
    /// Rounds to gather, if the class gathered.
    #[must_use]
    pub fn rounds(&self) -> Option<usize> {
        match self.outcome {
            Outcome::Gathered { rounds } => Some(rounds),
            _ => None,
        }
    }
}

/// Aggregate result of an exhaustive verification run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Name of the algorithm under test.
    pub algorithm: String,
    /// Number of robots (7 for the paper's experiment).
    pub robots: usize,
    /// Total number of initial classes tested (3652 for n = 7).
    pub total: usize,
    /// Classes that gathered (the paper's claim: all of them).
    pub gathered: usize,
    /// Non-gathering classes, with their outcomes.
    pub failures: Vec<ClassResult>,
    /// Maximum rounds-to-gather over the gathered classes.
    pub max_rounds: usize,
    /// Sum of rounds-to-gather (for the mean).
    pub total_rounds: usize,
    /// Histogram of rounds-to-gather: `rounds_histogram[r]` = number of
    /// classes that gathered in exactly `r` rounds.
    pub rounds_histogram: Vec<usize>,
}

impl VerificationReport {
    /// Whether every class gathered — the paper's Theorem 2 claim.
    #[must_use]
    pub fn all_gathered(&self) -> bool {
        self.gathered == self.total && self.failures.is_empty()
    }

    /// Mean rounds-to-gather over gathered classes.
    #[must_use]
    pub fn mean_rounds(&self) -> f64 {
        if self.gathered == 0 {
            return 0.0;
        }
        self.total_rounds as f64 / self.gathered as f64
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: {}/{} gathered ({} failures), rounds max={} mean={:.2}",
            self.algorithm,
            self.gathered,
            self.total,
            self.failures.len(),
            self.max_rounds,
            self.mean_rounds()
        )
    }
}

/// Runs `algo` from every class in `classes` (each a canonical node set)
/// and aggregates the outcomes. `threads == 0` uses all cores.
#[must_use]
pub fn verify_classes<A: Algorithm + Sync + ?Sized>(
    classes: &[Vec<Coord>],
    algo: &A,
    limits: Limits,
    threads: usize,
) -> VerificationReport {
    let results: Vec<ClassResult> = par_map(classes, threads, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        let ex = engine::run(&initial, algo, limits);
        ClassResult { index: 0, initial, outcome: ex.outcome }
    })
    .into_iter()
    .enumerate()
    .map(|(i, mut r)| {
        r.index = i;
        r
    })
    .collect();

    let robots = classes.first().map_or(0, Vec::len);
    let mut report = VerificationReport {
        algorithm: algo.name().to_string(),
        robots,
        total: results.len(),
        gathered: 0,
        failures: Vec::new(),
        max_rounds: 0,
        total_rounds: 0,
        rounds_histogram: Vec::new(),
    };
    for r in results {
        match r.rounds() {
            Some(rounds) => {
                report.gathered += 1;
                report.max_rounds = report.max_rounds.max(rounds);
                report.total_rounds += rounds;
                if report.rounds_histogram.len() <= rounds {
                    report.rounds_histogram.resize(rounds + 1, 0);
                }
                report.rounds_histogram[rounds] += 1;
            }
            None => report.failures.push(r),
        }
    }
    report
}

/// The full §IV-B experiment: verify `algo` on **all** connected
/// `n`-robot initial configurations (all 3652 classes for `n = 7`).
#[must_use]
pub fn verify_all<A: Algorithm + Sync + ?Sized>(
    n: usize,
    algo: &A,
    limits: Limits,
    threads: usize,
) -> VerificationReport {
    let classes = polyhex::enumerate_fixed(n);
    verify_classes(&classes, algo, limits, threads)
}

/// Per-class results for **all** connected `n`-robot classes, including
/// the gathered ones (unlike [`verify_all`], which aggregates). Used by
/// the convergence-shape analyses.
#[must_use]
pub fn verify_detailed<A: Algorithm + Sync + ?Sized>(
    n: usize,
    algo: &A,
    limits: Limits,
    threads: usize,
) -> Vec<ClassResult> {
    let classes = polyhex::enumerate_fixed(n);
    par_map(&classes, threads, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        let ex = engine::run(&initial, algo, limits);
        ClassResult { index: 0, initial, outcome: ex.outcome }
    })
    .into_iter()
    .enumerate()
    .map(|(i, mut r)| {
        r.index = i;
        r
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robots::StayAlgorithm;

    #[test]
    fn stay_gathers_exactly_the_hexagon_class() {
        // Of the 3652 classes exactly one is the gathered hexagon; the
        // stay algorithm "solves" that one and is stuck on the rest.
        let report = verify_all(7, &StayAlgorithm, Limits::default(), 0);
        assert_eq!(report.total, 3652);
        assert_eq!(report.gathered, 1);
        assert_eq!(report.failures.len(), 3651);
        assert!(report
            .failures
            .iter()
            .all(|f| matches!(f.outcome, Outcome::StuckFixpoint { rounds: 0 })));
        assert_eq!(report.max_rounds, 0);
        assert!(!report.all_gathered());
    }

    #[test]
    fn report_summary_contains_counts() {
        let report = verify_all(4, &StayAlgorithm, Limits::default(), 1);
        assert_eq!(report.total, 44);
        let s = report.summary();
        assert!(s.contains("/44"), "{s}");
    }

    #[test]
    fn failure_indices_align_with_enumeration() {
        let classes = polyhex::enumerate_fixed(7);
        let report = verify_classes(&classes, &StayAlgorithm, Limits::default(), 2);
        for f in report.failures.iter().take(5) {
            let expected = Configuration::new(classes[f.index].iter().copied());
            assert_eq!(f.initial, expected);
        }
    }
}
