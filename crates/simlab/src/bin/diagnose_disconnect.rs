//! Diagnose disconnection failures: show the configuration just before
//! the split and every robot's decision in that round.
//!
//! ```text
//! cargo run --release -p simlab --bin diagnose_disconnect [-- --top N]
//! ```

use gathering::base::{determine, BaseDecision};
use gathering::SevenGather;
use robots::{engine, Algorithm, Configuration, Limits, Outcome, View};
use simlab::render;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let top: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let algo = SevenGather::verified();
    let limits = Limits::default();
    let classes = polyhex::enumerate_fixed(7);

    let runs = parallel::par_map(&classes, 0, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        engine::run_traced(&initial, &algo, limits)
    });

    // Cluster by the canonical configuration one round before the split.
    let mut clusters: HashMap<Configuration, usize> = HashMap::new();
    let mut samples: HashMap<Configuration, Configuration> = HashMap::new();
    for ex in &runs {
        if let Outcome::Disconnected { round } = ex.outcome {
            let trace = ex.trace.as_ref().unwrap();
            let before = trace[round - 1].canonical();
            *clusters.entry(before.clone()).or_default() += 1;
            samples.entry(before).or_insert_with(|| ex.initial.clone());
        }
    }
    let total: usize = clusters.values().sum();
    println!("{total} disconnections in {} clusters\n", clusters.len());

    let mut ordered: Vec<(&Configuration, &usize)> = clusters.iter().collect();
    ordered.sort_by(|a, b| b.1.cmp(a.1));
    for (before, count) in ordered.into_iter().take(top) {
        println!("=== pre-split configuration x{count}:");
        print!("{}", render::render_with_margin(before, 0));
        for &p in before.positions() {
            let v = View::observe(before, p, 2);
            let b = determine(&v);
            let mv = algo.compute(&v);
            let btxt = match b {
                BaseDecision::Base(c) => format!("base {c}"),
                BaseDecision::VirtualEast => "virtual(4,0)".into(),
                BaseDecision::SelfPromotion => "self-promo".into(),
                BaseDecision::Tie => "tie".into(),
            };
            println!("  robot {p}: {btxt}, move {mv:?}");
        }
        println!();
    }
}
