//! Runs the Theorem 1 machine proof (experiment E3).
//!
//! ```text
//! cargo run --release -p simlab --bin impossibility_proof [-- --budget N] [--symmetric]
//! ```
//!
//! `--symmetric` proves the restricted statement (no **mirror-symmetric**
//! visibility-1 algorithm exists) — it completes in microseconds because
//! a mirror-symmetric rule set confines the x-axis-aligned line to its
//! own row (only stay/E/W are mirror-fixed actions), so the hexagon can
//! never form. The unrestricted proof explores the full 7^64 table space
//! and can run for a long time.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget: u64 = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000_000);
    let symmetric = args.iter().any(|a| a == "--symmetric");

    let start = std::time::Instant::now();
    let cert = if symmetric {
        impossibility::prove_impossibility_symmetric(u64::MAX, true)
    } else {
        impossibility::prove_impossibility(budget, true)
    };
    let elapsed = start.elapsed();
    if symmetric {
        println!(
            "RESTRICTED THEOREM 1 VERIFIED: no mirror-symmetric visibility-1 algorithm\n\
             gathers all connected classes (symmetric rules confine the x-axis line to its row)"
        );
    } else {
        println!("THEOREM 1 VERIFIED: no visibility-1 algorithm gathers all connected classes");
    }
    println!(
        "core classes: {} | CEGIS rounds: {} | DFS nodes: {} | simulations: {} | max depth: {} | {:.2?}",
        cert.core_classes.len(),
        cert.cegis_rounds,
        cert.stats.nodes,
        cert.stats.simulations,
        cert.stats.max_depth,
        elapsed
    );
    for (i, c) in cert.core_classes.iter().enumerate() {
        println!("core class {i}: {:?}", c.positions());
    }
}
