//! Show the repeating cycles behind livelock failures.
//!
//! ```text
//! cargo run --release -p simlab --bin diagnose_livelock [-- --top N]
//! ```

use gathering::SevenGather;
use robots::{engine, Configuration, Limits, Outcome};
use simlab::render;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let top: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let algo = SevenGather::verified();
    let limits = Limits::default();
    let classes = polyhex::enumerate_fixed(7);

    let runs = parallel::par_map(&classes, 0, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        engine::run_traced(&initial, &algo, limits)
    });

    // Cluster livelocks by the canonical cycle-entry configuration.
    let mut clusters: HashMap<Configuration, (usize, usize, Vec<Configuration>)> = HashMap::new();
    let mut total = 0usize;
    for ex in &runs {
        if let Outcome::Livelock { entry, period } = ex.outcome {
            total += 1;
            let trace = ex.trace.as_ref().unwrap();
            let key = trace[entry].canonical();
            clusters
                .entry(key)
                .or_insert_with(|| (0, period, trace[entry..=entry + period].to_vec()))
                .0 += 1;
        }
    }
    println!("{total} livelocks in {} clusters\n", clusters.len());

    let mut ordered: Vec<_> = clusters.iter().collect();
    ordered.sort_by_key(|e| std::cmp::Reverse(e.1 .0));
    for (_, (count, period, cycle)) in ordered.into_iter().take(top) {
        println!("=== livelock x{count}, period {period}:");
        for (i, cfg) in cycle.iter().enumerate() {
            println!("cycle step {i}:");
            print!("{}", render::render_with_margin(cfg, 0));
        }
        println!();
    }
}
