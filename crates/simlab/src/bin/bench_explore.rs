//! Performance record for the packed-state exploration core.
//!
//! ```text
//! cargo run --release -p simlab --bin bench_explore -- \
//!     [--out PATH] [--iters N] [--skip-adversary]
//! ```
//!
//! Measures, on the full 3652-class seven-robot space:
//!
//! * `canonical()` (materializing) vs `canonical_key()` (packed,
//!   allocation-free) per-class cost,
//! * `HashMap<Configuration, id>` interning vs the packed `ClassArena`,
//! * raw `compute_moves` vs the memoized [`robots::MoveOracle`],
//! * checker construction (equivariance scan through the oracle),
//! * the headline: full crash `f = 1` classification wall-time (pure
//!   classification — every class checked in-memory, verdict tallies
//!   asserted against the golden 11/3641/0), the full SSYNC adversary
//!   classification for context, and the full ASYNC phase-interleaving
//!   classification (verdicts asserted against the golden 543/3109/0).
//!
//! The result is written as `BENCH_explore.json` next to
//! `BENCH_sweep.json`; the `baseline` block pins the measurements taken
//! on the pre-refactor tree (same host, single core) so the `speedup`
//! fields track the packed-core gain across future changes. Every
//! classification loop also records its peak heap footprint (class
//! arena, visited-state storage, BFS frontier, whole-check total) from
//! the explorer's high-water-mark gauges, and the per-n scaling table
//! runs up to the full n = 9 space (77359 classes).

use gathering::SevenGather;
use robots::adversary::{AdversaryOptions, AdversaryVerdict, Checker};
use robots::async_model::{AsyncChecker, AsyncOptions, AsyncVerdict};
use robots::faults::{CrashChecker, CrashOptions, CrashVerdict};
use robots::visited::ClassArena;
use robots::{engine, Configuration, MoveOracle};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

/// Pre-refactor measurements of the same quantities (commit `5873ec6`,
/// this repository's CI-equivalent host, 1 core, release profile).
/// `crash_f1_secs` / `adversary_secs` are pure classification loops
/// over all 3652 classes, measured with the same harness as below.
/// The `n8_*` fields pin the committed pre-flat-interning n = 8 rows
/// (HashMap-backed `ClassArena`, per-node `Vec` frontier storage) so
/// the memory-lean core's gain on the biggest pinned space is tracked
/// explicitly.
#[derive(Clone, Debug, Serialize)]
struct Baseline {
    host: String,
    crash_f1_secs: f64,
    adversary_secs: f64,
    canonical_ns: f64,
    /// Pre-flat-interning full n = 8 FSYNC pass, seconds.
    n8_fsync_secs: f64,
    /// Pre-flat-interning full n = 8 crash f=1 classification, seconds.
    n8_crash_f1_secs: f64,
    /// Pre-flat-interning full n = 8 adversary classification, seconds.
    n8_adversary_secs: f64,
    /// Pre-flat-interning full n = 8 ASYNC classification, seconds.
    n8_lcm_async_secs: f64,
}

/// Peak heap footprint of one classification loop, read from the
/// checker's high-water-mark gauges after the loop. All figures are
/// bytes of *reserved* capacity (the scratch pool reuses allocations
/// across classes, so these are per-cell peaks, not per-class sums).
#[derive(Clone, Debug, Serialize)]
struct MemStats {
    /// Peak class-arena bytes (flat probe table + key column +
    /// representative configurations) across the loop.
    arena_peak_bytes: u64,
    /// Peak visited-state bytes (state columns, per-class info,
    /// aux-variant chains) across the loop.
    visited_peak_bytes: u64,
    /// Peak BFS frontier bytes (chunked level storage) across the loop.
    frontier_peak_bytes: u64,
    /// Peak total scratch bytes for one whole check (arena + visited +
    /// frontier + edge pool).
    peak_bytes: u64,
}

impl MemStats {
    fn from_snapshot(s: &telemetry::Snapshot) -> Self {
        MemStats {
            arena_peak_bytes: s.gauge("explore.arena_bytes"),
            visited_peak_bytes: s.gauge("explore.visited_bytes"),
            frontier_peak_bytes: s.gauge("explore.frontier_bytes"),
            peak_bytes: s.gauge("explore.peak_bytes"),
        }
    }
}

#[derive(Clone, Debug, Serialize)]
struct MicroBench {
    /// Materializing `canonical()` per class, nanoseconds.
    canonical_ns: f64,
    /// Packed `canonical_key()` per class, nanoseconds.
    canonical_key_ns: f64,
    /// `canonical()`-keyed `HashMap` intern+lookup per class, ns.
    hashmap_intern_ns: f64,
    /// `ClassArena` packed intern+lookup per class, ns.
    arena_intern_ns: f64,
    /// Raw `compute_moves` per class, nanoseconds.
    compute_moves_raw_ns: f64,
    /// Memoized (warm oracle) `compute_moves` per class, nanoseconds.
    compute_moves_memo_ns: f64,
    /// One `CrashChecker::new` (equivariance scan + memo warmup), ms.
    checker_build_ms: f64,
}

/// Telemetry-derived attribution for one classification loop: where
/// the wall time went (Phase A–D) and how well the memo layers paid
/// (hit rates). Read from the checker's metrics snapshot after the
/// loop, so future perf PRs can see *which* phase or cache moved, not
/// just the total seconds. The oracle rate includes the construction
/// equivariance scan (deliberately: that scan is the warmup that makes
/// the in-loop rate high).
#[derive(Clone, Debug, Serialize)]
struct PhaseStats {
    /// Phase A (BFS expansion) wall time, seconds.
    phase_a_secs: f64,
    /// Phase B (quotient acyclicity) wall time, seconds.
    phase_b_secs: f64,
    /// Phase C (fair-cycle heuristic) wall time, seconds.
    phase_c_secs: f64,
    /// Phase D (fair-product decision) wall time, seconds.
    phase_d_secs: f64,
    /// MoveOracle decision-table hit rate, 0..=1.
    oracle_hit_rate: f64,
    /// Cell-global `(ClassInfo, Configuration)` cache hit rate, 0..=1.
    info_memo_hit_rate: f64,
    /// Cell-global `RoundTable` cache hit rate, 0..=1.
    table_memo_hit_rate: f64,
    /// Peak heap bytes for the loop (arena / visited / frontier /
    /// whole-check high-water marks).
    mem: MemStats,
}

impl PhaseStats {
    fn from_snapshot(s: &telemetry::Snapshot) -> Self {
        let secs = |name: &str| s.counter(name) as f64 / 1e9;
        PhaseStats {
            phase_a_secs: secs("explore.phase_a_ns"),
            phase_b_secs: secs("explore.phase_b_ns"),
            phase_c_secs: secs("explore.phase_c_ns"),
            phase_d_secs: secs("explore.phase_d_ns"),
            oracle_hit_rate: s.rate("oracle.hit", "oracle.miss"),
            info_memo_hit_rate: s.rate("memo.info.hit", "memo.info.miss"),
            table_memo_hit_rate: s.rate("memo.table.hit", "memo.table.miss"),
            mem: MemStats::from_snapshot(s),
        }
    }
}

/// Per-robot-count scaling row: the same verified rules over the
/// parameterized class spaces (DESIGN §14).
#[derive(Clone, Debug, Serialize)]
struct PerN {
    /// Robot count.
    n: usize,
    /// Classes in the space (OEIS A001207).
    classes: usize,
    /// Full FSYNC run over the space, seconds.
    fsync_secs: f64,
    /// Full crash f=1 classification over the space, seconds.
    crash_f1_secs: f64,
    /// Crash f=1 verdict tallies (proof, refuted, undecided).
    crash_f1_verdicts: [usize; 3],
    /// Full SSYNC adversary classification over the space, seconds.
    adversary_secs: f64,
    /// Adversary verdict tallies (proof, refuted, undecided). The
    /// undecided slot is the budget-honesty headline: zero on every
    /// count the sweeps pin.
    adversary_verdicts: [usize; 3],
    /// Full ASYNC phase-interleaving classification, seconds.
    lcm_async_secs: f64,
    /// ASYNC verdict tallies (proof, refuted, undecided).
    lcm_async_verdicts: [usize; 3],
    /// Phase/memo attribution for the crash f=1 loop.
    crash_f1_stats: PhaseStats,
    /// Phase/memo attribution for the adversary loop.
    adversary_stats: PhaseStats,
    /// Phase/memo attribution for the ASYNC loop.
    lcm_async_stats: PhaseStats,
}

#[derive(Clone, Debug, Serialize)]
struct Record {
    /// Classes in the space (3652 for n = 7).
    classes: usize,
    iters: usize,
    micro: MicroBench,
    /// Full crash `f = 1` classification (pure, in-memory), seconds.
    crash_f1_secs: f64,
    /// Crash f=1 verdict tallies (proof, refuted, undecided).
    crash_f1_verdicts: [usize; 3],
    /// Phase/memo attribution for the crash f=1 loop.
    crash_f1_stats: PhaseStats,
    /// Full SSYNC adversary classification, seconds (absent with
    /// `--skip-adversary`).
    adversary_secs: Option<f64>,
    /// Phase/memo attribution for the adversary loop (absent with
    /// `--skip-adversary`).
    adversary_stats: Option<PhaseStats>,
    /// Full ASYNC phase-interleaving classification, seconds.
    lcm_async_secs: f64,
    /// ASYNC verdict tallies (proof, refuted, undecided).
    lcm_async_verdicts: [usize; 3],
    /// Phase/memo attribution for the ASYNC loop.
    lcm_async_stats: PhaseStats,
    /// Scaling over the other robot counts the sweeps support.
    per_n: Vec<PerN>,
    baseline: Baseline,
    /// `baseline.crash_f1_secs / crash_f1_secs`.
    crash_f1_speedup: f64,
    /// `baseline.n8_crash_f1_secs / per_n[n = 8].crash_f1_secs` — the
    /// memory-lean core's headline gain on the biggest pinned space.
    n8_crash_f1_speedup: f64,
    /// `baseline.canonical_ns / micro.canonical_key_ns`.
    canonical_key_speedup: f64,
}

fn usage() -> ! {
    eprintln!("usage: bench_explore [--out PATH] [--iters N] [--skip-adversary]");
    std::process::exit(2);
}

fn main() {
    let mut out = PathBuf::from("target/sweep/BENCH_explore.json");
    let mut iters = 20usize;
    let mut skip_adversary = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--iters" => {
                iters = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                if iters == 0 {
                    usage();
                }
            }
            "--skip-adversary" => skip_adversary = true,
            _ => usage(),
        }
    }

    let algo = SevenGather::verified();
    let classes: Vec<Configuration> =
        polyhex::enumerate_fixed(7).into_iter().map(Configuration::new).collect();
    let n = classes.len();
    // Shifted copies so the canonicalisation paths do real work.
    let shifted: Vec<Configuration> =
        classes.iter().map(|c| c.translate(trigrid::Coord::new(6, 2))).collect();

    let per_ns = |elapsed: std::time::Duration, ops: usize| elapsed.as_nanos() as f64 / ops as f64;

    // canonical() vs canonical_key().
    let started = Instant::now();
    let mut guard = 0usize;
    for _ in 0..iters {
        for c in &shifted {
            guard = guard.wrapping_add(c.canonical().len());
        }
    }
    let canonical_ns = per_ns(started.elapsed(), n * iters);
    let started = Instant::now();
    for _ in 0..iters {
        for c in &shifted {
            guard = guard.wrapping_add(c.canonical_key().robots());
        }
    }
    let canonical_key_ns = per_ns(started.elapsed(), n * iters);

    // HashMap<canonical Configuration> intern vs packed ClassArena:
    // one insert pass plus one hit pass per iteration.
    let started = Instant::now();
    for _ in 0..iters {
        let mut map: HashMap<Configuration, u32> = HashMap::new();
        for (i, c) in shifted.iter().enumerate() {
            map.entry(c.canonical()).or_insert(i as u32);
        }
        for c in &shifted {
            guard = guard.wrapping_add(map[&c.canonical()] as usize);
        }
    }
    let hashmap_intern_ns = per_ns(started.elapsed(), 2 * n * iters);
    let started = Instant::now();
    for _ in 0..iters {
        let mut arena = ClassArena::new();
        for c in &shifted {
            guard = guard.wrapping_add(arena.intern(c).0 as usize);
        }
        for c in &shifted {
            guard = guard.wrapping_add(arena.intern(c).0 as usize);
        }
    }
    let arena_intern_ns = per_ns(started.elapsed(), 2 * n * iters);

    // Raw vs memoized move computation.
    let started = Instant::now();
    for _ in 0..iters {
        for c in &classes {
            guard = guard.wrapping_add(engine::compute_moves(c, &algo).len());
        }
    }
    let compute_moves_raw_ns = per_ns(started.elapsed(), n * iters);
    let oracle = MoveOracle::new(&algo);
    for c in &classes {
        let _ = engine::compute_moves(c, &oracle); // warm
    }
    let started = Instant::now();
    for _ in 0..iters {
        for c in &classes {
            guard = guard.wrapping_add(engine::compute_moves(c, &oracle).len());
        }
    }
    let compute_moves_memo_ns = per_ns(started.elapsed(), n * iters);

    // Checker construction (equivariance scan through the oracle).
    let started = Instant::now();
    let crash_checker = CrashChecker::new(&algo, CrashOptions::default());
    let checker_build_ms = started.elapsed().as_secs_f64() * 1e3;

    // Headline: the full crash f=1 classification, pure in-memory.
    let started = Instant::now();
    let mut crash_tallies = [0usize; 3];
    for c in &classes {
        match crash_checker.check(c).verdict {
            CrashVerdict::Proof => crash_tallies[0] += 1,
            CrashVerdict::Refuted { .. } => crash_tallies[1] += 1,
            CrashVerdict::Undecided { .. } => crash_tallies[2] += 1,
        }
    }
    let crash_f1_secs = started.elapsed().as_secs_f64();
    assert_eq!(crash_tallies, [11, 3641, 0], "crash f=1 tallies diverged from the golden");
    let crash_f1_stats = PhaseStats::from_snapshot(&crash_checker.metrics_snapshot());

    // The ASYNC axis: the same packed-state core over pending vectors.
    let async_checker = AsyncChecker::new(&algo, AsyncOptions::default());
    let started = Instant::now();
    let mut async_tallies = [0usize; 3];
    for c in &classes {
        match async_checker.check(c).verdict {
            AsyncVerdict::Proof => async_tallies[0] += 1,
            AsyncVerdict::Refuted { .. } => async_tallies[1] += 1,
            AsyncVerdict::Undecided { .. } => async_tallies[2] += 1,
        }
    }
    let lcm_async_secs = started.elapsed().as_secs_f64();
    assert_eq!(async_tallies, [543, 3109, 0], "ASYNC tallies diverged from the golden");
    let lcm_async_stats = PhaseStats::from_snapshot(&async_checker.metrics_snapshot());

    let adversary = (!skip_adversary).then(|| {
        let checker = Checker::new(&algo, AdversaryOptions::default());
        let started = Instant::now();
        let mut tallies = [0usize; 3];
        for c in &classes {
            match checker.check(c).verdict {
                AdversaryVerdict::Proof => tallies[0] += 1,
                AdversaryVerdict::Refuted { .. } => tallies[1] += 1,
                AdversaryVerdict::Undecided { .. } => tallies[2] += 1,
            }
        }
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(tallies, [1869, 1783, 0], "adversary tallies diverged from the golden");
        (secs, PhaseStats::from_snapshot(&checker.metrics_snapshot()))
    });
    let adversary_secs = adversary.as_ref().map(|(secs, _)| *secs);
    let adversary_stats = adversary.map(|(_, stats)| stats);

    // Per-n scaling: the parameterized class spaces (DESIGN §14) —
    // one FSYNC pass and one crash f=1 classification per count. The
    // n=8/n=9 tallies are pinned by `tests/golden/nsweep-verified.json`;
    // here only totality is asserted so the bench never goes stale on
    // an intentional reclassification.
    let mut per_n = Vec::new();
    for count in [5usize, 6, 8, 9] {
        let space: Vec<Configuration> =
            polyhex::enumerate_fixed(count).into_iter().map(Configuration::new).collect();
        let started = Instant::now();
        for c in &space {
            guard = guard.wrapping_add(usize::from(
                engine::run(c, &algo, robots::Limits::default()).outcome.is_gathered(),
            ));
        }
        let fsync_secs = started.elapsed().as_secs_f64();
        let checker = CrashChecker::for_robots(&algo, CrashOptions::default(), count.max(8));
        let started = Instant::now();
        let mut tallies = [0usize; 3];
        for c in &space {
            match checker.check(c).verdict {
                CrashVerdict::Proof => tallies[0] += 1,
                CrashVerdict::Refuted { .. } => tallies[1] += 1,
                CrashVerdict::Undecided { .. } => tallies[2] += 1,
            }
        }
        let crash_f1_secs = started.elapsed().as_secs_f64();
        assert_eq!(tallies.iter().sum::<usize>(), space.len(), "n={count}: every class classified");
        let crash_f1_verdicts = tallies;
        let crash_f1_stats = PhaseStats::from_snapshot(&checker.metrics_snapshot());

        let checker = Checker::for_robots(&algo, AdversaryOptions::for_robots(count), count.max(8));
        let started = Instant::now();
        let mut tallies = [0usize; 3];
        for c in &space {
            match checker.check(c).verdict {
                AdversaryVerdict::Proof => tallies[0] += 1,
                AdversaryVerdict::Refuted { .. } => tallies[1] += 1,
                AdversaryVerdict::Undecided { .. } => tallies[2] += 1,
            }
        }
        let adversary_secs = started.elapsed().as_secs_f64();
        assert_eq!(tallies.iter().sum::<usize>(), space.len(), "n={count}: adversary totality");
        let adversary_verdicts = tallies;
        let adversary_stats = PhaseStats::from_snapshot(&checker.metrics_snapshot());

        let checker = AsyncChecker::for_robots(&algo, AsyncOptions::default(), count.max(8));
        let started = Instant::now();
        let mut tallies = [0usize; 3];
        for c in &space {
            match checker.check(c).verdict {
                AsyncVerdict::Proof => tallies[0] += 1,
                AsyncVerdict::Refuted { .. } => tallies[1] += 1,
                AsyncVerdict::Undecided { .. } => tallies[2] += 1,
            }
        }
        let lcm_async_secs = started.elapsed().as_secs_f64();
        assert_eq!(tallies.iter().sum::<usize>(), space.len(), "n={count}: ASYNC totality");
        let lcm_async_stats = PhaseStats::from_snapshot(&checker.metrics_snapshot());

        per_n.push(PerN {
            n: count,
            classes: space.len(),
            fsync_secs,
            crash_f1_secs,
            crash_f1_verdicts,
            adversary_secs,
            adversary_verdicts,
            lcm_async_secs,
            lcm_async_verdicts: tallies,
            crash_f1_stats,
            adversary_stats,
            lcm_async_stats,
        });
    }

    let baseline = Baseline {
        host: "pre-refactor tree at 5873ec6, same single-core host; n8_* rows \
               from the pre-flat-interning tree (HashMap arena), same host"
            .to_string(),
        crash_f1_secs: BASELINE_CRASH_F1_SECS,
        adversary_secs: BASELINE_ADVERSARY_SECS,
        canonical_ns: BASELINE_CANONICAL_NS,
        n8_fsync_secs: BASELINE_N8_FSYNC_SECS,
        n8_crash_f1_secs: BASELINE_N8_CRASH_F1_SECS,
        n8_adversary_secs: BASELINE_N8_ADVERSARY_SECS,
        n8_lcm_async_secs: BASELINE_N8_LCM_ASYNC_SECS,
    };
    let n8_crash_f1 = per_n
        .iter()
        .find(|row| row.n == 8)
        .map(|row| row.crash_f1_secs)
        .expect("per-n table covers n = 8");
    let record = Record {
        classes: n,
        iters,
        crash_f1_speedup: baseline.crash_f1_secs / crash_f1_secs,
        n8_crash_f1_speedup: baseline.n8_crash_f1_secs / n8_crash_f1,
        canonical_key_speedup: baseline.canonical_ns / canonical_key_ns,
        micro: MicroBench {
            canonical_ns,
            canonical_key_ns,
            hashmap_intern_ns,
            arena_intern_ns,
            compute_moves_raw_ns,
            compute_moves_memo_ns,
            checker_build_ms,
        },
        crash_f1_secs,
        crash_f1_verdicts: crash_tallies,
        crash_f1_stats,
        adversary_secs,
        adversary_stats,
        lcm_async_secs,
        lcm_async_verdicts: async_tallies,
        lcm_async_stats,
        per_n,
        baseline,
    };

    let json = serde_json::to_string_pretty(&record).expect("record serialises");
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    });
    eprintln!(
        "bench_explore: crash f=1 full classification {crash_f1_secs:.3}s \
         ({:.2}x vs baseline {:.3}s), n=8 crash {n8_crash_f1:.3}s \
         ({:.2}x vs pre-flat-interning {:.3}s) -> {}",
        record.crash_f1_speedup,
        record.baseline.crash_f1_secs,
        record.n8_crash_f1_speedup,
        record.baseline.n8_crash_f1_secs,
        out.display()
    );
    // `guard` keeps the measured loops observable.
    assert!(guard != 0);
}

/// Pre-refactor full crash f=1 classification, seconds — best of three
/// runs of the same pure loop on the pre-refactor tree (see
/// [`Baseline`] provenance).
const BASELINE_CRASH_F1_SECS: f64 = 0.462;
/// Pre-refactor full adversary classification, seconds (best of 3).
const BASELINE_ADVERSARY_SECS: f64 = 2.030;
/// Pre-refactor `canonical()` cost per class, nanoseconds (best of 3).
const BASELINE_CANONICAL_NS: f64 = 35.8;
/// Pre-flat-interning full n = 8 FSYNC pass, seconds (committed
/// `BENCH_explore.json` row before the memory-lean core landed).
const BASELINE_N8_FSYNC_SECS: f64 = 0.310;
/// Pre-flat-interning full n = 8 crash f=1 classification, seconds —
/// the headline the memory-lean exploration core must beat.
const BASELINE_N8_CRASH_F1_SECS: f64 = 5.434;
/// Pre-flat-interning full n = 8 adversary classification, seconds.
const BASELINE_N8_ADVERSARY_SECS: f64 = 1.958;
/// Pre-flat-interning full n = 8 ASYNC classification, seconds.
const BASELINE_N8_LCM_ASYNC_SECS: f64 = 1.599;
