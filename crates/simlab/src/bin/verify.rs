//! Exhaustive verification CLI (experiment E1/E2).
//!
//! ```text
//! cargo run --release -p simlab --bin verify [-- paper|verified|baseline] [--failures N]
//! ```

use robots::{engine, Limits};
use simlab::{render, stats, verify_all};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("verified");
    let show: usize = args
        .iter()
        .position(|a| a == "--failures")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let limits = Limits::default();
    let report = match which {
        "paper" => verify_all(7, &gathering::SevenGather::paper(), limits, 0),
        "verified" => verify_all(7, &gathering::SevenGather::verified(), limits, 0),
        "baseline" => verify_all(7, &gathering::baseline::GreedyEast, limits, 0),
        other => {
            eprintln!("unknown algorithm {other:?}; use paper|verified|baseline");
            std::process::exit(2);
        }
    };

    println!("{}", report.summary());
    if let Some(s) = stats::rounds_stats(&report) {
        println!(
            "rounds: min={} median={} p95={} max={} mean={:.2}",
            s.min, s.median, s.p95, s.max, s.mean
        );
    }

    if !report.failures.is_empty() {
        println!("\nfirst {show} failures:");
        let algo: Box<dyn robots::Algorithm + Sync> = match which {
            "paper" => Box::new(gathering::SevenGather::paper()),
            "baseline" => Box::new(gathering::baseline::GreedyEast),
            _ => Box::new(gathering::SevenGather::verified()),
        };
        for f in report.failures.iter().take(show) {
            println!("--- class #{} -> {:?}", f.index, f.outcome);
            let ex = engine::run_traced(&f.initial, algo.as_ref(), limits);
            let trace = ex.trace.unwrap();
            let tail = trace.len().saturating_sub(6);
            for (i, cfg) in trace.iter().enumerate() {
                if i > 2 && i < tail {
                    continue;
                }
                println!("round {i}:");
                println!("{}", render::render(cfg));
            }
        }
        std::process::exit(1);
    }
}
