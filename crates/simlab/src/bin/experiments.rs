//! Regenerates the measured sections of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p simlab --bin experiments [-- --skip-slow]
//! ```

use simlab::experiments as exp;

fn main() {
    let skip_slow = std::env::args().any(|a| a == "--skip-slow");
    let mut results = vec![
        exp::e1_exhaustive_verification(0),
        exp::e2_rules_ablation(0),
        exp::e5_enumeration(),
        exp::e8_steps_distribution(0),
        exp::e8b_rounds_by_diameter(0),
    ];
    if !skip_slow {
        results.push(exp::e9_schedulers(0));
        results.push(exp::e11_other_robot_counts(0));
        results.push(exp::e12_relaxed_connectivity(0));
        results.push(exp::e13_async(0));
    }
    for r in results {
        println!("## {} — {}\n\n{}\n", r.id, r.title, r.body);
    }
}
