//! Failure-cluster diagnosis for rule-set completion.
//!
//! Runs the exhaustive verification, groups the failing executions by
//! the canonical *final* configuration (for stuck fixpoints) or by
//! outcome type, and prints the most frequent clusters with per-robot
//! base decisions — the raw material for designing the missing guards.
//!
//! ```text
//! cargo run --release -p simlab --bin diagnose [-- paper|verified] [--top N]
//! cargo run --release -p simlab --bin diagnose -- --stats [--class I] [--n N] [paper|verified]
//! ```
//!
//! `--stats` switches to single-class telemetry mode: it runs the
//! exhaustive SSYNC adversary checker on one class (`--class`, default
//! 0, of the `--n`-robot enumeration, default 7) and dumps the
//! checker's telemetry snapshot — per-phase wall times, memo hit
//! rates, frontier peaks — as pretty JSON plus a short human summary.

use gathering::base::{determine, BaseDecision};
use gathering::SevenGather;
use robots::adversary::{AdversaryOptions, Checker};
use robots::{engine, Algorithm, Configuration, Limits, Outcome, View};
use simlab::render;
use std::collections::HashMap;

/// Parses the value following `flag`, if present.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|s| s.parse().ok())
}

/// `--stats` mode: one class, one check, full telemetry dump.
fn run_stats(args: &[String]) {
    let which = if args.iter().any(|a| a == "paper") { "paper" } else { "verified" };
    let n: usize = flag_value(args, "--n").unwrap_or(7);
    let class: usize = flag_value(args, "--class").unwrap_or(0);
    let algo = match which {
        "paper" => SevenGather::paper(),
        _ => SevenGather::verified(),
    };
    let classes = polyhex::enumerate_fixed(n);
    let Some(cells) = classes.get(class) else {
        eprintln!("class {class} out of range: the n={n} space holds {} classes", classes.len());
        std::process::exit(2);
    };
    let initial = Configuration::new(cells.iter().copied());
    let checker = Checker::for_robots(&algo, AdversaryOptions::for_robots(n), n.max(8));
    let report = checker.check(&initial);
    let snapshot = checker.metrics_snapshot();

    println!("class {class}/{} (n={n}, {which}): verdict {:?}", classes.len(), report.verdict);
    println!("classes {} · edges {} · deduped {}", report.classes, report.edges, report.deduped);
    let ms = |name: &str| snapshot.counter(name) as f64 / 1e6;
    println!(
        "phases: A {:.2} ms · B {:.2} ms · C {:.2} ms · D {:.2} ms",
        ms("explore.phase_a_ns"),
        ms("explore.phase_b_ns"),
        ms("explore.phase_c_ns"),
        ms("explore.phase_d_ns"),
    );
    println!(
        "memo hit rates: oracle {:.1}% · class-info {:.1}% · round-table {:.1}%",
        snapshot.rate("oracle.hit", "oracle.miss") * 100.0,
        snapshot.rate("memo.info.hit", "memo.info.miss") * 100.0,
        snapshot.rate("memo.table.hit", "memo.table.miss") * 100.0,
    );
    if let Some(width) = snapshot.histogram("explore.frontier_width") {
        println!(
            "frontier: peak {} · mean {:.1} over {} levels",
            width.max,
            width.mean(),
            width.count
        );
    }
    println!("\nsnapshot:");
    println!("{}", serde_json::to_string_pretty(&snapshot).expect("snapshot serializes"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--stats") {
        run_stats(&args);
        return;
    }
    let which = args.first().map(String::as_str).unwrap_or("verified");
    let top: usize = flag_value(&args, "--top").unwrap_or(8);
    let algo = match which {
        "paper" => SevenGather::paper(),
        _ => SevenGather::verified(),
    };
    let limits = Limits::default();
    let classes = polyhex::enumerate_fixed(7);

    let results = parallel::par_map(&classes, 0, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        engine::run(&initial, &algo, limits)
    });

    let mut outcome_kinds: HashMap<&'static str, usize> = HashMap::new();
    // stuck fixpoints and livelocks clustered by canonical final config
    let mut clusters: HashMap<Configuration, (usize, Configuration, &'static str)> = HashMap::new();
    let mut gathered = 0usize;
    for ex in &results {
        let kind = match ex.outcome {
            Outcome::Gathered { .. } => {
                gathered += 1;
                continue;
            }
            Outcome::StuckFixpoint { .. } => "stuck",
            Outcome::Livelock { .. } => "livelock",
            Outcome::Collision { .. } => "collision",
            Outcome::Disconnected { .. } => "disconnected",
            Outcome::StepLimit { .. } => "step-limit",
            // `engine::run` never emits it (checker-only outcome), but
            // the match must stay total.
            Outcome::Undecided { .. } => "undecided",
        };
        *outcome_kinds.entry(kind).or_default() += 1;
        let key = ex.final_config.canonical();
        let entry = clusters.entry(key).or_insert((0, ex.initial.clone(), kind));
        entry.0 += 1;
    }

    println!("gathered {gathered}/{} ; failure kinds: {outcome_kinds:?}", results.len());
    println!("{} distinct failure clusters\n", clusters.len());

    let mut ordered: Vec<(&Configuration, &(usize, Configuration, &'static str))> =
        clusters.iter().collect();
    ordered.sort_by_key(|e| std::cmp::Reverse(e.1 .0));

    for (final_cfg, (count, sample_initial, kind)) in ordered.into_iter().take(top) {
        println!("=== cluster ({kind}) x{count} — final configuration:");
        print!("{}", render::render_with_margin(final_cfg, 0));
        println!("per-robot analysis of the final configuration:");
        for &p in final_cfg.positions() {
            let v = View::observe(final_cfg, p, 2);
            let b = determine(&v);
            let mv = algo.compute(&v);
            let btxt = match b {
                BaseDecision::Base(c) => format!("base {c}"),
                BaseDecision::VirtualEast => "base virtual(4,0)".to_string(),
                BaseDecision::SelfPromotion => "self-promotion".to_string(),
                BaseDecision::Tie => "tie".to_string(),
            };
            println!("  robot {p}: {btxt}, move {mv:?}");
        }
        println!("sample initial configuration:");
        print!("{}", render::render_with_margin(sample_initial, 0));
        println!();
    }
}
