//! Failure-cluster diagnosis for rule-set completion.
//!
//! Runs the exhaustive verification, groups the failing executions by
//! the canonical *final* configuration (for stuck fixpoints) or by
//! outcome type, and prints the most frequent clusters with per-robot
//! base decisions — the raw material for designing the missing guards.
//!
//! ```text
//! cargo run --release -p simlab --bin diagnose [-- paper|verified] [--top N]
//! ```

use gathering::base::{determine, BaseDecision};
use gathering::SevenGather;
use robots::{engine, Algorithm, Configuration, Limits, Outcome, View};
use simlab::render;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("verified");
    let top: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let algo = match which {
        "paper" => SevenGather::paper(),
        _ => SevenGather::verified(),
    };
    let limits = Limits::default();
    let classes = polyhex::enumerate_fixed(7);

    let results = parallel::par_map(&classes, 0, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        engine::run(&initial, &algo, limits)
    });

    let mut outcome_kinds: HashMap<&'static str, usize> = HashMap::new();
    // stuck fixpoints and livelocks clustered by canonical final config
    let mut clusters: HashMap<Configuration, (usize, Configuration, &'static str)> = HashMap::new();
    let mut gathered = 0usize;
    for ex in &results {
        let kind = match ex.outcome {
            Outcome::Gathered { .. } => {
                gathered += 1;
                continue;
            }
            Outcome::StuckFixpoint { .. } => "stuck",
            Outcome::Livelock { .. } => "livelock",
            Outcome::Collision { .. } => "collision",
            Outcome::Disconnected { .. } => "disconnected",
            Outcome::StepLimit { .. } => "step-limit",
            // `engine::run` never emits it (checker-only outcome), but
            // the match must stay total.
            Outcome::Undecided { .. } => "undecided",
        };
        *outcome_kinds.entry(kind).or_default() += 1;
        let key = ex.final_config.canonical();
        let entry = clusters.entry(key).or_insert((0, ex.initial.clone(), kind));
        entry.0 += 1;
    }

    println!("gathered {gathered}/{} ; failure kinds: {outcome_kinds:?}", results.len());
    println!("{} distinct failure clusters\n", clusters.len());

    let mut ordered: Vec<(&Configuration, &(usize, Configuration, &'static str))> =
        clusters.iter().collect();
    ordered.sort_by_key(|e| std::cmp::Reverse(e.1 .0));

    for (final_cfg, (count, sample_initial, kind)) in ordered.into_iter().take(top) {
        println!("=== cluster ({kind}) x{count} — final configuration:");
        print!("{}", render::render_with_margin(final_cfg, 0));
        println!("per-robot analysis of the final configuration:");
        for &p in final_cfg.positions() {
            let v = View::observe(final_cfg, p, 2);
            let b = determine(&v);
            let mv = algo.compute(&v);
            let btxt = match b {
                BaseDecision::Base(c) => format!("base {c}"),
                BaseDecision::VirtualEast => "base virtual(4,0)".to_string(),
                BaseDecision::SelfPromotion => "self-promotion".to_string(),
                BaseDecision::Tie => "tie".to_string(),
            };
            println!("  robot {p}: {btxt}, move {mv:?}");
        }
        println!("sample initial configuration:");
        print!("{}", render::render_with_margin(sample_initial, 0));
        println!();
    }
}
