//! Sharded, resumable scheduler-matrix verification sweeps.
//!
//! ```text
//! cargo run --release -p simlab --bin sweep -- \
//!     [--algo paper|verified|FLAGS] [--sched fsync|round-robin|random[:SEED:P]] \
//!     [--n 7] [--shards 8] [--threads 0] [--stealing auto|on|off] \
//!     [--max-rounds N] [--out-dir target/sweep] [--resume] \
//!     [--fail-fast] [--matrix]
//! ```
//!
//! One invocation runs one cell of the {algorithm} × {scheduler}
//! matrix, writing per-shard JSON records plus a merged summary into
//! the output directory. `--resume` reuses any shard record already on
//! disk that matches the cell, so interrupted sweeps continue where
//! they stopped. `--fail-fast` skips the pipeline and instead hunts for
//! a single counterexample with the early-exit executor. `--matrix`
//! runs the full default matrix ({paper, verified, fix25+conn+compl} ×
//! {fsync, round-robin, random}) and prints a verdict table.

use robots::Limits;
use simlab::sweep::{run_sweep, AlgoSpec, SchedSpec, ShardStatus, SweepConfig, SweepSummary};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    cfg: SweepConfig,
    out_dir: PathBuf,
    resume: bool,
    fail_fast: bool,
    matrix: bool,
    /// Whether --algo / --sched were given explicitly (conflicts with
    /// --matrix, which supplies both axes itself).
    cell_chosen: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--algo paper|verified|FLAGS] [--sched fsync|round-robin|random[:SEED:P]]\n\
         \x20            [--n N] [--shards S] [--threads T] [--stealing auto|on|off]\n\
         \x20            [--max-rounds R] [--out-dir DIR] [--resume] [--fail-fast] [--matrix]\n\
         \n\
         FLAGS is a '+'-separated ablation list from fix25, conn, prio, compl, mirror (or 'none')."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: SweepConfig::default(),
        out_dir: PathBuf::from("target/sweep"),
        resume: false,
        fail_fast: false,
        matrix: false,
        cell_chosen: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match arg.as_str() {
            "--algo" => {
                let v = value("--algo");
                args.cfg.algo = AlgoSpec::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown algorithm spec {v:?}");
                    usage();
                });
                args.cell_chosen = true;
            }
            "--sched" => {
                let v = value("--sched");
                args.cfg.sched = SchedSpec::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scheduler spec {v:?}");
                    usage();
                });
                args.cell_chosen = true;
            }
            "--n" => args.cfg.n = value("--n").parse().unwrap_or_else(|_| usage()),
            "--shards" => {
                args.cfg.shards = value("--shards").parse().unwrap_or_else(|_| usage());
                if args.cfg.shards == 0 {
                    eprintln!("--shards must be at least 1");
                    usage();
                }
            }
            "--threads" => {
                args.cfg.threads = value("--threads").parse().unwrap_or_else(|_| usage())
            }
            "--stealing" => {
                args.cfg.stealing = match value("--stealing").as_str() {
                    "auto" => None,
                    "on" => Some(true),
                    "off" => Some(false),
                    _ => usage(),
                }
            }
            "--max-rounds" => {
                args.cfg.limits = Limits {
                    max_rounds: value("--max-rounds").parse().unwrap_or_else(|_| usage()),
                    ..args.cfg.limits
                }
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--resume" => args.resume = true,
            "--fail-fast" => args.fail_fast = true,
            "--matrix" => args.matrix = true,
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage();
            }
        }
    }
    if args.matrix && args.fail_fast {
        eprintln!("--matrix and --fail-fast are mutually exclusive");
        usage();
    }
    if args.matrix && args.cell_chosen {
        eprintln!("--matrix supplies both axes itself; drop --algo/--sched");
        usage();
    }
    args
}

fn run_cell(cfg: &SweepConfig, out_dir: &std::path::Path, resume: bool) -> SweepSummary {
    let started = Instant::now();
    eprintln!(
        "sweep {} · n={} shards={} threads={} executor={} resume={}",
        cfg.slug(),
        cfg.n,
        cfg.shards,
        cfg.threads,
        if cfg.use_stealing() { "stealing" } else { "chunked" },
        resume,
    );
    let outcome = run_sweep(cfg, out_dir, resume, |shard, status, record| {
        let verb = match status {
            ShardStatus::Computed => "computed",
            ShardStatus::Reused => "reused",
        };
        eprintln!(
            "  shard {shard:>3}: {verb} classes {}..{} ({} results)",
            record.start,
            record.end,
            record.results.len()
        );
    })
    .unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    let reused = outcome.shard_status.iter().filter(|s| **s == ShardStatus::Reused).count();
    eprintln!(
        "  merged {} shards ({reused} reused) in {:.2?} -> {}",
        outcome.shard_status.len(),
        started.elapsed(),
        cfg.summary_path(out_dir).display(),
    );
    println!("{}", outcome.summary.line());
    outcome.summary
}

fn main() {
    let args = parse_args();

    if args.fail_fast {
        match simlab::sweep::find_failure(&args.cfg) {
            None => println!("{}: no counterexample — every class gathers", args.cfg.slug()),
            Some((index, outcome)) => {
                println!("{}: class #{index} fails with {outcome:?}", args.cfg.slug());
                std::process::exit(1);
            }
        }
        return;
    }

    if args.matrix {
        let algos = [
            AlgoSpec::Paper,
            AlgoSpec::Verified,
            AlgoSpec::parse("fix25+conn+compl").expect("known ablation"),
        ];
        let scheds =
            [SchedSpec::Fsync, SchedSpec::RoundRobin, SchedSpec::RandomSubset { seed: 1, p: 0.5 }];
        let mut lines = Vec::new();
        for algo in algos {
            for sched in scheds {
                let cfg = SweepConfig { algo, sched, ..args.cfg.clone() };
                let summary = run_cell(&cfg, &args.out_dir, args.resume);
                lines.push(summary.line());
            }
        }
        println!("\n=== matrix verdicts ===");
        for line in lines {
            println!("{line}");
        }
        return;
    }

    let summary = run_cell(&args.cfg, &args.out_dir, args.resume);
    if args.cfg.sched == SchedSpec::Fsync
        && args.cfg.algo == AlgoSpec::Verified
        && !summary.all_gathered()
    {
        // The Theorem 2 cell regressed; make pipelines notice.
        std::process::exit(1);
    }
}
