//! Sharded, resumable scheduler-matrix verification sweeps.
//!
//! ```text
//! cargo run --release -p simlab --bin sweep -- \
//!     [--algo paper|verified|FLAGS] \
//!     [--sched fsync|round-robin|random[:SEED:P]|adversary[:DEPTH]|
//!              crash:F[:DEPTH]|lcm-async[:DEPTH]] \
//!     [--n 2..=10] [--shards 8] [--threads N] [--stealing auto|on|off] \
//!     [--max-rounds N] [--out-dir target/sweep] [--resume] \
//!     [--fail-fast] [--matrix] [--strict]
//! ```
//!
//! One invocation runs one cell of the {algorithm} × {scheduler}
//! matrix, writing per-shard JSON records plus a merged summary into
//! the output directory. `--resume` reuses any shard record already on
//! disk that matches the cell, so interrupted sweeps continue where
//! they stopped. `--fail-fast` skips the pipeline and instead hunts for
//! the lowest-index counterexample with the deterministic early-exit
//! executor. `--matrix` runs the full default matrix ({paper, verified,
//! fix25+conn+compl} × {fsync, round-robin, random}) and prints a
//! verdict table.
//!
//! `--sched adversary[:DEPTH]` runs the exhaustive SSYNC adversary
//! model checker per class (see `robots::adversary`); refuted classes
//! carry replayable counterexample schedules in the shard records.
//! `--sched crash:F[:DEPTH]` adds up to `F` permanent crash faults
//! (`robots::faults`), and `--sched lcm-async[:DEPTH]` runs the
//! exhaustive ASYNC phase-interleaving checker
//! (`robots::async_model`) — single-robot Look-Compute-Move phase
//! advances with stale pending moves.
//!
//! Every non-fail-fast invocation also writes `BENCH_sweep.json` into
//! the output directory: per-cell wall-clock, classes/sec and states
//! expanded, so the performance trajectory has a tracked baseline.
//!
//! `--strict` makes honest budget accounting enforceable: any class
//! left `Undecided` (a tripped exploration budget rather than a real
//! verdict) fails the invocation with a non-zero exit, so pipelines
//! can pin "every class decided" as a hard property of a cell.

use robots::Limits;
use simlab::sweep::{
    run_sweep, write_bench, AlgoSpec, BenchRecord, SchedSpec, ShardStatus, SweepConfig,
    SweepSummary, SCHED_SPECS,
};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    cfg: SweepConfig,
    out_dir: PathBuf,
    resume: bool,
    fail_fast: bool,
    matrix: bool,
    strict: bool,
    /// Whether --algo / --sched were given explicitly (conflicts with
    /// --matrix, which supplies both axes itself).
    cell_chosen: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--algo paper|verified|FLAGS]\n\
         \x20            [--sched fsync|round-robin|random[:SEED:P]|adversary[:DEPTH]|crash:F[:DEPTH]|lcm-async[:DEPTH]]\n\
         \x20            [--n N (2..=10)] [--shards S] [--threads T] [--stealing auto|on|off]\n\
         \x20            [--max-rounds R] [--out-dir DIR] [--resume] [--fail-fast] [--matrix] [--strict]\n\
         \n\
         FLAGS is a '+'-separated ablation list from fix25, conn, prio, compl, mirror (or 'none').\n\
         Scheduler specs: {SCHED_SPECS}.\n\
         --threads takes the worker count of the per-shard pool (>= 1); the default\n\
         is all available cores."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: SweepConfig::default(),
        out_dir: PathBuf::from("target/sweep"),
        resume: false,
        fail_fast: false,
        matrix: false,
        strict: false,
        cell_chosen: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match arg.as_str() {
            "--algo" => {
                let v = value("--algo");
                args.cfg.algo = AlgoSpec::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown algorithm spec {v:?}");
                    usage();
                });
                args.cell_chosen = true;
            }
            "--sched" => {
                let v = value("--sched");
                args.cfg.sched = SchedSpec::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scheduler spec {v:?}; valid specs: {SCHED_SPECS}");
                    usage();
                });
                args.cell_chosen = true;
            }
            "--n" => args.cfg.n = value("--n").parse().unwrap_or_else(|_| usage()),
            "--shards" => {
                args.cfg.shards = value("--shards").parse().unwrap_or_else(|_| usage());
                if args.cfg.shards == 0 {
                    eprintln!("--shards must be at least 1");
                    usage();
                }
            }
            "--threads" => {
                let threads: usize = value("--threads").parse().unwrap_or_else(|_| usage());
                if threads == 0 {
                    eprintln!(
                        "--threads must be at least 1; omit the flag to use all \
                         available cores ({})",
                        parallel::resolve_threads(0)
                    );
                    usage();
                }
                args.cfg.threads = threads;
            }
            "--stealing" => {
                args.cfg.stealing = match value("--stealing").as_str() {
                    "auto" => None,
                    "on" => Some(true),
                    "off" => Some(false),
                    _ => usage(),
                }
            }
            "--max-rounds" => {
                args.cfg.limits = Limits {
                    max_rounds: value("--max-rounds").parse().unwrap_or_else(|_| usage()),
                    ..args.cfg.limits
                }
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")),
            "--resume" => args.resume = true,
            "--fail-fast" => args.fail_fast = true,
            "--matrix" => args.matrix = true,
            "--strict" => args.strict = true,
            _ => {
                eprintln!("unknown argument {arg:?}");
                usage();
            }
        }
    }
    if args.matrix && args.fail_fast {
        eprintln!("--matrix and --fail-fast are mutually exclusive");
        usage();
    }
    if args.strict && args.fail_fast {
        eprintln!("--strict audits the summary pipeline; it is meaningless with --fail-fast");
        usage();
    }
    if args.matrix && args.cell_chosen {
        eprintln!("--matrix supplies both axes itself; drop --algo/--sched");
        usage();
    }
    if let Err(reason) = args.cfg.validate() {
        eprintln!("unsupported sweep cell: {reason}");
        usage();
    }
    args
}

fn run_cell(
    cfg: &SweepConfig,
    out_dir: &std::path::Path,
    resume: bool,
) -> (SweepSummary, BenchRecord) {
    let started = Instant::now();
    eprintln!(
        "sweep {} · n={} shards={} threads={} executor={} resume={}",
        cfg.slug(),
        cfg.n,
        cfg.shards,
        cfg.threads,
        if cfg.use_stealing() { "stealing" } else { "chunked" },
        resume,
    );
    let outcome = run_sweep(cfg, out_dir, resume, |shard, status, record| {
        let verb = match status {
            ShardStatus::Computed => "computed",
            ShardStatus::Reused => "reused",
        };
        eprintln!(
            "  shard {shard:>3}: {verb} classes {}..{} ({} results)",
            record.start,
            record.end,
            record.results.len()
        );
    })
    .unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    let elapsed = started.elapsed();
    let reused = outcome.shard_status.iter().filter(|s| **s == ShardStatus::Reused).count();
    eprintln!(
        "  merged {} shards ({reused} reused) in {:.2?} -> {}",
        outcome.shard_status.len(),
        elapsed,
        cfg.summary_path(out_dir).display(),
    );
    println!("{}", outcome.summary.line());
    let elapsed_secs = elapsed.as_secs_f64();
    let bench = BenchRecord {
        cell: cfg.slug(),
        robots: cfg.n,
        total: outcome.summary.total,
        shards: outcome.shard_status.len(),
        threads: cfg.threads,
        computed_shards: outcome.shard_status.len() - reused,
        elapsed_secs,
        classes_per_sec: if elapsed_secs > 0.0 {
            outcome.summary.total as f64 / elapsed_secs
        } else {
            0.0
        },
        states_expanded: outcome.expanded,
        verdicts: outcome.summary.adversary,
    };
    (outcome.summary, bench)
}

/// `--strict` enforcement: a budget-capped class is an accounting
/// failure, not a verdict. Prints the offending cells and exits
/// non-zero if any summary admits undecided classes.
fn enforce_strict(summaries: &[SweepSummary]) {
    let undecided: Vec<&SweepSummary> = summaries.iter().filter(|s| s.undecided > 0).collect();
    if undecided.is_empty() {
        return;
    }
    for summary in undecided {
        eprintln!(
            "strict: {}/{} left {} of {} classes undecided",
            summary.algo, summary.sched, summary.undecided, summary.total,
        );
    }
    std::process::exit(1);
}

fn main() {
    let args = parse_args();

    if args.fail_fast {
        match simlab::sweep::find_failure(&args.cfg) {
            None => println!("{}: no counterexample — every class gathers", args.cfg.slug()),
            Some((index, outcome)) => {
                println!("{}: class #{index} fails with {outcome:?}", args.cfg.slug());
                std::process::exit(1);
            }
        }
        return;
    }

    let bench_path = args.out_dir.join("BENCH_sweep.json");
    let write_benches = |benches: &[BenchRecord]| {
        // A fully-resumed cell spent its wall-clock on JSON I/O, not
        // simulation; writing it would clobber an honest baseline with
        // a wildly inflated classes/sec figure.
        let honest: Vec<BenchRecord> =
            benches.iter().filter(|b| b.computed_shards > 0).cloned().collect();
        if honest.is_empty() {
            eprintln!("  bench: all shards reused; leaving {} untouched", bench_path.display());
            return;
        }
        // Merge with records from earlier invocations (keyed by cell),
        // so successive single-cell runs accumulate one baseline file
        // instead of clobbering each other.
        let mut merged: Vec<BenchRecord> = std::fs::read_to_string(&bench_path)
            .ok()
            .and_then(|text| serde_json::from_str::<Vec<BenchRecord>>(&text).ok())
            .unwrap_or_default();
        merged.retain(|old| !honest.iter().any(|new| new.cell == old.cell));
        merged.extend(honest);
        merged.sort_by(|a, b| a.cell.cmp(&b.cell));
        if let Err(e) = write_bench(&bench_path, &merged) {
            eprintln!("warning: could not write {}: {e}", bench_path.display());
        } else {
            eprintln!("  bench -> {} ({} cells)", bench_path.display(), merged.len());
        }
    };

    if args.matrix {
        let algos = [
            AlgoSpec::Paper,
            AlgoSpec::Verified,
            AlgoSpec::parse("fix25+conn+compl").expect("known ablation"),
        ];
        let scheds =
            [SchedSpec::Fsync, SchedSpec::RoundRobin, SchedSpec::RandomSubset { seed: 1, p: 0.5 }];
        let mut summaries = Vec::new();
        let mut benches = Vec::new();
        for algo in algos {
            for sched in scheds {
                let cfg = SweepConfig { algo, sched, ..args.cfg.clone() };
                let (summary, bench) = run_cell(&cfg, &args.out_dir, args.resume);
                summaries.push(summary);
                benches.push(bench);
            }
        }
        write_benches(&benches);
        println!("\n=== matrix verdicts ===");
        for summary in &summaries {
            println!("{}", summary.line());
        }
        if args.strict {
            enforce_strict(&summaries);
        }
        return;
    }

    let (summary, bench) = run_cell(&args.cfg, &args.out_dir, args.resume);
    write_benches(std::slice::from_ref(&bench));
    if args.strict {
        enforce_strict(std::slice::from_ref(&summary));
    }
    if args.cfg.sched == SchedSpec::Fsync
        && args.cfg.algo == AlgoSpec::Verified
        && args.cfg.n == 7
        && !summary.all_gathered()
    {
        // The Theorem 2 cell regressed; make pipelines notice. The
        // theorem is seven-robot-specific: at other n the verified
        // rules legitimately fail on some classes.
        std::process::exit(1);
    }
}
