//! Sharded, resumable scheduler-matrix verification sweeps.
//!
//! ```text
//! cargo run --release -p simlab --bin sweep -- \
//!     [--algo paper|verified|FLAGS] \
//!     [--sched fsync|round-robin|random[:SEED:P]|adversary[:DEPTH]|
//!              crash:F[:DEPTH]|lcm-async[:DEPTH]] \
//!     [--n 2..=10] [--shards 8] [--threads N] [--stealing auto|on|off] \
//!     [--max-rounds N] [--out-dir target/sweep] [--resume] \
//!     [--fail-fast] [--matrix] [--strict] [--events PATH] [--progress]
//! ```
//!
//! One invocation runs one cell of the {algorithm} × {scheduler}
//! matrix, writing per-shard JSON records plus a merged summary into
//! the output directory. `--resume` reuses any shard record already on
//! disk that matches the cell, so interrupted sweeps continue where
//! they stopped. `--fail-fast` skips the pipeline and instead hunts for
//! the lowest-index counterexample with the deterministic early-exit
//! executor. `--matrix` runs the full default matrix ({paper, verified,
//! fix25+conn+compl} × {fsync, round-robin, random}) and prints a
//! verdict table.
//!
//! `--sched adversary[:DEPTH]` runs the exhaustive SSYNC adversary
//! model checker per class (see `robots::adversary`); refuted classes
//! carry replayable counterexample schedules in the shard records.
//! `--sched crash:F[:DEPTH]` adds up to `F` permanent crash faults
//! (`robots::faults`), and `--sched lcm-async[:DEPTH]` runs the
//! exhaustive ASYNC phase-interleaving checker
//! (`robots::async_model`) — single-robot Look-Compute-Move phase
//! advances with stale pending moves.
//!
//! Every non-fail-fast invocation also writes `BENCH_sweep.json` into
//! the output directory: per-cell wall-clock, classes/sec and states
//! expanded, so the performance trajectory has a tracked baseline.
//!
//! `--strict` makes honest budget accounting enforceable: any class
//! left `Undecided` (a tripped exploration budget rather than a real
//! verdict) fails the invocation with a non-zero exit, so pipelines
//! can pin "every class decided" as a hard property of a cell.
//!
//! `--events PATH` appends a structured JSONL event stream (cell
//! start/finish, one heartbeat per shard, budget trips, per-class
//! panics) for machine consumption, and `--progress` prints a human
//! heartbeat with classes/sec and an ETA to stderr. Both are strictly
//! out-of-band: records, summaries and digests are byte-identical with
//! or without them.
//!
//! Fault tolerance (DESIGN.md §17): `--class-timeout-ms MS` bounds one
//! class's model check by wall clock (over-deadline classes degrade to
//! counted `Undecided` timeout verdicts); `--mem-budget-mb MB` bounds
//! one class's live exploration footprint deterministically
//! (over-budget classes degrade to counted `Undecided` mem_budget
//! verdicts, DESIGN.md §18); `--cell-deadline-secs S`
//! checkpoints the running shard's journal and exits with code 3 and a
//! resume hint once the budget is spent; `--journal-chunk N` sets the
//! classes-per-checkpoint granularity. Corrupt shard records found
//! during `--resume` are quarantined to `<record>.corrupt` with a
//! warning and recomputed; a class that panics is caught, recorded
//! (payload and all) and counted as undecided instead of killing the
//! cell.

use robots::{Limits, Outcome};
use simlab::sweep::{
    run_sweep_with, write_bench, AlgoSpec, BenchRecord, SchedSpec, ShardRecord, ShardStatus,
    SweepConfig, SweepRun, SweepSummary, SCHED_SPECS,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use serde_json::Value;

#[derive(Debug)]
struct Args {
    cfg: SweepConfig,
    out_dir: PathBuf,
    resume: bool,
    fail_fast: bool,
    matrix: bool,
    strict: bool,
    /// Whether --algo / --sched were given explicitly (conflicts with
    /// --matrix, which supplies both axes itself).
    cell_chosen: bool,
    /// Structured JSONL event log destination, if requested.
    events: Option<PathBuf>,
    /// Whether to print the stderr progress heartbeat.
    progress: bool,
}

/// The single exit point for command-line mistakes: every usage error
/// prints its reason, the full usage text (including the valid
/// scheduler specs), and exits with the conventional usage code 2.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: sweep [--algo paper|verified|FLAGS]\n\
         \x20            [--sched fsync|round-robin|random[:SEED:P]|adversary[:DEPTH]|crash:F[:DEPTH]|lcm-async[:DEPTH]]\n\
         \x20            [--n N (2..=10)] [--shards S] [--threads T] [--stealing auto|on|off]\n\
         \x20            [--max-rounds R] [--out-dir DIR] [--resume] [--fail-fast] [--matrix] [--strict]\n\
         \x20            [--events PATH] [--progress]\n\
         \x20            [--class-timeout-ms MS] [--mem-budget-mb MB] [--cell-deadline-secs S]\n\
         \x20            [--journal-chunk N]\n\
         \n\
         FLAGS is a '+'-separated ablation list from fix25, conn, prio, compl, mirror (or 'none').\n\
         Scheduler specs: {SCHED_SPECS}.\n\
         --threads takes the worker count of the per-shard pool (>= 1); the default\n\
         is all available cores.\n\
         --events appends machine-readable JSONL sweep events; --progress prints a\n\
         classes/sec + ETA heartbeat to stderr. Neither affects records or digests.\n\
         --class-timeout-ms degrades classes that outlive MS wall-clock milliseconds\n\
         to counted undecided timeout verdicts; --mem-budget-mb (>= 1) degrades\n\
         classes whose live exploration footprint exceeds MB mebibytes to counted\n\
         undecided mem_budget verdicts (deterministic); --cell-deadline-secs checkpoints the\n\
         journal and exits with code 3 once S seconds pass (rerun with --resume);\n\
         --journal-chunk sets classes per journal checkpoint (>= 1)."
    );
    std::process::exit(2);
}

/// Parses a raw argument vector. Pure (no I/O, no exit), so the usage
/// surface is unit-testable; `main` routes any `Err` through
/// [`usage_error`].
fn parse_cli(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        cfg: SweepConfig::default(),
        out_dir: PathBuf::from("target/sweep"),
        resume: false,
        fail_fast: false,
        matrix: false,
        strict: false,
        cell_chosen: false,
        events: None,
        progress: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--algo" => {
                let v = value("--algo")?;
                args.cfg.algo =
                    AlgoSpec::parse(v).ok_or_else(|| format!("unknown algorithm spec {v:?}"))?;
                args.cell_chosen = true;
            }
            "--sched" => {
                let v = value("--sched")?;
                args.cfg.sched = SchedSpec::parse(v).ok_or_else(|| {
                    format!("unknown scheduler spec {v:?}; valid specs: {SCHED_SPECS}")
                })?;
                args.cell_chosen = true;
            }
            "--n" => {
                let v = value("--n")?;
                args.cfg.n =
                    v.parse().map_err(|_| format!("invalid robot count for --n: {v:?}"))?;
            }
            "--shards" => {
                let v = value("--shards")?;
                args.cfg.shards =
                    v.parse().map_err(|_| format!("invalid shard count for --shards: {v:?}"))?;
                if args.cfg.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--threads" => {
                let v = value("--threads")?;
                let threads: usize =
                    v.parse().map_err(|_| format!("invalid worker count for --threads: {v:?}"))?;
                if threads == 0 {
                    return Err(format!(
                        "--threads must be at least 1; omit the flag to use all \
                         available cores ({})",
                        parallel::resolve_threads(0)
                    ));
                }
                args.cfg.threads = threads;
            }
            "--stealing" => {
                args.cfg.stealing = match value("--stealing")?.as_str() {
                    "auto" => None,
                    "on" => Some(true),
                    "off" => Some(false),
                    v => return Err(format!("invalid executor mode for --stealing: {v:?}")),
                }
            }
            "--max-rounds" => {
                let v = value("--max-rounds")?;
                args.cfg.limits = Limits {
                    max_rounds: v
                        .parse()
                        .map_err(|_| format!("invalid round cap for --max-rounds: {v:?}"))?,
                    ..args.cfg.limits
                }
            }
            "--class-timeout-ms" => {
                let v = value("--class-timeout-ms")?;
                args.cfg.class_timeout_ms =
                    Some(v.parse().map_err(|_| {
                        format!("invalid milliseconds for --class-timeout-ms: {v:?}")
                    })?);
            }
            "--mem-budget-mb" => {
                let v = value("--mem-budget-mb")?;
                let mb: usize = v
                    .parse()
                    .map_err(|_| format!("invalid mebibytes for --mem-budget-mb: {v:?}"))?;
                if mb == 0 {
                    return Err("--mem-budget-mb must be at least 1".into());
                }
                args.cfg.mem_budget_mb = Some(mb);
            }
            "--cell-deadline-secs" => {
                let v = value("--cell-deadline-secs")?;
                args.cfg.cell_deadline_secs = Some(
                    v.parse()
                        .map_err(|_| format!("invalid seconds for --cell-deadline-secs: {v:?}"))?,
                );
            }
            "--journal-chunk" => {
                let v = value("--journal-chunk")?;
                let chunk: usize = v
                    .parse()
                    .map_err(|_| format!("invalid chunk size for --journal-chunk: {v:?}"))?;
                if chunk == 0 {
                    return Err("--journal-chunk must be at least 1".into());
                }
                args.cfg.journal_chunk = Some(chunk);
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--events" => args.events = Some(PathBuf::from(value("--events")?)),
            "--progress" => args.progress = true,
            "--resume" => args.resume = true,
            "--fail-fast" => args.fail_fast = true,
            "--matrix" => args.matrix = true,
            "--strict" => args.strict = true,
            _ => return Err(format!("unknown argument {arg:?}")),
        }
    }
    if args.matrix && args.fail_fast {
        return Err("--matrix and --fail-fast are mutually exclusive".into());
    }
    if args.strict && args.fail_fast {
        return Err(
            "--strict audits the summary pipeline; it is meaningless with --fail-fast".into()
        );
    }
    if args.matrix && args.cell_chosen {
        return Err("--matrix supplies both axes itself; drop --algo/--sched".into());
    }
    args.cfg.validate().map_err(|reason| format!("unsupported sweep cell: {reason}"))?;
    Ok(args)
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_cli(&argv).unwrap_or_else(|msg| usage_error(&msg))
}

/// Append-only JSONL sink for `--events`: one self-describing object
/// per line, flushed per event so tail-following works mid-sweep.
struct EventLog {
    file: std::fs::File,
}

impl EventLog {
    fn open(path: &std::path::Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog { file })
    }

    fn emit(&mut self, event: &str, fields: Vec<(String, Value)>) {
        let mut map = vec![("event".to_string(), Value::Str(event.to_string()))];
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        map.push(("unix_time".to_string(), Value::Float(stamp)));
        map.extend(fields);
        let line = serde_json::to_string(&Value::Map(map)).expect("events serialize");
        // Event loss must never fail a sweep; report and carry on.
        if let Err(e) = writeln!(self.file, "{line}") {
            eprintln!("warning: could not append sweep event: {e}");
        }
    }
}

/// Count of budget-capped classes in one shard record.
fn shard_undecided(record: &ShardRecord) -> usize {
    record.results.iter().filter(|r| matches!(r.outcome, Outcome::Undecided { .. })).count()
}

/// Per-reason tally of the budget-capped classes in one shard record,
/// rendered as event fields (`states`, `timeout`, `mem_budget`, …) so
/// a `budget_trip` line says *which* budget tripped, not just how
/// often.
fn shard_undecided_reasons(record: &ShardRecord) -> Vec<(String, Value)> {
    let mut tally: Vec<(&'static str, u64)> = Vec::new();
    for res in &record.results {
        if let Outcome::Undecided { reason } = res.outcome {
            match tally.iter_mut().find(|(tag, _)| *tag == reason.tag()) {
                Some((_, count)) => *count += 1,
                None => tally.push((reason.tag(), 1)),
            }
        }
    }
    tally.into_iter().map(|(tag, count)| (tag.to_string(), Value::UInt(count))).collect()
}

fn run_cell(
    cfg: &SweepConfig,
    out_dir: &std::path::Path,
    resume: bool,
    events: &mut Option<EventLog>,
    progress: bool,
) -> (SweepSummary, BenchRecord) {
    let started = Instant::now();
    eprintln!(
        "sweep {} · n={} shards={} threads={} executor={} resume={}",
        cfg.slug(),
        cfg.n,
        cfg.shards,
        cfg.threads,
        if cfg.use_stealing() { "stealing" } else { "chunked" },
        resume,
    );
    if let Some(log) = events.as_mut() {
        log.emit(
            "cell_start",
            vec![
                ("cell".into(), Value::Str(cfg.slug())),
                ("robots".into(), Value::UInt(cfg.n as u64)),
                ("shards".into(), Value::UInt(cfg.shards as u64)),
                ("threads".into(), Value::UInt(cfg.threads as u64)),
                ("resume".into(), Value::Bool(resume)),
            ],
        );
    }
    let total_shards = cfg.shards.max(1);
    let run = run_sweep_with(cfg, out_dir, resume, |shard, status, record| {
        let verb = match status {
            ShardStatus::Computed => "computed",
            ShardStatus::Reused => "reused",
        };
        eprintln!(
            "  shard {shard:>3}: {verb} classes {}..{} ({} results)",
            record.start,
            record.end,
            record.results.len()
        );
        // Shards arrive in index order, so `record.end` is the number
        // of classes finished so far; the remainder is extrapolated
        // from the mean shard width for the heartbeat's ETA.
        let elapsed = started.elapsed().as_secs_f64();
        let done = record.end as f64;
        let rate = if elapsed > 0.0 { done / elapsed } else { 0.0 };
        let remaining_shards = (total_shards - shard - 1) as f64;
        let eta = if rate > 0.0 && shard + 1 < total_shards {
            (done / (shard + 1) as f64) * remaining_shards / rate
        } else {
            0.0
        };
        let undecided = shard_undecided(record);
        if progress {
            eprintln!(
                "  progress: {} {}/{} shards · {} classes · {:.1} classes/s · ETA {:.0}s",
                cfg.slug(),
                shard + 1,
                total_shards,
                record.end,
                rate,
                eta,
            );
        }
        if let Some(log) = events.as_mut() {
            log.emit(
                "shard",
                vec![
                    ("cell".into(), Value::Str(cfg.slug())),
                    ("shard".into(), Value::UInt(shard as u64)),
                    ("status".into(), Value::Str(verb.to_string())),
                    ("start".into(), Value::UInt(record.start as u64)),
                    ("end".into(), Value::UInt(record.end as u64)),
                    ("elapsed_secs".into(), Value::Float(elapsed)),
                    ("classes_per_sec".into(), Value::Float(rate)),
                    ("eta_secs".into(), Value::Float(eta)),
                    ("undecided".into(), Value::UInt(undecided as u64)),
                ],
            );
            if undecided > 0 {
                let mut fields = vec![
                    ("cell".into(), Value::Str(cfg.slug())),
                    ("shard".into(), Value::UInt(shard as u64)),
                    ("undecided".into(), Value::UInt(undecided as u64)),
                ];
                fields.extend(shard_undecided_reasons(record));
                log.emit("budget_trip", fields);
            }
            // Panic isolation is only trustworthy if it is *visible*:
            // every degraded class lands in the event stream with its
            // payload, keyed by class index.
            for res in record.results.iter().filter(|r| r.panic.is_some()) {
                log.emit(
                    "class_panic",
                    vec![
                        ("cell".into(), Value::Str(cfg.slug())),
                        ("shard".into(), Value::UInt(shard as u64)),
                        ("class".into(), Value::UInt(res.index as u64)),
                        ("payload".into(), Value::Str(res.panic.clone().unwrap_or_default())),
                    ],
                );
            }
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("sweep failed: {e}");
        std::process::exit(1);
    });
    let outcome = match run {
        SweepRun::Complete(outcome) => outcome,
        SweepRun::DeadlineStopped { completed_shards, journaled_classes } => {
            eprintln!(
                "  cell deadline reached: {completed_shards}/{total_shards} shards persisted, \
                 {journaled_classes} classes journaled; rerun with --resume to continue"
            );
            if let Some(log) = events.as_mut() {
                log.emit(
                    "cell_deadline",
                    vec![
                        ("cell".into(), Value::Str(cfg.slug())),
                        ("completed_shards".into(), Value::UInt(completed_shards as u64)),
                        ("journaled_classes".into(), Value::UInt(journaled_classes as u64)),
                    ],
                );
            }
            // Exit 3 distinguishes "out of budget, checkpointed" from
            // usage errors (2) and real failures (1).
            std::process::exit(3);
        }
    };
    let elapsed = started.elapsed();
    let reused = outcome.shard_status.iter().filter(|s| **s == ShardStatus::Reused).count();
    eprintln!(
        "  merged {} shards ({reused} reused) in {:.2?} -> {}",
        outcome.shard_status.len(),
        elapsed,
        cfg.summary_path(out_dir).display(),
    );
    println!("{}", outcome.summary.line());
    if let Some(log) = events.as_mut() {
        log.emit(
            "cell_finish",
            vec![
                ("cell".into(), Value::Str(cfg.slug())),
                ("total".into(), Value::UInt(outcome.summary.total as u64)),
                ("undecided".into(), Value::UInt(outcome.summary.undecided as u64)),
                ("elapsed_secs".into(), Value::Float(elapsed.as_secs_f64())),
                ("digest".into(), outcome.summary.digest.clone().map_or(Value::Null, Value::Str)),
            ],
        );
    }
    let elapsed_secs = elapsed.as_secs_f64();
    let bench = BenchRecord {
        cell: cfg.slug(),
        robots: cfg.n,
        total: outcome.summary.total,
        shards: outcome.shard_status.len(),
        threads: cfg.threads,
        computed_shards: outcome.shard_status.len() - reused,
        elapsed_secs,
        classes_per_sec: if elapsed_secs > 0.0 {
            outcome.summary.total as f64 / elapsed_secs
        } else {
            0.0
        },
        states_expanded: outcome.expanded,
        verdicts: outcome.summary.adversary,
    };
    (outcome.summary, bench)
}

/// `--strict` enforcement: a budget-capped class is an accounting
/// failure, not a verdict. Prints the offending cells and exits
/// non-zero if any summary admits undecided classes.
fn enforce_strict(summaries: &[SweepSummary]) {
    let undecided: Vec<&SweepSummary> = summaries.iter().filter(|s| s.undecided > 0).collect();
    if undecided.is_empty() {
        return;
    }
    for summary in undecided {
        eprintln!(
            "strict: {}/{} left {} of {} classes undecided",
            summary.algo, summary.sched, summary.undecided, summary.total,
        );
    }
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let mut events = args.events.as_ref().map(|path| {
        EventLog::open(path).unwrap_or_else(|e| {
            eprintln!("could not open events log {}: {e}", path.display());
            std::process::exit(1);
        })
    });

    if args.fail_fast {
        match simlab::sweep::find_failure(&args.cfg) {
            None => println!("{}: no counterexample — every class gathers", args.cfg.slug()),
            Some((index, outcome)) => {
                println!("{}: class #{index} fails with {outcome:?}", args.cfg.slug());
                std::process::exit(1);
            }
        }
        return;
    }

    let bench_path = args.out_dir.join("BENCH_sweep.json");
    let write_benches = |benches: &[BenchRecord]| {
        // A fully-resumed cell spent its wall-clock on JSON I/O, not
        // simulation; writing it would clobber an honest baseline with
        // a wildly inflated classes/sec figure.
        let honest: Vec<BenchRecord> =
            benches.iter().filter(|b| b.computed_shards > 0).cloned().collect();
        if honest.is_empty() {
            eprintln!("  bench: all shards reused; leaving {} untouched", bench_path.display());
            return;
        }
        // Merge with records from earlier invocations (keyed by cell),
        // so successive single-cell runs accumulate one baseline file
        // instead of clobbering each other.
        let mut merged: Vec<BenchRecord> = std::fs::read_to_string(&bench_path)
            .ok()
            .and_then(|text| serde_json::from_str::<Vec<BenchRecord>>(&text).ok())
            .unwrap_or_default();
        merged.retain(|old| !honest.iter().any(|new| new.cell == old.cell));
        merged.extend(honest);
        merged.sort_by(|a, b| a.cell.cmp(&b.cell));
        if let Err(e) = write_bench(&bench_path, &merged) {
            eprintln!("warning: could not write {}: {e}", bench_path.display());
        } else {
            eprintln!("  bench -> {} ({} cells)", bench_path.display(), merged.len());
        }
    };

    if args.matrix {
        let algos = [
            AlgoSpec::Paper,
            AlgoSpec::Verified,
            AlgoSpec::parse("fix25+conn+compl").expect("known ablation"),
        ];
        let scheds =
            [SchedSpec::Fsync, SchedSpec::RoundRobin, SchedSpec::RandomSubset { seed: 1, p: 0.5 }];
        let mut summaries = Vec::new();
        let mut benches = Vec::new();
        for algo in algos {
            for sched in scheds {
                let cfg = SweepConfig { algo, sched, ..args.cfg.clone() };
                let (summary, bench) =
                    run_cell(&cfg, &args.out_dir, args.resume, &mut events, args.progress);
                summaries.push(summary);
                benches.push(bench);
            }
        }
        write_benches(&benches);
        println!("\n=== matrix verdicts ===");
        for summary in &summaries {
            println!("{}", summary.line());
        }
        if args.strict {
            enforce_strict(&summaries);
        }
        return;
    }

    let (summary, bench) =
        run_cell(&args.cfg, &args.out_dir, args.resume, &mut events, args.progress);
    write_benches(std::slice::from_ref(&bench));
    if args.strict {
        enforce_strict(std::slice::from_ref(&summary));
    }
    if args.cfg.sched == SchedSpec::Fsync
        && args.cfg.algo == AlgoSpec::Verified
        && args.cfg.n == 7
        && !summary.all_gathered()
    {
        // The Theorem 2 cell regressed; make pipelines notice. The
        // theorem is seven-robot-specific: at other n the verified
        // rules legitimately fail on some classes.
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_cell_spec() {
        let args = parse_cli(&argv(&[
            "--algo",
            "verified",
            "--sched",
            "adversary",
            "--n",
            "8",
            "--shards",
            "4",
            "--threads",
            "2",
            "--events",
            "/tmp/ev.jsonl",
            "--progress",
            "--strict",
        ]))
        .expect("valid invocation");
        assert_eq!(args.cfg.n, 8);
        assert_eq!(args.cfg.shards, 4);
        assert_eq!(args.cfg.threads, 2);
        assert!(args.cell_chosen && args.strict && args.progress);
        assert_eq!(args.events.as_deref(), Some(std::path::Path::new("/tmp/ev.jsonl")));
    }

    #[test]
    fn rejects_unknown_scheduler_listing_valid_specs() {
        let err = parse_cli(&argv(&["--sched", "bogus"])).unwrap_err();
        assert!(err.contains("unknown scheduler spec"), "{err}");
        assert!(err.contains("valid specs"), "usage errors must list valid specs: {err}");
        assert!(err.contains("adversary"), "{err}");
    }

    #[test]
    fn rejects_missing_values_and_bad_numbers() {
        assert!(parse_cli(&argv(&["--sched"])).unwrap_err().contains("missing value"));
        assert!(parse_cli(&argv(&["--n", "many"])).unwrap_err().contains("--n"));
        assert!(parse_cli(&argv(&["--shards", "0"])).unwrap_err().contains("at least 1"));
        assert!(parse_cli(&argv(&["--threads", "0"])).unwrap_err().contains("at least 1"));
        assert!(parse_cli(&argv(&["--stealing", "sometimes"])).unwrap_err().contains("--stealing"));
        assert!(parse_cli(&argv(&["--frobnicate"])).unwrap_err().contains("unknown argument"));
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        let args = parse_cli(&argv(&[
            "--class-timeout-ms",
            "250",
            "--mem-budget-mb",
            "512",
            "--cell-deadline-secs",
            "3600",
            "--journal-chunk",
            "32",
        ]))
        .expect("valid invocation");
        assert_eq!(args.cfg.class_timeout_ms, Some(250));
        assert_eq!(args.cfg.mem_budget_mb, Some(512));
        assert_eq!(args.cfg.cell_deadline_secs, Some(3600));
        assert_eq!(args.cfg.journal_chunk, Some(32));
        // Unset flags stay off: no watchdog, default chunking.
        let plain = parse_cli(&argv(&[])).expect("empty invocation");
        assert_eq!(plain.cfg.class_timeout_ms, None);
        assert_eq!(plain.cfg.mem_budget_mb, None);
        assert_eq!(plain.cfg.cell_deadline_secs, None);
        assert_eq!(plain.cfg.journal_chunk, None);
    }

    #[test]
    fn rejects_bad_fault_tolerance_values() {
        let err = parse_cli(&argv(&["--class-timeout-ms", "soon"])).unwrap_err();
        assert!(err.contains("--class-timeout-ms"), "{err}");
        let err = parse_cli(&argv(&["--cell-deadline-secs", "-1"])).unwrap_err();
        assert!(err.contains("--cell-deadline-secs"), "{err}");
        let err = parse_cli(&argv(&["--journal-chunk", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse_cli(&argv(&["--journal-chunk"])).unwrap_err().contains("missing value"));
        let err = parse_cli(&argv(&["--mem-budget-mb", "0"])).unwrap_err();
        assert!(err.contains("--mem-budget-mb") && err.contains("at least 1"), "{err}");
        let err = parse_cli(&argv(&["--mem-budget-mb", "lots"])).unwrap_err();
        assert!(err.contains("--mem-budget-mb"), "{err}");
        assert!(parse_cli(&argv(&["--mem-budget-mb"])).unwrap_err().contains("missing value"));
    }

    #[test]
    fn rejects_conflicting_modes() {
        let err = parse_cli(&argv(&["--matrix", "--fail-fast"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_cli(&argv(&["--strict", "--fail-fast"])).unwrap_err();
        assert!(err.contains("--strict"), "{err}");
        let err = parse_cli(&argv(&["--matrix", "--algo", "paper"])).unwrap_err();
        assert!(err.contains("--matrix"), "{err}");
    }

    #[test]
    fn rejects_invalid_cells_through_validate() {
        let err = parse_cli(&argv(&["--n", "1"])).unwrap_err();
        assert!(err.contains("unsupported sweep cell"), "{err}");
    }
}
