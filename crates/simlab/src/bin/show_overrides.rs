//! Renders the synthesized overrides (the recovered "omitted
//! behaviors") as ASCII views, for inspection and for DESIGN.md.
//!
//! ```text
//! cargo run --release -p simlab --bin show_overrides [-- --markdown]
//! ```

use gathering::base::{determine, BaseDecision};
use gathering::overrides::OVERRIDES;
use gathering::rules;
use robots::View;
use trigrid::{Coord, ORIGIN};

/// Renders the 18-node view with the observer at `*`, robots `●`,
/// empties `·`, and the move target marked `→` (or `↗` etc. by
/// direction name printed separately).
fn render_view(v: &View, target: Coord) -> String {
    let mut out = String::new();
    for y in (-2..=2i32).rev() {
        let mut line = String::new();
        for x in -4..=4i32 {
            if (x + y) % 2 != 0 {
                line.push(' ');
                continue;
            }
            let c = Coord::new(x, y);
            let ch = if c == ORIGIN {
                '*'
            } else if c == target {
                '◎'
            } else if c.distance(ORIGIN) > 2 {
                ' '
            } else if v.is_robot(c) {
                '●'
            } else {
                '·'
            };
            line.push(ch);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    println!(
        "{} synthesized overrides (view → move); observer '*', robots '●', target '◎':\n",
        OVERRIDES.len()
    );
    for &(bits, code) in OVERRIDES {
        let v = View::from_bits(2, bits as u64);
        let d = rules::decode_decision(code).expect("overrides always move");
        let base = match determine(&v) {
            BaseDecision::Base(c) => format!("base {c}"),
            BaseDecision::VirtualEast => "virtual base (4,0)".into(),
            BaseDecision::SelfPromotion => "self-promotion".into(),
            BaseDecision::Tie => "tie".into(),
        };
        if markdown {
            println!("### view `{bits:#07x}` → **{d:?}** ({base})\n\n```text");
            print!("{}", render_view(&v, d.delta()));
            println!("```\n");
        } else {
            println!("view {bits:#07x} -> {d:?}  ({base})");
            print!("{}", render_view(&v, d.delta()));
            println!();
        }
    }
}
