use gathering::{base, completion, rules, SevenGather};
use robots::{Algorithm, Configuration, View};
use trigrid::{Coord, Dir};

fn main() {
    let cells = [(0, 0), (-3, 1), (-1, 1), (1, 1), (0, 2), (-3, 3), (-1, 3)];
    let cfg = Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)));
    let algo = SevenGather::verified();
    for &p in cfg.positions() {
        let v = View::observe(&cfg, p, 2);
        let b = base::determine(&v);
        let printed = rules::printed(&v, rules::RuleOptions::VERIFIED);
        let compl = completion::compute(&v, rules::RuleOptions::VERIFIED);
        println!(
            "robot {p}: base {b:?} printed {printed:?} completion {compl:?} final {:?}",
            algo.compute(&v)
        );
        if p == Coord::new(-3, 3) {
            let cands = completion::candidates(b);
            println!("  candidates: {cands:?}");
            for &d in cands {
                let t = d.delta();
                println!(
                    "  {d:?}: empty={} conn={} hug={} conflict_free={}",
                    v.is_empty_node(t),
                    gathering::safety::connectivity_safe(&v, d),
                    completion::dependents_hug_target(&v, d),
                    completion::conflict_free(&v, d, rules::RuleOptions::VERIFIED)
                );
                for u in t.neighbors() {
                    if u != trigrid::ORIGIN && v.is_robot(u) {
                        println!(
                            "    competitor {u}: may_printed={} may_complete={} entry={:?}",
                            completion::may_printed_enter(&v, u, t, rules::RuleOptions::VERIFIED),
                            completion::may_complete_enter(&v, u, t),
                            Dir::from_delta(t - u)
                        );
                    }
                }
            }
        }
    }
}
