use gathering::rules::RuleOptions;
use gathering::SevenGather;
use robots::Limits;

fn main() {
    let combos = [
        ("paper-verbatim", RuleOptions::PAPER),
        ("fix25", RuleOptions { fix_line25_misprint: true, ..RuleOptions::PAPER }),
        (
            "fix25+conn",
            RuleOptions {
                fix_line25_misprint: true,
                connectivity_guard: true,
                ..RuleOptions::PAPER
            },
        ),
        (
            "fix25+conn+mirror",
            RuleOptions {
                fix_line25_misprint: true,
                connectivity_guard: true,
                mirror_line23_guard: true,
                ..RuleOptions::PAPER
            },
        ),
        (
            "fix25+conn+compl",
            RuleOptions {
                fix_line25_misprint: true,
                connectivity_guard: true,
                completion: true,
                ..RuleOptions::PAPER
            },
        ),
        ("level0(VERIFIED)+compl (no overrides)", RuleOptions::VERIFIED),
    ];
    for (name, opts) in combos {
        let algo = SevenGather::with_options(opts);
        let r = simlab::verify_all(7, &algo, Limits::default(), 0);
        println!("{name}: {}", r.summary());
    }
    let r = simlab::verify_all(7, &SevenGather::verified(), Limits::default(), 0);
    println!("verified (with overrides): {}", r.summary());
}
