//! Completion synthesizer: recovers the paper's omitted rule details.
//!
//! The printed Algorithm 1 plus the documented fixes and the completion
//! fallback still strands a set of initial classes in non-gathered
//! fixpoints (the paper admits omitting "several robot behaviors"). This
//! tool closes the gap the way the authors validated their algorithm —
//! by exhaustive simulation:
//!
//! 1. run the §IV-B verification over all 3652 classes;
//! 2. cluster the stuck fixpoints by final configuration;
//! 3. for every stranded robot, propose per-view move overrides
//!    (empty target, locally connectivity-safe, never west);
//! 4. accept an override only if a full re-verification strictly
//!    increases the gathered count with **zero** collisions,
//!    disconnections and livelocks;
//! 5. repeat until every class gathers, then emit
//!    `crates/core/src/overrides.rs`.
//!
//! ```text
//! cargo run --release -p simlab --bin synthesize [-- --out PATH]
//! ```

use gathering::rules::{self, RuleOptions};
use gathering::safety::connectivity_safe;
use gathering::{completion, table};
use robots::{engine, Algorithm, Configuration, Limits, Outcome, View};
use std::collections::{BTreeMap, HashMap};
use trigrid::{Coord, Dir};

struct TableAlgo<'a> {
    table: &'a [u8],
    overrides: &'a BTreeMap<u32, u8>,
}

impl Algorithm for TableAlgo<'_> {
    fn radius(&self) -> u32 {
        2
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        let bits = view.bits() as u32;
        let code = self.overrides.get(&bits).copied().unwrap_or(self.table[bits as usize]);
        rules::decode_decision(code)
    }
    fn name(&self) -> &str {
        "table+overrides"
    }
}

struct VerifyOutcome {
    gathered: usize,
    bad: usize,
    /// canonical stuck final configuration -> number of classes ending there
    clusters: HashMap<Configuration, usize>,
}

fn verify(classes: &[Vec<Coord>], table: &[u8], overrides: &BTreeMap<u32, u8>) -> VerifyOutcome {
    let algo = TableAlgo { table, overrides };
    let limits = Limits::default();
    let results = parallel::par_map(classes, 0, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        let ex = engine::run(&initial, &algo, limits);
        (ex.outcome, ex.final_config)
    });
    let mut out = VerifyOutcome { gathered: 0, bad: 0, clusters: HashMap::new() };
    for (outcome, final_config) in results {
        match outcome {
            Outcome::Gathered { .. } => out.gathered += 1,
            Outcome::StuckFixpoint { .. } => {
                *out.clusters.entry(final_config.canonical()).or_default() += 1;
            }
            _ => out.bad += 1,
        }
    }
    out
}

/// Candidate directions for a stranded robot, most promising first:
/// its base's completion candidates, then the remaining non-west
/// directions in entry-priority order.
fn candidate_dirs(v: &View) -> Vec<Dir> {
    let mut dirs: Vec<Dir> = completion::candidates(gathering::base::determine(v)).to_vec();
    for d in [Dir::E, Dir::NE, Dir::SE, Dir::SW, Dir::NW] {
        if !dirs.contains(&d) {
            dirs.push(d);
        }
    }
    dirs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "crates/core/src/overrides.rs".to_string());

    eprintln!("building base decision table (printed + fixes + completion)...");
    let base_table = table::full_table(RuleOptions::VERIFIED);
    let classes = polyhex::enumerate_fixed(7);
    let mut overrides: BTreeMap<u32, u8> = BTreeMap::new();

    let mut round = 0usize;
    loop {
        round += 1;
        let res = verify(&classes, &base_table, &overrides);
        let stuck: usize = res.clusters.values().sum();
        eprintln!(
            "pass {round}: gathered {}/{} | stuck {} in {} clusters | bad {} | overrides {}",
            res.gathered,
            classes.len(),
            stuck,
            res.clusters.len(),
            res.bad,
            overrides.len()
        );
        assert_eq!(res.bad, 0, "base rules must be safe before synthesis");
        if stuck == 0 {
            break;
        }

        // Try candidates from the biggest clusters first.
        let mut ordered: Vec<(&Configuration, &usize)> = res.clusters.iter().collect();
        ordered.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.positions().cmp(b.0.positions())));

        let mut accepted = false;
        'search: for (final_cfg, _) in ordered {
            for &p in final_cfg.positions() {
                let v = View::observe(final_cfg, p, 2);
                let bits = v.bits() as u32;
                if overrides.contains_key(&bits) {
                    continue; // already overridden: its verdict stands
                }
                for d in candidate_dirs(&v) {
                    if !v.is_empty_node(d.delta()) || !connectivity_safe(&v, d) {
                        continue;
                    }
                    overrides.insert(bits, rules::encode_decision(Some(d)));
                    let trial = verify(&classes, &base_table, &overrides);
                    if trial.bad == 0 && trial.gathered > res.gathered {
                        eprintln!(
                            "  + override view {bits:#07x} -> {d:?} (gathered {} -> {})",
                            res.gathered, trial.gathered
                        );
                        accepted = true;
                        break 'search;
                    }
                    overrides.remove(&bits);
                }
            }
        }
        if !accepted {
            eprintln!("no single-view override improves further; stopping");
            break;
        }
    }

    // Emit the overrides module.
    let mut body = String::from(
        "//! Synthesized per-view move overrides — the recovered \"omitted\n\
         //! behaviors\" of the paper's Algorithm 1.\n\
         //!\n\
         //! **Auto-generated by `cargo run --release -p simlab --bin synthesize`;\n\
         //! do not edit by hand.** Each entry is `(view_bits, decision)` where\n\
         //! `view_bits` indexes the 18-bit radius-2 view (see\n\
         //! `robots::view::labels`) and `decision` is encoded by\n\
         //! `gathering::rules::encode_decision`. Every entry was accepted by the\n\
         //! synthesizer only after a full exhaustive re-verification over all\n\
         //! 3652 connected initial classes showed strictly more gathering classes\n\
         //! and zero collisions, disconnections and livelocks.\n\n\
         /// The synthesized overrides, strictly sorted by view bits.\n\
         pub const OVERRIDES: &[(u32, u8)] = &[\n",
    );
    for (bits, code) in &overrides {
        body.push_str(&format!("    ({bits:#07x}, {code}),\n"));
    }
    body.push_str("];\n");
    std::fs::write(&out_path, body).expect("write overrides module");
    eprintln!("wrote {} overrides to {out_path}", overrides.len());
}
