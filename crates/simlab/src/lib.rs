//! # simlab — the experiment harness
//!
//! Regenerates the paper's evaluation:
//!
//! * [`verify`] — the §IV-B experiment: run a candidate algorithm from
//!   **every** connected seven-robot initial configuration (all 3652
//!   translation classes) and check that each execution gathers without
//!   collision, disconnection or livelock.
//! * [`stats`] — steps-to-gather distributions and summaries (an
//!   extension; the paper reports only the boolean verdict).
//! * [`render`] — ASCII rendering of triangular-grid configurations and
//!   traces (used to reproduce the paper's figures in the terminal).
//! * [`export`] — JSON/CSV export of reports for EXPERIMENTS.md.
//! * [`sweep`] — the sharded, resumable verification pipeline over the
//!   {algorithm} × {scheduler} matrix, behind the `sweep` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod export;
pub mod render;
pub mod stats;
pub mod sweep;
pub mod verify;

pub use verify::{verify_all, verify_classes, verify_detailed, ClassResult, VerificationReport};
