//! Statistics over verification runs (extension E8: the paper reports
//! only the boolean verdict; we also characterise convergence speed).

use crate::VerificationReport;
use serde::{Deserialize, Serialize};

/// Summary statistics of the rounds-to-gather distribution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundsStats {
    /// Number of gathered classes.
    pub count: usize,
    /// Minimum rounds.
    pub min: usize,
    /// Maximum rounds.
    pub max: usize,
    /// Mean rounds.
    pub mean: f64,
    /// Median rounds.
    pub median: usize,
    /// 95th-percentile rounds.
    pub p95: usize,
}

/// Computes distribution statistics from a report's histogram.
#[must_use]
pub fn rounds_stats(report: &VerificationReport) -> Option<RoundsStats> {
    let hist = &report.rounds_histogram;
    let count: usize = hist.iter().sum();
    if count == 0 {
        return None;
    }
    let min = hist.iter().position(|&n| n > 0).unwrap_or(0);
    let max = hist.iter().rposition(|&n| n > 0).unwrap_or(0);
    let total: usize = hist.iter().enumerate().map(|(r, &n)| r * n).sum();
    let quantile = |q: f64| -> usize {
        let target = ((count as f64) * q).ceil() as usize;
        let mut seen = 0;
        for (r, &n) in hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return r;
            }
        }
        max
    };
    Some(RoundsStats {
        count,
        min,
        max,
        mean: total as f64 / count as f64,
        median: quantile(0.5),
        p95: quantile(0.95),
    })
}

/// Renders the histogram as an ASCII bar chart with at most `rows`
/// buckets (wider buckets are aggregated as needed).
#[must_use]
pub fn ascii_histogram(report: &VerificationReport, rows: usize) -> String {
    let hist = &report.rounds_histogram;
    if hist.is_empty() || rows == 0 {
        return String::new();
    }
    let bucket = hist.len().div_ceil(rows);
    let buckets: Vec<usize> = hist.chunks(bucket).map(|c| c.iter().sum()).collect();
    let peak = buckets.iter().copied().max().unwrap_or(1).max(1);
    const WIDTH: usize = 50;
    let mut out = String::new();
    for (i, &n) in buckets.iter().enumerate() {
        let lo = i * bucket;
        let hi = (lo + bucket - 1).min(hist.len() - 1);
        let bar = "#".repeat(n * WIDTH / peak);
        let label = if lo == hi { format!("{lo:>4}") } else { format!("{lo:>4}-{hi:<4}") };
        out.push_str(&format!("{label:>9} | {bar} {n}\n"));
    }
    out
}

/// Rounds-to-gather grouped by the initial configuration's diameter
/// (maximum pairwise robot distance): for each diameter, the number of
/// classes and the min/mean/max rounds. The paper's algorithm compacts
/// eastward, so rounds should grow roughly linearly with the diameter.
#[must_use]
pub fn rounds_by_diameter(results: &[crate::ClassResult]) -> Vec<DiameterBucket> {
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for r in results {
        if let Some(rounds) = r.rounds() {
            buckets.entry(r.initial.diameter()).or_default().push(rounds);
        }
    }
    buckets
        .into_iter()
        .map(|(diameter, rounds)| {
            let count = rounds.len();
            let min = rounds.iter().copied().min().unwrap_or(0);
            let max = rounds.iter().copied().max().unwrap_or(0);
            let mean = rounds.iter().sum::<usize>() as f64 / count.max(1) as f64;
            DiameterBucket { diameter, count, min, mean, max }
        })
        .collect()
}

/// One row of [`rounds_by_diameter`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiameterBucket {
    /// Initial diameter (2..=6 for connected seven-robot classes).
    pub diameter: u32,
    /// Number of gathered classes with that diameter.
    pub count: usize,
    /// Fastest gathering.
    pub min: usize,
    /// Mean rounds.
    pub mean: f64,
    /// Slowest gathering.
    pub max: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_hist(hist: Vec<usize>) -> VerificationReport {
        let gathered = hist.iter().sum();
        let total_rounds = hist.iter().enumerate().map(|(r, &n)| r * n).sum();
        let max_rounds = hist.iter().rposition(|&n| n > 0).unwrap_or(0);
        VerificationReport {
            algorithm: "test".into(),
            robots: 7,
            total: gathered,
            gathered,
            failures: vec![],
            max_rounds,
            total_rounds,
            rounds_histogram: hist,
        }
    }

    #[test]
    fn stats_of_simple_distribution() {
        // 1 class at 0 rounds, 2 at 1, 1 at 3.
        let r = report_with_hist(vec![1, 2, 0, 1]);
        let s = rounds_stats(&r).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.25).abs() < 1e-12);
        assert_eq!(s.median, 1);
        assert_eq!(s.p95, 3);
    }

    #[test]
    fn stats_empty_histogram_is_none() {
        let r = report_with_hist(vec![]);
        assert!(rounds_stats(&r).is_none());
    }

    #[test]
    fn single_bucket_distribution() {
        let r = report_with_hist(vec![0, 0, 5]);
        let s = rounds_stats(&r).unwrap();
        assert_eq!((s.min, s.max, s.median, s.p95), (2, 2, 2, 2));
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rounds_by_diameter_buckets_are_ordered_and_complete() {
        use robots::{Configuration, Outcome};
        use trigrid::Coord;
        let mk = |cells: &[(i32, i32)], rounds: usize| crate::ClassResult {
            index: 0,
            initial: Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y))),
            outcome: Outcome::Gathered { rounds },
        };
        let results = vec![
            mk(&[(0, 0), (2, 0)], 3),         // diameter 1
            mk(&[(0, 0), (4, 0)], 5),         // diameter 2
            mk(&[(0, 0), (2, 0), (4, 0)], 7), // diameter 2
            crate::ClassResult {
                index: 0,
                initial: Configuration::new([Coord::new(0, 0)]),
                outcome: Outcome::StuckFixpoint { rounds: 0 }, // not gathered: excluded
            },
        ];
        let buckets = rounds_by_diameter(&results);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].diameter, 1);
        assert_eq!(buckets[0].count, 1);
        assert_eq!(buckets[1].diameter, 2);
        assert_eq!(buckets[1].count, 2);
        assert_eq!(buckets[1].min, 5);
        assert_eq!(buckets[1].max, 7);
        assert!((buckets[1].mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_renders_buckets() {
        let r = report_with_hist(vec![4, 0, 2, 1]);
        let h = ascii_histogram(&r, 4);
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains('#'));
        let aggregated = ascii_histogram(&r, 2);
        assert_eq!(aggregated.lines().count(), 2);
        assert!(aggregated.contains("4"));
    }
}
