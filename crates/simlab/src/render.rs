//! ASCII rendering of triangular-grid configurations and traces.
//!
//! Rows are printed from north (largest `y`) to south; each doubled-x
//! unit is one character column, so east-west neighbours are two columns
//! apart and the odd rows sit between them — the usual "brick" picture
//! of the triangular lattice:
//!
//! ```text
//!  · ● ·
//! · ● ● ·
//!  · ● ·
//! ```

use robots::Configuration;
use trigrid::region::BoundingBox;
use trigrid::Coord;

/// Character used for a robot node.
pub const ROBOT: char = '●';
/// Character used for an empty lattice node.
pub const EMPTY: char = '·';

/// Renders the configuration with a one-node margin of empty lattice
/// nodes around its bounding box.
#[must_use]
pub fn render(cfg: &Configuration) -> String {
    render_with_margin(cfg, 1)
}

/// Renders the configuration with the given margin of empty nodes.
#[must_use]
pub fn render_with_margin(cfg: &Configuration, margin: i32) -> String {
    let Some(bb) = BoundingBox::of(cfg.positions().iter().copied()) else {
        return String::new();
    };
    let (min_x, max_x) = (bb.min_x - 2 * margin, bb.max_x + 2 * margin);
    let (min_y, max_y) = (bb.min_y - margin, bb.max_y + margin);
    let mut out = String::new();
    for y in (min_y..=max_y).rev() {
        let mut line = String::new();
        for x in min_x..=max_x {
            if (x + y) % 2 != 0 {
                line.push(' ');
                continue;
            }
            // (x+y) even but x,y may individually be "between" lattice
            // nodes of this row: every even-sum (x,y) is a lattice node.
            let c = Coord::new(x, y);
            line.push(if cfg.contains(c) { ROBOT } else { EMPTY });
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders an execution trace as numbered frames.
#[must_use]
pub fn render_trace(trace: &[Configuration]) -> String {
    let mut out = String::new();
    for (i, cfg) in trace.iter().enumerate() {
        out.push_str(&format!("round {i}:\n"));
        out.push_str(&render(cfg));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::ORIGIN;

    #[test]
    fn hexagon_renders_as_filled_hexagon() {
        let h = robots::hexagon(ORIGIN);
        let s = render_with_margin(&h, 0);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].trim(), "● ●");
        assert_eq!(lines[1].trim(), "● ● ●");
        assert_eq!(lines[2].trim(), "● ●");
    }

    #[test]
    fn robot_count_matches() {
        let h = robots::hexagon(ORIGIN);
        let s = render(&h);
        assert_eq!(s.chars().filter(|&c| c == ROBOT).count(), 7);
    }

    #[test]
    fn empty_configuration_renders_empty() {
        let c = Configuration::new([]);
        assert_eq!(render(&c), "");
    }

    #[test]
    fn line_configuration() {
        let line = Configuration::new((0..3).map(|i| Coord::new(2 * i, 0)));
        let s = render_with_margin(&line, 0);
        assert_eq!(s.trim_end(), "● ● ●");
    }

    #[test]
    fn trace_renders_each_round() {
        let a = Configuration::new([ORIGIN]);
        let b = Configuration::new([Coord::new(2, 0)]);
        let s = render_trace(&[a, b]);
        assert!(s.contains("round 0:"));
        assert!(s.contains("round 1:"));
    }

    #[test]
    fn margins_add_empty_nodes() {
        let c = Configuration::new([ORIGIN]);
        let s0 = render_with_margin(&c, 0);
        let s1 = render_with_margin(&c, 1);
        assert_eq!(s0.trim(), "●");
        assert!(s1.chars().filter(|&c| c == EMPTY).count() >= 6);
    }
}
