//! The experiment suite (see DESIGN.md §7 and EXPERIMENTS.md).
//!
//! Each function regenerates one experiment and returns its results as a
//! markdown fragment; the `experiments` binary stitches them into a
//! report. The numbers asserted here are the repository's ground truth —
//! if a code change shifts them, the tests in this module fail.

use crate::{stats, verify_all, verify_detailed};
use gathering::rules::RuleOptions;
use gathering::SevenGather;
use robots::sched::{run_scheduled, RandomSubset, RoundRobin, Scheduler};
use robots::{engine, Configuration, Limits, Outcome};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One regenerated experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (e.g. "E1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Markdown body with the measured results.
    pub body: String,
}

/// E1 — the paper's §IV-B exhaustive verification (Theorem 2).
#[must_use]
pub fn e1_exhaustive_verification(threads: usize) -> ExperimentResult {
    let report = verify_all(7, &SevenGather::verified(), Limits::default(), threads);
    let s = stats::rounds_stats(&report).expect("all classes gather");
    let mut body = String::new();
    let _ = writeln!(
        body,
        "* paper claim: all **3652** connected initial classes gather (correctness \"evaluated by computer simulations … from all possible connected initial configurations (3652 patterns in total)\").\n\
         * measured: **{}/{} gathered, {} failures** — claim reproduced: {}.\n\
         * rounds to gather: min={} median={} p95={} max={} mean={:.2}.",
        report.gathered,
        report.total,
        report.failures.len(),
        if report.all_gathered() { "YES" } else { "NO" },
        s.min,
        s.median,
        s.p95,
        s.max,
        s.mean
    );
    ExperimentResult { id: "E1", title: "Exhaustive verification (Theorem 2, §IV-B)", body }
}

/// The rule-set layers of the ablation, with their gathered counts.
#[must_use]
pub fn ablation_layers() -> Vec<(&'static str, RuleOptions)> {
    vec![
        ("printed pseudocode, verbatim", RuleOptions::PAPER),
        ("+ line-25 misprint fix", RuleOptions { fix_line25_misprint: true, ..RuleOptions::PAPER }),
        (
            "+ connectivity guard",
            RuleOptions {
                fix_line25_misprint: true,
                connectivity_guard: true,
                ..RuleOptions::PAPER
            },
        ),
        (
            "+ completion fallback",
            RuleOptions {
                fix_line25_misprint: true,
                connectivity_guard: true,
                completion: true,
                ..RuleOptions::PAPER
            },
        ),
        ("+ line-23 mirror guard (= VERIFIED options, no overrides)", RuleOptions::VERIFIED),
    ]
}

/// E2 — rule-set ablation: how much each layer of the completed
/// algorithm contributes.
#[must_use]
pub fn e2_rules_ablation(threads: usize) -> ExperimentResult {
    let mut body = String::from("| rule set | gathered / 3652 |\n|---|---|\n");
    for (name, opts) in ablation_layers() {
        let report = verify_all(7, &SevenGather::with_options(opts), Limits::default(), threads);
        let _ = writeln!(body, "| {name} | {} |", report.gathered);
    }
    let full = verify_all(7, &SevenGather::verified(), Limits::default(), threads);
    let _ = writeln!(body, "| **+ 43 synthesized overrides (verified)** | **{}** |", full.gathered);
    let baseline = verify_all(7, &gathering::baseline::GreedyEast, Limits::default(), threads);
    let _ = writeln!(body, "| guard-free greedy-east baseline | {} |", baseline.gathered);
    ExperimentResult { id: "E2", title: "Rule-set ablation (the omitted behaviours matter)", body }
}

/// E5 — the initial-configuration space (the paper's "3652 patterns").
#[must_use]
pub fn e5_enumeration() -> ExperimentResult {
    let mut body = String::from("| n | fixed polyhexes (classes up to translation) |\n|---|---|\n");
    for n in 1..=7 {
        let _ = writeln!(body, "| {n} | {} |", polyhex::count_fixed(n));
    }
    let _ = writeln!(
        body,
        "\nFree classes (also up to rotation/reflection) for n = 7: **{}** — the paper counts\ntranslation classes because robots agree on the x-axis and chirality.",
        polyhex::count_free(7)
    );
    ExperimentResult { id: "E5", title: "Configuration-space enumeration", body }
}

/// E8 — rounds-to-gather distribution (extension).
#[must_use]
pub fn e8_steps_distribution(threads: usize) -> ExperimentResult {
    let report = verify_all(7, &SevenGather::verified(), Limits::default(), threads);
    let s = stats::rounds_stats(&report).expect("all gather");
    let mut body = String::new();
    let _ = writeln!(
        body,
        "Distribution over all 3652 classes: min={} median={} p95={} max={} mean={:.2}\n\n```text\n{}```",
        s.min,
        s.median,
        s.p95,
        s.max,
        s.mean,
        stats::ascii_histogram(&report, 13)
    );
    ExperimentResult { id: "E8", title: "Rounds-to-gather distribution (extension)", body }
}

/// E8b — convergence vs initial diameter: rounds grow with how spread
/// out the robots start.
#[must_use]
pub fn e8b_rounds_by_diameter(threads: usize) -> ExperimentResult {
    let results = verify_detailed(7, &SevenGather::verified(), Limits::default(), threads);
    let mut body = String::from(
        "| initial diameter | classes | rounds min | mean | max |\n|---|---|---|---|---|\n",
    );
    for b in stats::rounds_by_diameter(&results) {
        let _ = writeln!(
            body,
            "| {} | {} | {} | {:.2} | {} |",
            b.diameter, b.count, b.min, b.mean, b.max
        );
    }
    let _ = writeln!(
        body,
        "\nConvergence scales with the initial spread (the algorithm compacts eastward\nat bounded speed), as the shape of the distribution suggests."
    );
    ExperimentResult { id: "E8b", title: "Rounds vs initial diameter (extension)", body }
}

/// Outcome mix of the verified algorithm under a scheduler, over all
/// classes.
fn scheduler_mix<S: Scheduler, F: Fn() -> S + Sync>(
    make: F,
    threads: usize,
) -> BTreeMap<&'static str, usize> {
    let algo = SevenGather::verified();
    let classes = polyhex::enumerate_fixed(7);
    let limits = Limits { max_rounds: 4000, detect_livelock: false };
    let outcomes = parallel::par_map(&classes, threads, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        let mut sched = make();
        match run_scheduled(&initial, &algo, &mut sched, limits).outcome {
            Outcome::Gathered { .. } => "gathered",
            Outcome::StuckFixpoint { .. } => "stuck",
            Outcome::Collision { .. } => "collision",
            Outcome::Disconnected { .. } => "disconnected",
            Outcome::Livelock { .. } => "livelock",
            Outcome::StepLimit { .. } => "step-limit",
            Outcome::Undecided { .. } => unreachable!("executions never return Undecided"),
        }
    });
    let mut counts = BTreeMap::new();
    for o in outcomes {
        *counts.entry(o).or_insert(0usize) += 1;
    }
    counts
}

/// E9 — the verified FSYNC algorithm under weaker synchrony (the
/// paper's §V future work, answered empirically).
#[must_use]
pub fn e9_schedulers(threads: usize) -> ExperimentResult {
    let mut body = String::from("| scheduler | outcome mix over 3652 classes |\n|---|---|\n");
    let rr = scheduler_mix(|| RoundRobin, threads);
    let _ = writeln!(body, "| round-robin (centralised) | {rr:?} |");
    let r5 = scheduler_mix(|| RandomSubset::new(1, 0.5), threads);
    let _ = writeln!(body, "| random subsets p=0.5 | {r5:?} |");
    let r9 = scheduler_mix(|| RandomSubset::new(2, 0.9), threads);
    let _ = writeln!(body, "| random subsets p=0.9 | {r9:?} |");
    let _ = writeln!(
        body,
        "\nThe paper proves Theorem 2 for FSYNC only and lists weaker synchrony as future\nwork (§V). Empirically the completed rule set also gathers from **all 3652**\nclasses under every scheduler tested here — evidence (not proof) that the\nalgorithm extends to SSYNC."
    );
    ExperimentResult { id: "E9", title: "Scheduler ablation beyond FSYNC (extension)", body }
}

/// E11 — running the seven-robot algorithm with the wrong crowd
/// (extension): six or eight robots are outside the algorithm's
/// contract; we characterise what happens.
#[must_use]
pub fn e11_other_robot_counts(threads: usize) -> ExperimentResult {
    let algo = SevenGather::verified();
    let mut body =
        String::from("| robots | classes | outcome mix (engine classification) |\n|---|---|---|\n");
    for n in [5usize, 6, 8] {
        let classes = polyhex::enumerate_fixed(n);
        let limits = Limits::default();
        let outcomes = parallel::par_map(&classes, threads, |cells| {
            let initial = Configuration::new(cells.iter().copied());
            match engine::run(&initial, &algo, limits).outcome {
                Outcome::Gathered { .. } => "gathered",
                Outcome::StuckFixpoint { .. } => "stuck-fixpoint",
                Outcome::Collision { .. } => "collision",
                Outcome::Disconnected { .. } => "disconnected",
                Outcome::Livelock { .. } => "livelock",
                Outcome::StepLimit { .. } => "step-limit",
                Outcome::Undecided { .. } => unreachable!("executions never return Undecided"),
            }
        });
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for o in outcomes {
            *counts.entry(o).or_insert(0) += 1;
        }
        let _ = writeln!(body, "| {n} | {} | {counts:?} |", classes.len());
    }
    let _ = writeln!(
        body,
        "\n(`gathered` requires the seven-robot hexagon, so it cannot occur for n ≠ 7;\nthe interesting signal is how often the rules stay safe vs. collide or disconnect\noutside their contract.)"
    );
    ExperimentResult { id: "E11", title: "Other robot counts (out-of-contract, extension)", body }
}

/// E12 — relaxed initial connectivity (the paper's §V future-work item:
/// "the visibility relationship among robots constitutes one connected
/// graph"). Enumerates every seven-robot class that is connected under
/// distance-2 *visibility* (a strict superset of the 3652
/// adjacency-connected classes) and runs the verified algorithm.
#[must_use]
pub fn e12_relaxed_connectivity(threads: usize) -> ExperimentResult {
    let algo = SevenGather::verified();
    // Flat storage: ~2.7M classes of 7 nodes each.
    let mut classes: Vec<[trigrid::Coord; 7]> = Vec::new();
    polyhex::for_each_fixed_radius(7, 2, |cells| {
        classes.push(cells.try_into().expect("seven nodes"));
    });
    let total = classes.len();

    // Visibility-disconnected components can drift apart forever, so the
    // canonical-class livelock argument does not bound these runs; cap
    // the rounds instead (gathering from adjacency-connected classes
    // takes at most 24 rounds).
    let limits = Limits { max_rounds: 200, detect_livelock: true };
    let counts = parallel::par_fold(
        &classes,
        threads,
        BTreeMap::<&'static str, usize>::new,
        |acc, cells| {
            let initial = Configuration::new(cells.iter().copied());
            let adjacency_connected = initial.is_connected();
            let outcome = engine::run(&initial, &algo, limits).outcome;
            let key = match (adjacency_connected, &outcome) {
                (true, Outcome::Gathered { .. }) => "adjacency-connected: gathered",
                (true, _) => "adjacency-connected: failed",
                (false, Outcome::Gathered { .. }) => "visibility-only: gathered",
                (false, Outcome::StuckFixpoint { .. }) => "visibility-only: stuck",
                (false, Outcome::Collision { .. }) => "visibility-only: collision",
                (false, Outcome::Disconnected { .. }) => "visibility-only: disconnected",
                (false, Outcome::Livelock { .. }) => "visibility-only: livelock",
                (false, Outcome::StepLimit { .. }) => "visibility-only: step-limit",
                (false, Outcome::Undecided { .. }) => {
                    unreachable!("executions never return Undecided")
                }
            };
            *acc.entry(key).or_insert(0) += 1;
        },
        |mut a, b| {
            for (k, v) in b {
                *a.entry(k).or_insert(0) += v;
            }
            a
        },
    );

    let mut body = String::new();
    let _ = writeln!(
        body,
        "Distance-2-visibility-connected seven-robot classes: **{total}** (vs 3652 adjacency-connected).\n\n| population | outcome | classes |\n|---|---|---|"
    );
    for (k, v) in &counts {
        let (pop, out) = k.split_once(": ").unwrap_or((k, ""));
        let _ = writeln!(body, "| {pop} | {out} | {v} |");
    }
    let _ = writeln!(
        body,
        "\nThe completed rule set remains correct on its contract (every\nadjacency-connected class gathers) and solves a fraction of the strictly\nvisibility-connected ones; the rest strand or split — quantifying why the paper\nlists relaxed connectivity as an open problem."
    );
    ExperimentResult {
        id: "E12",
        title: "Relaxed (visibility) initial connectivity (extension)",
        body,
    }
}

/// E13 — the ASYNC model (extension): phases of the Look-Compute-Move
/// cycle interleave and moves execute on stale snapshots. The FSYNC
/// guards reason about simultaneous, fresh moves, so degradation is
/// expected; this measures it.
#[must_use]
pub fn e13_async(threads: usize) -> ExperimentResult {
    use robots::async_model::{run_async, RandomAsync, RoundRobinAsync};
    let algo = SevenGather::verified();
    let classes = polyhex::enumerate_fixed(7);
    // Ticks are single-robot phase advances: give 7 robots × 2 phases ×
    // plenty of rounds.
    let limits = Limits { max_rounds: 20_000, detect_livelock: false };

    let mut body = String::from("| ASYNC adversary | outcome mix over 3652 classes |\n|---|---|\n");
    for (name, seeded) in [("round-robin phases", false), ("random phases (seeded)", true)] {
        let outcomes = parallel::par_map(&classes, threads, |cells| {
            let initial = Configuration::new(cells.iter().copied());
            let ex = if seeded {
                let mut s = RandomAsync::new(cells[0].x as u64 ^ 0x9e37);
                run_async(&initial, &algo, &mut s, limits)
            } else {
                run_async(&initial, &algo, &mut RoundRobinAsync, limits)
            };
            match ex.outcome {
                Outcome::Gathered { .. } => "gathered",
                Outcome::StuckFixpoint { .. } => "stuck",
                Outcome::Collision { .. } => "collision",
                Outcome::Disconnected { .. } => "disconnected",
                Outcome::Livelock { .. } => "livelock",
                Outcome::StepLimit { .. } => "tick-limit",
                Outcome::Undecided { .. } => unreachable!("executions never return Undecided"),
            }
        });
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for o in outcomes {
            *counts.entry(o).or_insert(0) += 1;
        }
        let _ = writeln!(body, "| {name} | {counts:?} |");
    }
    let _ = writeln!(
        body,
        "\nUnder full asynchrony the FSYNC safety choreography can break (stale moves\nland on occupied nodes), which bounds how far Theorem 2 could possibly be\npushed without redesigning the guards."
    );
    ExperimentResult { id: "E13", title: "ASYNC model (extension)", body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_full_success() {
        let r = e1_exhaustive_verification(0);
        assert!(r.body.contains("3652/3652"), "{}", r.body);
        assert!(r.body.contains("YES"));
    }

    #[test]
    fn e2_layer_counts_are_stable() {
        // Pin the ablation numbers; these are the repository's measured
        // ground truth quoted in EXPERIMENTS.md.
        let expected = [883usize, 1895, 1896, 1926, 1850];
        for ((name, opts), want) in ablation_layers().into_iter().zip(expected) {
            let report = verify_all(7, &SevenGather::with_options(opts), Limits::default(), 0);
            assert_eq!(report.gathered, want, "layer {name}");
        }
    }

    #[test]
    fn e5_enumeration_table() {
        let r = e5_enumeration();
        assert!(r.body.contains("| 7 | 3652 |"));
        assert!(r.body.contains("333"));
    }

    #[test]
    fn e8_distribution_mentions_max() {
        let r = e8_steps_distribution(0);
        assert!(r.body.contains("max=24"), "{}", r.body);
    }
}
