//! End-to-end fault-tolerance tests for the sweep pipeline, driving
//! the real `sweep` binary as a subprocess with deterministic faults
//! armed through the `FAILPOINTS` environment variable (so faults
//! never leak into sibling tests: the variable only reaches the
//! child).
//!
//! The contract under test (ISSUE 9 / DESIGN.md §17): a sweep killed
//! mid-shard and resumed produces **byte-identical classifications**
//! to an uninterrupted run; an injected per-class panic degrades to a
//! counted undecided row without killing the cell; torn or tampered
//! shard records are quarantined to `*.corrupt` and recomputed; the
//! cell deadline exits with the dedicated code 3 and resumes cleanly.

use simlab::sweep::{SchedSpec, SweepConfig};
use std::path::{Path, PathBuf};
use std::process::Output;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trigather-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the sweep binary with `args` against `dir`, optionally with a
/// `FAILPOINTS` spec armed in the child's environment only.
fn sweep(dir: &Path, args: &[&str], failpoints: Option<&str>) -> Output {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_sweep"));
    cmd.args(args).arg("--out-dir").arg(dir);
    cmd.env_remove("FAILPOINTS");
    if let Some(spec) = failpoints {
        cmd.env("FAILPOINTS", spec);
    }
    cmd.output().expect("sweep binary spawns")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// The cell config the CLI invocations below describe, for computing
/// record/summary paths.
fn cell(sched: &str, shards: usize) -> SweepConfig {
    SweepConfig {
        n: 4,
        shards,
        sched: SchedSpec::parse(sched).expect("known scheduler"),
        ..SweepConfig::default()
    }
}

/// Loads a merged summary with its nondeterministic telemetry block
/// stripped: everything left (tallies, digest, failure indices) must
/// be byte-identical across clean, killed-and-resumed, and
/// quarantined-and-recomputed runs.
fn summary_sans_metrics(path: &Path) -> serde_json::Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("summary {} must exist: {e}", path.display()));
    let mut value: serde_json::Value = serde_json::from_str(&text).expect("summary parses");
    if let serde_json::Value::Map(entries) = &mut value {
        entries.retain(|(key, _)| key != "metrics");
    }
    value
}

fn lookup<'v>(value: &'v serde_json::Value, key: &str) -> &'v serde_json::Value {
    match value {
        serde_json::Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("summary field {key} present")),
        _ => panic!("summary is an object"),
    }
}

/// Kill-resume round trip for one cell at one thread count: a run
/// aborted by a failpoint mid-shard, then resumed without faults, must
/// match the clean baseline summary exactly.
fn assert_kill_resume_identical(sched: &str, threads: usize, baseline: &serde_json::Value) {
    let threads_s = threads.to_string();
    let args: Vec<&str> = vec![
        "--algo",
        "verified",
        "--sched",
        sched,
        "--n",
        "4",
        "--shards",
        "2",
        "--journal-chunk",
        "4",
        "--threads",
        &threads_s,
    ];
    let dir = temp_dir(&format!("kill-{}-t{threads}", sched.replace(':', "_")));
    // Die before the second journal append: mid-shard, after some
    // classes are durably checkpointed.
    let killed = sweep(&dir, &args, Some("shard.journal=abort@2"));
    assert!(
        !killed.status.success(),
        "{sched} t{threads}: the armed abort failpoint must kill the run"
    );
    let mut resume_args = args.clone();
    resume_args.push("--resume");
    let resumed = sweep(&dir, &resume_args, None);
    assert!(
        resumed.status.success(),
        "{sched} t{threads}: resume must complete: {}",
        stderr_of(&resumed)
    );
    let cfg = cell(sched, 2);
    let summary = summary_sans_metrics(&cfg.summary_path(&dir));
    assert_eq!(
        baseline, &summary,
        "{sched} t{threads}: resumed summary diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_resume_matches_clean_run_across_cells_and_threads() {
    for sched in ["adversary", "crash:1", "lcm-async", "fsync"] {
        // One clean baseline per cell; classifications are
        // thread-invariant (pinned by tests/determinism.rs), so it
        // serves all thread counts.
        let clean_dir = temp_dir(&format!("clean-{}", sched.replace(':', "_")));
        let clean = sweep(
            &clean_dir,
            &["--algo", "verified", "--sched", sched, "--n", "4", "--shards", "2"],
            None,
        );
        assert!(clean.status.success(), "{sched}: clean run: {}", stderr_of(&clean));
        let cfg = cell(sched, 2);
        let baseline = summary_sans_metrics(&cfg.summary_path(&clean_dir));
        for threads in [1, 2, 8] {
            assert_kill_resume_identical(sched, threads, &baseline);
        }
        let _ = std::fs::remove_dir_all(&clean_dir);
    }
}

#[test]
fn injected_panic_degrades_to_counted_undecided_without_killing_the_cell() {
    let clean_dir = temp_dir("panic-clean");
    let args = ["--algo", "verified", "--sched", "adversary", "--n", "4", "--shards", "1"];
    let clean = sweep(&clean_dir, &args, None);
    assert!(clean.status.success(), "clean run: {}", stderr_of(&clean));
    let cfg = cell("adversary", 1);
    let clean_undecided =
        match lookup(&summary_sans_metrics(&cfg.summary_path(&clean_dir)), "undecided") {
            serde_json::Value::UInt(u) => *u,
            other => panic!("undecided is a count, got {other:?}"),
        };

    let dir = temp_dir("panic");
    let events = dir.join("events.jsonl");
    let events_s = events.display().to_string();
    let mut poisoned_args: Vec<&str> = args.to_vec();
    poisoned_args.extend(["--events", &events_s]);
    let poisoned = sweep(&dir, &poisoned_args, Some("sweep.class=panic:injected boom@5"));
    assert!(
        poisoned.status.success(),
        "a panicking class must not kill the cell: {}",
        stderr_of(&poisoned)
    );
    assert!(stderr_of(&poisoned).contains("panicked"), "the degradation is announced on stderr");
    let summary = summary_sans_metrics(&cfg.summary_path(&dir));
    match lookup(&summary, "undecided") {
        serde_json::Value::UInt(u) => assert_eq!(
            *u,
            clean_undecided + 1,
            "exactly the poisoned class is degraded to undecided"
        ),
        other => panic!("undecided is a count, got {other:?}"),
    }
    // The payload is preserved in the shard record and the event log.
    let record = std::fs::read_to_string(cfg.shard_path(&dir, 0)).expect("record exists");
    assert!(record.contains("injected boom"), "the panic payload lands in the record");
    let log = std::fs::read_to_string(&events).expect("events log exists");
    assert!(log.contains("class_panic"), "the event stream reports the panic: {log}");
    assert!(log.contains("injected boom"), "the event carries the payload");
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_record_is_quarantined_and_recomputed_on_resume() {
    let args = ["--algo", "verified", "--sched", "adversary", "--n", "4", "--shards", "2"];
    let clean_dir = temp_dir("torn-clean");
    let clean = sweep(&clean_dir, &args, None);
    assert!(clean.status.success(), "clean run: {}", stderr_of(&clean));
    let cfg = cell("adversary", 2);
    let baseline = summary_sans_metrics(&cfg.summary_path(&clean_dir));

    // The torn-write failpoint models the pre-atomic writer dying
    // mid-write: 40 bytes of shard 0's record land in the final path.
    let dir = temp_dir("torn");
    let torn = sweep(&dir, &args, Some("shard.write=torn:40@1"));
    assert!(torn.status.success(), "the torn write itself reports success (that's the point)");
    let victim = cfg.shard_path(&dir, 0);
    assert_eq!(std::fs::metadata(&victim).expect("stump exists").len(), 40);

    let mut resume_args: Vec<&str> = args.to_vec();
    resume_args.push("--resume");
    let resumed = sweep(&dir, &resume_args, None);
    assert!(resumed.status.success(), "resume recovers: {}", stderr_of(&resumed));
    assert!(
        stderr_of(&resumed).contains("quarantined"),
        "the quarantine is announced: {}",
        stderr_of(&resumed)
    );
    assert!(
        PathBuf::from(format!("{}.corrupt", victim.display())).exists(),
        "the torn record is preserved as *.corrupt for triage"
    );
    assert_eq!(baseline, summary_sans_metrics(&cfg.summary_path(&dir)));
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cell_deadline_exits_with_code_3_and_resume_completes() {
    let dir = temp_dir("deadline");
    let stopped = sweep(
        &dir,
        &[
            "--algo",
            "verified",
            "--sched",
            "adversary",
            "--n",
            "4",
            "--shards",
            "2",
            "--cell-deadline-secs",
            "0",
        ],
        None,
    );
    assert_eq!(
        stopped.status.code(),
        Some(3),
        "deadline stop uses the dedicated exit code: {}",
        stderr_of(&stopped)
    );
    assert!(
        stderr_of(&stopped).contains("--resume"),
        "the stop message tells the operator how to continue"
    );
    let resumed = sweep(
        &dir,
        &["--algo", "verified", "--sched", "adversary", "--n", "4", "--shards", "2", "--resume"],
        None,
    );
    assert!(resumed.status.success(), "resume completes: {}", stderr_of(&resumed));
    let cfg = cell("adversary", 2);
    assert!(cfg.summary_path(&dir).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn class_timeout_flag_degrades_wedged_classes_to_timeouts() {
    // A zero per-class deadline trips the explorer's first poll on
    // every class: the cell still completes with exit 0, every class
    // counted undecided rather than wedging the sweep.
    let dir = temp_dir("class-timeout");
    let run = sweep(
        &dir,
        &[
            "--algo",
            "verified",
            "--sched",
            "adversary",
            "--n",
            "4",
            "--shards",
            "1",
            "--class-timeout-ms",
            "0",
        ],
        None,
    );
    assert!(run.status.success(), "timeouts are counted, not fatal: {}", stderr_of(&run));
    let cfg = cell("adversary", 1);
    let summary = summary_sans_metrics(&cfg.summary_path(&dir));
    assert_eq!(lookup(&summary, "undecided"), lookup(&summary, "total"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The release-tier pin: the full n=7 adversary cell, killed mid-cell
/// and resumed, must land on the exact digest the uninterrupted
/// pipeline has pinned since the adversary checker landed.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 3652-class adversary cell: run with --release (tests/golden tier)"
)]
fn kill_resume_full_n7_adversary_pins_digest() {
    let args = ["--algo", "verified", "--sched", "adversary", "--n", "7", "--shards", "8"];
    let dir = temp_dir("n7-kill");
    // Default journal chunk (64) over ~457-class shards: abort at the
    // 20th entry append dies a few shards in, mid-shard.
    let killed = sweep(&dir, &args, Some("shard.journal=abort@20"));
    assert!(!killed.status.success(), "the armed abort failpoint must kill the run");
    let mut resume_args: Vec<&str> = args.to_vec();
    resume_args.push("--resume");
    let resumed = sweep(&dir, &resume_args, None);
    assert!(resumed.status.success(), "resume completes: {}", stderr_of(&resumed));
    let cfg = SweepConfig {
        sched: SchedSpec::parse("adversary").expect("known scheduler"),
        ..SweepConfig::default()
    };
    let summary = summary_sans_metrics(&cfg.summary_path(&dir));
    assert_eq!(
        lookup(&summary, "digest"),
        &serde_json::Value::Str("d622cfe7b20dd7bb".into()),
        "the resumed full cell must reproduce the pinned digest byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
