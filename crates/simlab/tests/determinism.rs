//! Determinism pins for the sweep pipeline: the merged per-class
//! record stream must be **byte-identical** regardless of worker
//! thread count and shard count — for the seeded random-subset cells
//! (whose per-class seed derivation must be threading/sharding
//! invariant) and for the adversary, crash and lcm-async
//! model-checking cells (whose verdicts and counterexample schedules
//! must be reproducible no matter how the work-stealing pool
//! interleaves the classes).

use simlab::sweep::{
    merge_shards, run_shard, shard_ranges, verdict_digest, ClassOutcome, SchedSpec, ShardRecord,
    SweepConfig,
};

/// Runs a full cell with the given thread and shard counts and returns
/// the merged per-class results serialised to JSON.
fn merged_results_json(cfg: &SweepConfig) -> String {
    let classes = polyhex::enumerate_fixed(cfg.n);
    let merged: Vec<ClassOutcome> = shard_ranges(classes.len(), cfg.shards)
        .into_iter()
        .enumerate()
        .flat_map(|(s, (start, end))| run_shard(&classes, cfg, s, start, end).results)
        .collect();
    serde_json::to_string(&merged).expect("results serialise")
}

fn assert_invariant_across_threads_and_shards(base: SweepConfig, label: &str) {
    let reference = merged_results_json(&SweepConfig { threads: 1, shards: 1, ..base.clone() });
    for threads in [2, 8] {
        let got = merged_results_json(&SweepConfig { threads, shards: 1, ..base.clone() });
        assert_eq!(reference, got, "{label}: thread count {threads} changed the records");
    }
    for shards in [3, 5] {
        let got = merged_results_json(&SweepConfig { threads: 2, shards, ..base.clone() });
        assert_eq!(reference, got, "{label}: shard count {shards} changed the records");
    }
    // Executor choice must not matter either.
    let stolen =
        merged_results_json(&SweepConfig { threads: 4, shards: 2, stealing: Some(true), ..base });
    assert_eq!(reference, stolen, "{label}: the stealing executor changed the records");
}

#[test]
fn random_subset_records_are_thread_and_shard_invariant() {
    let sched = SchedSpec::RandomSubset { seed: 11, p: 0.4 };
    assert_invariant_across_threads_and_shards(
        SweepConfig { n: 5, sched, ..SweepConfig::default() },
        "random-subset n=5",
    );
}

#[test]
fn adversary_records_are_thread_and_shard_invariant() {
    let sched = SchedSpec::parse("adversary").expect("known scheduler");
    assert_invariant_across_threads_and_shards(
        SweepConfig { n: 4, sched, ..SweepConfig::default() },
        "adversary n=4",
    );
}

#[test]
fn crash_records_are_thread_and_shard_invariant() {
    // The acceptance bar for the work-stealing fan-out: crash-cell
    // verdicts (including the replayable schedule + crash assignment
    // of every refutation) must be byte-identical between a
    // single-thread run and any multi-thread/stealing run.
    let sched = SchedSpec::parse("crash:1").expect("known scheduler");
    assert_invariant_across_threads_and_shards(
        SweepConfig { n: 4, sched, ..SweepConfig::default() },
        "crash f=1 n=4",
    );
}

#[test]
fn lcm_async_records_are_thread_and_shard_invariant() {
    // The ASYNC checker's verdicts (including the replayable one-hot
    // tick schedule of every refutation) must be byte-identical
    // between a single-thread run and any multi-thread/stealing run.
    let sched = SchedSpec::parse("lcm-async").expect("known scheduler");
    assert_invariant_across_threads_and_shards(
        SweepConfig { n: 4, sched, ..SweepConfig::default() },
        "lcm-async n=4",
    );
}

#[test]
fn per_n_digests_are_thread_and_shard_invariant() {
    // The n axis must not cost any determinism: for every small robot
    // count the cell digest is a pure function of the classification,
    // independent of threading and sharding — and distinct across
    // counts (the n tag byte).
    let sched = SchedSpec::parse("crash:1").expect("known scheduler");
    let digest_of = |n: usize, threads: usize, shards: usize| {
        let cfg = SweepConfig { n, sched, threads, shards, ..SweepConfig::default() };
        cfg.validate().expect("supported cell");
        let classes = polyhex::enumerate_fixed(n);
        let records: Vec<ShardRecord> = shard_ranges(classes.len(), cfg.shards)
            .into_iter()
            .enumerate()
            .map(|(s, (start, end))| run_shard(&classes, &cfg, s, start, end))
            .collect();
        verdict_digest(&records)
    };
    let mut seen = std::collections::HashSet::new();
    for n in [2, 3, 4, 5] {
        let reference = digest_of(n, 1, 1);
        assert_eq!(reference, digest_of(n, 4, 1), "n={n}: thread count changed the digest");
        assert_eq!(reference, digest_of(n, 2, 3), "n={n}: shard count changed the digest");
        assert!(seen.insert(reference), "n={n}: digests must differ across robot counts");
    }
}

/// Runs one full cell and returns `(digest, merged results JSON)`.
fn cell_digest_and_json(cfg: &SweepConfig) -> (u64, String) {
    cfg.validate().expect("supported cell");
    let classes = polyhex::enumerate_fixed(cfg.n);
    let records: Vec<ShardRecord> = shard_ranges(classes.len(), cfg.shards)
        .into_iter()
        .enumerate()
        .map(|(s, (start, end))| run_shard(&classes, cfg, s, start, end))
        .collect();
    let merged: Vec<&ClassOutcome> = records.iter().flat_map(|r| r.results.iter()).collect();
    (verdict_digest(&records), serde_json::to_string(&merged).expect("results serialise"))
}

#[test]
fn metrics_toggle_never_perturbs_records_or_digests() {
    // The whole point of the telemetry layer: flipping metrics off must
    // leave every record and digest byte-identical, at every thread
    // count, in every semantics cell. (The toggle gates only the
    // timestamp reads — this pins that no observable output ever
    // depends on a telemetry value.)
    for spec in ["fsync", "adversary", "crash:1", "lcm-async"] {
        let sched = SchedSpec::parse(spec).expect("known scheduler");
        for threads in [1, 2, 8] {
            let cfg = SweepConfig { n: 4, sched, threads, ..SweepConfig::default() };
            telemetry::set_enabled(true);
            let on = cell_digest_and_json(&cfg);
            telemetry::set_enabled(false);
            let off = cell_digest_and_json(&cfg);
            telemetry::set_enabled(true);
            assert_eq!(on, off, "{spec} n=4 threads={threads}: metrics toggle changed output");
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full n=7/n=8 cells are release-only; run cargo test --release"
)]
fn full_cells_match_pinned_digests_with_metrics_on_and_off() {
    // The pinned verification digests (the acceptance bar for the
    // instrumented stack): metrics on or off, 1/2/8 worker threads —
    // the cell digest is always the committed constant. The full n=8
    // matrix rides along since the flat-interning refactor: id
    // assignment must stay a pure function of insertion order.
    let cells: [(&str, usize, u64); 6] = [
        ("adversary", 7, 0xd622cfe7b20dd7bb),
        ("crash:1", 7, 0x6696e3381f7fbd4f),
        ("lcm-async", 7, 0xbbf7a6b89fc5c8f0),
        ("adversary", 8, 0x48732f073bd06fc4),
        ("crash:1", 8, 0xb53d9682ec227d68),
        ("lcm-async", 8, 0x70c5901259f6d660),
    ];
    for (spec, n, expected) in cells {
        let sched = SchedSpec::parse(spec).expect("known scheduler");
        for threads in [1, 2, 8] {
            for enabled in [true, false] {
                telemetry::set_enabled(enabled);
                let cfg = SweepConfig { n, sched, threads, ..SweepConfig::default() };
                let (digest, _) = cell_digest_and_json(&cfg);
                telemetry::set_enabled(true);
                assert_eq!(
                    digest, expected,
                    "{spec} n={n} threads={threads} metrics={enabled}: digest drifted"
                );
            }
        }
    }
}

#[test]
fn summaries_are_thread_invariant_for_fixed_sharding() {
    // The merged summary (including the adversary verdict tallies) must
    // not depend on the thread count.
    let sched = SchedSpec::parse("adversary").expect("known scheduler");
    let summarise = |threads: usize| {
        let cfg = SweepConfig { n: 4, sched, threads, shards: 2, ..SweepConfig::default() };
        let classes = polyhex::enumerate_fixed(cfg.n);
        let records: Vec<ShardRecord> = shard_ranges(classes.len(), cfg.shards)
            .into_iter()
            .enumerate()
            .map(|(s, (start, end))| run_shard(&classes, &cfg, s, start, end))
            .collect();
        merge_shards(&cfg, &records).expect("consistent shards")
    };
    let a = summarise(1);
    let b = summarise(8);
    assert_eq!(a, b);
    assert!(a.adversary.is_some(), "adversary cells must tally verdicts");
}
