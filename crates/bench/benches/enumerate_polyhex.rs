//! E7: enumeration of the initial-configuration space.
//!
//! The paper's "3652 patterns in total" is the n = 7 row of the fixed
//! polyhex series (1, 3, 11, 44, 186, 814, 3652); this bench regenerates
//! the whole series and measures the enumerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate_polyhex");
    for n in 1..=7usize {
        g.bench_with_input(BenchmarkId::new("fixed", n), &n, |b, &n| {
            b.iter(|| {
                let count = polyhex::count_fixed(black_box(n));
                let expected = [1u64, 3, 11, 44, 186, 814, 3652][n - 1];
                assert_eq!(count, expected);
                count
            });
        });
    }
    g.bench_function("free/7 (333 congruence classes)", |b| {
        b.iter(|| {
            let c = polyhex::count_free(black_box(7));
            assert_eq!(c, 333);
            c
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
