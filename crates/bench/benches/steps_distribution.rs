//! E8: rounds-to-gather distribution over the whole configuration space
//! (an extension; the paper reports only the boolean verdict). The
//! assertions pin the distribution's shape: the maximum is reached by
//! sparse, wide shapes and stays well below the class count.

use criterion::{criterion_group, criterion_main, Criterion};
use gathering::SevenGather;
use robots::Limits;

fn bench(c: &mut Criterion) {
    let algo = SevenGather::verified();
    let mut g = c.benchmark_group("steps_distribution");
    g.sample_size(10);
    g.bench_function("histogram_all_classes", |b| {
        b.iter(|| {
            let report = simlab::verify_all(7, &algo, Limits::default(), 0);
            let stats = simlab::stats::rounds_stats(&report).expect("all gather");
            assert_eq!(stats.count, 3652);
            assert!(stats.max < 64, "convergence is fast: O(diameter) rounds");
            stats
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
