//! E9: the verified FSYNC algorithm under weaker synchrony (the paper's
//! §V future work), measured on a deterministic sample of classes.

use bench_suite::sample_classes;
use criterion::{criterion_group, criterion_main, Criterion};
use gathering::SevenGather;
use robots::sched::{run_scheduled, FullSync, RandomSubset, RoundRobin};
use robots::Limits;

fn bench(c: &mut Criterion) {
    let algo = SevenGather::verified();
    let classes = sample_classes(64);
    let limits = Limits { max_rounds: 2000, detect_livelock: false };

    let mut g = c.benchmark_group("scheduler_ablation");
    g.sample_size(10);
    g.bench_function("fsync", |b| {
        b.iter(|| {
            classes
                .iter()
                .map(|cls| {
                    let ex = run_scheduled(cls, &algo, &mut FullSync, limits);
                    usize::from(ex.outcome.is_gathered())
                })
                .sum::<usize>()
        });
    });
    g.bench_function("round_robin", |b| {
        b.iter(|| {
            classes
                .iter()
                .map(|cls| {
                    let ex = run_scheduled(cls, &algo, &mut RoundRobin, limits);
                    usize::from(ex.outcome.is_gathered())
                })
                .sum::<usize>()
        });
    });
    g.bench_function("random_p0.5", |b| {
        b.iter(|| {
            classes
                .iter()
                .enumerate()
                .map(|(i, cls)| {
                    let mut sched = RandomSubset::new(i as u64, 0.5);
                    let ex = run_scheduled(cls, &algo, &mut sched, limits);
                    usize::from(ex.outcome.is_gathered())
                })
                .sum::<usize>()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
