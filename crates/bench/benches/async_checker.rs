//! Throughput of the ASYNC phase-interleaving model checker versus the
//! SSYNC adversary checker on the same classes: how much the pending
//! vector axis multiplies per-class exploration cost, and the cost of
//! a full lcm-async sweep shard. Complements `crash_checker` (the
//! crash axis) and `sweep_shard` (scheduled cells).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gathering::SevenGather;
use robots::adversary::{AdversaryOptions, Checker};
use robots::async_model::{AsyncChecker, AsyncOptions};
use robots::Configuration;
use simlab::sweep::{run_shard, shard_ranges, SchedSpec, SweepConfig};

fn bench(c: &mut Criterion) {
    let classes = polyhex::enumerate_fixed(7);
    let algo = SevenGather::verified();
    // A spread of classes: the first (sparse line-like), a middle one,
    // and the gathered hexagon's immediate neighbourhood.
    let picks: Vec<(usize, Configuration)> = [0usize, 1826, 3651]
        .into_iter()
        .map(|i| (i, Configuration::new(classes[i].iter().copied())))
        .collect();

    let mut g = c.benchmark_group("async_checker");
    g.sample_size(10);
    let adversary = Checker::new(&algo, AdversaryOptions::default());
    let lcm_async = AsyncChecker::new(&algo, AsyncOptions::default());
    for (index, initial) in &picks {
        g.bench_with_input(BenchmarkId::new("adversary", index), initial, |b, initial| {
            b.iter(|| adversary.check(initial));
        });
        g.bench_with_input(BenchmarkId::new("lcm-async", index), initial, |b, initial| {
            b.iter(|| lcm_async.check(initial));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("async_shard");
    g.sample_size(10);
    let (start, end) = shard_ranges(classes.len(), 32)[0];
    let cfg = SweepConfig {
        sched: SchedSpec::parse("lcm-async").expect("known scheduler"),
        ..SweepConfig::default()
    };
    g.bench_function("shard0of32", |b| {
        b.iter(|| {
            let record = run_shard(&classes, &cfg, 0, start, end);
            assert_eq!(record.results.len(), end - start);
            record
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
