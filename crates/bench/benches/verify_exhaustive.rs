//! E1: the paper's §IV-B experiment — exhaustive verification of the
//! verified rule set over all 3652 connected initial classes, expecting
//! 3652/3652 gathered (Theorem 2).

use criterion::{criterion_group, criterion_main, Criterion};
use gathering::SevenGather;
use robots::Limits;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_exhaustive");
    g.sample_size(10);
    let algo = SevenGather::verified();
    // Warm the decision cache and assert the headline claim once.
    let warm = simlab::verify_all(7, &algo, Limits::default(), 0);
    assert!(warm.all_gathered(), "Theorem 2: all 3652 classes must gather");

    g.bench_function("all_3652_classes/parallel", |b| {
        b.iter(|| {
            let r = simlab::verify_all(7, black_box(&algo), Limits::default(), 0);
            assert!(r.all_gathered());
            r.gathered
        });
    });
    g.bench_function("all_3652_classes/1-thread", |b| {
        b.iter(|| {
            let r = simlab::verify_all(7, black_box(&algo), Limits::default(), 1);
            assert!(r.all_gathered());
            r.gathered
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
