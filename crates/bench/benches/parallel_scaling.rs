//! E10: scaling of the exhaustive verification with worker threads, and
//! chunked self-scheduling vs crossbeam work stealing on the same sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gathering::SevenGather;
use robots::{engine, Configuration, Limits};

fn sweep_chunked(classes: &[Vec<trigrid::Coord>], algo: &SevenGather, threads: usize) -> usize {
    parallel::par_map(classes, threads, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        usize::from(engine::run(&initial, algo, Limits::default()).outcome.is_gathered())
    })
    .into_iter()
    .sum()
}

fn sweep_stealing(classes: &[Vec<trigrid::Coord>], algo: &SevenGather, threads: usize) -> usize {
    parallel::stealing::par_map_stealing(classes, threads, |cells| {
        let initial = Configuration::new(cells.iter().copied());
        usize::from(engine::run(&initial, algo, Limits::default()).outcome.is_gathered())
    })
    .into_iter()
    .sum()
}

fn bench(c: &mut Criterion) {
    let classes = polyhex::enumerate_fixed(7);
    let algo = SevenGather::verified();
    assert_eq!(sweep_chunked(&classes, &algo, 0), 3652); // warm cache + sanity

    let mut g = c.benchmark_group("parallel_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("chunked", threads), &threads, |b, &t| {
            b.iter(|| assert_eq!(sweep_chunked(&classes, &algo, t), 3652));
        });
        g.bench_with_input(BenchmarkId::new("stealing", threads), &threads, |b, &t| {
            b.iter(|| assert_eq!(sweep_stealing(&classes, &algo, t), 3652));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
