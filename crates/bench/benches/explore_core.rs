//! Micro-benchmarks of the packed-state exploration core: packed
//! class keys vs materializing canonicalisation, arena interning vs
//! `HashMap<Configuration, _>` interning, and the memoized move oracle
//! vs raw per-robot computation. The `bench_explore` binary distills
//! the same measurements (plus the full-classification headline) into
//! `BENCH_explore.json` for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use gathering::SevenGather;
use robots::visited::ClassArena;
use robots::{engine, Configuration, MoveOracle};
use std::collections::HashMap;
use trigrid::Coord;

fn bench(c: &mut Criterion) {
    let classes = bench_suite::all_classes();
    // Shifted copies so the canonicalisation paths do real work.
    let shifted: Vec<Configuration> =
        classes.iter().map(|cfg| cfg.translate(Coord::new(6, 2))).collect();
    let algo = SevenGather::verified();

    let mut g = c.benchmark_group("canonical_key");
    g.bench_function("canonical_vec", |b| {
        b.iter(|| shifted.iter().map(|cfg| cfg.canonical().len()).sum::<usize>());
    });
    g.bench_function("canonical_key_packed", |b| {
        b.iter(|| shifted.iter().map(|cfg| cfg.canonical_key().robots()).sum::<usize>());
    });
    g.finish();

    let mut g = c.benchmark_group("intern");
    g.bench_function("hashmap_configuration", |b| {
        b.iter(|| {
            let mut map: HashMap<Configuration, u32> = HashMap::new();
            for (i, cfg) in shifted.iter().enumerate() {
                map.entry(cfg.canonical()).or_insert(i as u32);
            }
            shifted.iter().map(|cfg| map[&cfg.canonical()] as usize).sum::<usize>()
        });
    });
    g.bench_function("class_arena_packed", |b| {
        b.iter(|| {
            let mut arena = ClassArena::new();
            for cfg in &shifted {
                arena.intern(cfg);
            }
            shifted.iter().map(|cfg| arena.intern(cfg).0 as usize).sum::<usize>()
        });
    });
    g.finish();

    let mut g = c.benchmark_group("move_oracle");
    g.sample_size(10);
    g.bench_function("raw_compute_moves", |b| {
        b.iter(|| classes.iter().map(|cfg| engine::compute_moves(cfg, &algo).len()).sum::<usize>());
    });
    let oracle = MoveOracle::new(&algo);
    for cfg in &classes {
        let _ = engine::compute_moves(cfg, &oracle); // warm the memo table
    }
    g.bench_function("memoized_compute_moves", |b| {
        b.iter(|| {
            classes.iter().map(|cfg| engine::compute_moves(cfg, &oracle).len()).sum::<usize>()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
