//! Throughput of one sweep-pipeline shard: chunked vs work-stealing
//! executors on the skewed round-robin cell and the uniform FSYNC
//! cell. Complements `parallel_scaling` (which benches the raw
//! executors) by measuring the full shard path including record
//! assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simlab::sweep::{run_shard, shard_ranges, AlgoSpec, SchedSpec, SweepConfig};

fn bench(c: &mut Criterion) {
    let classes = polyhex::enumerate_fixed(7);
    let (start, end) = shard_ranges(classes.len(), 8)[0];

    let mut g = c.benchmark_group("sweep_shard");
    g.sample_size(10);
    for sched in [SchedSpec::Fsync, SchedSpec::RoundRobin] {
        for stealing in [false, true] {
            let cfg = SweepConfig {
                algo: AlgoSpec::Verified,
                sched,
                stealing: Some(stealing),
                ..SweepConfig::default()
            };
            let label =
                format!("{}/{}", cfg.sched.name(), if stealing { "stealing" } else { "chunked" });
            g.bench_with_input(BenchmarkId::new("shard0", label), &cfg, |b, cfg| {
                b.iter(|| {
                    let record = run_shard(&classes, cfg, 0, start, end);
                    assert_eq!(record.results.len(), end - start);
                    record
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
