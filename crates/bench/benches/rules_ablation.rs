//! E2: rule-set ablation.
//!
//! Measures how much of the configuration space each layer of the
//! algorithm solves (printed pseudocode, line-25 fix, connectivity
//! guard, completion, synthesized overrides) plus the guard-free
//! baseline. The assertions pin the expected gathered counts; the
//! measurement is the full sweep cost per variant.

use criterion::{criterion_group, criterion_main, Criterion};
use gathering::rules::RuleOptions;
use gathering::{baseline::GreedyEast, SevenGather};
use robots::Limits;

fn gathered(algo: &impl robots::Algorithm) -> usize {
    simlab::verify_all(7, algo, Limits::default(), 0).gathered
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rules_ablation");
    g.sample_size(10);

    let variants: Vec<(&str, SevenGather, usize)> = vec![
        ("printed-verbatim", SevenGather::paper(), 883),
        (
            "printed+fix25",
            SevenGather::with_options(RuleOptions {
                fix_line25_misprint: true,
                ..RuleOptions::PAPER
            }),
            1895,
        ),
        (
            "printed+fix25+conn",
            SevenGather::with_options(RuleOptions {
                fix_line25_misprint: true,
                connectivity_guard: true,
                ..RuleOptions::PAPER
            }),
            1896,
        ),
        (
            "printed+fix25+conn+completion",
            SevenGather::with_options(RuleOptions {
                fix_line25_misprint: true,
                connectivity_guard: true,
                completion: true,
                ..RuleOptions::PAPER
            }),
            1926,
        ),
        ("verified (with overrides)", SevenGather::verified(), 3652),
    ];
    for (name, algo, expected) in &variants {
        let got = gathered(algo);
        assert_eq!(got, *expected, "{name}: gathered count drifted");
        g.bench_function(*name, |b| b.iter(|| gathered(algo)));
    }
    // The guard-free baseline demonstrates the guards are load-bearing.
    let baseline = gathered(&GreedyEast);
    assert!(baseline < 3652, "the baseline must fail somewhere (got {baseline})");
    g.bench_function("baseline greedy-east", |b| b.iter(|| gathered(&GreedyEast)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
