//! Microbenchmarks of the simulation substrate: one Compute decision,
//! one full FSYNC round, and one complete execution of the
//! slowest-gathering family (the 7-line).

use bench_suite::line7;
use criterion::{criterion_group, criterion_main, Criterion};
use gathering::SevenGather;
use robots::{engine, Algorithm, Limits, View};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let algo = SevenGather::verified();
    let line = line7();
    // Warm the decision cache.
    let _ = engine::run(&line, &algo, Limits::default());

    c.bench_function("compute_one_decision(cached)", |b| {
        let v = View::observe(&line, trigrid::Coord::new(6, 0), 2);
        b.iter(|| algo.compute(black_box(&v)));
    });
    c.bench_function("fsync_round/7_robots", |b| {
        b.iter(|| engine::step(black_box(&line), &algo).expect("legal round"));
    });
    c.bench_function("full_execution/line7", |b| {
        b.iter(|| {
            let ex = engine::run(black_box(&line), &algo, Limits::default());
            assert!(ex.outcome.is_gathered());
            ex
        });
    });
    c.bench_function("view_observe/radius2", |b| {
        b.iter(|| View::observe(black_box(&line), trigrid::Coord::new(6, 0), 2));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
