//! E3/E4 machinery: simulation under partial visibility-1 tables, the
//! proof-replay witness searches, and a bounded slice of the DFS.

use criterion::{criterion_group, criterion_main, Criterion};
use impossibility::replay;
use impossibility::sim::{config, simulate};
use impossibility::table::RuleTable;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let line = config(&[(0, 0), (2, 0), (4, 0), (6, 0), (8, 0), (10, 0), (12, 0)]);
    let stay = RuleTable::empty().complete_with_stay();

    c.bench_function("simulate_partial_table/line7", |b| {
        b.iter(|| simulate(black_box(&line), black_box(&stay)));
    });
    c.bench_function("replay/proposition1_witness", |b| {
        let base = replay::base_hypothesis();
        let (_, claim) = &replay::proposition1_claims()[0];
        b.iter(|| replay::collision_witness(base, *claim, 7).expect("witness exists"));
    });
    let mut g = c.benchmark_group("replay_livelocks");
    g.sample_size(10);
    g.bench_function("fig12_case_2_1", |b| {
        b.iter(|| replay::livelock_witness(&replay::case_2_1_rules()).expect("oscillates"));
    });
    g.bench_function("fig13_case_2_2", |b| {
        b.iter(|| replay::livelock_witness(&replay::case_2_2_rules()).expect("oscillates"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
