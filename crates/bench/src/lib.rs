//! Shared helpers for the criterion benches (the benches themselves live
//! in `benches/`; see EXPERIMENTS.md for the experiment index).

use robots::Configuration;
use trigrid::Coord;

/// The 3652 connected seven-robot classes, as configurations.
#[must_use]
pub fn all_classes() -> Vec<Configuration> {
    polyhex::enumerate_fixed(7).into_iter().map(Configuration::new).collect()
}

/// A deterministic sample of `n` classes, evenly spaced through the
/// enumeration order (covers thin and wide shapes alike).
#[must_use]
pub fn sample_classes(n: usize) -> Vec<Configuration> {
    let all = all_classes();
    let step = (all.len() / n.max(1)).max(1);
    all.into_iter().step_by(step).take(n).collect()
}

/// The seven-robot west–east line (the slowest-gathering family).
#[must_use]
pub fn line7() -> Configuration {
    Configuration::new((0..7).map(|i| Coord::new(2 * i, 0)))
}
