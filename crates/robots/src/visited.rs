//! Memoized visited-sets over canonical configuration classes.
//!
//! Every component that walks the configuration space — the FSYNC
//! engine's livelock detector, the impossibility simulator, the SSYNC
//! adversary checker — needs the same primitive: "have I seen this
//! translation class before?". These small wrappers keep the
//! canonicalisation in one place so no caller can accidentally memoize
//! raw (translated) configurations.

use crate::Configuration;
use std::collections::HashMap;

/// A set of translation classes of configurations.
#[derive(Default, Debug)]
pub struct ClassSet {
    map: ClassMap<()>,
}

impl ClassSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the class of `cfg`; returns `true` if it was new.
    pub fn insert(&mut self, cfg: &Configuration) -> bool {
        self.map.insert(cfg, ()).is_none()
    }

    /// Whether the class of `cfg` is present.
    #[must_use]
    pub fn contains(&self, cfg: &Configuration) -> bool {
        self.map.get(cfg).is_some()
    }

    /// Number of distinct classes inserted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no class has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A map keyed by translation classes of configurations.
#[derive(Debug)]
pub struct ClassMap<V> {
    map: HashMap<Configuration, V>,
}

impl<V> Default for ClassMap<V> {
    fn default() -> Self {
        ClassMap { map: HashMap::new() }
    }
}

impl<V> ClassMap<V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under the class of `cfg`, returning the previous
    /// value for that class if any.
    pub fn insert(&mut self, cfg: &Configuration, value: V) -> Option<V> {
        self.map.insert(cfg.canonical(), value)
    }

    /// The value stored for the class of `cfg`.
    #[must_use]
    pub fn get(&self, cfg: &Configuration) -> Option<&V> {
        self.map.get(&cfg.canonical())
    }

    /// Like [`Self::get`] for a key that is **already canonical**,
    /// skipping re-canonicalisation — for hot paths that computed the
    /// canonical form anyway.
    #[must_use]
    pub fn get_canonical(&self, canonical: &Configuration) -> Option<&V> {
        debug_assert_eq!(canonical, &canonical.canonical(), "key must be canonical");
        self.map.get(canonical)
    }

    /// Like [`Self::insert`] for a key that is **already canonical**,
    /// skipping re-canonicalisation.
    pub fn insert_canonical(&mut self, canonical: Configuration, value: V) -> Option<V> {
        debug_assert_eq!(&canonical, &canonical.canonical(), "key must be canonical");
        self.map.insert(canonical, value)
    }

    /// Number of distinct classes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no class is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::{Coord, ORIGIN};

    fn two() -> Configuration {
        Configuration::new([ORIGIN, Coord::new(2, 0)])
    }

    #[test]
    fn class_set_identifies_translates() {
        let mut set = ClassSet::new();
        assert!(set.insert(&two()));
        assert!(!set.insert(&two().translate(Coord::new(7, 3))));
        assert!(set.contains(&two().translate(Coord::new(-4, 2))));
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn class_map_overwrites_per_class() {
        let mut map: ClassMap<usize> = ClassMap::new();
        assert_eq!(map.insert(&two(), 1), None);
        assert_eq!(map.insert(&two().translate(Coord::new(2, 0)), 2), Some(1));
        assert_eq!(map.get(&two()), Some(&2));
        assert_eq!(map.len(), 1);
    }
}
