//! Memoized visited-sets over canonical configuration classes.
//!
//! Every component that walks the configuration space — the FSYNC
//! engine's livelock detector, the impossibility simulator, the SSYNC
//! adversary checker — needs the same primitive: "have I seen this
//! translation class before?". These wrappers keep the
//! canonicalisation in one place so no caller can accidentally memoize
//! raw (translated) configurations, and they key on the bit-packed
//! [`PackedClass`] form: membership tests hash 16 bytes instead of a
//! `Vec<Coord>`, and no canonical configuration is ever materialized
//! on the lookup path.
//!
//! The hot interning structures ([`ClassMap`], [`ClassSet`],
//! [`ClassArena`]) are built on [`FlatKeyIndex`], a flat
//! open-addressed table that assigns **insertion-order dense
//! indices**: the k-th distinct key inserted gets index k, exactly as
//! the previous `HashMap`-backed arenas assigned ids from a push
//! counter. That invariant is what keeps every committed verdict
//! digest byte-identical across the storage swap — ids are a pure
//! function of the insertion sequence, never of hash or probe order.

use crate::config::PackedClass;
use crate::Configuration;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A two-multiply finalizer over packed `u128` class keys. The packed
/// representation already spreads occupancy bits across the whole
/// word, so SipHash's collision-resistance buys nothing here — these
/// maps are keyed by data the checker itself canonicalised, not by
/// untrusted input — while its per-lookup cost is very visible: the
/// explorer interns one key per edge of every per-class search. Map
/// iteration order is never observed (ids are assigned in insertion
/// order), so the hash function cannot affect any digest.
#[derive(Default)]
pub struct PackedKeyHasher(u64);

/// `BuildHasher` for [`PackedKeyHasher`]-keyed maps.
pub type PackedKeyHash = BuildHasherDefault<PackedKeyHasher>;

/// A `HashMap` keyed by packed class keys with the cheap finalizer.
pub type PackedKeyMap<V> = HashMap<u128, V, PackedKeyHash>;

/// The splitmix64-style avalanche shared by [`PackedKeyHasher`] and
/// [`FlatKeyIndex`]: fold the halves, then two multiplies. One
/// definition so the flat table and the legacy hasher can never drift.
#[inline]
fn mix_key(key: u128) -> u64 {
    let mut h = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Hasher for PackedKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Cold fallback for non-u128 keys (never hit by the class
        // maps): FNV-1a, correct if slow.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u128(&mut self, key: u128) {
        self.0 = mix_key(key);
    }
}

/// Sentinel for an unoccupied probe slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// A flat open-addressed index over `u128` keys with linear probing
/// and **insertion-order dense indices**: the k-th distinct key gets
/// index k, so the dense side doubles as an id space and as parallel
/// storage addressing. Compared to `HashMap<u128, u32>` this is one
/// `u32` probe array plus one dense key array — no per-entry control
/// bytes, no (key, value) pair scatter — and `clear()` keeps both
/// allocations, which is what lets per-class searches stop paying the
/// allocator across the ~77k classes of a sweep cell.
///
/// There is deliberately no deletion: every user is an interning
/// workload (monotone insert/lookup), and tombstone-free linear
/// probing keeps the lookup loop three instructions wide.
#[derive(Debug, Default)]
pub struct FlatKeyIndex {
    /// Probe table: `slots[h & mask]` holds a dense index into `keys`
    /// or [`EMPTY_SLOT`]. Length is always a power of two (or zero
    /// before first insert).
    slots: Vec<u32>,
    /// Keys in insertion order; `keys[i]` is the key with dense
    /// index `i`.
    keys: Vec<u128>,
}

impl FlatKeyIndex {
    /// Smallest non-empty probe table (keeps tiny searches tiny).
    const MIN_SLOTS: usize = 16;

    /// An empty index. Allocates nothing until the first insert.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The dense index of `key`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u128) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = (mix_key(key) as usize) & mask;
        loop {
            let idx = self.slots[slot];
            if idx == EMPTY_SLOT {
                return None;
            }
            if self.keys[idx as usize] == key {
                return Some(idx);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns `key`: returns its dense index and whether it was new.
    /// New keys get the next insertion-order index.
    ///
    /// # Panics
    /// Panics past 2^32 − 1 distinct keys (the dense-id width).
    #[inline]
    pub fn insert_full(&mut self, key: u128) -> (u32, bool) {
        // Grow at 7/8 load, before probing, so the probe loop below
        // always terminates on an empty slot.
        if (self.keys.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut slot = (mix_key(key) as usize) & mask;
        loop {
            let idx = self.slots[slot];
            if idx == EMPTY_SLOT {
                let id = u32::try_from(self.keys.len()).expect("fewer than 2^32 keys");
                assert!(id != EMPTY_SLOT, "fewer than 2^32 keys");
                self.slots[slot] = id;
                self.keys.push(key);
                return (id, true);
            }
            if self.keys[idx as usize] == key {
                return (idx, false);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the probe table and re-seats every dense index. Dense
    /// indices (and therefore ids) are untouched — only probe
    /// placement changes.
    #[cold]
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(Self::MIN_SLOTS);
        self.slots.clear();
        self.slots.resize(new_len, EMPTY_SLOT);
        let mask = new_len - 1;
        for (i, &key) in self.keys.iter().enumerate() {
            let mut slot = (mix_key(key) as usize) & mask;
            while self.slots[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = u32::try_from(i).expect("fewer than 2^32 keys");
        }
    }

    /// Number of distinct keys interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no key has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Empties the index but keeps both allocations, so a pooled
    /// search can reuse the table without touching the allocator.
    pub fn clear(&mut self) {
        self.keys.clear();
        for s in &mut self.slots {
            *s = EMPTY_SLOT;
        }
    }

    /// Heap bytes currently reserved by the index (probe table plus
    /// dense key array capacity).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * size_of::<u32>() + self.keys.capacity() * size_of::<u128>()
    }

    /// Heap bytes *occupied* as a pure function of the key count:
    /// identical across capacity histories (pooled vs fresh storage),
    /// which is what lets byte budgets trip deterministically.
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        // `slots.len()` is NOT usable here: `clear()` keeps the probe
        // table, so a pooled index can be wider than a fresh one with
        // the same key count. Recompute the size a fresh table of
        // `len()` keys would have under the load-factor rule instead.
        Self::nominal_slots(self.keys.len()) * size_of::<u32>()
            + self.keys.len() * size_of::<u128>()
    }

    /// Probe-table length a fresh index holding `len` keys would have:
    /// the smallest power of two `s >= MIN_SLOTS` with `len * 8 <= s * 7`.
    fn nominal_slots(len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let mut s = Self::MIN_SLOTS;
        while len * 8 > s * 7 {
            s *= 2;
        }
        s
    }
}

/// A set of translation classes of configurations.
#[derive(Default, Debug)]
pub struct ClassSet {
    map: ClassMap<()>,
}

impl ClassSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the class of `cfg`; returns `true` if it was new.
    pub fn insert(&mut self, cfg: &Configuration) -> bool {
        self.map.insert(cfg, ()).is_none()
    }

    /// Whether the class of `cfg` is present.
    #[must_use]
    pub fn contains(&self, cfg: &Configuration) -> bool {
        self.map.get(cfg).is_some()
    }

    /// Number of distinct classes inserted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no class has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A map keyed by translation classes of configurations, stored as
/// packed `u128` class keys in a [`FlatKeyIndex`] with a dense value
/// column. Configurations beyond the packable window (more than
/// [`PackedClass::MAX_ROBOTS`] robots, or a huge diameter)
/// transparently fall back to unpacked canonical keys, so the map's
/// domain is unrestricted — only its hot path assumes the window.
#[derive(Debug)]
pub struct ClassMap<V> {
    index: FlatKeyIndex,
    /// Dense value column: `vals[i]` belongs to the key with dense
    /// index `i` in `index`.
    vals: Vec<V>,
    /// Fallback for classes that do not fit a packed key; empty in
    /// every checker workload.
    wide: HashMap<Configuration, V>,
}

impl<V> Default for ClassMap<V> {
    fn default() -> Self {
        ClassMap { index: FlatKeyIndex::new(), vals: Vec::new(), wide: HashMap::new() }
    }
}

impl<V> ClassMap<V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under the class of `cfg`, returning the previous
    /// value for that class if any.
    pub fn insert(&mut self, cfg: &Configuration, value: V) -> Option<V> {
        match cfg.try_canonical_key() {
            Some(key) => self.insert_key(key, value),
            None => self.wide.insert(cfg.canonical(), value),
        }
    }

    /// The value stored for the class of `cfg`.
    #[must_use]
    pub fn get(&self, cfg: &Configuration) -> Option<&V> {
        match cfg.try_canonical_key() {
            Some(key) => self.get_key(key),
            None => self.wide.get(&cfg.canonical()),
        }
    }

    /// Like [`Self::insert`] for a key the caller already packed.
    pub fn insert_key(&mut self, key: PackedClass, value: V) -> Option<V> {
        let (idx, new) = self.index.insert_full(key.bits());
        if new {
            self.vals.push(value);
            None
        } else {
            Some(std::mem::replace(&mut self.vals[idx as usize], value))
        }
    }

    /// Like [`Self::get`] for a key the caller already packed.
    #[must_use]
    pub fn get_key(&self, key: PackedClass) -> Option<&V> {
        self.index.get(key.bits()).map(|idx| &self.vals[idx as usize])
    }

    /// Number of distinct classes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len() + self.wide.len()
    }

    /// Whether no class is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty() && self.wide.is_empty()
    }

    /// Heap bytes reserved by the packed-key path (probe table, key
    /// and value columns). The wide fallback is excluded: it is empty
    /// in every checker workload and has no cheap size accounting.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.index.heap_bytes() + self.vals.capacity() * size_of::<V>()
    }

    /// Occupied bytes as a pure function of the entry count (see
    /// [`FlatKeyIndex::live_bytes`]).
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.index.live_bytes() + self.vals.len() * size_of::<V>()
    }

    /// Empties the map but keeps the packed-path allocations.
    pub fn clear(&mut self) {
        self.index.clear();
        self.vals.clear();
        self.wide.clear();
    }
}

/// An interning arena over translation classes: every class is mapped
/// to a dense `u32` id, with its decoded canonical representative
/// stored exactly once. This is the explorer's state-interning
/// substrate — the hot path hashes a packed key and never clones or
/// canonicalises a configuration that was seen before. Backed by
/// [`FlatKeyIndex`], whose dense index **is** the id, so
/// insertion-order id assignment (the digest-stability invariant)
/// holds by construction.
#[derive(Default, Debug)]
pub struct ClassArena {
    index: FlatKeyIndex,
    /// `Arc`: callers interning the same class across many arenas (the
    /// explorer's per-class searches) share one decoded representative
    /// instead of re-materializing it per arena.
    cfgs: Vec<std::sync::Arc<Configuration>>,
}

impl ClassArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the class of `cfg` (which may be arbitrarily
    /// translated); returns its dense id and whether it was new.
    pub fn intern(&mut self, cfg: &Configuration) -> (u32, bool) {
        self.intern_key(cfg.canonical_key())
    }

    /// Interns an already-packed class key. The decoded canonical
    /// representative is materialized only on first sight.
    pub fn intern_key(&mut self, key: PackedClass) -> (u32, bool) {
        let (id, new) = self.index.insert_full(key.bits());
        if new {
            self.cfgs.push(std::sync::Arc::new(key.unpack()));
        }
        (id, new)
    }

    /// The dense id of `key`'s class, if already interned.
    #[must_use]
    pub fn lookup_key(&self, key: PackedClass) -> Option<u32> {
        self.index.get(key.bits())
    }

    /// Interns a class the caller knows is absent (see
    /// [`Self::lookup_key`]), adopting an already-decoded shared
    /// representative instead of unpacking a fresh one.
    ///
    /// # Panics
    /// Panics if the class is already interned.
    pub fn insert_shared(&mut self, key: PackedClass, cfg: std::sync::Arc<Configuration>) -> u32 {
        let (id, new) = self.index.insert_full(key.bits());
        assert!(new, "class already interned");
        self.cfgs.push(cfg);
        id
    }

    /// The canonical representative of class `id`.
    ///
    /// # Panics
    /// Panics if `id` was not returned by this arena.
    #[must_use]
    pub fn get(&self, id: u32) -> &Configuration {
        self.cfgs[id as usize].as_ref()
    }

    /// Number of distinct classes interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cfgs.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cfgs.is_empty()
    }

    /// Heap bytes reserved by the arena's index and representative
    /// column. Decoded `Configuration` payloads are shared (`Arc`) and
    /// counted once per distinct class at one `Arc` pointer each; the
    /// configurations' own cell vectors are excluded (shared across
    /// arenas, so attributing them here would double-count).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.index.heap_bytes() + self.cfgs.capacity() * size_of::<std::sync::Arc<Configuration>>()
    }

    /// Occupied bytes as a pure function of the class count (see
    /// [`FlatKeyIndex::live_bytes`]).
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.index.live_bytes() + self.cfgs.len() * size_of::<std::sync::Arc<Configuration>>()
    }

    /// Empties the arena but keeps the allocations for reuse.
    pub fn clear(&mut self) {
        self.index.clear();
        self.cfgs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::{Coord, ORIGIN};

    fn two() -> Configuration {
        Configuration::new([ORIGIN, Coord::new(2, 0)])
    }

    #[test]
    fn class_set_identifies_translates() {
        let mut set = ClassSet::new();
        assert!(set.insert(&two()));
        assert!(!set.insert(&two().translate(Coord::new(7, 3))));
        assert!(set.contains(&two().translate(Coord::new(-4, 2))));
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn class_map_overwrites_per_class() {
        let mut map: ClassMap<usize> = ClassMap::new();
        assert_eq!(map.insert(&two(), 1), None);
        assert_eq!(map.insert(&two().translate(Coord::new(2, 0)), 2), Some(1));
        assert_eq!(map.get(&two()), Some(&2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn class_map_key_paths_agree_with_configuration_paths() {
        let mut map: ClassMap<&str> = ClassMap::new();
        assert_eq!(map.insert_key(two().canonical_key(), "a"), None);
        assert_eq!(map.get(&two().translate(Coord::new(4, 0))), Some(&"a"));
        assert_eq!(map.get_key(two().canonical_key()), Some(&"a"));
    }

    #[test]
    fn class_map_and_set_handle_unpackable_configurations() {
        // Eleven robots exceed the packed-key capacity (ten); the
        // shared utilities must fall back to unpacked keys, not panic —
        // the engine's livelock detector runs on arbitrary robot
        // counts.
        let eleven = Configuration::new((0..11).map(|i| Coord::new(2 * i, 0)));
        assert_eq!(eleven.try_canonical_key(), None);
        let mut map: ClassMap<u32> = ClassMap::new();
        assert_eq!(map.insert(&eleven, 1), None);
        assert_eq!(map.insert(&eleven.translate(Coord::new(4, 2)), 2), Some(1));
        assert_eq!(map.get(&eleven), Some(&2));
        assert_eq!(map.insert(&two(), 7), None);
        assert_eq!(map.len(), 2);
        let mut set = ClassSet::new();
        assert!(set.insert(&eleven));
        assert!(!set.insert(&eleven.translate(Coord::new(-2, 0))));
        assert!(set.contains(&eleven));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn arena_interns_each_class_once() {
        let mut arena = ClassArena::new();
        let (a, new_a) = arena.intern(&two());
        assert!(new_a);
        let (b, new_b) = arena.intern(&two().translate(Coord::new(6, 2)));
        assert!(!new_b);
        assert_eq!(a, b);
        assert_eq!(arena.get(a), &two().canonical());
        assert_eq!(arena.len(), 1);
        assert!(!arena.is_empty());
        let (c, new_c) = arena.intern_key(crate::config::hexagon(ORIGIN).canonical_key());
        assert!(new_c);
        assert_ne!(a, c);
        assert_eq!(arena.get(c), &crate::config::hexagon(ORIGIN).canonical());
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn flat_index_assigns_dense_insertion_order_ids() {
        let mut idx = FlatKeyIndex::new();
        assert_eq!(idx.get(0), None);
        for i in 0..1000u128 {
            // A deliberately clustered key pattern (low entropy in the
            // low bits) to exercise linear-probe runs.
            let key = i << 7;
            let (id, new) = idx.insert_full(key);
            assert!(new);
            assert_eq!(id as u128, i, "ids must be dense in insertion order");
        }
        for i in 0..1000u128 {
            let key = i << 7;
            assert_eq!(idx.get(key), Some(i as u32));
            let (id, new) = idx.insert_full(key);
            assert!(!new);
            assert_eq!(id as u128, i);
        }
        assert_eq!(idx.len(), 1000);
        assert!(idx.heap_bytes() >= idx.live_bytes());
    }

    #[test]
    fn flat_index_clear_keeps_capacity_and_resets_ids() {
        let mut idx = FlatKeyIndex::new();
        for i in 0..100u128 {
            idx.insert_full(i * 31);
        }
        let bytes = idx.heap_bytes();
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.heap_bytes(), bytes, "clear must keep the allocations");
        assert_eq!(idx.get(31), None, "cleared keys must be gone");
        let (id, new) = idx.insert_full(12345);
        assert!(new);
        assert_eq!(id, 0, "ids restart from zero after clear");
    }

    #[test]
    fn flat_index_live_bytes_ignores_pooled_capacity() {
        // A pooled (cleared-but-wide) index must report the same
        // occupied bytes as a fresh index with the same keys, or byte
        // budgets would trip differently depending on scratch reuse.
        let mut pooled = FlatKeyIndex::new();
        for i in 0..1000u128 {
            pooled.insert_full(i * 97);
        }
        pooled.clear();
        let mut fresh = FlatKeyIndex::new();
        assert_eq!(pooled.live_bytes(), fresh.live_bytes());
        for i in 0..37u128 {
            pooled.insert_full(i * 13);
            fresh.insert_full(i * 13);
            assert_eq!(pooled.live_bytes(), fresh.live_bytes());
        }
        assert!(pooled.heap_bytes() > fresh.heap_bytes());
    }
}
