//! Memoized visited-sets over canonical configuration classes.
//!
//! Every component that walks the configuration space — the FSYNC
//! engine's livelock detector, the impossibility simulator, the SSYNC
//! adversary checker — needs the same primitive: "have I seen this
//! translation class before?". These wrappers keep the
//! canonicalisation in one place so no caller can accidentally memoize
//! raw (translated) configurations, and they key on the bit-packed
//! [`PackedClass`] form: membership tests hash 16 bytes instead of a
//! `Vec<Coord>`, and no canonical configuration is ever materialized
//! on the lookup path.

use crate::config::PackedClass;
use crate::Configuration;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A two-multiply finalizer over packed `u128` class keys. The packed
/// representation already spreads occupancy bits across the whole
/// word, so SipHash's collision-resistance buys nothing here — these
/// maps are keyed by data the checker itself canonicalised, not by
/// untrusted input — while its per-lookup cost is very visible: the
/// explorer interns one key per edge of every per-class search. Map
/// iteration order is never observed (ids are assigned in insertion
/// order), so the hash function cannot affect any digest.
#[derive(Default)]
pub struct PackedKeyHasher(u64);

/// `BuildHasher` for [`PackedKeyHasher`]-keyed maps.
pub type PackedKeyHash = BuildHasherDefault<PackedKeyHasher>;

/// A `HashMap` keyed by packed class keys with the cheap finalizer.
pub type PackedKeyMap<V> = HashMap<u128, V, PackedKeyHash>;

impl Hasher for PackedKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Cold fallback for non-u128 keys (never hit by the class
        // maps): FNV-1a, correct if slow.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u128(&mut self, key: u128) {
        // splitmix64-style avalanche of the folded halves; two
        // multiplies instead of SipHash's full permutation rounds.
        let mut h = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = h ^ (h >> 31);
    }
}

/// A set of translation classes of configurations.
#[derive(Default, Debug)]
pub struct ClassSet {
    map: ClassMap<()>,
}

impl ClassSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the class of `cfg`; returns `true` if it was new.
    pub fn insert(&mut self, cfg: &Configuration) -> bool {
        self.map.insert(cfg, ()).is_none()
    }

    /// Whether the class of `cfg` is present.
    #[must_use]
    pub fn contains(&self, cfg: &Configuration) -> bool {
        self.map.get(cfg).is_some()
    }

    /// Number of distinct classes inserted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no class has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A map keyed by translation classes of configurations, stored as
/// packed `u128` class keys. Configurations beyond the packable
/// window (more than [`PackedClass::MAX_ROBOTS`] robots, or a huge
/// diameter) transparently fall back to unpacked canonical keys, so
/// the map's domain is unrestricted — only its hot path assumes the
/// window.
#[derive(Debug)]
pub struct ClassMap<V> {
    map: PackedKeyMap<V>,
    /// Fallback for classes that do not fit a packed key; empty in
    /// every checker workload.
    wide: HashMap<Configuration, V>,
}

impl<V> Default for ClassMap<V> {
    fn default() -> Self {
        ClassMap { map: PackedKeyMap::default(), wide: HashMap::new() }
    }
}

impl<V> ClassMap<V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under the class of `cfg`, returning the previous
    /// value for that class if any.
    pub fn insert(&mut self, cfg: &Configuration, value: V) -> Option<V> {
        match cfg.try_canonical_key() {
            Some(key) => self.insert_key(key, value),
            None => self.wide.insert(cfg.canonical(), value),
        }
    }

    /// The value stored for the class of `cfg`.
    #[must_use]
    pub fn get(&self, cfg: &Configuration) -> Option<&V> {
        match cfg.try_canonical_key() {
            Some(key) => self.get_key(key),
            None => self.wide.get(&cfg.canonical()),
        }
    }

    /// Like [`Self::insert`] for a key the caller already packed.
    pub fn insert_key(&mut self, key: PackedClass, value: V) -> Option<V> {
        self.map.insert(key.bits(), value)
    }

    /// Like [`Self::get`] for a key the caller already packed.
    #[must_use]
    pub fn get_key(&self, key: PackedClass) -> Option<&V> {
        self.map.get(&key.bits())
    }

    /// Number of distinct classes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len() + self.wide.len()
    }

    /// Whether no class is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty() && self.wide.is_empty()
    }
}

/// An interning arena over translation classes: every class is mapped
/// to a dense `u32` id, with its decoded canonical representative
/// stored exactly once. This is the explorer's state-interning
/// substrate — the hot path hashes a packed key and never clones or
/// canonicalises a configuration that was seen before.
#[derive(Default, Debug)]
pub struct ClassArena {
    ids: PackedKeyMap<u32>,
    /// `Arc`: callers interning the same class across many arenas (the
    /// explorer's per-class searches) share one decoded representative
    /// instead of re-materializing it per arena.
    cfgs: Vec<std::sync::Arc<Configuration>>,
}

impl ClassArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the class of `cfg` (which may be arbitrarily
    /// translated); returns its dense id and whether it was new.
    pub fn intern(&mut self, cfg: &Configuration) -> (u32, bool) {
        self.intern_key(cfg.canonical_key())
    }

    /// Interns an already-packed class key. The decoded canonical
    /// representative is materialized only on first sight.
    pub fn intern_key(&mut self, key: PackedClass) -> (u32, bool) {
        match self.ids.entry(key.bits()) {
            Entry::Occupied(e) => (*e.get(), false),
            Entry::Vacant(e) => {
                let id = u32::try_from(self.cfgs.len()).expect("fewer than 2^32 classes");
                e.insert(id);
                self.cfgs.push(std::sync::Arc::new(key.unpack()));
                (id, true)
            }
        }
    }

    /// The dense id of `key`'s class, if already interned.
    #[must_use]
    pub fn lookup_key(&self, key: PackedClass) -> Option<u32> {
        self.ids.get(&key.bits()).copied()
    }

    /// Interns a class the caller knows is absent (see
    /// [`Self::lookup_key`]), adopting an already-decoded shared
    /// representative instead of unpacking a fresh one.
    ///
    /// # Panics
    /// Panics if the class is already interned.
    pub fn insert_shared(&mut self, key: PackedClass, cfg: std::sync::Arc<Configuration>) -> u32 {
        let id = u32::try_from(self.cfgs.len()).expect("fewer than 2^32 classes");
        let prev = self.ids.insert(key.bits(), id);
        assert!(prev.is_none(), "class already interned");
        self.cfgs.push(cfg);
        id
    }

    /// The canonical representative of class `id`.
    ///
    /// # Panics
    /// Panics if `id` was not returned by this arena.
    #[must_use]
    pub fn get(&self, id: u32) -> &Configuration {
        self.cfgs[id as usize].as_ref()
    }

    /// Number of distinct classes interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cfgs.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cfgs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::{Coord, ORIGIN};

    fn two() -> Configuration {
        Configuration::new([ORIGIN, Coord::new(2, 0)])
    }

    #[test]
    fn class_set_identifies_translates() {
        let mut set = ClassSet::new();
        assert!(set.insert(&two()));
        assert!(!set.insert(&two().translate(Coord::new(7, 3))));
        assert!(set.contains(&two().translate(Coord::new(-4, 2))));
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn class_map_overwrites_per_class() {
        let mut map: ClassMap<usize> = ClassMap::new();
        assert_eq!(map.insert(&two(), 1), None);
        assert_eq!(map.insert(&two().translate(Coord::new(2, 0)), 2), Some(1));
        assert_eq!(map.get(&two()), Some(&2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn class_map_key_paths_agree_with_configuration_paths() {
        let mut map: ClassMap<&str> = ClassMap::new();
        assert_eq!(map.insert_key(two().canonical_key(), "a"), None);
        assert_eq!(map.get(&two().translate(Coord::new(4, 0))), Some(&"a"));
        assert_eq!(map.get_key(two().canonical_key()), Some(&"a"));
    }

    #[test]
    fn class_map_and_set_handle_unpackable_configurations() {
        // Eleven robots exceed the packed-key capacity (ten); the
        // shared utilities must fall back to unpacked keys, not panic —
        // the engine's livelock detector runs on arbitrary robot
        // counts.
        let eleven = Configuration::new((0..11).map(|i| Coord::new(2 * i, 0)));
        assert_eq!(eleven.try_canonical_key(), None);
        let mut map: ClassMap<u32> = ClassMap::new();
        assert_eq!(map.insert(&eleven, 1), None);
        assert_eq!(map.insert(&eleven.translate(Coord::new(4, 2)), 2), Some(1));
        assert_eq!(map.get(&eleven), Some(&2));
        assert_eq!(map.insert(&two(), 7), None);
        assert_eq!(map.len(), 2);
        let mut set = ClassSet::new();
        assert!(set.insert(&eleven));
        assert!(!set.insert(&eleven.translate(Coord::new(-2, 0))));
        assert!(set.contains(&eleven));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn arena_interns_each_class_once() {
        let mut arena = ClassArena::new();
        let (a, new_a) = arena.intern(&two());
        assert!(new_a);
        let (b, new_b) = arena.intern(&two().translate(Coord::new(6, 2)));
        assert!(!new_b);
        assert_eq!(a, b);
        assert_eq!(arena.get(a), &two().canonical());
        assert_eq!(arena.len(), 1);
        assert!(!arena.is_empty());
        let (c, new_c) = arena.intern_key(crate::config::hexagon(ORIGIN).canonical_key());
        assert!(new_c);
        assert_ne!(a, c);
        assert_eq!(arena.get(c), &crate::config::hexagon(ORIGIN).canonical());
        assert_eq!(arena.len(), 2);
    }
}
