//! # robots — oblivious mobile-robot simulation core
//!
//! The Look-Compute-Move (LCM) substrate of the paper (§II-A):
//!
//! * [`Configuration`] — the set of robot positions on the triangular
//!   grid (robots are anonymous; a configuration is just the set of
//!   robot nodes).
//! * [`View`] — what a single robot observes: the occupancy of the nodes
//!   within its visibility range, **and nothing else**. Algorithms
//!   receive only a `View`, so the type system enforces the visibility
//!   model.
//! * [`Algorithm`] — a deterministic, memoryless rule `View → Option<Dir>`
//!   (`None` = stay). Obliviousness is enforced by the `&self` signature
//!   over an immutable rule set.
//! * [`engine`] — the FSYNC round function with the paper's exact
//!   collision semantics (edge swaps and node sharing are fatal;
//!   "trains" into vacated nodes are legal), plus a full execution
//!   runner with fixpoint, livelock, disconnection and gathering
//!   detection.
//! * [`sched`] — activation schedulers beyond FSYNC (round-robin,
//!   random subsets, recorded-schedule replay) for the paper's
//!   future-work question of weaker synchrony.
//! * [`explore`] — the semantics-generic transition-system explorer:
//!   BFS over `(canonical class, packed auxiliary key)` states with
//!   stabilizer-subset dedup, quotient-acyclicity proofs and orbit-fair
//!   cycle refutations, parameterized by a pluggable
//!   [`explore::Semantics`]. All three checkers below are
//!   instantiations.
//! * [`adversary`] — an exhaustive SSYNC adversary model checker
//!   (crash semantics with budget 0) that classifies an initial class
//!   as adversary-proof, refuted (with a minimal replayable
//!   counterexample schedule) or undecided.
//! * [`faults`] — the crash-fault scenario model (crash budget `f`,
//!   relaxed gathering of the live robots) with replayable
//!   schedule + crash assignments.
//! * [`async_model`] — the ASYNC phase-interleaving model: the same
//!   explorer over `(class, packed pending vector)` states with
//!   single-robot phase-advance actions, plus scheduled walks and
//!   replay over the shared [`async_model::advance_phase`] successor
//!   function.
//! * [`visited`] — shared canonical-class memoization primitives
//!   (packed-key [`visited::ClassSet`]/[`visited::ClassMap`] and the
//!   interning [`visited::ClassArena`]) used by the engine's livelock
//!   detector, the impossibility simulator and the explorer's
//!   crash-mask-aware state interner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod algorithm;
pub mod async_model;
mod config;
pub mod engine;
pub mod explore;
pub mod faults;
pub mod sched;
pub mod view;
pub mod visited;

pub use adversary::{AdversaryReport, AdversaryVerdict, Checker};
pub use algorithm::{Algorithm, FnAlgorithm, MoveOracle, StayAlgorithm};
pub use async_model::{AsyncChecker, AsyncOptions, AsyncReport, AsyncVerdict};
pub use config::{
    ball_capacity, hexagon, min_gather_radius, CapacityError, Configuration, PackedClass,
    PackedPending,
};
pub use engine::{run, run_traced, Execution, Limits, Move, Outcome, RoundCollision, RoundResult};
pub use faults::{CrashChecker, CrashOptions, CrashReport, CrashVerdict};
pub use view::View;
