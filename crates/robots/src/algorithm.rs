//! The algorithm abstraction: a deterministic, memoryless move rule.

use crate::View;
use trigrid::Dir;

/// A distributed algorithm for oblivious robots.
///
/// Robots are uniform (same algorithm), anonymous and oblivious, so an
/// algorithm is nothing more than a pure function from the robot's
/// current [`View`] to a decision: move to an adjacent node
/// (`Some(dir)`) or stay (`None`). The trait deliberately provides no
/// access to absolute coordinates, identities or history.
pub trait Algorithm: Sync {
    /// The visibility radius this algorithm needs (1 or 2 in the paper).
    fn radius(&self) -> u32;

    /// The Compute phase: given the Look phase's view, decide the Move
    /// phase's action.
    fn compute(&self, view: &View) -> Option<Dir>;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

impl<A: Algorithm + ?Sized> Algorithm for &A {
    fn radius(&self) -> u32 {
        (**self).radius()
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        (**self).compute(view)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// An algorithm defined by a closure; handy for tests and experiments.
pub struct FnAlgorithm<F: Fn(&View) -> Option<Dir> + Sync> {
    radius: u32,
    name: String,
    f: F,
}

impl<F: Fn(&View) -> Option<Dir> + Sync> FnAlgorithm<F> {
    /// Wraps `f` as an algorithm with the given visibility radius.
    pub fn new(radius: u32, name: impl Into<String>, f: F) -> Self {
        Self { radius, name: name.into(), f }
    }
}

impl<F: Fn(&View) -> Option<Dir> + Sync> Algorithm for FnAlgorithm<F> {
    fn radius(&self) -> u32 {
        self.radius
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        (self.f)(view)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// The trivial algorithm that never moves (every configuration is a
/// fixpoint); useful as an engine test fixture.
pub struct StayAlgorithm;

impl Algorithm for StayAlgorithm {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, _view: &View) -> Option<Dir> {
        None
    }
    fn name(&self) -> &str {
        "stay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_algorithm_delegates() {
        let a = FnAlgorithm::new(1, "east-if-lonely", |v: &View| {
            (v.robot_count() == 0).then_some(Dir::E)
        });
        assert_eq!(a.radius(), 1);
        assert_eq!(a.name(), "east-if-lonely");
        assert_eq!(a.compute(&View::from_bits(1, 0)), Some(Dir::E));
        assert_eq!(a.compute(&View::from_bits(1, 1)), None);
    }

    #[test]
    fn stay_never_moves() {
        for bits in 0..64u64 {
            assert_eq!(StayAlgorithm.compute(&View::from_bits(1, bits)), None);
        }
    }

    #[test]
    fn references_implement_algorithm() {
        fn radius_of(a: impl Algorithm) -> u32 {
            a.radius()
        }
        assert_eq!(radius_of(&StayAlgorithm), 1);
    }
}
