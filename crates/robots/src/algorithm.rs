//! The algorithm abstraction: a deterministic, memoryless move rule,
//! plus a memoized decision oracle for exploration workloads.

use crate::{view, View};
use std::sync::atomic::{AtomicU8, Ordering};
use trigrid::Dir;

/// A distributed algorithm for oblivious robots.
///
/// Robots are uniform (same algorithm), anonymous and oblivious, so an
/// algorithm is nothing more than a pure function from the robot's
/// current [`View`] to a decision: move to an adjacent node
/// (`Some(dir)`) or stay (`None`). The trait deliberately provides no
/// access to absolute coordinates, identities or history.
pub trait Algorithm: Sync {
    /// The visibility radius this algorithm needs (1 or 2 in the paper).
    fn radius(&self) -> u32;

    /// The Compute phase: given the Look phase's view, decide the Move
    /// phase's action.
    fn compute(&self, view: &View) -> Option<Dir>;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

impl<A: Algorithm + ?Sized> Algorithm for &A {
    fn radius(&self) -> u32 {
        (**self).radius()
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        (**self).compute(view)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// An algorithm defined by a closure; handy for tests and experiments.
pub struct FnAlgorithm<F: Fn(&View) -> Option<Dir> + Sync> {
    radius: u32,
    name: String,
    f: F,
}

impl<F: Fn(&View) -> Option<Dir> + Sync> FnAlgorithm<F> {
    /// Wraps `f` as an algorithm with the given visibility radius.
    pub fn new(radius: u32, name: impl Into<String>, f: F) -> Self {
        Self { radius, name: name.into(), f }
    }
}

impl<F: Fn(&View) -> Option<Dir> + Sync> Algorithm for FnAlgorithm<F> {
    fn radius(&self) -> u32 {
        self.radius
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        (self.f)(view)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Largest label count for which [`MoveOracle`] allocates a dense memo
/// table (`2^20` one-byte slots = 1 MiB); radius 1 (6 labels) and the
/// paper's radius 2 (18 labels) both qualify. Beyond it the oracle
/// transparently degrades to calling the algorithm directly.
const MEMO_MAX_LABELS: usize = 20;

/// Memo slot sentinel: decision not yet computed.
const UNKNOWN: u8 = 0xFF;

/// A memoizing wrapper around an [`Algorithm`]: every distinct view is
/// evaluated **once per rule table** instead of once per robot per
/// configuration, with the decision cached in a dense table keyed by
/// [`View::bits`].
///
/// Soundness is immediate from the model: an algorithm is a *pure*
/// function of the view (deterministic, oblivious, anonymous — §II-A),
/// so caching by the view bitmask cannot change any decision. The
/// table is lock-free (`AtomicU8` slots, relaxed ordering): a race
/// merely computes the same pure value twice, so a shared oracle is
/// safe across the sweep pipeline's worker threads.
///
/// `MoveOracle` implements [`Algorithm`] itself, so it drops into
/// every engine entry point unchanged; the exhaustive checkers
/// ([`crate::explore`]) route all decision computation through one.
pub struct MoveOracle<'a, A: Algorithm + ?Sized> {
    algo: &'a A,
    radius: u32,
    /// Dense lazily-filled decision table indexed by view bits
    /// (`UNKNOWN` = not yet computed, `0` = stay, `1 + d` = move in
    /// direction index `d`); `None` when the radius is too large.
    table: Option<Box<[AtomicU8]>>,
    /// Decisions answered from the table (relaxed, write-only
    /// telemetry; unmemoized oracles count every call as a miss).
    hits: telemetry::Counter,
    /// Decisions that had to run the wrapped algorithm.
    misses: telemetry::Counter,
}

impl<'a, A: Algorithm + ?Sized> MoveOracle<'a, A> {
    /// Wraps `algo` in a memo table sized for its radius.
    #[must_use]
    pub fn new(algo: &'a A) -> Self {
        let radius = algo.radius();
        let labels = view::label_count(radius);
        let table = (labels <= MEMO_MAX_LABELS)
            .then(|| (0..1usize << labels).map(|_| AtomicU8::new(UNKNOWN)).collect());
        MoveOracle {
            algo,
            radius,
            table,
            hits: telemetry::Counter::new(),
            misses: telemetry::Counter::new(),
        }
    }

    /// `(hits, misses)` of the decision table so far — pure telemetry,
    /// never part of any checker verdict.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// The wrapped algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &'a A {
        self.algo
    }

    /// Whether decisions are being memoized (false only for radii
    /// whose view space exceeds the table budget).
    #[must_use]
    pub fn is_memoized(&self) -> bool {
        self.table.is_some()
    }

    /// The memoized decision for `view`, computing and caching it on
    /// first sight.
    #[must_use]
    pub fn decide(&self, view: &View) -> Option<Dir> {
        let Some(table) = &self.table else {
            self.misses.inc();
            return self.algo.compute(view);
        };
        debug_assert_eq!(view.radius(), self.radius, "oracle radius mismatch");
        let slot = &table[view.bits() as usize];
        match slot.load(Ordering::Relaxed) {
            UNKNOWN => {
                self.misses.inc();
                let decision = self.algo.compute(view);
                let code = decision.map_or(0, |d| 1 + d.index() as u8);
                slot.store(code, Ordering::Relaxed);
                decision
            }
            0 => {
                self.hits.inc();
                None
            }
            code => {
                self.hits.inc();
                Some(Dir::from_index((code - 1) as usize))
            }
        }
    }
}

impl<A: Algorithm + ?Sized> Algorithm for MoveOracle<'_, A> {
    fn radius(&self) -> u32 {
        self.radius
    }
    fn compute(&self, view: &View) -> Option<Dir> {
        self.decide(view)
    }
    fn name(&self) -> &str {
        self.algo.name()
    }
}

/// The trivial algorithm that never moves (every configuration is a
/// fixpoint); useful as an engine test fixture.
pub struct StayAlgorithm;

impl Algorithm for StayAlgorithm {
    fn radius(&self) -> u32 {
        1
    }
    fn compute(&self, _view: &View) -> Option<Dir> {
        None
    }
    fn name(&self) -> &str {
        "stay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_algorithm_delegates() {
        let a = FnAlgorithm::new(1, "east-if-lonely", |v: &View| {
            (v.robot_count() == 0).then_some(Dir::E)
        });
        assert_eq!(a.radius(), 1);
        assert_eq!(a.name(), "east-if-lonely");
        assert_eq!(a.compute(&View::from_bits(1, 0)), Some(Dir::E));
        assert_eq!(a.compute(&View::from_bits(1, 1)), None);
    }

    #[test]
    fn stay_never_moves() {
        for bits in 0..64u64 {
            assert_eq!(StayAlgorithm.compute(&View::from_bits(1, bits)), None);
        }
    }

    #[test]
    fn references_implement_algorithm() {
        fn radius_of(a: impl Algorithm) -> u32 {
            a.radius()
        }
        assert_eq!(radius_of(&StayAlgorithm), 1);
    }

    #[test]
    fn oracle_matches_the_algorithm_on_every_view() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let spin = FnAlgorithm::new(1, "spin", |v: &View| {
            calls.fetch_add(1, Ordering::Relaxed);
            (v.robot_count() == 1).then(|| {
                Dir::ALL.into_iter().find(|&d| v.neighbor(d)).expect("one neighbour").rotate_ccw(1)
            })
        });
        let oracle = MoveOracle::new(&spin);
        assert!(oracle.is_memoized());
        assert_eq!(oracle.radius(), 1);
        assert_eq!(oracle.name(), "spin");
        for bits in 0..64u64 {
            let v = View::from_bits(1, bits);
            assert_eq!(oracle.decide(&v), spin.compute(&v), "bits {bits:#b}");
        }
        let after_first_pass = calls.load(Ordering::Relaxed);
        // 64 memoized + 64 reference calls above; a second pass through
        // the oracle adds no underlying computation at all.
        for bits in 0..64u64 {
            let _ = oracle.decide(&View::from_bits(1, bits));
        }
        assert_eq!(calls.load(Ordering::Relaxed), after_first_pass, "memo must absorb the rescan");
    }
}
