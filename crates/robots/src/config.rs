//! Robot configurations: anonymous sets of occupied nodes.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use trigrid::{path, Coord, Dir, ORIGIN};

/// A typed capacity violation: the input does not fit the packed
/// representation. Returned by the `try_*` packing constructors so
/// callers (the sweep pipeline, the checker front-ends) can reject
/// unsupported robot counts with a real error instead of tripping an
/// assert mid-run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CapacityError {
    /// More robots than the packed key can hold.
    TooManyRobots {
        /// The offending robot count.
        robots: usize,
        /// The capacity ([`PackedClass::MAX_ROBOTS`]).
        max: usize,
    },
    /// The configuration's diameter exceeds the packable window.
    WindowExceeded,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityError::TooManyRobots { robots, max } => {
                write!(f, "{robots} robots exceed the packed-key capacity of {max}")
            }
            CapacityError::WindowExceeded => {
                write!(f, "configuration exceeds the packable diameter window")
            }
        }
    }
}

impl std::error::Error for CapacityError {}

/// Bits per packed node for the signed x offset (window `-64..=63`).
const X_BITS: u32 = 7;
/// Bits per packed node for the y offset (window `0..=31`).
const Y_BITS: u32 = 5;
/// Bits per packed node.
const NODE_BITS: u32 = X_BITS + Y_BITS;
/// Bits for the robot count prefix.
const LEN_BITS: u32 = 4;
/// Offset added to x so the packed field is non-negative.
const X_BIAS: i32 = 1 << (X_BITS - 1);

/// A lossless bit-packed translation-class key of a configuration.
///
/// The canonical representative of a translation class places its
/// row-major-minimal node at the origin, so every other node lies in
/// the half-plane `y > 0 || (y == 0 && x > 0)`; for the bounded
/// configurations the checkers handle (≤ [`PackedClass::MAX_ROBOTS`]
/// robots within a diameter window of 31 rows × 127 half-columns) each
/// node fits 12 bits and the whole class key fits a `u128`:
///
/// ```text
/// bits 0..4            robot count n (0..=10)
/// bits 4+12i..4+12i+7  node i: x + 64   (row-major order)
/// bits 4+12i+7..16+12i node i: y
/// ```
///
/// Packing is injective on that window, so two configurations have
/// equal keys **iff** they are translates of each other — the key is
/// the class. [`Configuration::canonical_key`] produces it without
/// materializing the canonical `Vec<Coord>`; [`PackedClass::unpack`]
/// decodes the canonical representative back.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackedClass(u128);

impl PackedClass {
    /// Largest robot count a packed key can hold: the count prefix and
    /// ten 12-bit nodes take `4 + 10·12 = 124 ≤ 128` bits, and the
    /// compile-time checks below pin both capacity inequalities.
    pub const MAX_ROBOTS: usize = 10;

    /// Packs arbitrary cells (folding the translation): the packed
    /// canonical translation class of `cells`.
    ///
    /// # Panics
    /// Panics if there are more than [`Self::MAX_ROBOTS`] cells or the
    /// set exceeds the packable diameter window.
    #[must_use]
    pub fn of_cells(cells: &[Coord]) -> PackedClass {
        Self::try_of_cells(cells).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Self::of_cells`], returning a typed [`CapacityError`]
    /// instead of panicking when the cells do not fit a packed key.
    ///
    /// # Errors
    /// [`CapacityError::TooManyRobots`] beyond [`Self::MAX_ROBOTS`]
    /// cells, [`CapacityError::WindowExceeded`] beyond the diameter
    /// window.
    pub fn try_of_cells(cells: &[Coord]) -> Result<PackedClass, CapacityError> {
        if cells.len() > Self::MAX_ROBOTS {
            return Err(CapacityError::TooManyRobots {
                robots: cells.len(),
                max: Self::MAX_ROBOTS,
            });
        }
        let mut buf = [ORIGIN; Self::MAX_ROBOTS];
        buf[..cells.len()].copy_from_slice(cells);
        let sorted = &mut buf[..cells.len()];
        sorted.sort_unstable_by_key(|c| polyhex::key(*c));
        Self::try_of_sorted(sorted).ok_or(CapacityError::WindowExceeded)
    }

    /// Packs cells that are **already sorted in row-major order** (the
    /// stored order of [`Configuration::positions`]); the row-major
    /// minimum — the first cell — becomes the origin.
    pub(crate) fn of_sorted(sorted: &[Coord]) -> PackedClass {
        Self::try_of_sorted(sorted).unwrap_or_else(|| {
            panic!("configuration exceeds the packable diameter window: {sorted:?}")
        })
    }

    /// Like [`Self::of_sorted`], returning `None` when the set has
    /// more than [`Self::MAX_ROBOTS`] cells or exceeds the window.
    pub(crate) fn try_of_sorted(sorted: &[Coord]) -> Option<PackedClass> {
        debug_assert!(sorted.windows(2).all(|w| polyhex::key(w[0]) < polyhex::key(w[1])));
        if sorted.len() > Self::MAX_ROBOTS {
            return None;
        }
        let Some(&min) = sorted.first() else {
            return Some(PackedClass(0));
        };
        let mut bits = sorted.len() as u128;
        for (i, &c) in sorted.iter().enumerate() {
            let dx = c.x - min.x + X_BIAS;
            let dy = c.y - min.y;
            if !(0..1 << X_BITS).contains(&dx) || !(0..1 << Y_BITS).contains(&dy) {
                return None;
            }
            let node = (dx as u128) | ((dy as u128) << X_BITS);
            bits |= node << (LEN_BITS + NODE_BITS * i as u32);
        }
        Some(PackedClass(bits))
    }

    /// The raw key bits.
    #[must_use]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Number of robots in the packed configuration.
    #[must_use]
    pub fn robots(self) -> usize {
        (self.0 & ((1 << LEN_BITS) - 1)) as usize
    }

    /// Decodes the canonical representative of the class.
    #[must_use]
    pub fn unpack(self) -> Configuration {
        let n = self.robots();
        Configuration::new((0..n).map(|i| {
            let node = (self.0 >> (LEN_BITS + NODE_BITS * i as u32)) & ((1 << NODE_BITS) - 1);
            let x = (node & ((1 << X_BITS) - 1)) as i32 - X_BIAS;
            let y = (node >> X_BITS) as i32;
            Coord::new(x, y)
        }))
    }
}

// Compile-time capacity proofs: the count prefix can represent
// MAX_ROBOTS, and MAX_ROBOTS packed nodes plus the prefix fit a u128.
const _: () = assert!(PackedClass::MAX_ROBOTS < (1 << LEN_BITS));
const _: () = assert!(
    LEN_BITS as usize + NODE_BITS as usize * PackedClass::MAX_ROBOTS <= u128::BITS as usize
);

impl fmt::Debug for PackedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedClass({:#x})", self.0)
    }
}

/// Bits per packed pending slot: `0` = idle, `1 + d` = a pending move
/// in direction index `d`.
const PEND_BITS: u32 = 3;

/// A lossless bit-packed per-robot **pending-move vector** — the
/// auxiliary state of the ASYNC model ([`crate::async_model`]),
/// companion to [`PackedClass`].
///
/// Slot `i` (row-major, the standard scheduler indexing) holds 3 bits:
/// `0` when the robot is *idle* (between LCM cycles), `1 + d` when it
/// has performed Look+Compute and holds the *pending* move in direction
/// index `d`, captured from a possibly stale snapshot. Pending *stay*
/// decisions are not represented: executing a stay changes nothing and
/// interferes with nobody, so the ASYNC discretisation collapses
/// look-then-stay into a single no-effect cycle (DESIGN.md §13).
///
/// Packing is injective on the [`PackedClass::MAX_ROBOTS`]-slot
/// window, so two keys are equal
/// **iff** the pending vectors are equal — the key *is* the auxiliary
/// state, exactly as a [`PackedClass`] key is the translation class
/// (`tests/packed_pending.rs` pins both directions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackedPending(u32);

impl PackedPending {
    /// The all-idle vector (every robot between LCM cycles).
    pub const IDLE: PackedPending = PackedPending(0);

    /// Packs a slot-aligned pending vector.
    ///
    /// # Panics
    /// Panics if there are more than [`PackedClass::MAX_ROBOTS`] slots.
    #[must_use]
    pub fn of_slots(slots: &[Option<Dir>]) -> PackedPending {
        Self::try_of_slots(slots).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Self::of_slots`], returning a typed [`CapacityError`]
    /// instead of panicking on over-capacity vectors.
    ///
    /// # Errors
    /// [`CapacityError::TooManyRobots`] beyond
    /// [`PackedClass::MAX_ROBOTS`] slots.
    pub fn try_of_slots(slots: &[Option<Dir>]) -> Result<PackedPending, CapacityError> {
        if slots.len() > PackedClass::MAX_ROBOTS {
            return Err(CapacityError::TooManyRobots {
                robots: slots.len(),
                max: PackedClass::MAX_ROBOTS,
            });
        }
        let mut packed = PackedPending::IDLE;
        for (i, &p) in slots.iter().enumerate() {
            packed = packed.with(i, p);
        }
        Ok(packed)
    }

    /// The pending move of slot `slot` (`None` = idle).
    #[must_use]
    pub fn get(self, slot: usize) -> Option<Dir> {
        let code = (self.0 >> (PEND_BITS * slot as u32)) & ((1 << PEND_BITS) - 1);
        (code != 0).then(|| Dir::from_index(code as usize - 1))
    }

    /// This vector with slot `slot` replaced by `pending`.
    #[must_use]
    pub fn with(self, slot: usize, pending: Option<Dir>) -> PackedPending {
        let shift = PEND_BITS * slot as u32;
        let cleared = self.0 & !(((1 << PEND_BITS) - 1) << shift);
        let code = pending.map_or(0, |d| 1 + d.index() as u32);
        PackedPending(cleared | (code << shift))
    }

    /// Whether every robot is idle.
    #[must_use]
    pub fn is_idle(self) -> bool {
        self.0 == 0
    }

    /// The raw key bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// The image under the slot permutation `old slot i → map(i)`, for
    /// `n` robots. `map` is only consulted for non-idle slots.
    #[must_use]
    pub fn permute(self, n: usize, map: impl Fn(usize) -> usize) -> PackedPending {
        self.permute_map(n, map, |d| d)
    }

    /// Like [`Self::permute`], additionally transforming each pending
    /// direction by `dirs` — the action of a point symmetry on a
    /// pending vector, which moves the robots *and* rotates/reflects
    /// their captured moves (see
    /// [`Semantics::permute_aux`](crate::explore::Semantics::permute_aux)).
    #[must_use]
    pub fn permute_map(
        self,
        n: usize,
        map: impl Fn(usize) -> usize,
        dirs: impl Fn(Dir) -> Dir,
    ) -> PackedPending {
        let mut mapped = PackedPending::IDLE;
        for i in 0..n {
            if let Some(d) = self.get(i) {
                mapped = mapped.with(map(i), Some(dirs(d)));
            }
        }
        mapped
    }
}

// Compile-time capacity proof: MAX_ROBOTS pending slots fit a u32.
const _: () = assert!(PEND_BITS as usize * PackedClass::MAX_ROBOTS <= u32::BITS as usize);

impl fmt::Debug for PackedPending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedPending({:#x})", self.0)
    }
}

/// A configuration of anonymous robots: the set of *robot nodes*
/// (paper §II-A). Stored sorted in [`polyhex::key`] (row-major) order,
/// with no duplicates — several robots on one node would already be a
/// collision, so the type forbids it.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    nodes: Vec<Coord>,
}

impl Configuration {
    /// Builds a configuration from arbitrary positions.
    ///
    /// # Panics
    /// Panics if two positions coincide (a multiplicity would be a
    /// collision by Definition 1).
    #[must_use]
    pub fn new<I: IntoIterator<Item = Coord>>(positions: I) -> Self {
        let mut nodes: Vec<Coord> = positions.into_iter().collect();
        nodes.sort_unstable_by_key(|c| polyhex::key(*c));
        let before = nodes.len();
        nodes.dedup();
        assert_eq!(before, nodes.len(), "duplicate robot positions are a collision");
        Self { nodes }
    }

    /// The occupied nodes, sorted in row-major order.
    #[must_use]
    pub fn positions(&self) -> &[Coord] {
        &self.nodes
    }

    /// Number of robots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no robots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `c` is a robot node.
    #[must_use]
    pub fn contains(&self, c: Coord) -> bool {
        self.nodes.binary_search_by_key(&polyhex::key(c), |n| polyhex::key(*n)).is_ok()
    }

    /// The occupied nodes as a hash set.
    #[must_use]
    pub fn to_set(&self) -> HashSet<Coord> {
        self.nodes.iter().copied().collect()
    }

    /// Whether the subgraph induced by the robot nodes is connected
    /// (the paper's standing assumption on initial configurations).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        path::is_connected(&self.nodes)
    }

    /// The number of robot neighbours of `c`.
    #[must_use]
    pub fn occupied_neighbors(&self, c: Coord) -> usize {
        c.neighbors().into_iter().filter(|n| self.contains(*n)).count()
    }

    /// For seven robots, gathering is achieved when one robot has six
    /// adjacent robot nodes (paper Fig. 1); this returns that centre if
    /// it exists.
    #[must_use]
    pub fn gathered_center(&self) -> Option<Coord> {
        self.nodes.iter().copied().find(|&c| self.occupied_neighbors(c) == 6)
    }

    /// Whether this is a gathering-achieved configuration for its robot
    /// count `n`: all robots lie within one closed ball of radius
    /// [`min_gather_radius`]`(n)` — the smallest ball that can hold `n`
    /// robots, so no tighter cluster exists. For `n = 7` the radius-1
    /// ball has exactly seven nodes and this is precisely Definition 1's
    /// filled hexagon (a robot with six robot neighbours); for other `n`
    /// it is the natural "as close together as possible" generalisation
    /// the paper's §V open questions ask about (DESIGN.md §14).
    #[must_use]
    pub fn is_gathered(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return false;
        }
        let r = min_gather_radius(n);
        // Any covering ball's centre lies within `r` of every robot, in
        // particular the first one, so scanning that disk is complete.
        trigrid::region::disk(self.nodes[0], r)
            .into_iter()
            .any(|c| self.nodes.iter().all(|&p| c.distance(p) <= r))
    }

    /// Maximum pairwise distance between robot nodes.
    #[must_use]
    pub fn diameter(&self) -> u32 {
        trigrid::region::diameter(&self.nodes)
    }

    /// The canonical representative of this configuration's translation
    /// class (robots agree on axes, so executions are invariant exactly
    /// under translation).
    #[must_use]
    pub fn canonical(&self) -> Configuration {
        Configuration { nodes: polyhex::canonical_translation(&self.nodes) }
    }

    /// The packed translation-class key: equal for two configurations
    /// **iff** they are translates of each other. Allocation-free — the
    /// nodes are already stored in row-major order and translation
    /// preserves that order, so the key folds directly off the stored
    /// slice without materializing [`Self::canonical`].
    ///
    /// # Panics
    /// Panics if the configuration holds more than
    /// [`PackedClass::MAX_ROBOTS`] robots or exceeds the packable
    /// diameter window (see [`PackedClass`]).
    #[must_use]
    pub fn canonical_key(&self) -> PackedClass {
        assert!(
            self.nodes.len() <= PackedClass::MAX_ROBOTS,
            "packed keys hold at most {} robots",
            PackedClass::MAX_ROBOTS
        );
        PackedClass::of_sorted(&self.nodes)
    }

    /// Like [`Self::canonical_key`], returning `None` instead of
    /// panicking when the configuration does not fit the packed window
    /// (more than [`PackedClass::MAX_ROBOTS`] robots, or a diameter
    /// beyond it). [`crate::visited::ClassMap`] uses this to fall back
    /// to unpacked keys, so the shared memoization utilities keep
    /// their full historical domain.
    #[must_use]
    pub fn try_canonical_key(&self) -> Option<PackedClass> {
        PackedClass::try_of_sorted(&self.nodes)
    }

    /// Packs this configuration's translation class — identical to
    /// [`Self::canonical_key`]; on a canonical configuration it is a
    /// pure re-encoding, so `cfg.canonical_key() == cfg.canonical().pack()`
    /// and `canonical.pack().unpack() == canonical` (the proptests in
    /// `tests/packed_class.rs` pin both).
    #[must_use]
    pub fn pack(&self) -> PackedClass {
        self.canonical_key()
    }

    /// Translates every robot by `delta`.
    #[must_use]
    pub fn translate(&self, delta: Coord) -> Configuration {
        Configuration::new(self.nodes.iter().map(|&c| c + delta))
    }

    /// Applies per-robot moves (aligned with [`Self::positions`]) without
    /// any collision checking; used by the engine after validation.
    #[must_use]
    pub(crate) fn apply_unchecked(&self, moves: &[Option<Dir>]) -> Configuration {
        debug_assert_eq!(moves.len(), self.nodes.len());
        Configuration::new(self.nodes.iter().zip(moves).map(|(&c, m)| m.map_or(c, |d| c.step(d))))
    }
}

impl fmt::Debug for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Configuration{:?}", self.nodes)
    }
}

impl FromIterator<Coord> for Configuration {
    fn from_iter<I: IntoIterator<Item = Coord>>(iter: I) -> Self {
        Configuration::new(iter)
    }
}

/// The gathering-achieved configuration for seven robots centred at `c`.
#[must_use]
pub fn hexagon(center: Coord) -> Configuration {
    Configuration::new(trigrid::region::disk(center, 1))
}

/// Number of nodes in a closed radius-`r` ball of the triangular grid:
/// `1 + 3r(r+1)` (1, 7, 19, 37, …).
#[must_use]
pub const fn ball_capacity(r: u32) -> usize {
    1 + 3 * (r as usize) * (r as usize + 1)
}

/// The smallest radius `r` such that a closed radius-`r` ball holds `n`
/// nodes — the tightest cluster `n` robots can possibly form, and hence
/// the n-aware gathering radius (`0` for `n ≤ 1`, `1` for `n ≤ 7`, `2`
/// for `n ≤ 19`, …). See DESIGN.md §14 for the soundness argument.
#[must_use]
pub fn min_gather_radius(n: usize) -> u32 {
    let mut r = 0;
    while ball_capacity(r) < n {
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::ORIGIN;

    fn line(n: i32) -> Configuration {
        Configuration::new((0..n).map(|i| Coord::new(2 * i, 0)))
    }

    #[test]
    fn construction_sorts_rowmajor() {
        let c = Configuration::new([Coord::new(2, 0), Coord::new(0, 0), Coord::new(1, 1)]);
        assert_eq!(c.positions(), &[Coord::new(0, 0), Coord::new(2, 0), Coord::new(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate robot positions")]
    fn duplicates_rejected() {
        let _ = Configuration::new([ORIGIN, ORIGIN]);
    }

    #[test]
    fn contains_and_len() {
        let c = line(7);
        assert_eq!(c.len(), 7);
        assert!(c.contains(Coord::new(6, 0)));
        assert!(!c.contains(Coord::new(1, 1)));
        assert!(!c.is_empty());
        assert!(Configuration::new([]).is_empty());
    }

    #[test]
    fn hexagon_is_gathered() {
        let h = hexagon(Coord::new(4, 2));
        assert!(h.is_gathered());
        assert_eq!(h.gathered_center(), Some(Coord::new(4, 2)));
        assert_eq!(h.diameter(), 2);
    }

    #[test]
    fn line_is_connected_but_not_gathered() {
        let c = line(7);
        assert!(c.is_connected());
        assert!(!c.is_gathered());
        assert_eq!(c.gathered_center(), None);
        assert_eq!(c.diameter(), 6);
    }

    #[test]
    fn six_robot_hexagon_ring_gathers_for_its_count() {
        // A hollow hexagon is not the seven-robot goal (no robot has
        // six robot neighbours, so there is no gathered centre), but as
        // a 6-robot configuration it fits one closed radius-1 ball —
        // the tightest cluster six robots can form — so the n-aware
        // predicate accepts it.
        let ring = Configuration::new(trigrid::region::ring(ORIGIN, 1));
        assert_eq!(ring.gathered_center(), None);
        assert!(ring.is_gathered());
    }

    #[test]
    fn eight_robots_gather_within_a_radius_two_ball() {
        // min_gather_radius(8) = 2: a full hexagon plus a pendant robot
        // still fits one closed radius-2 ball, so it is gathered for
        // n = 8 even though no radius-1 ball can hold eight robots.
        let mut nodes = trigrid::region::disk(ORIGIN, 1);
        nodes.push(Coord::new(4, 0));
        let c = Configuration::new(nodes);
        assert_eq!(c.len(), 8);
        assert!(c.is_gathered());
        // A straight eight-robot line has diameter 7 > 2·2: not gathered.
        assert!(!line(8).is_gathered());
    }

    #[test]
    fn min_gather_radius_matches_ball_capacities() {
        assert_eq!(ball_capacity(0), 1);
        assert_eq!(ball_capacity(1), 7);
        assert_eq!(ball_capacity(2), 19);
        assert_eq!(min_gather_radius(1), 0);
        assert_eq!(min_gather_radius(2), 1);
        assert_eq!(min_gather_radius(7), 1);
        assert_eq!(min_gather_radius(8), 2);
        assert_eq!(min_gather_radius(10), 2);
        assert_eq!(min_gather_radius(19), 2);
        assert_eq!(min_gather_radius(20), 3);
        // The predicate agrees with the radius: n robots packed as a
        // ball prefix are always gathered.
        for n in 1..=10 {
            let r = min_gather_radius(n);
            let ball = trigrid::region::disk(ORIGIN, r);
            let c = Configuration::new(ball.into_iter().take(n));
            assert!(c.is_gathered(), "{n} robots in a radius-{r} ball prefix");
        }
    }

    #[test]
    fn canonical_identifies_translates() {
        let a = line(7);
        let b = a.translate(Coord::new(5, 3));
        assert_ne!(a, b);
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn occupied_neighbors_counts() {
        let h = hexagon(ORIGIN);
        assert_eq!(h.occupied_neighbors(ORIGIN), 6);
        assert_eq!(h.occupied_neighbors(Coord::new(2, 0)), 3);
        assert_eq!(h.occupied_neighbors(Coord::new(4, 0)), 1);
    }

    #[test]
    fn apply_unchecked_moves() {
        let c = line(2);
        let moved = c.apply_unchecked(&[None, Some(Dir::E)]);
        assert_eq!(moved, Configuration::new([ORIGIN, Coord::new(4, 0)]));
    }

    #[test]
    fn disconnected_detection() {
        let c = Configuration::new([ORIGIN, Coord::new(10, 0)]);
        assert!(!c.is_connected());
    }

    #[test]
    fn packed_key_identifies_translates_and_roundtrips() {
        let a = line(7);
        let b = a.translate(Coord::new(-7, 3));
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.canonical_key(), a.canonical().pack());
        assert_eq!(a.canonical_key().unpack(), a.canonical());
        assert_eq!(a.canonical_key().robots(), 7);
        let h = hexagon(Coord::new(6, 2));
        assert_ne!(h.canonical_key(), a.canonical_key());
        assert_eq!(h.canonical_key().unpack(), h.canonical());
    }

    #[test]
    fn packed_key_of_cells_matches_configuration_path() {
        let cells = [Coord::new(3, 1), Coord::new(0, 0), Coord::new(2, 0)];
        let via_cfg = Configuration::new(cells).canonical_key();
        assert_eq!(PackedClass::of_cells(&cells), via_cfg);
        assert_eq!(PackedClass::of_cells(&[]), Configuration::new([]).canonical_key());
        assert_eq!(PackedClass::of_cells(&[]).robots(), 0);
    }

    #[test]
    fn packed_key_covers_negative_x_offsets() {
        // The row-major minimum is the *lowest row*, so upper rows may
        // extend to its west: x offsets are signed.
        let c = Configuration::new([ORIGIN, Coord::new(-5, 1), Coord::new(-3, 1)]);
        assert_eq!(c.canonical_key().unpack(), c.canonical());
    }

    #[test]
    #[should_panic(expected = "packable diameter window")]
    fn packed_key_rejects_configurations_beyond_the_window() {
        let _ = Configuration::new([ORIGIN, Coord::new(200, 0)]).canonical_key();
    }

    #[test]
    #[should_panic(expected = "at most 10 robots")]
    fn packed_key_rejects_eleven_robots() {
        let _ = Configuration::new((0..11).map(|i| Coord::new(2 * i, 0))).canonical_key();
    }

    #[test]
    fn packed_key_holds_nine_and_ten_robots() {
        for n in [9, 10] {
            let c = Configuration::new((0..n).map(|i| Coord::new(2 * i, 0)));
            assert_eq!(c.canonical_key().robots(), n as usize);
            assert_eq!(c.canonical_key().unpack(), c.canonical());
        }
    }

    #[test]
    fn try_of_cells_reports_typed_capacity_errors() {
        let eleven: Vec<Coord> = (0..11).map(|i| Coord::new(2 * i, 0)).collect();
        assert_eq!(
            PackedClass::try_of_cells(&eleven),
            Err(CapacityError::TooManyRobots { robots: 11, max: PackedClass::MAX_ROBOTS })
        );
        assert_eq!(
            PackedClass::try_of_cells(&[ORIGIN, Coord::new(200, 0)]),
            Err(CapacityError::WindowExceeded)
        );
        let ok = PackedClass::try_of_cells(&[ORIGIN, Coord::new(2, 0)]).expect("fits");
        assert_eq!(ok.robots(), 2);
        assert_eq!(
            PackedPending::try_of_slots(&[None; 11]),
            Err(CapacityError::TooManyRobots { robots: 11, max: PackedClass::MAX_ROBOTS })
        );
    }

    #[test]
    fn packed_pending_round_trips_and_permutes() {
        let slots = [None, Some(Dir::E), None, Some(Dir::W), Some(Dir::NE)];
        let packed = PackedPending::of_slots(&slots);
        for (i, &p) in slots.iter().enumerate() {
            assert_eq!(packed.get(i), p, "slot {i}");
        }
        assert!(!packed.is_idle());
        assert!(PackedPending::IDLE.is_idle());
        assert_eq!(packed.with(1, None).with(3, None).with(4, None), PackedPending::IDLE);
        // Rotate the five slots by one: slot i's pending lands at i+1.
        let rotated = packed.permute(5, |i| (i + 1) % 5);
        assert_eq!(rotated.get(2), Some(Dir::E));
        assert_eq!(rotated.get(4), Some(Dir::W));
        assert_eq!(rotated.get(0), Some(Dir::NE));
        assert_eq!(rotated.get(1), None);
    }

    #[test]
    #[should_panic(expected = "exceed the packed-key capacity")]
    fn packed_pending_rejects_eleven_slots() {
        let _ = PackedPending::of_slots(&[None; 11]);
    }
}
