//! Robot configurations: anonymous sets of occupied nodes.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use trigrid::{path, Coord, Dir};

/// A configuration of anonymous robots: the set of *robot nodes*
/// (paper §II-A). Stored sorted in [`polyhex::key`] (row-major) order,
/// with no duplicates — several robots on one node would already be a
/// collision, so the type forbids it.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    nodes: Vec<Coord>,
}

impl Configuration {
    /// Builds a configuration from arbitrary positions.
    ///
    /// # Panics
    /// Panics if two positions coincide (a multiplicity would be a
    /// collision by Definition 1).
    #[must_use]
    pub fn new<I: IntoIterator<Item = Coord>>(positions: I) -> Self {
        let mut nodes: Vec<Coord> = positions.into_iter().collect();
        nodes.sort_by_key(|c| polyhex::key(*c));
        let before = nodes.len();
        nodes.dedup();
        assert_eq!(before, nodes.len(), "duplicate robot positions are a collision");
        Self { nodes }
    }

    /// The occupied nodes, sorted in row-major order.
    #[must_use]
    pub fn positions(&self) -> &[Coord] {
        &self.nodes
    }

    /// Number of robots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no robots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `c` is a robot node.
    #[must_use]
    pub fn contains(&self, c: Coord) -> bool {
        self.nodes.binary_search_by_key(&polyhex::key(c), |n| polyhex::key(*n)).is_ok()
    }

    /// The occupied nodes as a hash set.
    #[must_use]
    pub fn to_set(&self) -> HashSet<Coord> {
        self.nodes.iter().copied().collect()
    }

    /// Whether the subgraph induced by the robot nodes is connected
    /// (the paper's standing assumption on initial configurations).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        path::is_connected(&self.nodes)
    }

    /// The number of robot neighbours of `c`.
    #[must_use]
    pub fn occupied_neighbors(&self, c: Coord) -> usize {
        c.neighbors().into_iter().filter(|n| self.contains(*n)).count()
    }

    /// For seven robots, gathering is achieved when one robot has six
    /// adjacent robot nodes (paper Fig. 1); this returns that centre if
    /// it exists.
    #[must_use]
    pub fn gathered_center(&self) -> Option<Coord> {
        self.nodes.iter().copied().find(|&c| self.occupied_neighbors(c) == 6)
    }

    /// Whether this is a gathering-achieved configuration for seven
    /// robots: exactly seven robots forming a filled hexagon.
    #[must_use]
    pub fn is_gathered(&self) -> bool {
        self.len() == 7 && self.gathered_center().is_some()
    }

    /// Maximum pairwise distance between robot nodes.
    #[must_use]
    pub fn diameter(&self) -> u32 {
        trigrid::region::diameter(&self.nodes)
    }

    /// The canonical representative of this configuration's translation
    /// class (robots agree on axes, so executions are invariant exactly
    /// under translation).
    #[must_use]
    pub fn canonical(&self) -> Configuration {
        Configuration { nodes: polyhex::canonical_translation(&self.nodes) }
    }

    /// Translates every robot by `delta`.
    #[must_use]
    pub fn translate(&self, delta: Coord) -> Configuration {
        Configuration::new(self.nodes.iter().map(|&c| c + delta))
    }

    /// Applies per-robot moves (aligned with [`Self::positions`]) without
    /// any collision checking; used by the engine after validation.
    #[must_use]
    pub(crate) fn apply_unchecked(&self, moves: &[Option<Dir>]) -> Configuration {
        debug_assert_eq!(moves.len(), self.nodes.len());
        Configuration::new(self.nodes.iter().zip(moves).map(|(&c, m)| m.map_or(c, |d| c.step(d))))
    }
}

impl fmt::Debug for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Configuration{:?}", self.nodes)
    }
}

impl FromIterator<Coord> for Configuration {
    fn from_iter<I: IntoIterator<Item = Coord>>(iter: I) -> Self {
        Configuration::new(iter)
    }
}

/// The gathering-achieved configuration for seven robots centred at `c`.
#[must_use]
pub fn hexagon(center: Coord) -> Configuration {
    Configuration::new(trigrid::region::disk(center, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigrid::ORIGIN;

    fn line(n: i32) -> Configuration {
        Configuration::new((0..n).map(|i| Coord::new(2 * i, 0)))
    }

    #[test]
    fn construction_sorts_rowmajor() {
        let c = Configuration::new([Coord::new(2, 0), Coord::new(0, 0), Coord::new(1, 1)]);
        assert_eq!(c.positions(), &[Coord::new(0, 0), Coord::new(2, 0), Coord::new(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate robot positions")]
    fn duplicates_rejected() {
        let _ = Configuration::new([ORIGIN, ORIGIN]);
    }

    #[test]
    fn contains_and_len() {
        let c = line(7);
        assert_eq!(c.len(), 7);
        assert!(c.contains(Coord::new(6, 0)));
        assert!(!c.contains(Coord::new(1, 1)));
        assert!(!c.is_empty());
        assert!(Configuration::new([]).is_empty());
    }

    #[test]
    fn hexagon_is_gathered() {
        let h = hexagon(Coord::new(4, 2));
        assert!(h.is_gathered());
        assert_eq!(h.gathered_center(), Some(Coord::new(4, 2)));
        assert_eq!(h.diameter(), 2);
    }

    #[test]
    fn line_is_connected_but_not_gathered() {
        let c = line(7);
        assert!(c.is_connected());
        assert!(!c.is_gathered());
        assert_eq!(c.gathered_center(), None);
        assert_eq!(c.diameter(), 6);
    }

    #[test]
    fn six_robot_hexagon_ring_is_not_gathered() {
        // A hollow hexagon (no centre robot) must not count as gathered:
        // no robot has six robot neighbours, and there are only 6 robots.
        let ring = Configuration::new(trigrid::region::ring(ORIGIN, 1));
        assert!(!ring.is_gathered());
    }

    #[test]
    fn eight_robots_never_gathered_by_this_predicate() {
        let mut nodes = trigrid::region::disk(ORIGIN, 1);
        nodes.push(Coord::new(4, 0));
        let c = Configuration::new(nodes);
        assert_eq!(c.len(), 8);
        assert!(!c.is_gathered(), "is_gathered is specific to seven robots");
        assert!(c.gathered_center().is_some());
    }

    #[test]
    fn canonical_identifies_translates() {
        let a = line(7);
        let b = a.translate(Coord::new(5, 3));
        assert_ne!(a, b);
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn occupied_neighbors_counts() {
        let h = hexagon(ORIGIN);
        assert_eq!(h.occupied_neighbors(ORIGIN), 6);
        assert_eq!(h.occupied_neighbors(Coord::new(2, 0)), 3);
        assert_eq!(h.occupied_neighbors(Coord::new(4, 0)), 1);
    }

    #[test]
    fn apply_unchecked_moves() {
        let c = line(2);
        let moved = c.apply_unchecked(&[None, Some(Dir::E)]);
        assert_eq!(moved, Configuration::new([ORIGIN, Coord::new(4, 0)]));
    }

    #[test]
    fn disconnected_detection() {
        let c = Configuration::new([ORIGIN, Coord::new(10, 0)]);
        assert!(!c.is_connected());
    }
}
