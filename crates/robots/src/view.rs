//! Robot views: the sole input an algorithm may consult.

use crate::Configuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;
use trigrid::{region, Coord, Dir, ORIGIN};

/// Largest supported visibility radius.
pub const MAX_RADIUS: u32 = 4;

/// The fixed label ordering for a given radius: all nodes of the disk of
/// that radius around the origin except the origin itself, ring by ring,
/// each ring counter-clockwise from due east. For radius 1 this is
/// exactly `Dir::ALL` order (E, NE, NW, W, SW, SE); for radius 2 the
/// first six entries are the inner ring and the next twelve the outer
/// ring starting at label `(4,0)` — the labels of the paper's Fig. 48.
#[must_use]
pub fn labels(radius: u32) -> &'static [Coord] {
    static CACHE: OnceLock<Vec<Vec<Coord>>> = OnceLock::new();
    let all = CACHE.get_or_init(|| {
        (0..=MAX_RADIUS).map(|r| region::disk(ORIGIN, r).into_iter().skip(1).collect()).collect()
    });
    &all[radius as usize]
}

/// Index of `label` in [`labels`]`(radius)`, if it is within range.
#[must_use]
pub fn label_index(radius: u32, label: Coord) -> Option<usize> {
    labels(radius).iter().position(|&c| c == label)
}

/// Number of labels of the given radius — the bit width of
/// [`View::bits`], and thus the size of the view space `2^label_count`
/// that [`crate::MoveOracle`] memoizes over.
#[must_use]
pub fn label_count(radius: u32) -> usize {
    labels(radius).len()
}

/// What one robot sees: the occupancy of every node within its
/// visibility range, as relative *labels* (paper Fig. 48 assigns them
/// with the observer at the origin). Robots are transparent, so the view
/// is complete within the range.
///
/// A `View` deliberately carries no absolute position, no robot
/// identities and no history: an [`crate::Algorithm`] can use nothing
/// else.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct View {
    radius: u32,
    bits: u64,
}

impl View {
    /// Observes the configuration from `center` (which must be a robot
    /// node) with the given visibility radius.
    ///
    /// # Panics
    /// Panics if `center` is not occupied or `radius > MAX_RADIUS`.
    #[must_use]
    pub fn observe(config: &Configuration, center: Coord, radius: u32) -> View {
        assert!(config.contains(center), "the observer must be a robot node");
        let mut bits = 0u64;
        for (i, &label) in labels(radius).iter().enumerate() {
            if config.contains(center + label) {
                bits |= 1 << i;
            }
        }
        View { radius, bits }
    }

    /// Builds a view directly from a bitmask (bit `i` = occupancy of
    /// [`labels`]`(radius)[i]`).
    ///
    /// # Panics
    /// Panics if bits outside the label range are set.
    #[must_use]
    pub fn from_bits(radius: u32, bits: u64) -> View {
        let n = labels(radius).len();
        assert!(
            n == 64 || bits < (1u64 << n),
            "bitmask has bits beyond the {n} labels of radius {radius}"
        );
        View { radius, bits }
    }

    /// Builds a view from the list of occupied labels.
    ///
    /// # Panics
    /// Panics if a label is out of range (distance 0 or > radius).
    #[must_use]
    pub fn from_labels(radius: u32, occupied: &[Coord]) -> View {
        let mut bits = 0u64;
        for &l in occupied {
            let i = label_index(radius, l)
                .unwrap_or_else(|| panic!("label {l} out of range for radius {radius}"));
            bits |= 1 << i;
        }
        View { radius, bits }
    }

    /// The visibility radius.
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The raw occupancy bitmask.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Whether the node at relative `label` is a robot node. The
    /// observer's own node `(0,0)` reports `true` (the observer is a
    /// robot).
    ///
    /// # Panics
    /// Panics if the label is beyond the visibility radius — algorithms
    /// must not consult nodes they cannot see.
    #[must_use]
    pub fn is_robot(&self, label: Coord) -> bool {
        if label == ORIGIN {
            return true;
        }
        let i = label_index(self.radius, label)
            .unwrap_or_else(|| panic!("label {label} is beyond visibility radius {}", self.radius));
        self.bits & (1 << i) != 0
    }

    /// Whether the node at relative `label` is empty (complement of
    /// [`Self::is_robot`]).
    #[must_use]
    pub fn is_empty_node(&self, label: Coord) -> bool {
        !self.is_robot(label)
    }

    /// Convenience: whether the *adjacent* node in direction `d` is a
    /// robot node.
    #[must_use]
    pub fn neighbor(&self, d: Dir) -> bool {
        self.bits & (1 << d.index()) != 0
    }

    /// Number of robot nodes in view (excluding the observer).
    #[must_use]
    pub fn robot_count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// The occupied labels, in label order (excluding the observer).
    pub fn robot_labels(&self) -> impl Iterator<Item = Coord> + '_ {
        labels(self.radius)
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.bits & (1 << i) != 0)
            .map(|(_, &c)| c)
    }

    /// The view reflected across the x-axis (used for the mirror
    /// arguments of the Theorem 1 proof and for symmetry tests).
    #[must_use]
    pub fn mirror_x(&self) -> View {
        let occupied: Vec<Coord> = self.robot_labels().map(trigrid::transform::mirror_x).collect();
        View::from_labels(self.radius, &occupied)
    }

    /// The view rotated by `k * 60°` counter-clockwise.
    #[must_use]
    pub fn rotate_ccw(&self, k: usize) -> View {
        let occupied: Vec<Coord> =
            self.robot_labels().map(|c| trigrid::transform::rotate_ccw(c, k)).collect();
        View::from_labels(self.radius, &occupied)
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "View(r={}, robots=[", self.radius)?;
        for (k, c) in self.robot_labels().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_radius1_matches_dir_order() {
        assert_eq!(labels(1), &Dir::ALL.map(|d| d.delta())[..]);
    }

    #[test]
    fn label_counts_per_radius() {
        assert_eq!(label_count(1), 6);
        assert_eq!(label_count(2), 18);
        assert_eq!(label_count(0), 0);
    }

    #[test]
    fn label_order_radius2_matches_fig48() {
        let l = labels(2);
        assert_eq!(l.len(), 18);
        assert_eq!(&l[..6], &Dir::ALL.map(|d| d.delta())[..]);
        assert_eq!(l[6], Coord::new(4, 0));
        assert_eq!(l[7], Coord::new(3, 1));
        assert_eq!(l[8], Coord::new(2, 2));
        assert_eq!(l[17], Coord::new(3, -1));
    }

    #[test]
    fn observe_reads_occupancy() {
        let cfg = Configuration::new([ORIGIN, Coord::new(2, 0), Coord::new(3, 1)]);
        let v = View::observe(&cfg, ORIGIN, 2);
        assert!(v.is_robot(Coord::new(2, 0)));
        assert!(v.is_robot(Coord::new(3, 1)));
        assert!(v.is_empty_node(Coord::new(1, 1)));
        assert!(v.is_robot(ORIGIN), "observer sees itself");
        assert_eq!(v.robot_count(), 2);
    }

    #[test]
    fn observe_truncates_to_radius() {
        // Fig. 3 of the paper: with radius 1 only adjacent robots are
        // visible; radius 2 reveals more.
        let cfg = Configuration::new([ORIGIN, Coord::new(2, 0), Coord::new(4, 0)]);
        let v1 = View::observe(&cfg, ORIGIN, 1);
        assert_eq!(v1.robot_count(), 1);
        let v2 = View::observe(&cfg, ORIGIN, 2);
        assert_eq!(v2.robot_count(), 2);
        assert!(v2.is_robot(Coord::new(4, 0)));
    }

    #[test]
    #[should_panic(expected = "beyond visibility radius")]
    fn consulting_invisible_node_panics() {
        let cfg = Configuration::new([ORIGIN]);
        let v = View::observe(&cfg, ORIGIN, 1);
        let _ = v.is_robot(Coord::new(4, 0));
    }

    #[test]
    #[should_panic(expected = "observer must be a robot node")]
    fn observe_from_empty_node_panics() {
        let cfg = Configuration::new([Coord::new(2, 0)]);
        let _ = View::observe(&cfg, ORIGIN, 1);
    }

    #[test]
    fn neighbor_shortcut_matches_is_robot() {
        let cfg =
            Configuration::new([ORIGIN, Coord::new(1, 1), Coord::new(-1, -1), Coord::new(2, 0)]);
        let v = View::observe(&cfg, ORIGIN, 1);
        for d in Dir::ALL {
            assert_eq!(v.neighbor(d), v.is_robot(d.delta()), "{d:?}");
        }
    }

    #[test]
    fn from_labels_roundtrip() {
        let occupied = [Coord::new(2, 0), Coord::new(0, 2), Coord::new(-3, -1)];
        let v = View::from_labels(2, &occupied);
        let back: Vec<Coord> = v.robot_labels().collect();
        let mut expected = occupied.to_vec();
        expected.sort_by_key(|c| label_index(2, *c).unwrap());
        assert_eq!(back, expected);
    }

    #[test]
    fn bits_roundtrip_and_range_check() {
        let v = View::from_bits(1, 0b101010);
        assert_eq!(v.bits(), 0b101010);
        assert!(std::panic::catch_unwind(|| View::from_bits(1, 1 << 6)).is_err());
    }

    #[test]
    fn mirror_is_involution_and_maps_labels() {
        let v = View::from_labels(2, &[Coord::new(1, 1), Coord::new(3, -1)]);
        let m = v.mirror_x();
        assert!(m.is_robot(Coord::new(1, -1)));
        assert!(m.is_robot(Coord::new(3, 1)));
        assert_eq!(m.mirror_x(), v);
    }

    #[test]
    fn rotation_of_views() {
        let v = View::from_labels(2, &[Coord::new(2, 0)]);
        let r = v.rotate_ccw(1);
        assert!(r.is_robot(Coord::new(1, 1)));
        assert_eq!(v.rotate_ccw(6), v);
    }

    #[test]
    fn transparency_full_axis_visible() {
        // Robots are transparent (§II-A): a robot two east is visible
        // even with a robot one east in between.
        let cfg = Configuration::new([ORIGIN, Coord::new(2, 0), Coord::new(4, 0)]);
        let v = View::observe(&cfg, ORIGIN, 2);
        assert!(v.is_robot(Coord::new(2, 0)));
        assert!(v.is_robot(Coord::new(4, 0)));
    }
}
