//! The ASYNC (fully asynchronous) model.
//!
//! In ASYNC the adversary interleaves the *phases* of the robots'
//! Look-Compute-Move cycles: a robot may compute a move from a stale
//! snapshot and execute it much later, after the world has changed.
//! This module implements the standard discretisation: each tick the
//! adversary activates one robot; an idle robot performs Look+Compute
//! (capturing a pending decision from the *current* configuration), a
//! robot with a pending decision executes its (possibly outdated) move.
//!
//! The paper claims nothing about ASYNC (§V leaves even SSYNC open);
//! [`run_async`] exists to *measure* how the completed algorithm
//! degrades under maximal asynchrony (experiment E13).

use crate::engine::{Execution, Limits, Outcome};
use crate::{engine, Algorithm, Configuration, View};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trigrid::{Coord, Dir};

/// Chooses which robot's phase advances at each tick.
pub trait AsyncScheduler {
    /// Index (into the simulator's internal robot list) of the robot to
    /// activate at this tick. Must be `< n`.
    fn pick(&mut self, tick: usize, n: usize) -> usize;
}

/// Cycles through the robots in index order — every robot completes its
/// cycle in two consecutive activations (a "almost synchronous"
/// adversary).
pub struct RoundRobinAsync;

impl AsyncScheduler for RoundRobinAsync {
    fn pick(&mut self, tick: usize, n: usize) -> usize {
        tick % n
    }
}

/// Uniformly random activations (seeded): some robots run far ahead
/// while others sit on stale pending moves — the interesting adversary.
pub struct RandomAsync {
    rng: StdRng,
}

impl RandomAsync {
    /// Creates a seeded random ASYNC adversary.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomAsync { rng: StdRng::seed_from_u64(seed) }
    }
}

impl AsyncScheduler for RandomAsync {
    fn pick(&mut self, _tick: usize, n: usize) -> usize {
        self.rng.random_range(0..n)
    }
}

/// Runs `algo` under the ASYNC model. `limits.max_rounds` counts
/// *ticks* (single-robot phase advances).
///
/// Outcomes: [`Outcome::Gathered`]/[`Outcome::StuckFixpoint`] when no
/// robot has a pending move and a fresh Look would move nobody;
/// [`Outcome::Collision`] when a (stale) move lands on an occupied node;
/// [`Outcome::Disconnected`] when the adjacency graph splits;
/// [`Outcome::StepLimit`] otherwise. Livelock detection is unsound under
/// a non-deterministic adversary and is not attempted.
#[must_use]
pub fn run_async<A: Algorithm + ?Sized, S: AsyncScheduler>(
    initial: &Configuration,
    algo: &A,
    sched: &mut S,
    limits: Limits,
) -> Execution {
    // Internal robot identities (the algorithm itself never sees them).
    let mut positions: Vec<Coord> = initial.positions().to_vec();
    let mut pending: Vec<Option<Option<Dir>>> = vec![None; positions.len()];
    let radius = algo.radius();

    let finish = |positions: &[Coord], outcome: Outcome| Execution {
        initial: initial.clone(),
        final_config: Configuration::new(positions.iter().copied()),
        outcome,
        trace: None,
    };

    for tick in 0..limits.max_rounds {
        // Termination test: nothing pending, and a synchronous Look
        // would move nobody.
        if pending.iter().all(Option::is_none) {
            let cfg = Configuration::new(positions.iter().copied());
            let moves = engine::compute_moves(&cfg, algo);
            if moves.iter().all(Option::is_none) {
                let outcome = if cfg.is_gathered() {
                    Outcome::Gathered { rounds: tick }
                } else {
                    Outcome::StuckFixpoint { rounds: tick }
                };
                return finish(&positions, outcome);
            }
        }

        let i = sched.pick(tick, positions.len());
        match pending[i].take() {
            None => {
                // Look + Compute on the *current* configuration.
                let cfg = Configuration::new(positions.iter().copied());
                let view = View::observe(&cfg, positions[i], radius);
                pending[i] = Some(algo.compute(&view));
            }
            Some(None) => {} // a pending "stay" completes trivially
            Some(Some(d)) => {
                // Move with a possibly stale decision. A single mover
                // is a one-hot round: validation goes through the
                // engine's shared round-semantics implementation (the
                // only possible violation is a shared target — a swap
                // needs two movers).
                let cfg = Configuration::new(positions.iter().copied());
                let slot = cfg
                    .positions()
                    .iter()
                    .position(|&p| p == positions[i])
                    .expect("the robot occupies its own node");
                let mut moves = vec![None; cfg.len()];
                moves[slot] = Some(d);
                if let Err(collision) = engine::step_moves(&cfg, &moves) {
                    return finish(&positions, Outcome::Collision { round: tick, collision });
                }
                positions[i] = positions[i].step(d);
                let cfg = Configuration::new(positions.iter().copied());
                if !cfg.is_connected() {
                    return finish(&positions, Outcome::Disconnected { round: tick });
                }
            }
        }
    }
    finish(&positions, Outcome::StepLimit { rounds: limits.max_rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, StayAlgorithm};
    use trigrid::ORIGIN;

    #[test]
    fn hexagon_is_an_async_fixpoint() {
        let h = crate::config::hexagon(ORIGIN);
        let ex = run_async(&h, &StayAlgorithm, &mut RoundRobinAsync, Limits::default());
        assert_eq!(ex.outcome, Outcome::Gathered { rounds: 0 });
    }

    #[test]
    fn stale_moves_can_collide() {
        // Robot A computes "move east into the empty node"; before A
        // executes, robot B fills that node; A's stale move collides.
        // Craft with a rule that moves a robot east when its east node is
        // empty and it has a west neighbour; three in a line: the middle
        // computes first, then the west robot computes+moves twice…
        // simplest deterministic check: under round-robin the semantics
        // still serialise, so use a custom scheduler that interleaves.
        let follow =
            FnAlgorithm::new(1, "march", |v: &View| (!v.neighbor(Dir::E)).then_some(Dir::E));
        struct Interleave;
        impl AsyncScheduler for Interleave {
            fn pick(&mut self, tick: usize, _n: usize) -> usize {
                // Robot 1 looks; robot 0 looks; robot 0 moves; robot 1
                // moves (stale).
                [1, 0, 0, 1, 0, 1][tick % 6]
            }
        }
        // Two robots: (0,0) behind (2,0). Robot 1 = (2,0) (row-major
        // sorted order puts (0,0) first). Robot 1 pends "E" (sees empty
        // east); robot 0 pends "stay"? (0,0) has east neighbour -> stays.
        // Use a spread pair so both move east: (0,0) and (4,0) —
        // disconnected though. Use three: (0,0),(2,0),(4,0): robot 2 at
        // (4,0) pends E; robot 1 at (2,0) pends stay (east neighbour);
        // robot 0 stays. No collision... Make the leader slow: leader
        // (4,0) looks (pends E to (6,0)); follower? No one enters (6,0).
        // Simplest real collision: rule "move east always".
        let march = FnAlgorithm::new(1, "always-east", |_: &View| Some(Dir::E));
        struct LeaderLast;
        impl AsyncScheduler for LeaderLast {
            fn pick(&mut self, tick: usize, _n: usize) -> usize {
                // Robot 0 (west) looks, then moves into robot 1's node
                // while robot 1 never moved.
                [0, 0][tick % 2]
            }
        }
        let two = Configuration::new([ORIGIN, Coord::new(2, 0)]);
        let ex = run_async(&two, &march, &mut LeaderLast, Limits::default());
        assert!(
            matches!(ex.outcome, Outcome::Collision { .. }),
            "west robot walks onto the never-activated east robot: {:?}",
            ex.outcome
        );
        let _ = (follow, Interleave);
    }

    #[test]
    fn round_robin_async_executes_trains_safely() {
        // march-east under round-robin: look,look .. move,move order per
        // pair of passes; the east robot moves first within each move
        // pass (index order is row-major), so the train never collides…
        // actually index 0 is the westmost: it moves first onto the east
        // robot's still-occupied node. Expect a collision — ASYNC breaks
        // even simple trains, which is the point of the model.
        let march = FnAlgorithm::new(1, "always-east", |_: &View| Some(Dir::E));
        let two = Configuration::new([ORIGIN, Coord::new(2, 0)]);
        let ex = run_async(&two, &march, &mut RoundRobinAsync, Limits::default());
        assert!(matches!(
            ex.outcome,
            Outcome::Collision { .. } | Outcome::StepLimit { .. } | Outcome::Disconnected { .. }
        ));
    }

    #[test]
    fn random_async_is_reproducible() {
        let march = FnAlgorithm::new(1, "always-east", |_: &View| Some(Dir::E));
        let lone = Configuration::new([ORIGIN]);
        let limits = Limits { max_rounds: 11, detect_livelock: false };
        let a = run_async(&lone, &march, &mut RandomAsync::new(5), limits);
        let b = run_async(&lone, &march, &mut RandomAsync::new(5), limits);
        assert_eq!(a.final_config, b.final_config);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn pending_stay_completes_without_effect() {
        let h = crate::config::hexagon(ORIGIN);
        let mut sched = RoundRobinAsync;
        let ex = run_async(&h, &StayAlgorithm, &mut sched, Limits::default());
        assert_eq!(ex.final_config, h);
    }
}
