//! The ASYNC (fully asynchronous) model: semantics, exhaustive model
//! checker, and scheduled walks.
//!
//! In ASYNC the adversary interleaves the *phases* of the robots'
//! Look-Compute-Move cycles: a robot may compute a move from a stale
//! snapshot and execute it much later, after the world has changed.
//! This module implements the standard interleaving discretisation —
//! each tick the adversary advances exactly one robot's phase: an idle
//! robot performs Look+Compute (capturing a pending decision from the
//! *current* configuration), a robot with a pending decision executes
//! its (possibly outdated) move. A robot whose fresh decision is *stay*
//! completes its whole cycle with no effect, so the discretisation
//! collapses look-then-stay into a single no-op (DESIGN.md §13 argues
//! why this loses no adversary behaviour).
//!
//! The paper claims nothing about ASYNC (§V leaves even SSYNC open).
//! Historically this module could only *sample* the model with a
//! seeded random scheduler; it is now an instantiation of the generic
//! exploration layer: [`AsyncSemantics`] plugs the phase-advance
//! transition system into [`robots::explore`](crate::explore), and
//! [`AsyncChecker`] classifies an initial class as **async-proof**
//! (every fair phase interleaving gathers), **refuted** (with a minimal
//! replayable tick schedule) or **undecided** at the fair-cycle search
//! depth. States are `(canonical class, packed pending vector)` — see
//! [`PackedPending`] — actions are single-robot phase advances, and
//! every walk (the explorer's, [`run_async`]'s, and the replayer's)
//! steps through the one [`advance_phase`] successor function.
//!
//! Fairness in ASYNC means every robot's phase advances infinitely
//! often (every robot completes infinitely many LCM cycles); the
//! fair-cycle certificates of the explorer encode exactly that, with
//! idle robots that are observed deciding to stay satisfiable for free.

use crate::config::{PackedClass, PackedPending};
use crate::engine::{self, Execution, Limits, Outcome, RoundCollision};
use crate::explore::{
    canonical_action, ClassInfo, CycleCert, ExploreOptions, Explorer, NodeKind, Search, Semantics,
};
use crate::sched::CrashRound;
use crate::{Algorithm, Configuration, View};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trigrid::transform::PointSymmetry;
use trigrid::Coord;

pub use crate::explore::{ExploreReport as AsyncReport, ExploreVerdict as AsyncVerdict};

/// Chooses which robot's phase advances at each tick.
pub trait AsyncScheduler {
    /// Index (into the stable internal robot list, *not* the row-major
    /// slot order) of the robot to activate at this tick. Must be `< n`.
    fn pick(&mut self, tick: usize, n: usize) -> usize;
}

/// Cycles through the robots in index order — every robot completes its
/// cycle in two consecutive activations (an "almost synchronous"
/// adversary).
pub struct RoundRobinAsync;

impl AsyncScheduler for RoundRobinAsync {
    fn pick(&mut self, tick: usize, n: usize) -> usize {
        tick % n
    }
}

/// Uniformly random activations (seeded): some robots run far ahead
/// while others sit on stale pending moves — the interesting adversary.
pub struct RandomAsync {
    rng: StdRng,
}

impl RandomAsync {
    /// Creates a seeded random ASYNC adversary.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomAsync { rng: StdRng::seed_from_u64(seed) }
    }
}

impl AsyncScheduler for RandomAsync {
    fn pick(&mut self, _tick: usize, n: usize) -> usize {
        self.rng.random_range(0..n)
    }
}

/// The effect of advancing one robot's LCM phase — the ASYNC model's
/// only adversary action, produced by [`advance_phase`].
pub enum PhaseAdvance {
    /// The robot was idle and its fresh decision is *stay*: the whole
    /// Look-Compute-Move cycle completes with no effect.
    Stayed,
    /// The robot was idle: Look+Compute captured a pending move from
    /// the current configuration.
    Looked(PackedPending),
    /// The robot executed its pending (possibly stale) move.
    Moved {
        /// The configuration after the move.
        config: Configuration,
        /// The surviving pendings, re-indexed to `config`'s row-major
        /// slots; the mover itself returns to idle.
        pending: PackedPending,
    },
}

/// Advances the phase of the robot in row-major slot `slot` of `cfg`
/// with pending state `pending`: the **single** successor function of
/// the ASYNC model, stepped through by the exhaustive checker
/// ([`AsyncSemantics`]), the simulator ([`run_async`]) and the
/// replayer ([`run_async_schedule`]) alike. Move execution validates
/// through the engine's shared round semantics
/// ([`engine::check_moves`]) — a one-hot round, whose only possible
/// violation is a shared target (a swap needs two movers).
///
/// # Errors
/// Returns the collision when the (stale) pending move lands on an
/// occupied node.
///
/// # Panics
/// Panics if `slot` is out of range or `cfg` holds more than
/// [`PackedClass::MAX_ROBOTS`] robots.
pub fn advance_phase<A: Algorithm + ?Sized>(
    cfg: &Configuration,
    pending: PackedPending,
    slot: usize,
    algo: &A,
) -> Result<PhaseAdvance, RoundCollision> {
    let n = cfg.len();
    assert!(
        n <= PackedClass::MAX_ROBOTS,
        "pending vectors hold at most {} robots",
        PackedClass::MAX_ROBOTS
    );
    assert!(slot < n, "slot {slot} out of range for {n} robots");
    match pending.get(slot) {
        None => {
            // Look + Compute on the *current* configuration.
            let p = cfg.positions()[slot];
            let view = View::observe(cfg, p, algo.radius());
            match algo.compute(&view) {
                None => Ok(PhaseAdvance::Stayed),
                Some(d) => Ok(PhaseAdvance::Looked(pending.with(slot, Some(d)))),
            }
        }
        Some(d) => {
            let mut moves = [None; PackedClass::MAX_ROBOTS];
            moves[slot] = Some(d);
            engine::check_moves(cfg, &moves[..n])?;
            let next = cfg.apply_unchecked(&moves[..n]);
            // Re-index the surviving pendings into the new row-major
            // slot order; stationary robots keep their coordinates.
            let mut remapped = PackedPending::IDLE;
            for (i, &p) in cfg.positions().iter().enumerate() {
                if i == slot {
                    continue; // the mover completes its cycle: idle
                }
                if let Some(dir) = pending.get(i) {
                    let j = next
                        .positions()
                        .iter()
                        .position(|&q| q == p)
                        .expect("stationary robots keep their nodes");
                    remapped = remapped.with(j, Some(dir));
                }
            }
            Ok(PhaseAdvance::Moved { config: next, pending: remapped })
        }
    }
}

/// Runs `algo` under the ASYNC model. `limits.max_rounds` counts
/// *ticks* (single-robot phase advances).
///
/// This is a thin scheduled walk over [`advance_phase`] — the same
/// successor function the exhaustive [`AsyncChecker`] explores.
/// Outcomes: [`Outcome::Gathered`]/[`Outcome::StuckFixpoint`] when no
/// robot has a pending move and a fresh Look would move nobody;
/// [`Outcome::Collision`] when a (stale) move lands on an occupied node;
/// [`Outcome::Disconnected`] when the adjacency graph splits;
/// [`Outcome::StepLimit`] otherwise. Livelock detection is unsound under
/// a non-deterministic adversary and is not attempted.
#[must_use]
pub fn run_async<A: Algorithm + ?Sized, S: AsyncScheduler>(
    initial: &Configuration,
    algo: &A,
    sched: &mut S,
    limits: Limits,
) -> Execution {
    // Stable robot identities for the scheduler (the algorithm itself
    // never sees them); slot indices are re-derived per tick.
    let mut positions: Vec<Coord> = initial.positions().to_vec();
    let mut cfg = initial.clone();
    let mut pending = PackedPending::IDLE;

    let finish = |cfg: Configuration, outcome: Outcome| Execution {
        initial: initial.clone(),
        final_config: cfg,
        outcome,
        trace: None,
    };

    for tick in 0..limits.max_rounds {
        // Termination test: nothing pending, and a synchronous Look
        // would move nobody.
        if pending.is_idle() {
            let moves = engine::compute_moves(&cfg, algo);
            if moves.iter().all(Option::is_none) {
                let outcome = if cfg.is_gathered() {
                    Outcome::Gathered { rounds: tick }
                } else {
                    Outcome::StuckFixpoint { rounds: tick }
                };
                return finish(cfg, outcome);
            }
        }

        let i = sched.pick(tick, positions.len());
        let slot = cfg
            .positions()
            .iter()
            .position(|&p| p == positions[i])
            .expect("the robot occupies its own node");
        match advance_phase(&cfg, pending, slot, algo) {
            Err(collision) => return finish(cfg, Outcome::Collision { round: tick, collision }),
            Ok(PhaseAdvance::Stayed) => {}
            Ok(PhaseAdvance::Looked(captured)) => pending = captured,
            Ok(PhaseAdvance::Moved { config, pending: remapped }) => {
                let d = pending.get(slot).expect("the robot moved from a pending slot");
                positions[i] = positions[i].step(d);
                cfg = config;
                pending = remapped;
                if !cfg.is_connected() {
                    return finish(cfg, Outcome::Disconnected { round: tick });
                }
            }
        }
    }
    finish(cfg, Outcome::StepLimit { rounds: limits.max_rounds })
}

/// The ASYNC instantiation of the exploration layer's [`Semantics`]:
/// states are `(canonical class, packed pending vector)`, actions are
/// single-robot phase advances (one-hot [`CrashRound::activate`]
/// masks, never a crash injection), and successors are
/// [`advance_phase`].
///
/// Idle robots whose fresh decision is *stay* offer no action — their
/// full LCM cycle is a no-effect self-loop, excluded from expansion
/// and granted to fairness for free in the cycle certificates, exactly
/// as the SSYNC checker treats observed-stay activations.
pub struct AsyncSemantics {
    /// Whether a terminal (all idle, nobody would move) counts as
    /// successful.
    goal: fn(&Configuration) -> bool,
}

impl AsyncSemantics {
    /// Builds the semantics with the given terminal goal predicate.
    #[must_use]
    pub fn new(goal: fn(&Configuration) -> bool) -> Self {
        AsyncSemantics { goal }
    }

    /// The paper's gathering goal ([`Configuration::is_gathered`]).
    #[must_use]
    pub fn gathering() -> Self {
        AsyncSemantics::new(Configuration::is_gathered)
    }
}

impl Semantics for AsyncSemantics {
    type Aux = PackedPending;

    fn root_aux(&self) -> PackedPending {
        PackedPending::IDLE
    }

    fn aux_bits(aux: PackedPending) -> u32 {
        aux.bits()
    }

    fn permute_aux(
        aux: PackedPending,
        n: usize,
        map: impl Fn(usize) -> usize,
        sym: PointSymmetry,
    ) -> PackedPending {
        // Pendings carry directions, so the symmetry acts on the
        // payload too: the robot mapped to slot `map(i)` holds the
        // *transformed* pending move.
        aux.permute_map(n, map, |d| sym.apply_dir(d))
    }

    fn classify(&self, cfg: &Configuration, info: &ClassInfo, aux: PackedPending) -> NodeKind {
        // A pending robot can always execute; an idle mover can always
        // look. Terminal = everyone idle and nobody would move.
        if aux.is_idle() && info.movers() == 0 {
            if (self.goal)(cfg) {
                NodeKind::Goal
            } else {
                NodeKind::Stuck
            }
        } else {
            NodeKind::Inner
        }
    }

    /// Expands the phase advance of every robot with an action: a
    /// pending robot executes its (possibly stale) move through
    /// [`advance_phase`]; an idle mover captures its decision. Rounds
    /// count *ticks* — every phase advance is one.
    fn expand<A: Algorithm + ?Sized>(
        &self,
        search: &mut Search<'_, '_, A, Self>,
        id: usize,
        queue: &mut Vec<u32>,
    ) -> Option<AsyncVerdict> {
        let (class, pending, rounds) = search.state(id);
        let info = search.info(class);
        let n = info.robots();
        let explorer = search.explorer();
        let perms = if explorer.group().len() > 1 {
            explorer.stabilizer_perms(search.class_cfg(class), pending)
        } else {
            Vec::new()
        };
        for slot in 0..n {
            let action = CrashRound { crash: 0, activate: 1 << slot };
            match pending.get(slot) {
                None => {
                    // Idle. A robot deciding to stay completes its
                    // whole cycle with no effect: a self-loop excluded
                    // from expansion (fairness gets it for free).
                    let Some(dir) = info.decision(slot) else { continue };
                    if !perms.is_empty() && canonical_action(action, &perms) != action {
                        search.bump_deduped();
                        continue;
                    }
                    search.bump_edges();
                    let captured = pending.with(slot, Some(dir));
                    let (succ, new) =
                        search.intern_variant(class, captured, rounds + 1, Some((id, action)));
                    debug_assert_ne!(
                        search.node_kind(succ),
                        NodeKind::Stuck,
                        "a pending state always has an action"
                    );
                    if new {
                        queue.push(succ as u32);
                    }
                    search.push_edge(id, action, succ);
                }
                Some(_) => {
                    if !perms.is_empty() && canonical_action(action, &perms) != action {
                        search.bump_deduped();
                        continue;
                    }
                    let cfg = search.class_cfg(class);
                    match advance_phase(cfg, pending, slot, explorer.oracle()) {
                        Err(collision) => {
                            let mut schedule = search.path_to(id);
                            schedule.push(action);
                            return Some(AsyncVerdict::Refuted {
                                schedule,
                                outcome: Outcome::Collision { round: rounds, collision },
                            });
                        }
                        Ok(PhaseAdvance::Moved { config: next, pending: remapped }) => {
                            search.bump_edges();
                            if !next.is_connected() {
                                let mut schedule = search.path_to(id);
                                schedule.push(action);
                                return Some(AsyncVerdict::Refuted {
                                    schedule,
                                    outcome: Outcome::Disconnected { round: rounds + 1 },
                                });
                            }
                            let (succ, new) = search.intern_state(
                                &next,
                                remapped,
                                rounds + 1,
                                Some((id, action)),
                            );
                            if new {
                                if search.node_kind(succ) == NodeKind::Stuck {
                                    let mut schedule = search.path_to(id);
                                    schedule.push(action);
                                    return Some(AsyncVerdict::Refuted {
                                        schedule,
                                        outcome: Outcome::StuckFixpoint { rounds: rounds + 1 },
                                    });
                                }
                                queue.push(succ as u32);
                            }
                            search.push_edge(id, action, succ);
                        }
                        Ok(_) => unreachable!("a pending robot always moves"),
                    }
                }
            }
            if search.over_budget() {
                return Some(search.budget_undecided());
            }
        }
        None
    }

    /// Traverses a closed state walk once. A role satisfies fairness
    /// when its phase advanced at least once during the traversal
    /// (finitely many phases ⇒ infinitely many completed cycles in the
    /// pumped run) or when it was idle at a state whose fresh decision
    /// for it is *stay* (it can run full no-effect cycles at will).
    fn traverse<A: Algorithm + ?Sized>(
        &self,
        search: &Search<'_, '_, A, Self>,
        start: usize,
        cycle: &[(CrashRound, usize)],
    ) -> CycleCert {
        search.traverse_roles(
            start,
            cycle,
            |_| {},
            |cur, action, walk| {
                debug_assert_eq!(action.crash, 0, "ASYNC actions never inject crashes");
                let slot = action.activate.trailing_zeros() as usize;
                let (cur_class, cur_aux, _) = search.state(cur);
                let info = search.info(cur_class);
                // Idle robots observed deciding to stay: fairness for free.
                for i in 0..walk.role_at.len() {
                    if cur_aux.get(i).is_none() && info.decision(i).is_none() {
                        walk.flags[walk.role_at[i]] = true;
                    }
                }
                match cur_aux.get(slot) {
                    None => {
                        // Look: the configuration (and slot order) is
                        // unchanged; the robot's phase advanced.
                        walk.flags[walk.role_at[slot]] = true;
                    }
                    Some(dir) => {
                        let role = walk.role_at[slot];
                        walk.pos[role] = walk.pos[role].step(dir);
                        walk.flags[role] = true;
                    }
                }
            },
        )
    }
}

/// Search parameters for [`AsyncChecker`].
#[derive(Clone, Copy, Debug)]
pub struct AsyncOptions {
    /// Budgets of the underlying explorer.
    pub explore: ExploreOptions,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions { explore: ExploreOptions::lcm_async() }
    }
}

impl AsyncOptions {
    /// Options with the given fair-cycle search depth.
    #[must_use]
    pub fn new(fair_depth: usize) -> Self {
        AsyncOptions { explore: ExploreOptions { fair_depth, ..ExploreOptions::lcm_async() } }
    }
}

/// An exhaustive ASYNC adversary checker for one algorithm: the
/// [`Explorer`] instantiated with [`AsyncSemantics`] and the paper's
/// gathering goal.
///
/// Construction computes the algorithm's equivariance subgroup once;
/// reuse one checker across many [`check`](AsyncChecker::check) calls.
pub struct AsyncChecker<'a, A: Algorithm + ?Sized> {
    explorer: Explorer<'a, A, AsyncSemantics>,
}

impl<'a, A: Algorithm + ?Sized> AsyncChecker<'a, A> {
    /// Builds a checker for `algo` with the given search options. The
    /// checker accepts configurations of up to 8 robots; use
    /// [`for_robots`](AsyncChecker::for_robots) for larger spaces.
    #[must_use]
    pub fn new(algo: &'a A, opts: AsyncOptions) -> Self {
        AsyncChecker {
            explorer: Explorer::with_semantics(algo, opts.explore, AsyncSemantics::gathering()),
        }
    }

    /// Builds a checker accepting configurations of up to `max_robots`
    /// robots (at most [`PackedClass::MAX_ROBOTS`]).
    ///
    /// # Panics
    /// Panics if `max_robots` exceeds the packed-key capacity.
    #[must_use]
    pub fn for_robots(algo: &'a A, opts: AsyncOptions, max_robots: usize) -> Self {
        AsyncChecker {
            explorer: Explorer::with_semantics_for_robots(
                algo,
                opts.explore,
                AsyncSemantics::gathering(),
                max_robots,
            ),
        }
    }

    /// The algorithm's equivariance subgroup.
    #[must_use]
    pub fn group(&self) -> &[PointSymmetry] {
        self.explorer.group()
    }

    /// Sets the within-class BFS fan-out width. Accepted for interface
    /// parity with the synchronous checkers; the ASYNC semantics
    /// expands serially regardless (its phase-interleaving successor
    /// generation is not yet side-effect-free), so this is a no-op
    /// beyond recording the preference.
    pub fn set_threads(&mut self, threads: usize) {
        self.explorer.set_threads(threads);
    }

    /// Arms (or clears) the cooperative per-class wall-clock deadline
    /// (see [`Explorer::set_class_timeout`]).
    pub fn set_class_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.explorer.set_class_timeout(timeout);
    }

    /// Arms (or clears) the deterministic per-class byte budget (see
    /// [`Explorer::set_mem_budget`]).
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.explorer.set_mem_budget(budget);
    }

    /// A point-in-time telemetry snapshot of the underlying explorer:
    /// phase wall times, memo hit rates, verdict tallies and BFS shape
    /// histograms (see [`Explorer::metrics_snapshot`]). Strictly
    /// out-of-band — verdicts and digests never depend on it.
    #[must_use]
    pub fn metrics_snapshot(&self) -> telemetry::Snapshot {
        self.explorer.metrics_snapshot()
    }

    /// Classifies `initial` under the exhaustive ASYNC phase-interleaving
    /// adversary.
    ///
    /// # Panics
    /// Panics if `initial` is disconnected or holds more robots than
    /// the checker was built for (8 by default; see
    /// [`for_robots`](AsyncChecker::for_robots)).
    #[must_use]
    pub fn check(&self, initial: &Configuration) -> AsyncReport {
        self.explorer.check(initial)
    }
}

/// The result of replaying an ASYNC tick schedule: the execution plus
/// the final pending vector.
#[derive(Clone, Debug)]
pub struct AsyncExecution {
    /// The replayed execution; `trace` is always recorded (one entry
    /// per *move* — look ticks do not change the configuration), and
    /// every entry is a canonical representative (see
    /// [`run_async_schedule`]).
    pub execution: Execution,
    /// The pending vector at the end, over the final configuration's
    /// row-major slots.
    pub pending: PackedPending,
}

/// Replays an ASYNC tick schedule through [`advance_phase`]. Each
/// recorded action advances the phase of the robot named by its one-hot
/// `activate` mask (row-major slot of the *current* configuration);
/// ticks beyond the schedule advance slots round-robin. Every applied
/// tick advances the round counter — matching the checker's
/// bookkeeping — and the walk steps through **canonical
/// representatives** (the initial configuration is canonicalised and
/// every move re-canonicalises): slot indexing is translation-invariant
/// so scheduling cannot observe the difference, and recorded collision
/// coordinates come out in exactly the frame the checker recorded them
/// in. The run terminates with
///
/// * [`Outcome::Gathered`] / [`Outcome::StuckFixpoint`] when every
///   robot is idle and a fresh Look would move nobody,
/// * [`Outcome::Collision`] / [`Outcome::Disconnected`] as in FSYNC,
/// * [`Outcome::StepLimit`] after `limits.max_rounds` ticks.
#[must_use]
pub fn run_async_schedule<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    schedule: &[CrashRound],
    limits: Limits,
) -> AsyncExecution {
    assert!(
        initial.len() <= PackedClass::MAX_ROBOTS,
        "pending vectors hold at most {} robots",
        PackedClass::MAX_ROBOTS
    );
    let mut cfg = initial.canonical();
    let mut pending = PackedPending::IDLE;
    let mut trace = vec![cfg.clone()];
    let mut rounds = 0usize;
    let mut next = 0usize;
    let outcome = loop {
        if pending.is_idle() {
            let moves = engine::compute_moves(&cfg, algo);
            if moves.iter().all(Option::is_none) {
                break if cfg.is_gathered() {
                    Outcome::Gathered { rounds }
                } else {
                    Outcome::StuckFixpoint { rounds }
                };
            }
        }
        if rounds >= limits.max_rounds {
            break Outcome::StepLimit { rounds: limits.max_rounds };
        }
        let slot = match schedule.get(next) {
            Some(action) => {
                debug_assert_eq!(action.crash, 0, "ASYNC schedules never inject crashes");
                debug_assert_eq!(action.activate.count_ones(), 1, "ASYNC actions are one-hot");
                action.activate.trailing_zeros() as usize
            }
            // Beyond the schedule: advance phases round-robin (fair).
            None => (next - schedule.len()) % cfg.len(),
        };
        next += 1;
        match advance_phase(&cfg, pending, slot, algo) {
            Err(collision) => break Outcome::Collision { round: rounds, collision },
            Ok(PhaseAdvance::Stayed) => rounds += 1,
            Ok(PhaseAdvance::Looked(captured)) => {
                pending = captured;
                rounds += 1;
            }
            Ok(PhaseAdvance::Moved { config, pending: remapped }) => {
                // Canonicalisation only translates, so the row-major
                // slot order (and thus `remapped`) is unaffected.
                cfg = config.canonical();
                pending = remapped;
                rounds += 1;
                trace.push(cfg.clone());
                if !cfg.is_connected() {
                    break Outcome::Disconnected { round: rounds };
                }
            }
        }
    };
    AsyncExecution {
        execution: Execution {
            initial: initial.clone(),
            final_config: cfg,
            outcome,
            trace: Some(trace),
        },
        pending,
    }
}

/// Replays an [`AsyncVerdict::Refuted`] schedule through
/// [`run_async_schedule`]; returns `None` for other verdicts. The
/// replayed execution must end with exactly the verdict's `outcome`.
#[must_use]
pub fn replay<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    verdict: &AsyncVerdict,
) -> Option<AsyncExecution> {
    let AsyncVerdict::Refuted { schedule, outcome } = verdict else {
        return None;
    };
    let max_rounds = match outcome {
        Outcome::StuckFixpoint { rounds } => rounds + 1,
        Outcome::StepLimit { rounds } => *rounds,
        Outcome::Collision { .. } | Outcome::Disconnected { .. } => schedule.len().max(1),
        _ => schedule.len() + 1,
    };
    let limits = Limits { max_rounds, detect_livelock: false };
    Some(run_async_schedule(initial, algo, schedule, limits))
}

/// Whether `(cfg, pending)` is a *successful* terminal of the ASYNC
/// model: every robot idle, nobody would move on a fresh Look, and the
/// configuration is gathered.
#[must_use]
pub fn is_goal_state<A: Algorithm + ?Sized>(
    cfg: &Configuration,
    pending: PackedPending,
    algo: &A,
) -> bool {
    pending.is_idle()
        && cfg.is_gathered()
        && engine::compute_moves(cfg, algo).iter().all(Option::is_none)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, StayAlgorithm};
    use trigrid::{Dir, ORIGIN};

    fn cfg(cells: &[(i32, i32)]) -> Configuration {
        Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    fn check<A: Algorithm>(algo: &A, initial: &Configuration) -> AsyncReport {
        AsyncChecker::new(algo, AsyncOptions::default()).check(initial)
    }

    /// Asserts a refuted verdict replays to exactly its recorded
    /// outcome, with every action a crash-free one-hot phase advance.
    fn assert_replays<A: Algorithm>(algo: &A, initial: &Configuration, report: &AsyncReport) {
        let AsyncVerdict::Refuted { schedule, outcome } = &report.verdict else {
            panic!("expected a refutation, got {:?}", report.verdict);
        };
        assert!(schedule.iter().all(|a| a.crash == 0 && a.activate.count_ones() == 1));
        let run = replay(initial, algo, &report.verdict).expect("refutations replay");
        assert_eq!(&run.execution.outcome, outcome, "replay must reproduce the verdict outcome");
        if matches!(outcome, Outcome::StepLimit { .. }) {
            assert!(
                !is_goal_state(&run.execution.final_config, run.pending, algo),
                "a lasso replay must not settle at a goal"
            );
        }
    }

    #[test]
    fn hexagon_is_an_async_fixpoint() {
        let h = crate::config::hexagon(ORIGIN);
        let ex = run_async(&h, &StayAlgorithm, &mut RoundRobinAsync, Limits::default());
        assert_eq!(ex.outcome, Outcome::Gathered { rounds: 0 });
    }

    #[test]
    fn hexagon_is_async_proof() {
        let h = crate::config::hexagon(ORIGIN);
        let report = check(&StayAlgorithm, &h);
        assert_eq!(report.verdict, AsyncVerdict::Proof);
        assert_eq!(report.states, 1, "the gathered terminal is the whole state space");
    }

    #[test]
    fn stuck_fixpoint_is_refuted_with_empty_schedule() {
        // A 4-line exceeds the ball four robots gather into (a 3-line
        // would count as gathered under the n-aware goal).
        let line = cfg(&[(0, 0), (2, 0), (4, 0), (6, 0)]);
        let report = check(&StayAlgorithm, &line);
        assert_eq!(
            report.verdict,
            AsyncVerdict::Refuted {
                schedule: vec![],
                outcome: Outcome::StuckFixpoint { rounds: 0 }
            }
        );
    }

    #[test]
    fn stale_moves_can_collide() {
        // Robot 0 (west) looks, then moves onto robot 1's node while
        // robot 1 never advanced: the simplest stale-move collision.
        let march = FnAlgorithm::new(1, "always-east", |_: &View| Some(Dir::E));
        struct LeaderLast;
        impl AsyncScheduler for LeaderLast {
            fn pick(&mut self, _tick: usize, _n: usize) -> usize {
                0
            }
        }
        let two = Configuration::new([ORIGIN, Coord::new(2, 0)]);
        let ex = run_async(&two, &march, &mut LeaderLast, Limits::default());
        assert!(
            matches!(ex.outcome, Outcome::Collision { round: 1, .. }),
            "west robot walks onto the never-activated east robot: {:?}",
            ex.outcome
        );
    }

    #[test]
    fn checker_finds_the_stale_collision_and_replays() {
        let march = FnAlgorithm::new(1, "always-east", |_: &View| Some(Dir::E));
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&march, &two);
        match &report.verdict {
            AsyncVerdict::Refuted { schedule, outcome: Outcome::Collision { round: 1, .. } } => {
                assert_eq!(schedule.len(), 2, "look + stale move is the minimal refutation");
            }
            other => panic!("expected a 2-tick stale collision, got {other:?}"),
        }
        assert_replays(&march, &two, &report);
    }

    #[test]
    fn lone_marcher_is_a_fair_async_livelock() {
        // One robot marching east forever: look, move, look, move …
        // the pumped two-tick cycle is fair and never gathers.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let lone = Configuration::new([ORIGIN]);
        let report = check(&march, &lone);
        match &report.verdict {
            AsyncVerdict::Refuted { outcome: Outcome::StepLimit { .. }, schedule } => {
                assert!(!schedule.is_empty());
            }
            other => panic!("expected a step-limit lasso, got {other:?}"),
        }
        assert_replays(&march, &lone, &report);
    }

    #[test]
    fn fleeing_robot_is_refuted_by_disconnection() {
        let flee = FnAlgorithm::new(1, "flee", |v: &View| {
            (v.neighbor(Dir::W) && !v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&flee, &two);
        match &report.verdict {
            AsyncVerdict::Refuted { outcome: Outcome::Disconnected { .. }, .. } => {}
            other => panic!("expected disconnection, got {other:?}"),
        }
        assert_replays(&flee, &two, &report);
    }

    #[test]
    fn round_robin_async_executes_trains_safely() {
        // march-east under round-robin: index 0 is the westmost robot,
        // so it moves onto the east robot's still-occupied node — ASYNC
        // breaks even simple trains, which is the point of the model.
        let march = FnAlgorithm::new(1, "always-east", |_: &View| Some(Dir::E));
        let two = Configuration::new([ORIGIN, Coord::new(2, 0)]);
        let ex = run_async(&two, &march, &mut RoundRobinAsync, Limits::default());
        assert!(matches!(
            ex.outcome,
            Outcome::Collision { .. } | Outcome::StepLimit { .. } | Outcome::Disconnected { .. }
        ));
    }

    #[test]
    fn random_async_is_reproducible() {
        let march = FnAlgorithm::new(1, "always-east", |_: &View| Some(Dir::E));
        let lone = Configuration::new([ORIGIN]);
        let limits = Limits { max_rounds: 11, detect_livelock: false };
        let a = run_async(&lone, &march, &mut RandomAsync::new(5), limits);
        let b = run_async(&lone, &march, &mut RandomAsync::new(5), limits);
        assert_eq!(a.final_config, b.final_config);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn pending_stay_completes_without_effect() {
        let h = crate::config::hexagon(ORIGIN);
        let mut sched = RoundRobinAsync;
        let ex = run_async(&h, &StayAlgorithm, &mut sched, Limits::default());
        assert_eq!(ex.final_config, h);
    }

    #[test]
    fn advance_phase_remaps_pendings_across_the_move() {
        // Three in a line; the middle robot holds a pending west move
        // while the west robot executes east … that would collide.
        // Instead: east robot pends E, west robot pends E, west robot
        // executes — slots shift because the configuration re-sorts.
        let two = cfg(&[(0, 0), (2, 0), (4, 0)]);
        let p = PackedPending::IDLE.with(0, Some(Dir::E)).with(2, Some(Dir::E));
        let Ok(PhaseAdvance::Moved { config, pending }) = advance_phase(&two, p, 2, &StayAlgorithm)
        else {
            panic!("the east robot's move is legal");
        };
        assert_eq!(config, cfg(&[(0, 0), (2, 0), (6, 0)]));
        assert_eq!(pending.get(0), Some(Dir::E), "the west pending survives in place");
        assert_eq!(pending.get(2), None, "the mover returns to idle");
    }

    #[test]
    fn verdicts_are_deterministic() {
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let three = cfg(&[(0, 0), (2, 0), (1, 1)]);
        let checker = AsyncChecker::new(&march, AsyncOptions::default());
        let a = checker.check(&three);
        let b = checker.check(&three);
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_algorithm_dedups_phase_advances() {
        // A rotation-equivariant moving rule (C6 group): the 2-robot
        // pair is stabilized by the 180° rotation, which swaps the two
        // singleton look actions — one of them is skipped.
        let spin = FnAlgorithm::new(1, "spin", |v: &View| {
            (v.robot_count() == 1).then(|| {
                Dir::ALL.into_iter().find(|&d| v.neighbor(d)).expect("one neighbour").rotate_ccw(1)
            })
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&spin, &two);
        assert!(report.deduped > 0, "stabilizer reduction must fire: {report:?}");
        assert!(matches!(report.verdict, AsyncVerdict::Refuted { .. }));
        assert_replays(&spin, &two, &report);
    }

    #[test]
    fn replay_returns_none_for_proof_and_undecided() {
        let h = crate::config::hexagon(ORIGIN);
        assert!(replay(&h, &StayAlgorithm, &AsyncVerdict::Proof).is_none());
        assert!(replay(
            &h,
            &StayAlgorithm,
            &AsyncVerdict::Undecided { depth: 4, reason: Default::default() }
        )
        .is_none());
    }
}
