//! Generic adversary transition-system exploration over a pluggable
//! **semantics**.
//!
//! This module is the BFS / cycle-hunting / stabilizer-dedup heart that
//! used to live inside [`crate::adversary`], generalized twice:
//!
//! 1. PR 3 turned the SSYNC checker into a transition system over
//!    states `(canonical class, crash mask)` with `(crash injection,
//!    activation subset)` actions;
//! 2. this layer abstracts the *state and transition shape itself*
//!    behind the [`Semantics`] trait — a semantics defines the per-state
//!    adversary actions, the successor function, and the packed
//!    auxiliary key stored alongside the translation class (a crash
//!    mask for [`CrashSemantics`]; a per-robot pending-move vector for
//!    the ASYNC model's
//!    [`AsyncSemantics`](crate::async_model::AsyncSemantics)).
//!
//! The search machinery — BFS to the first bad terminal, packed
//! quotient-acyclicity proofs, SCC-based fair-cycle refutations with
//! composable certificates, and stabilizer-subset dedup — is shared by
//! every semantics; only expansion, terminal classification and the
//! certificate traversal are instantiation-specific.
//!
//! The SSYNC adversary checker is the crash semantics with budget **0**
//! and goal `Configuration::is_gathered` — every crash branch below is
//! statically dead in that instantiation, so [`crate::adversary`]
//! produces byte-identical verdicts through this core. The crash-fault
//! checker ([`crate::faults`]) is the same semantics with budget `f`
//! and the relaxed gathering goal. The ASYNC checker
//! ([`crate::async_model`]) swaps in single-robot phase-advance actions
//! over pending-move auxiliary state.
//!
//! Soundness of the exploration (acyclicity ⇒ proof, fair cycle ⇒
//! refutation, stabilizer dedup) is argued in DESIGN.md §7 for the
//! fault-free system, extended to crash faults in DESIGN.md §10 and to
//! the ASYNC discretisation in DESIGN.md §13; the key facts used here
//! for the crash semantics are:
//!
//! * crash injections strictly grow the crash mask, so no cycle of the
//!   state graph contains one — fair-cycle certificates never cross a
//!   crash level;
//! * deferring an injection past rounds in which the crashed robot is
//!   idle anyway yields the same execution, so combining "inject, then
//!   activate" into one transition loses no adversary behaviour;
//! * a goal terminal stays a goal terminal under further injections
//!   (crashing robots only shrinks the set that must gather and never
//!   creates movers), so goal terminals need no crash expansion.
//!
//! # Packed-state core
//!
//! The exploration substrate is built for mechanical sympathy
//! (DESIGN.md §11): translation classes are interned through a
//! [`ClassArena`] keyed by the lossless bit-packed
//! [`PackedClass`](crate::PackedClass) `u128` form (one hash of 16
//! bytes per revisit, the decoded representative stored once per
//! class), per-class decision vectors are computed once through a
//! [`MoveOracle`] that memoizes the algorithm per distinct view, and
//! expansion, stabilizer tests and quotient orbit keys all work in
//! fixed stack buffers. The auxiliary key rides along packed too: the
//! per-state aux ([`Semantics::Aux`]) is a `Copy` bit-packed value
//! whose raw bits fold into the quotient orbit keys. None of this is
//! observable in verdicts or exploration statistics — the adversary and
//! crash golden files pin byte-identical output.

use crate::config::PackedClass;
use crate::engine::{self, Outcome};
use crate::sched::CrashRound;
use crate::visited::{ClassArena, PackedKeyMap};
use crate::{view, Algorithm, Configuration, MoveOracle, View};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use trigrid::transform::PointSymmetry;
use trigrid::{Coord, Dir, ORIGIN};

/// Deterministic search budgets for [`Explorer::check`]. All budgets
/// are plain counters, so verdicts never depend on threading or timing.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Cap on distinct states explored per check.
    pub max_states: usize,
    /// Cap on expanded transitions per check.
    pub max_edges: usize,
    /// Depth bound for the fair-cycle search: maximal simple-cycle
    /// length and maximal number of cycle compositions tried.
    pub fair_depth: usize,
    /// Worker threads for the within-class BFS frontier fan-out
    /// (1 = serial). Verdicts, statistics and schedules are
    /// byte-identical at every thread count: workers only run the
    /// *pure* expansion ([`Semantics::expand_pure`]); interning and
    /// counters replay in frontier order on the calling thread.
    pub threads: usize,
    /// Minimum BFS level size before a level is fanned out — small
    /// levels are cheaper to expand serially than to ship to a pool.
    pub par_frontier: usize,
    /// Cooperative per-class wall-clock deadline. `None` (the default)
    /// keeps every check purely counter-budgeted and the clock is never
    /// consulted. When set, the search polls the clock at the same
    /// sites that check the counter budgets (strided, so the poll cost
    /// is amortized over thousands of transitions) and degrades to
    /// [`ExploreVerdict::Undecided`] with [`UndecidedReason::Timeout`].
    /// Unlike the counter budgets this makes verdicts timing-dependent,
    /// which is exactly why it is opt-in and recorded as its own
    /// undecided reason: a timeout row in a sweep table is honest about
    /// being a wall-clock artifact, not a search-space fact.
    pub class_timeout: Option<std::time::Duration>,
    /// Byte budget for one check's live search storage. `None` (the
    /// default) never consults the accounting. When set, the search
    /// polls [`Search::live_bytes`] at the same sites that check the
    /// counter budgets and degrades to [`ExploreVerdict::Undecided`]
    /// with [`UndecidedReason::MemBudget`]. Unlike the wall-clock
    /// deadline this stays fully deterministic: the accounting is a
    /// pure function of the interned counts (never of allocator
    /// capacities or scratch-pool reuse), so a budget-armed cell
    /// produces byte-identical verdicts at every thread count.
    pub mem_budget: Option<usize>,
}

/// Default [`ExploreOptions::par_frontier`]: below this the per-level
/// scoped-pool setup costs more than the expansion itself.
pub const DEFAULT_PAR_FRONTIER: usize = 256;

impl Default for ExploreOptions {
    fn default() -> Self {
        // The fault-free defaults: the connected seven-robot space
        // holds 3652 translation classes, so 4096 states never bind
        // there. Crash instantiations multiply the space by the crash
        // placements and should use [`ExploreOptions::crash`].
        ExploreOptions {
            max_states: 4096,
            max_edges: 2_000_000,
            fair_depth: 12,
            threads: 1,
            par_frontier: DEFAULT_PAR_FRONTIER,
            class_timeout: None,
            mem_budget: None,
        }
    }
}

impl ExploreOptions {
    /// Budgets sized for crash instantiations: each crash placement
    /// opens its own copy of the class graph, so the state and edge
    /// caps are an order of magnitude above the fault-free defaults.
    #[must_use]
    pub fn crash() -> Self {
        ExploreOptions { max_states: 65_536, max_edges: 16_000_000, ..ExploreOptions::default() }
    }

    /// Budgets sized for the ASYNC semantics: every class fans out into
    /// its reachable pending-vector variants, so the state cap sits two
    /// orders of magnitude above the fault-free class count.
    #[must_use]
    pub fn lcm_async() -> Self {
        ExploreOptions { max_states: 524_288, max_edges: 16_000_000, ..ExploreOptions::default() }
    }
}

/// The goal predicate of a crash-semantics instantiation: whether `cfg`
/// with the given crashed-slot mask counts as a *successful* terminal.
/// Plain function pointer so [`CrashSemantics`] needs no extra type
/// parameter.
pub type Goal = fn(&Configuration, u16) -> bool;

/// Robot capacity of the 16-bit crash / activation slot masks used
/// throughout the exploration layer. The packed class keys are the
/// binding constraint (10 robots), and the compile-time check proves
/// every packable configuration fits the masks — widening
/// [`PackedClass::MAX_ROBOTS`] past 16 would fail the build here, not
/// corrupt masks at runtime.
pub const MASK_ROBOTS: usize = u16::BITS as usize;
const _: () = assert!(PackedClass::MAX_ROBOTS <= MASK_ROBOTS);

/// Which budget exhausted when a check ends [`ExploreVerdict::Undecided`]
/// — the diagnosis that tells an operator which knob to raise. Recorded
/// in verdicts and surfaced through the sweep shard JSON.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum UndecidedReason {
    /// [`ExploreOptions::max_states`] tripped during the BFS.
    States,
    /// [`ExploreOptions::max_edges`] tripped during the BFS.
    Edges,
    /// The BFS closed, but the fair-cycle search exhausted
    /// [`ExploreOptions::fair_depth`] without a certificate either way.
    /// The default: verdicts serialized before the reason field existed
    /// could only arise here at the historical budgets.
    #[default]
    FairDepth,
    /// [`ExploreOptions::class_timeout`] expired before any phase
    /// certified a verdict. Only produced when a wall-clock deadline is
    /// armed, so counter-budgeted runs never see it.
    Timeout,
    /// [`ExploreOptions::mem_budget`] tripped: the search's live
    /// storage accounting exceeded the byte budget before any phase
    /// certified a verdict. Deterministic (the accounting is a pure
    /// function of the interned counts), so a budget-armed cell is
    /// reproducible — unlike [`UndecidedReason::Timeout`].
    MemBudget,
    /// The per-class check panicked and the sweep layer degraded the
    /// class to a counted undecided row instead of killing the cell.
    /// Never produced by the explorer itself — the panic payload lives
    /// in the shard record, not here.
    Panicked,
}

impl UndecidedReason {
    /// Short tag used by reports and shard JSON summaries.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            UndecidedReason::States => "states",
            UndecidedReason::Edges => "edges",
            UndecidedReason::FairDepth => "fair_depth",
            UndecidedReason::Timeout => "timeout",
            UndecidedReason::MemBudget => "mem_budget",
            UndecidedReason::Panicked => "panicked",
        }
    }
}

/// The classification of one initial class by [`Explorer::check`].
///
/// The schedule of a refutation is a sequence of [`CrashRound`]
/// actions; for budget-0 crash instantiations every `crash` field is
/// zero and the sequence degrades to the activation schedule of
/// [`crate::adversary::AdversaryVerdict::Refuted`]. ASYNC refutations
/// also keep `crash == 0` — each action's `activate` is the one-hot
/// mask of the robot whose LCM phase advances.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ExploreVerdict {
    /// Every fair schedule of the instantiated system reaches a goal
    /// terminal.
    Proof,
    /// A concrete schedule refutes the goal; replaying it must
    /// reproduce `outcome`.
    Refuted {
        /// Per-round adversary actions, indexed like every scheduler:
        /// bit `i` = the `i`-th robot in row-major order of the round's
        /// configuration.
        schedule: Vec<CrashRound>,
        /// The outcome the replay must reproduce. Round counts refer to
        /// the semantics' own round bookkeeping: for the crash
        /// semantics, *movement* rounds (injection-only actions do not
        /// advance the counter); for ASYNC, every phase advance is one
        /// tick.
        outcome: Outcome,
    },
    /// Neither verdict was certified within the search budgets.
    Undecided {
        /// The fair-cycle search depth that was exhausted (or would
        /// have applied, for BFS-budget trips).
        depth: usize,
        /// Which budget tripped.
        #[serde(default)]
        reason: UndecidedReason,
    },
}

impl ExploreVerdict {
    /// Short tag used by reports and golden files.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ExploreVerdict::Proof => "proof",
            ExploreVerdict::Refuted { .. } => "refuted",
            ExploreVerdict::Undecided { .. } => "undecided",
        }
    }
}

/// The result of checking one class: the verdict plus deterministic
/// exploration statistics.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ExploreReport {
    /// The classification.
    pub verdict: ExploreVerdict,
    /// Distinct `(class, aux)` states explored.
    pub states: usize,
    /// Transitions expanded (legal actions executed).
    pub edges: usize,
    /// Actions skipped by the stabilizer symmetry reduction.
    pub deduped: usize,
}

/// Computes the subgroup of D6 under which `algo` is equivariant:
/// `compute(σ·v) = σ·compute(v)` for every view `v` with at most
/// **seven** robots — the only views that can arise in up-to-8 robot
/// configurations. For explorers handling more robots use
/// [`equivariance_group_for`], which widens the view scan to
/// `max_robots - 1` other robots. Algorithms with radius beyond 2 are
/// conservatively treated as asymmetric.
#[must_use]
pub fn equivariance_group<A: Algorithm + ?Sized>(algo: &A) -> Vec<PointSymmetry> {
    equivariance_group_for(algo, 8)
}

/// Like [`equivariance_group`], scanning every view with at most
/// `max_robots - 1` robots — the views that can arise in configurations
/// of up to `max_robots` robots. The n = 7 checkers keep calling the
/// historical 8-robot bound so their deduplication (and hence their
/// golden-pinned schedules) is unchanged; wider explorers must widen
/// the scan or the dedup would be unsound.
#[must_use]
pub fn equivariance_group_for<A: Algorithm + ?Sized>(
    algo: &A,
    max_robots: usize,
) -> Vec<PointSymmetry> {
    let max_others = max_robots.saturating_sub(1) as u32;
    let radius = algo.radius();
    let mut group = vec![PointSymmetry::Rot(0)];
    let labels = view::labels(radius);
    if labels.len() > 18 {
        return group;
    }
    'sym: for &s in &PointSymmetry::ALL[1..] {
        let perm: Vec<usize> = labels
            .iter()
            .map(|&l| view::label_index(radius, s.apply(l)).expect("D6 permutes the label disk"))
            .collect();
        for bits in 0..(1u64 << labels.len()) {
            if bits.count_ones() > max_others {
                continue;
            }
            let mut mapped = 0u64;
            for (i, &j) in perm.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    mapped |= 1 << j;
                }
            }
            let decision = algo.compute(&View::from_bits(radius, bits));
            let image = algo.compute(&View::from_bits(radius, mapped));
            if image != decision.map(|d| s.apply_dir(d)) {
                continue 'sym;
            }
        }
        group.push(s);
    }
    group
}

/// How a discovered state terminates, if it does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Adversary actions remain: the state is expanded.
    Inner,
    /// No action remains and the goal predicate holds.
    Goal,
    /// No action remains and the goal predicate fails.
    Stuck,
}

/// Per-class data computed once when a translation class is first
/// interned: the full decision vector (a pure function of the class —
/// auxiliary state never changes what a robot *would* decide from a
/// fresh Look) in a fixed `Copy` array, so expansion never clones a
/// `Vec`.
#[derive(Clone, Copy)]
pub struct ClassInfo {
    /// Robot count of the class.
    pub(crate) n: u8,
    /// Bitmask of robots whose fresh decision is a move (for the crash
    /// semantics this includes crashed robots — a crashed robot keeps
    /// "deciding", it just never acts).
    pub(crate) movers: u16,
    /// Full decision vector, aligned with the class's positions.
    pub(crate) moves: [Option<Dir>; PackedClass::MAX_ROBOTS],
}

impl ClassInfo {
    /// Robot count of the class.
    #[must_use]
    pub fn robots(&self) -> usize {
        self.n as usize
    }

    /// Bitmask of robots whose fresh decision is a move.
    #[must_use]
    pub fn movers(&self) -> u16 {
        self.movers
    }

    /// The fresh decision of the robot in row-major slot `slot`.
    #[must_use]
    pub fn decision(&self, slot: usize) -> Option<Dir> {
        self.moves[slot]
    }
}

/// One expansion step of an inner state, produced without touching the
/// search — the *pure* half of [`Semantics::expand`]. Splitting
/// expansion into a pure enumeration plus an ordered application
/// ([`Search::apply_step`]) is what makes the within-class frontier
/// fan-out deterministic: worker threads enumerate a whole BFS level
/// speculatively against the frozen level-start arena, and the
/// single-threaded merge replays the exact serial interning, counter
/// and refutation sequence.
///
/// Public because it appears in the [`Semantics`] trait surface; like
/// the rest of that surface it is an internal extension point —
/// [`Search`]'s mutation methods are crate-private, so foreign code
/// cannot apply steps.
pub enum PureStep<Aux> {
    /// The action is not the minimal representative of its stabilizer
    /// orbit: skipped, counted as deduped.
    Dedup,
    /// The activation collides; the scalar engine's exact collision
    /// report rides along for the refutation outcome.
    Collide(engine::RoundCollision),
    /// The successor configuration disconnects: refutation (after the
    /// edge is counted, matching the serial order).
    Disconnect,
    /// An aux-only successor at the *same* class and round count — a
    /// crash injection that froze every remaining mover.
    Variant(Aux),
    /// A movement successor: the packed canonical class key plus the
    /// aux re-expressed over the successor's row-major slots.
    Succ(PackedClass, Aux),
}

/// One state's pure-enumeration output for the parallel level fan-out:
/// the per-action [`PureStep`] list, pooled across searches.
type StepBuf<Aux> = Vec<(CrashRound, PureStep<Aux>)>;

/// A **semantics** of the exploration layer: what a state's auxiliary
/// key is (packed alongside the interned translation class), which
/// adversary actions a state offers, what their successors are, and how
/// a closed walk is traversed for the fairness certificate.
///
/// Implementations in this crate: [`CrashSemantics`] (SSYNC activation
/// subsets plus permanent crash injections — the budget-0 case is the
/// plain SSYNC adversary) and
/// [`AsyncSemantics`](crate::async_model::AsyncSemantics) (single-robot
/// LCM phase advances over pending-move state). The trait is public so
/// the instantiations can live next to their models, but its surface is
/// an internal extension point of this crate: [`Search`]'s mutation
/// methods are crate-private, so foreign implementations cannot drive a
/// search.
pub trait Semantics: Sync + Sized {
    /// The packed per-state auxiliary key stored alongside the class
    /// id. Key equality must coincide with auxiliary-state equality
    /// (the packing is lossless), exactly as
    /// [`PackedClass`](crate::PackedClass) equality coincides with
    /// translation-class equality.
    type Aux: Copy + Eq + std::fmt::Debug + Send + Sync;

    /// The auxiliary key of an initial state (nothing crashed, every
    /// robot idle).
    fn root_aux(&self) -> Self::Aux;

    /// The raw bits of an aux key, folded into packed quotient orbit
    /// keys. Must be injective and monotone in the key's identity —
    /// i.e. a plain re-encoding of `Aux`'s `Eq`.
    fn aux_bits(aux: Self::Aux) -> u32;

    /// The image of `aux` under the point symmetry `sym`, whose induced
    /// slot permutation sends old slot `i` to new slot `map(i)`, for
    /// `n` robots. Semantics whose aux carries directions (the ASYNC
    /// pending vector) must transform them by `sym` too; slot masks
    /// ignore it.
    fn permute_aux(
        aux: Self::Aux,
        n: usize,
        map: impl Fn(usize) -> usize,
        sym: PointSymmetry,
    ) -> Self::Aux;

    /// Classifies a freshly interned state `(cfg's class, aux)`:
    /// [`NodeKind::Inner`] when adversary actions remain, otherwise
    /// goal or stuck.
    fn classify(&self, cfg: &Configuration, info: &ClassInfo, aux: Self::Aux) -> NodeKind;

    /// Whether this semantics implements [`Semantics::expand_pure`] and
    /// may therefore have its BFS levels fanned out across threads.
    const PARALLEL: bool = false;

    /// Expands every adversary action of inner state `id`, interning
    /// successors and pushing newly discovered inner states onto
    /// `queue`. Returns a verdict as soon as a bad terminal is reached
    /// or a search budget is exhausted.
    fn expand<A: Algorithm + ?Sized>(
        &self,
        search: &mut Search<'_, '_, A, Self>,
        id: usize,
        queue: &mut Vec<u32>,
    ) -> Option<ExploreVerdict>;

    /// Pure expansion: enumerates inner state `id`'s actions in the
    /// exact order [`Semantics::expand`] applies them and pushes each
    /// action's [`PureStep`] classification into `out`, without
    /// mutating the search. Enumeration stops after an unconditionally
    /// terminal step ([`PureStep::Collide`] / [`PureStep::Disconnect`])
    /// — the applier never looks past it. Only called when
    /// [`Semantics::PARALLEL`] is true.
    fn expand_pure<A: Algorithm + ?Sized>(
        &self,
        _search: &Search<'_, '_, A, Self>,
        _id: usize,
        _out: &mut Vec<(CrashRound, PureStep<Self::Aux>)>,
    ) {
        unreachable!("expand_pure requires Semantics::PARALLEL");
    }

    /// Concretely traverses the closed state walk `cycle` (starting and
    /// ending at `start`) once, tracking robot roles and fairness
    /// flags, and returns the certificate.
    fn traverse<A: Algorithm + ?Sized>(
        &self,
        search: &Search<'_, '_, A, Self>,
        start: usize,
        cycle: &[(CrashRound, usize)],
    ) -> CycleCert;
}

/// The crash-fault semantics (and, at budget 0, the plain SSYNC
/// adversary): states are `(class, crashed-slot mask)`, actions first
/// permanently crash the robots in [`CrashRound::crash`] (allowed while
/// the crash budget lasts) and then activate the robots in
/// [`CrashRound::activate`], which must be non-crashed movers. When an
/// injection leaves no live mover the activation is empty: the
/// configuration is frozen forever.
pub struct CrashSemantics {
    /// Maximal number of robots the adversary may crash in total.
    budget: u8,
    /// Whether a terminal state counts as successful.
    goal: Goal,
}

impl CrashSemantics {
    /// Builds the semantics for the given crash budget and goal.
    ///
    /// # Panics
    /// Panics if `budget >= PackedClass::MAX_ROBOTS`: at least one
    /// robot must stay alive for the goal to be meaningful (the masks
    /// themselves hold [`MASK_ROBOTS`] slots).
    #[must_use]
    pub fn new(budget: u8, goal: Goal) -> Self {
        assert!(
            (budget as usize) < PackedClass::MAX_ROBOTS,
            "crash budget {budget} would allow crashing every robot \
             (capacity {})",
            PackedClass::MAX_ROBOTS
        );
        CrashSemantics { budget, goal }
    }
}

/// Struct-of-arrays storage for the interned states of one search.
/// Each field is a dense column indexed by state id. The columns the
/// graph phases walk millions of times (`edge_start`/`edge_len` for
/// the DFS sweeps, `kind` for the frontier filter) are contiguous
/// instead of strided through a 28-byte record, and every column
/// survives [`StateStore::clear`] with its capacity intact, so pooled
/// searches stop paying the allocator per class.
struct StateStore<Aux> {
    /// The translation class, as a dense [`ClassArena`] id; the
    /// canonical representative and decision vector are stored once
    /// per class, not per aux variant.
    class: Vec<u32>,
    /// The packed auxiliary key (crash mask / pending vector) over the
    /// class's position slots.
    aux: Vec<Aux>,
    /// Rounds from the initial state, in the semantics' own bookkeeping
    /// (movement rounds for crash — injection-only actions do not
    /// count; phase-advance ticks for ASYNC). This is what replay
    /// outcomes report. `u32`: BFS depth is bounded by the state count,
    /// which the arena caps far below `2^32`.
    rounds: Vec<u32>,
    /// Discovery parent id ([`NO_PARENT`] for the root), for schedule
    /// reconstruction.
    parent: Vec<u32>,
    /// The discovery edge's action, packed (meaningless on the root).
    parent_action: Vec<u32>,
    /// Start of this node's slice of the search's shared edge pool. A
    /// state's edges are recorded contiguously — serial expansion
    /// finishes a state before starting the next, and the parallel
    /// fan-out's merge applies pure steps in the same frontier order —
    /// so the whole graph lives in one flat pool instead of one heap
    /// allocation per expanded state.
    edge_start: Vec<u32>,
    /// Edge count of this node's slice of the edge pool.
    edge_len: Vec<u32>,
    /// Terminal classification.
    kind: Vec<NodeKind>,
}

impl<Aux> Default for StateStore<Aux> {
    fn default() -> Self {
        StateStore {
            class: Vec::new(),
            aux: Vec::new(),
            rounds: Vec::new(),
            parent: Vec::new(),
            parent_action: Vec::new(),
            edge_start: Vec::new(),
            edge_len: Vec::new(),
            kind: Vec::new(),
        }
    }
}

impl<Aux> StateStore<Aux> {
    /// Occupied bytes per state — the struct-of-arrays sum, a compile
    /// time constant used by the deterministic budget accounting.
    const BYTES_PER_STATE: usize = 6 * size_of::<u32>() + size_of::<Aux>() + size_of::<NodeKind>();

    fn len(&self) -> usize {
        self.class.len()
    }

    fn push(
        &mut self,
        class: u32,
        aux: Aux,
        rounds: u32,
        parent: u32,
        parent_action: u32,
        kind: NodeKind,
    ) {
        self.class.push(class);
        self.aux.push(aux);
        self.rounds.push(rounds);
        self.parent.push(parent);
        self.parent_action.push(parent_action);
        self.edge_start.push(0);
        self.edge_len.push(0);
        self.kind.push(kind);
    }

    fn clear(&mut self) {
        self.class.clear();
        self.aux.clear();
        self.rounds.clear();
        self.parent.clear();
        self.parent_action.clear();
        self.edge_start.clear();
        self.edge_len.clear();
        self.kind.clear();
    }

    /// Heap bytes currently reserved by the columns.
    fn heap_bytes(&self) -> usize {
        self.class.capacity() * size_of::<u32>()
            + self.aux.capacity() * size_of::<Aux>()
            + self.rounds.capacity() * size_of::<u32>()
            + self.parent.capacity() * size_of::<u32>()
            + self.parent_action.capacity() * size_of::<u32>()
            + self.edge_start.capacity() * size_of::<u32>()
            + self.edge_len.capacity() * size_of::<u32>()
            + self.kind.capacity() * size_of::<NodeKind>()
    }
}

/// Sentinel parent id of the root state.
const NO_PARENT: u32 = u32::MAX;

/// Sentinel "end of chain" index of the aux-variant chain pool.
const NO_VARIANT: u32 = u32::MAX;

/// One link of a per-class aux-variant chain: the aux key, the state
/// id it interned to, and the next link (newest first). Replaces the
/// former `Vec<Vec<(Aux, usize)>>` — one flat pool instead of one heap
/// allocation per class, with lookups walking the chain (aux keys are
/// unique per class, so chain order is irrelevant to the result).
struct VariantEntry<Aux> {
    aux: Aux,
    state: u32,
    next: u32,
}

/// The poolable storage of one [`Search`]: every growable buffer a
/// per-class check fills. [`Explorer::check`] leases one from the
/// explorer's scratch pool and returns it cleared-but-capacitated, so
/// a sweep cell's ~77k per-class searches re-allocate these buffers
/// once per worker instead of once per class. Soundness of the reuse
/// is structural: [`SearchScratch::clear`] empties every collection
/// (`FlatKeyIndex::clear` resets its probe slots), and no search ever
/// reads an index it did not itself intern, so stale capacity can
/// never leak state between classes — and the deterministic budget
/// accounting ([`Search::live_bytes`]) deliberately reads occupied
/// counts, never capacities, so pooling is invisible to verdicts.
struct SearchScratch<Aux> {
    states: StateStore<Aux>,
    /// Interned translation classes: packed `u128` key → dense id,
    /// decoded canonical representative stored once.
    arena: ClassArena,
    /// Per-class decision data, parallel to the arena ids.
    info: Vec<ClassInfo>,
    /// Head link of each class's aux-variant chain ([`NO_VARIANT`]
    /// when empty), parallel to the arena ids.
    variant_head: Vec<u32>,
    /// Flat chain-link pool behind `variant_head`.
    variant_pool: Vec<VariantEntry<Aux>>,
    /// Flat edge storage; each state owns a contiguous slice.
    edge_pool: Vec<PackedEdge>,
    /// Chunked BFS level storage: every discovered inner state id in
    /// discovery order, the current level being a window of this one
    /// buffer (children always join the next level, so the window
    /// simply advances — no per-level allocation, 4 bytes per queued
    /// state total).
    levels: Vec<u32>,
    /// Reused copy of the current level's inner states for the
    /// parallel fan-out (workers need the frontier as a slice while
    /// the merge appends children to `levels`).
    frontier_buf: Vec<u32>,
}

impl<Aux> Default for SearchScratch<Aux> {
    fn default() -> Self {
        SearchScratch {
            states: StateStore::default(),
            arena: ClassArena::new(),
            info: Vec::new(),
            variant_head: Vec::new(),
            variant_pool: Vec::new(),
            edge_pool: Vec::new(),
            levels: Vec::new(),
            frontier_buf: Vec::new(),
        }
    }
}

impl<Aux> SearchScratch<Aux> {
    /// Empties every buffer, keeping all capacities for the next lease.
    fn clear(&mut self) {
        self.states.clear();
        self.arena.clear();
        self.info.clear();
        self.variant_head.clear();
        self.variant_pool.clear();
        self.edge_pool.clear();
        self.levels.clear();
        self.frontier_buf.clear();
    }

    /// Heap bytes currently reserved across every buffer — the real
    /// footprint reported to the telemetry gauges (capacity-based, so
    /// it reflects what the allocator actually holds).
    fn heap_bytes(&self) -> usize {
        self.states.heap_bytes()
            + self.arena.heap_bytes()
            + self.info.capacity() * size_of::<ClassInfo>()
            + self.variant_head.capacity() * size_of::<u32>()
            + self.variant_pool.capacity() * size_of::<VariantEntry<Aux>>()
            + self.edge_pool.capacity() * size_of::<PackedEdge>()
            + self.levels.capacity() * size_of::<u32>()
            + self.frontier_buf.capacity() * size_of::<u32>()
    }
}

/// One expanded edge in 8 bytes: the action packed as
/// `crash << 16 | activate` plus the successor's dense state id. The
/// graph phases (quotient acyclicity, Tarjan, cycle DFS, the product
/// decision) walk millions of these, so halving the former
/// `(CrashRound, usize)` layout directly halves the resident graph.
#[derive(Clone, Copy)]
struct PackedEdge {
    action: u32,
    to: u32,
}

/// Packs a [`CrashRound`] into the edge/parent action word.
fn pack_action(action: CrashRound) -> u32 {
    (u32::from(action.crash) << 16) | u32::from(action.activate)
}

/// Inverse of [`pack_action`].
fn unpack_action(bits: u32) -> CrashRound {
    CrashRound { crash: (bits >> 16) as u16, activate: bits as u16 }
}

/// The mutable role-tracking state of a certificate traversal
/// ([`Search::traverse_roles`]): `pos[r]` is the current coordinate of
/// the robot that began in row-major slot `r`, `role_at[i]` is which
/// role sits in slot `i`, and `flags[r]` records whether role `r` has
/// satisfied fairness so far.
pub(crate) struct RoleWalk {
    pub(crate) pos: Vec<Coord>,
    pub(crate) role_at: Vec<usize>,
    pub(crate) flags: Vec<bool>,
}

/// A fair-cycle certificate: one traversal of a closed state walk.
/// Crash injections strictly grow the crash mask, so every crash
/// action on a cycle has `crash == 0` — and ASYNC actions never carry
/// one at all.
#[derive(Clone)]
pub struct CycleCert {
    /// The actions of the traversal.
    pub(crate) masks: Vec<CrashRound>,
    /// Role permutation: the robot in row-major slot `r` at the start
    /// occupies slot `perm[r]` after the traversal.
    pub(crate) perm: Vec<usize>,
    /// Whether role `r` satisfied fairness during the traversal (it
    /// moved / advanced a phase, was seen deciding to stay — and is
    /// thus activatable for free — or is crashed and exempt).
    pub(crate) flags: Vec<bool>,
}

impl CycleCert {
    /// Whether pumping this traversal forever is fair: every orbit of
    /// the role permutation must contain a flagged role.
    fn is_fair(&self) -> bool {
        let n = self.perm.len();
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut ok = false;
            let mut r = start;
            loop {
                seen[r] = true;
                ok |= self.flags[r];
                r = self.perm[r];
                if r == start {
                    break;
                }
            }
            if !ok {
                return false;
            }
        }
        true
    }

    /// Sequential composition: this traversal followed by `next` (both
    /// starting from the same state).
    fn compose(&self, next: &CycleCert) -> CycleCert {
        let mut masks = self.masks.clone();
        masks.extend_from_slice(&next.masks);
        let perm = self.perm.iter().map(|&p| next.perm[p]).collect();
        let flags = self.flags.iter().zip(&self.perm).map(|(&f, &p)| f || next.flags[p]).collect();
        CycleCert { masks, perm, flags }
    }
}

/// Lock-free observability tallies for one [`Explorer`], accumulated
/// across every [`check`](Explorer::check) it runs. All fields are
/// relaxed atomics from the `telemetry` crate: bumping them from the
/// sweep pipeline's worker threads never serializes the workers, and
/// nothing here ever feeds back into exploration decisions — verdicts,
/// statistics and digests are byte-identical with telemetry enabled,
/// disabled, or absent (see DESIGN.md §16).
#[derive(Default)]
pub(crate) struct ExploreMetrics {
    /// `check` calls completed.
    pub(crate) checks: telemetry::Counter,
    /// Interned states, summed over checks.
    pub(crate) states: telemetry::Counter,
    /// Expanded transitions, summed over checks.
    pub(crate) edges: telemetry::Counter,
    /// Actions skipped by the stabilizer reduction, summed over checks.
    pub(crate) deduped: telemetry::Counter,
    /// BFS levels expanded (Phase A iterations).
    pub(crate) levels: telemetry::Counter,
    /// BFS levels expanded through the parallel fan-out path.
    pub(crate) levels_parallel: telemetry::Counter,
    /// Frontier width at the start of each BFS level.
    pub(crate) frontier_width: telemetry::Histogram,
    /// Distinct translation classes per check (arena size at verdict).
    pub(crate) arena_classes: telemetry::Histogram,
    /// Interned states per check.
    pub(crate) states_per_check: telemetry::Histogram,
    /// States consumed at verdict time, in percent of `max_states`.
    pub(crate) budget_states_pct: telemetry::Histogram,
    /// Edges consumed at verdict time, in percent of `max_edges`.
    pub(crate) budget_edges_pct: telemetry::Histogram,
    /// Wall time in Phase A (BFS expansion), nanoseconds.
    pub(crate) phase_a_ns: telemetry::Counter,
    /// Wall time in Phase B (quotient acyclicity), nanoseconds.
    pub(crate) phase_b_ns: telemetry::Counter,
    /// Wall time in Phase C (fair-cycle heuristic), nanoseconds.
    pub(crate) phase_c_ns: telemetry::Counter,
    /// Wall time in Phase D (fair-product decision), nanoseconds.
    pub(crate) phase_d_ns: telemetry::Counter,
    /// Checks that ended in [`ExploreVerdict::Proof`].
    pub(crate) verdict_proof: telemetry::Counter,
    /// Checks that ended in [`ExploreVerdict::Refuted`].
    pub(crate) verdict_refuted: telemetry::Counter,
    /// Checks that ended in [`ExploreVerdict::Undecided`].
    pub(crate) verdict_undecided: telemetry::Counter,
    /// Undecided verdicts attributed to the state cap.
    pub(crate) undecided_states: telemetry::Counter,
    /// Undecided verdicts attributed to the edge cap.
    pub(crate) undecided_edges: telemetry::Counter,
    /// Undecided verdicts attributed to the fair-depth cap.
    pub(crate) undecided_fair_depth: telemetry::Counter,
    /// Undecided verdicts attributed to the per-class deadline.
    pub(crate) undecided_timeout: telemetry::Counter,
    /// Undecided verdicts attributed to the byte budget.
    pub(crate) undecided_mem_budget: telemetry::Counter,
    /// Undecided verdicts attributed to a caught per-class panic
    /// (tallied by the sweep layer's degradation, never by `check`).
    pub(crate) undecided_panicked: telemetry::Counter,
    /// Cell-global `(ClassInfo, Configuration)` cache hits.
    pub(crate) info_hit: telemetry::Counter,
    /// Cell-global `(ClassInfo, Configuration)` cache misses.
    pub(crate) info_miss: telemetry::Counter,
    /// Cell-global [`engine::RoundTable`] cache hits.
    pub(crate) table_hit: telemetry::Counter,
    /// Cell-global [`engine::RoundTable`] cache misses.
    pub(crate) table_miss: telemetry::Counter,
    /// Peak heap bytes reserved by one check's class arena (probe
    /// table, key column, representative pointers).
    pub(crate) arena_bytes: telemetry::Gauge,
    /// Peak heap bytes reserved by one check's visited-state storage
    /// (state columns, per-class info, aux-variant chains).
    pub(crate) visited_bytes: telemetry::Gauge,
    /// Peak heap bytes reserved by one check's BFS level storage.
    pub(crate) frontier_bytes: telemetry::Gauge,
    /// Peak heap bytes reserved by one whole check (arena + visited +
    /// frontier + edge pool).
    pub(crate) peak_bytes: telemetry::Gauge,
}

impl ExploreMetrics {
    /// Reads every tally into a named snapshot. Zero readings are
    /// included, so a snapshot always names the full metric surface.
    fn snapshot(&self) -> telemetry::Snapshot {
        let mut s = telemetry::Snapshot::new();
        s.add_counter("explore.checks", self.checks.get());
        s.add_counter("explore.states", self.states.get());
        s.add_counter("explore.edges", self.edges.get());
        s.add_counter("explore.deduped", self.deduped.get());
        s.add_counter("explore.levels", self.levels.get());
        s.add_counter("explore.levels_parallel", self.levels_parallel.get());
        s.add_counter("explore.phase_a_ns", self.phase_a_ns.get());
        s.add_counter("explore.phase_b_ns", self.phase_b_ns.get());
        s.add_counter("explore.phase_c_ns", self.phase_c_ns.get());
        s.add_counter("explore.phase_d_ns", self.phase_d_ns.get());
        s.add_counter("explore.verdict.proof", self.verdict_proof.get());
        s.add_counter("explore.verdict.refuted", self.verdict_refuted.get());
        s.add_counter("explore.verdict.undecided", self.verdict_undecided.get());
        s.add_counter("explore.undecided.states", self.undecided_states.get());
        s.add_counter("explore.undecided.edges", self.undecided_edges.get());
        s.add_counter("explore.undecided.fair_depth", self.undecided_fair_depth.get());
        s.add_counter("explore.undecided.timeout", self.undecided_timeout.get());
        s.add_counter("explore.undecided.mem_budget", self.undecided_mem_budget.get());
        s.add_counter("explore.undecided.panicked", self.undecided_panicked.get());
        s.add_counter("memo.info.hit", self.info_hit.get());
        s.add_counter("memo.info.miss", self.info_miss.get());
        s.add_counter("memo.table.hit", self.table_hit.get());
        s.add_counter("memo.table.miss", self.table_miss.get());
        s.add_histogram(self.frontier_width.read("explore.frontier_width"));
        s.add_histogram(self.arena_classes.read("explore.arena_classes"));
        s.add_histogram(self.states_per_check.read("explore.states_per_check"));
        s.add_histogram(self.budget_states_pct.read("explore.budget_states_pct"));
        s.add_histogram(self.budget_edges_pct.read("explore.budget_edges_pct"));
        s.add_gauge("explore.arena_bytes", self.arena_bytes.get());
        s.add_gauge("explore.visited_bytes", self.visited_bytes.get());
        s.add_gauge("explore.frontier_bytes", self.frontier_bytes.get());
        s.add_gauge("explore.peak_bytes", self.peak_bytes.get());
        s
    }
}

/// An exhaustive adversary explorer for one algorithm and one
/// [`Semantics`] instantiation.
///
/// Construction computes the algorithm's equivariance subgroup once
/// (it scans every view of the algorithm's radius); reuse one explorer
/// across many [`check`](Explorer::check) calls.
pub struct Explorer<'a, A: Algorithm + ?Sized, S: Semantics = CrashSemantics> {
    /// Memoized decision oracle over the algorithm: every distinct
    /// view is evaluated once per explorer, not once per robot per
    /// state (see [`MoveOracle`]).
    oracle: MoveOracle<'a, A>,
    opts: ExploreOptions,
    group: Vec<PointSymmetry>,
    semantics: S,
    /// Largest robot count [`Explorer::check`] accepts; the
    /// equivariance scan was widened to match, so the stabilizer dedup
    /// stays sound (see [`equivariance_group_for`]).
    max_robots: usize,
    /// Cell-global decision-vector cache: `ClassInfo` is a pure
    /// function of the packed class key (the decision of each robot
    /// from a fresh Look), so one checker reused across a sweep cell
    /// computes it once per *distinct* class instead of once per class
    /// per per-class search — the dominant Phase A cost before this
    /// cache was the repeated radius-2 view extraction behind
    /// [`engine::compute_moves`].
    info_memo: std::sync::Mutex<PackedKeyMap<(ClassInfo, std::sync::Arc<Configuration>)>>,
    /// Cell-global [`engine::RoundTable`] cache, keyed like
    /// [`Self::info_memo`]: the table depends only on the canonical
    /// positions and the decision vector, never on crash marks (those
    /// only filter which activation submasks are enumerated).
    table_memo: std::sync::Mutex<PackedKeyMap<std::sync::Arc<engine::RoundTable>>>,
    /// Pool of cleared [`SearchScratch`] buffers: each `check` leases
    /// one and returns it, so successive per-class searches reuse
    /// their grown allocations instead of rebuilding them per class.
    /// Depth is bounded by the number of concurrent `check` calls.
    scratch: std::sync::Mutex<Vec<SearchScratch<S::Aux>>>,
    /// Pool of pure-step buffers for the parallel level fan-out: each
    /// worker item leases one, the merge returns it cleared.
    step_bufs: std::sync::Mutex<Vec<StepBuf<S::Aux>>>,
    /// Out-of-band observability tallies (see [`ExploreMetrics`]).
    metrics: ExploreMetrics,
}

impl<'a, A: Algorithm + ?Sized> Explorer<'a, A, CrashSemantics> {
    /// Builds a crash-semantics explorer for `algo` with the given
    /// budgets, crash budget and goal predicate, accepting up to 8
    /// robots (the historical bound; use [`Self::new_for_robots`] for
    /// wider configurations).
    ///
    /// # Panics
    /// Panics if `budget >= PackedClass::MAX_ROBOTS`: at least one
    /// robot must stay alive for the goal to be meaningful.
    #[must_use]
    pub fn new(algo: &'a A, opts: ExploreOptions, budget: u8, goal: Goal) -> Self {
        Self::with_semantics(algo, opts, CrashSemantics::new(budget, goal))
    }

    /// Like [`Self::new`], accepting configurations of up to
    /// `max_robots` robots (≤ [`PackedClass::MAX_ROBOTS`]).
    #[must_use]
    pub fn new_for_robots(
        algo: &'a A,
        opts: ExploreOptions,
        budget: u8,
        goal: Goal,
        max_robots: usize,
    ) -> Self {
        Self::with_semantics_for_robots(algo, opts, CrashSemantics::new(budget, goal), max_robots)
    }

    /// The crash budget this explorer was built with.
    #[must_use]
    pub fn budget(&self) -> u8 {
        self.semantics.budget
    }
}

impl<'a, A: Algorithm + ?Sized, S: Semantics> Explorer<'a, A, S> {
    /// Builds an explorer for `algo` over the given semantics, accepting
    /// up to 8 robots. This is the historical constructor: its
    /// equivariance scan (and therefore its dedup decisions and golden
    /// schedules) are byte-identical to the u8-mask era.
    #[must_use]
    pub fn with_semantics(algo: &'a A, opts: ExploreOptions, semantics: S) -> Self {
        Self::with_semantics_for_robots(algo, opts, semantics, 8)
    }

    /// Builds an explorer accepting configurations of up to `max_robots`
    /// robots. The equivariance subgroup is computed over every view
    /// with up to `max_robots - 1` robots (never fewer than the
    /// historical 7), so widening can only shrink the group — dedup
    /// stays sound at every supported count.
    ///
    /// # Panics
    /// Panics if `max_robots` exceeds [`PackedClass::MAX_ROBOTS`].
    #[must_use]
    pub fn with_semantics_for_robots(
        algo: &'a A,
        opts: ExploreOptions,
        semantics: S,
        max_robots: usize,
    ) -> Self {
        assert!(
            max_robots <= PackedClass::MAX_ROBOTS,
            "explorers support at most {} robots",
            PackedClass::MAX_ROBOTS
        );
        let oracle = MoveOracle::new(algo);
        // Scanning the view space for the equivariance subgroup goes
        // through the oracle too: it both dedups the scan's repeated
        // evaluations and pre-warms the memo table with every view the
        // exploration can encounter.
        let group = equivariance_group_for(&oracle, max_robots.max(8));
        Explorer {
            oracle,
            opts,
            group,
            semantics,
            max_robots: max_robots.max(8),
            info_memo: std::sync::Mutex::new(PackedKeyMap::default()),
            table_memo: std::sync::Mutex::new(PackedKeyMap::default()),
            scratch: std::sync::Mutex::new(Vec::new()),
            step_bufs: std::sync::Mutex::new(Vec::new()),
            metrics: ExploreMetrics::default(),
        }
    }

    /// A point-in-time telemetry snapshot: accumulated phase wall
    /// times, memo hit/miss tallies (including the [`MoveOracle`]
    /// decision table), verdict breakdowns, and BFS shape histograms
    /// over every [`check`](Self::check) this explorer has run.
    /// Strictly observational — reading it never changes behavior.
    #[must_use]
    pub fn metrics_snapshot(&self) -> telemetry::Snapshot {
        let mut s = self.metrics.snapshot();
        let (hits, misses) = self.oracle.stats();
        s.add_counter("oracle.hit", hits);
        s.add_counter("oracle.miss", misses);
        s
    }

    /// The algorithm's equivariance subgroup (always contains the
    /// identity).
    #[must_use]
    pub fn group(&self) -> &[PointSymmetry] {
        &self.group
    }

    /// The largest robot count this explorer accepts.
    #[must_use]
    pub fn max_robots(&self) -> usize {
        self.max_robots
    }

    /// Sets the within-class BFS fan-out width (`1` = serial, `0` = all
    /// cores). Purely a wall-clock knob: the level-synchronized merge
    /// replays the serial interning order, so verdicts, statistics and
    /// digests are identical at every setting.
    pub fn set_threads(&mut self, threads: usize) {
        self.opts.threads = parallel::resolve_threads(threads);
    }

    /// Arms (or clears) the cooperative per-class wall-clock deadline
    /// applied to every subsequent [`check`](Self::check); see
    /// [`ExploreOptions::class_timeout`] for the tradeoff.
    pub fn set_class_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.opts.class_timeout = timeout;
    }

    /// Arms (or clears) the deterministic per-class byte budget applied
    /// to every subsequent [`check`](Self::check); see
    /// [`ExploreOptions::mem_budget`].
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.opts.mem_budget = budget;
    }

    /// The semantics this explorer instantiates.
    pub(crate) fn semantics(&self) -> &S {
        &self.semantics
    }

    /// The memoized decision oracle.
    pub(crate) fn oracle(&self) -> &MoveOracle<'a, A> {
        &self.oracle
    }

    /// The out-of-band observability tallies.
    pub(crate) fn metrics(&self) -> &ExploreMetrics {
        &self.metrics
    }

    /// The decision data and shared canonical representative of the
    /// class `key` packs, through the cell-global cache. Successive
    /// per-class searches of one checker revisit heavily overlapping
    /// class sets (for the full n = 7 adversary cell, all 318k interned
    /// states name only 3652 distinct classes), so both the decoded
    /// configuration and its decision vector are materialized once per
    /// class per cell, not once per search. A racing miss recomputes
    /// the same pure value, so the lock is never held across the
    /// computation.
    pub(crate) fn class_entry(
        &self,
        key: PackedClass,
    ) -> (ClassInfo, std::sync::Arc<Configuration>) {
        // Both memo locks recover from poisoning: the sweep layer's
        // per-class panic isolation can leave a lock poisoned by a
        // panicking check, but the maps only ever hold pure values
        // keyed by class and are never mutated while the lock is held
        // across fallible user code — the worst a poisoned lock can
        // hide is a lost insert, never a wrong value.
        if let Some((info, cfg)) = self
            .info_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key.bits())
        {
            self.metrics.info_hit.inc();
            return (*info, std::sync::Arc::clone(cfg));
        }
        self.metrics.info_miss.inc();
        let cfg = std::sync::Arc::new(key.unpack());
        let decisions = engine::compute_moves(&cfg, &self.oracle);
        let mut moves = [None; PackedClass::MAX_ROBOTS];
        moves[..decisions.len()].copy_from_slice(&decisions);
        let movers =
            decisions
                .iter()
                .enumerate()
                .fold(0u16, |acc, (i, m)| if m.is_some() { acc | (1 << i) } else { acc });
        let info = ClassInfo { n: cfg.len() as u8, movers, moves };
        self.info_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.bits(), (info, std::sync::Arc::clone(&cfg)));
        (info, cfg)
    }

    /// The bit-parallel round table of the class `cfg` canonically
    /// represents, through the cell-global cache (see
    /// [`Self::class_info`] for the keying and race discipline).
    pub(crate) fn round_table(
        &self,
        key: PackedClass,
        cfg: &Configuration,
        moves: &[Option<Dir>],
    ) -> std::sync::Arc<engine::RoundTable> {
        if let Some(table) = self
            .table_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key.bits())
        {
            self.metrics.table_hit.inc();
            return std::sync::Arc::clone(table);
        }
        self.metrics.table_miss.inc();
        let table = std::sync::Arc::new(engine::RoundTable::new(cfg, moves));
        self.table_memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.bits(), std::sync::Arc::clone(&table));
        table
    }

    /// Classifies `initial` under the exhaustive adversary of this
    /// instantiation.
    ///
    /// # Panics
    /// Panics if `initial` is disconnected or holds more robots than
    /// this explorer was built for (see
    /// [`Self::with_semantics_for_robots`]).
    #[must_use]
    pub fn check(&self, initial: &Configuration) -> ExploreReport {
        assert!(
            initial.len() <= self.max_robots,
            "this explorer was built for at most {} robots (got {}); \
             construct it with new_for_robots / with_semantics_for_robots",
            self.max_robots,
            initial.len()
        );
        assert!(initial.is_connected(), "the paper's model starts connected");
        // Lease a scratch from the pool (cleared on return, so a
        // leased buffer is always empty) instead of growing a fresh
        // one: across the ~77k classes of a sweep cell this is the
        // difference between per-class allocator churn and steady
        // state. See [`SearchScratch`] for why reuse is sound.
        let scratch = self
            .scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        let mut search = Search {
            explorer: self,
            scratch,
            edges: 0,
            deduped: 0,
            deadline: self.opts.class_timeout.map(|t| std::time::Instant::now() + t),
            deadline_ticks: std::sync::atomic::AtomicU32::new(0),
        };
        let verdict = search.run(initial);

        // Out-of-band bookkeeping on the finished search; none of it
        // can reach the report or any digest.
        let m = &self.metrics;
        m.checks.inc();
        m.states.add(search.scratch.states.len() as u64);
        m.edges.add(search.edges as u64);
        m.deduped.add(search.deduped as u64);
        m.arena_classes.record(search.scratch.arena.len() as u64);
        m.states_per_check.record(search.scratch.states.len() as u64);
        let pct = |used: usize, cap: usize| -> u64 {
            let cap = cap.max(1) as u128;
            ((used as u128 * 100) / cap).min(u64::MAX as u128) as u64
        };
        m.budget_states_pct.record(pct(search.scratch.states.len(), self.opts.max_states));
        m.budget_edges_pct.record(pct(search.edges, self.opts.max_edges));
        m.arena_bytes.record(search.scratch.arena.heap_bytes() as u64);
        let visited = search.scratch.states.heap_bytes()
            + search.scratch.info.capacity() * size_of::<ClassInfo>()
            + search.scratch.variant_head.capacity() * size_of::<u32>()
            + search.scratch.variant_pool.capacity() * size_of::<VariantEntry<S::Aux>>();
        m.visited_bytes.record(visited as u64);
        let frontier = (search.scratch.levels.capacity() + search.scratch.frontier_buf.capacity())
            * size_of::<u32>();
        m.frontier_bytes.record(frontier as u64);
        m.peak_bytes.record(search.scratch.heap_bytes() as u64);
        match &verdict {
            ExploreVerdict::Proof => m.verdict_proof.inc(),
            ExploreVerdict::Refuted { .. } => m.verdict_refuted.inc(),
            ExploreVerdict::Undecided { reason, .. } => {
                m.verdict_undecided.inc();
                match reason {
                    UndecidedReason::States => m.undecided_states.inc(),
                    UndecidedReason::Edges => m.undecided_edges.inc(),
                    UndecidedReason::FairDepth => m.undecided_fair_depth.inc(),
                    UndecidedReason::Timeout => m.undecided_timeout.inc(),
                    UndecidedReason::MemBudget => m.undecided_mem_budget.inc(),
                    UndecidedReason::Panicked => m.undecided_panicked.inc(),
                }
            }
        }

        let report = ExploreReport {
            verdict,
            states: search.scratch.states.len(),
            edges: search.edges,
            deduped: search.deduped,
        };
        let Search { scratch: mut lease, .. } = search;
        lease.clear();
        self.scratch.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(lease);
        report
    }

    /// Index permutations induced on `cfg` by the stabilizer of its
    /// class within the equivariance subgroup (identity omitted),
    /// restricted to permutations that also fix the auxiliary key — a
    /// symmetry that maps, say, a crashed robot onto a live one (or a
    /// pending robot onto an idle one) does not commute with the
    /// auxiliary state. The stabilizer test compares packed class
    /// keys, so non-stabilizing symmetries (the common case) are
    /// rejected without any allocation.
    pub(crate) fn stabilizer_perms(&self, cfg: &Configuration, aux: S::Aux) -> Vec<Vec<usize>> {
        let positions = cfg.positions();
        let n = positions.len();
        let class_key = cfg.canonical_key();
        let mut perms = Vec::new();
        let mut mapped = [ORIGIN; PackedClass::MAX_ROBOTS];
        for &s in &self.group[1..] {
            for (m, &p) in mapped[..n].iter_mut().zip(positions) {
                *m = s.apply(p);
            }
            if PackedClass::of_cells(&mapped[..n]) != class_key {
                continue;
            }
            let delta = *mapped[..n]
                .iter()
                .min_by_key(|c| polyhex::key(**c))
                .expect("configurations are non-empty");
            let perm: Vec<usize> = mapped[..n]
                .iter()
                .map(|&q| {
                    let normalized = q - delta;
                    positions
                        .iter()
                        .position(|&p| p == normalized)
                        .expect("stabilizer permutes the class")
                })
                .collect();
            if S::permute_aux(aux, n, |i| perm[i], s) != aux {
                continue;
            }
            perms.push(perm);
        }
        perms
    }
}

/// Image of a slot bitmask under an index permutation.
fn apply_perm_mask(mask: u16, perm: &[usize]) -> u16 {
    let mut mapped = 0u16;
    for (i, &j) in perm.iter().enumerate() {
        if mask & (1 << i) != 0 {
            mapped |= 1 << j;
        }
    }
    mapped
}

/// Minimal representative of the action's orbit under the index
/// permutations, ordered by `(crash, activate)`.
pub(crate) fn canonical_action(action: CrashRound, perms: &[Vec<usize>]) -> CrashRound {
    let mut best = action;
    for perm in perms {
        let mapped = CrashRound {
            crash: apply_perm_mask(action.crash, perm),
            activate: apply_perm_mask(action.activate, perm),
        };
        if (mapped.crash, mapped.activate) < (best.crash, best.activate) {
            best = mapped;
        }
    }
    best
}

/// Movement rounds of a schedule: injection-only actions do not count.
/// (Every ASYNC action activates one robot, so there the count is the
/// schedule length — one tick per phase advance.)
fn movement_rounds(schedule: &[CrashRound]) -> usize {
    schedule.iter().filter(|a| a.activate != 0).count()
}

/// One `check` call's working state: the interned state graph plus the
/// exploration statistics. [`Semantics`] implementations drive it
/// through the crate-private mutation surface below.
pub struct Search<'c, 'a, A: Algorithm + ?Sized, S: Semantics> {
    explorer: &'c Explorer<'a, A, S>,
    /// The leased storage: state columns, arena, variant chains, edge
    /// pool and level buffers (see [`SearchScratch`]).
    scratch: SearchScratch<S::Aux>,
    edges: usize,
    deduped: usize,
    /// Wall-clock deadline of this check when
    /// [`ExploreOptions::class_timeout`] is armed; `None` keeps the
    /// clock entirely out of the search.
    deadline: Option<std::time::Instant>,
    /// Strided deadline poll counter — atomic so the read-only phases
    /// (and the parallel fan-out, which shares the search immutably)
    /// can bump it behind `&self`. Purely a cost amortizer: it never
    /// influences anything but how often the clock is read.
    deadline_ticks: std::sync::atomic::AtomicU32,
}

/// How many deadline poll sites pass between actual clock reads. At
/// the Phase A edge rate (millions/s) this bounds the overshoot well
/// under a millisecond while keeping the per-edge cost to one
/// relaxed `fetch_add`.
const DEADLINE_STRIDE: u32 = 1024;

impl<'c, 'a, A: Algorithm + ?Sized, S: Semantics> Search<'c, 'a, A, S> {
    /// The explorer this search runs under.
    pub(crate) fn explorer(&self) -> &'c Explorer<'a, A, S> {
        self.explorer
    }

    /// `(class id, aux, rounds)` of state `id`.
    pub(crate) fn state(&self, id: usize) -> (u32, S::Aux, usize) {
        let s = &self.scratch.states;
        (s.class[id], s.aux[id], s.rounds[id] as usize)
    }

    /// The terminal classification of state `id`.
    pub(crate) fn node_kind(&self, id: usize) -> NodeKind {
        self.scratch.states.kind[id]
    }

    /// The canonical representative of class `class`.
    pub(crate) fn class_cfg(&self, class: u32) -> &Configuration {
        self.scratch.arena.get(class)
    }

    /// The per-class decision data of class `class`.
    pub(crate) fn info(&self, class: u32) -> ClassInfo {
        self.scratch.info[class as usize]
    }

    /// Counts one expanded transition.
    pub(crate) fn bump_edges(&mut self) {
        self.edges += 1;
    }

    /// Counts one action skipped by the stabilizer reduction.
    pub(crate) fn bump_deduped(&mut self) {
        self.deduped += 1;
    }

    /// Occupied bytes of the search's live storage, as a **pure
    /// function of the interned counts** — never of allocator
    /// capacities, which depend on scratch-pool history. This is what
    /// the byte budget compares against, so budget-armed verdicts are
    /// byte-identical across thread counts, shardings and pool reuse.
    /// (BFS level storage is folded in as one `u32` per state — every
    /// inner state is queued exactly once.)
    pub(crate) fn live_bytes(&self) -> usize {
        let s = &self.scratch;
        s.arena.live_bytes()
            + s.states.len() * (StateStore::<S::Aux>::BYTES_PER_STATE + size_of::<u32>())
            + s.info.len() * size_of::<ClassInfo>()
            + s.variant_head.len() * size_of::<u32>()
            + s.variant_pool.len() * size_of::<VariantEntry<S::Aux>>()
            + s.edge_pool.len() * size_of::<PackedEdge>()
    }

    /// Whether a search budget is exhausted.
    pub(crate) fn over_budget(&self) -> bool {
        let opts = &self.explorer.opts;
        self.scratch.states.len() > opts.max_states
            || self.edges > opts.max_edges
            || opts.mem_budget.is_some_and(|cap| self.live_bytes() > cap)
    }

    /// The undecided verdict for a tripped BFS budget, recording which
    /// counter exhausted (states before edges before bytes when several
    /// did — the state cap is the one that names the blown arena).
    pub(crate) fn budget_undecided(&self) -> ExploreVerdict {
        let reason = if self.scratch.states.len() > self.explorer.opts.max_states {
            UndecidedReason::States
        } else if self.edges > self.explorer.opts.max_edges {
            UndecidedReason::Edges
        } else {
            UndecidedReason::MemBudget
        };
        ExploreVerdict::Undecided { depth: self.explorer.opts.fair_depth, reason }
    }

    /// Whether the armed wall-clock deadline has passed, polling the
    /// clock only once per [`DEADLINE_STRIDE`] calls. With no deadline
    /// armed (the production default) this is a single `Option`
    /// branch — the clock is never read and verdicts stay purely
    /// counter-budgeted.
    pub(crate) fn deadline_tripped(&self) -> bool {
        let Some(deadline) = self.deadline else { return false };
        let tick = self.deadline_ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if !tick.is_multiple_of(DEADLINE_STRIDE) {
            return false;
        }
        std::time::Instant::now() >= deadline
    }

    /// Unstrided deadline poll for coarse sites (level and phase
    /// boundaries), where one clock read per call is negligible.
    fn deadline_passed_now(&self) -> bool {
        self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// The undecided verdict for an expired per-class deadline.
    pub(crate) fn timeout_undecided(&self) -> ExploreVerdict {
        ExploreVerdict::Undecided {
            depth: self.explorer.opts.fair_depth,
            reason: UndecidedReason::Timeout,
        }
    }

    /// Records the expanded edge `(action, succ)` on state `id`. Edges
    /// of a state are recorded back-to-back (expansion finishes one
    /// state before the next starts), which is what lets the pool stay
    /// flat.
    pub(crate) fn push_edge(&mut self, id: usize, action: CrashRound, succ: usize) {
        let offset = u32::try_from(self.scratch.edge_pool.len()).expect("fewer than 2^32 edges");
        let states = &mut self.scratch.states;
        if states.edge_len[id] == 0 {
            states.edge_start[id] = offset;
        }
        debug_assert_eq!(
            states.edge_start[id] + states.edge_len[id],
            offset,
            "interleaved expansion"
        );
        states.edge_len[id] += 1;
        self.scratch.edge_pool.push(PackedEdge { action: pack_action(action), to: succ as u32 });
    }

    /// The expanded edges of state `id`.
    fn edges_of(&self, id: usize) -> &[PackedEdge] {
        let s = &self.scratch.states;
        let start = s.edge_start[id] as usize;
        &self.scratch.edge_pool[start..start + s.edge_len[id] as usize]
    }

    /// Interns `raw`'s translation class, computing its decision
    /// vector on first sight. This is the explorer's hottest path: the
    /// packed key folds the canonical translation without allocating,
    /// so a revisited class costs one `u128` hash lookup.
    fn intern_class(&mut self, raw: &Configuration) -> u32 {
        self.intern_class_key(raw.canonical_key())
    }

    /// Interns an already-packed canonical class key — the merge-side
    /// twin of [`Search::intern_class`] for successors whose key a
    /// pure expansion computed without materializing a
    /// [`Configuration`].
    fn intern_class_key(&mut self, key: PackedClass) -> u32 {
        if let Some(class) = self.scratch.arena.lookup_key(key) {
            return class;
        }
        let (info, cfg) = self.explorer.class_entry(key);
        let class = self.scratch.arena.insert_shared(key, cfg);
        self.scratch.info.push(info);
        self.scratch.variant_head.push(NO_VARIANT);
        class
    }

    /// Interns the state `(class of raw, aux)` where `aux` is already
    /// expressed over `raw`'s row-major slots. Returns
    /// `(id, newly_inserted)`. Row-major order is translation-invariant
    /// and canonicalisation only translates, so a slot index in `raw`
    /// is its slot in the canonical representative — no canonical
    /// configuration is materialized here.
    pub(crate) fn intern_state(
        &mut self,
        raw: &Configuration,
        aux: S::Aux,
        rounds: usize,
        parent: Option<(usize, CrashRound)>,
    ) -> (usize, bool) {
        let class = self.intern_class(raw);
        self.intern_variant(class, aux, rounds, parent)
    }

    /// Interns the state `(class, aux)` for an already-interned class —
    /// the fast path for actions that leave the configuration (and thus
    /// the slot indexing of the aux) unchanged.
    pub(crate) fn intern_variant(
        &mut self,
        class: u32,
        aux: S::Aux,
        rounds: usize,
        parent: Option<(usize, CrashRound)>,
    ) -> (usize, bool) {
        let mut cur = self.scratch.variant_head[class as usize];
        while cur != NO_VARIANT {
            let e = &self.scratch.variant_pool[cur as usize];
            if e.aux == aux {
                return (e.state as usize, false);
            }
            cur = e.next;
        }
        let info = &self.scratch.info[class as usize];
        let kind = self.explorer.semantics.classify(self.scratch.arena.get(class), info, aux);
        let id = self.scratch.states.len();
        let (parent, parent_action) = match parent {
            Some((p, a)) => (p as u32, pack_action(a)),
            None => (NO_PARENT, 0),
        };
        let head = self.scratch.variant_head[class as usize];
        self.scratch.variant_pool.push(VariantEntry { aux, state: id as u32, next: head });
        self.scratch.variant_head[class as usize] = (self.scratch.variant_pool.len() - 1) as u32;
        self.scratch.states.push(class, aux, rounds as u32, parent, parent_action, kind);
        (id, true)
    }

    /// Applies one [`PureStep`] of state `id` under `action`, replaying
    /// the exact serial expansion semantics: the same counter bumps in
    /// the same order, the same refutation outcomes, the same queue
    /// pushes and the same per-action budget checks. The parallel
    /// fan-out funnels every speculatively enumerated step through this
    /// method in frontier order, which is why its verdicts, statistics
    /// and schedules are byte-identical to the serial search.
    pub(crate) fn apply_step(
        &mut self,
        id: usize,
        action: CrashRound,
        step: PureStep<S::Aux>,
        queue: &mut Vec<u32>,
    ) -> Option<ExploreVerdict> {
        let rounds = self.scratch.states.rounds[id] as usize;
        match step {
            PureStep::Dedup => {
                self.bump_deduped();
                None
            }
            PureStep::Collide(collision) => {
                let mut schedule = self.path_to(id);
                schedule.push(action);
                Some(ExploreVerdict::Refuted {
                    schedule,
                    outcome: Outcome::Collision { round: rounds, collision },
                })
            }
            PureStep::Disconnect => {
                self.bump_edges();
                let mut schedule = self.path_to(id);
                schedule.push(action);
                Some(ExploreVerdict::Refuted {
                    schedule,
                    outcome: Outcome::Disconnected { round: rounds + 1 },
                })
            }
            PureStep::Variant(aux) => {
                self.bump_edges();
                let (succ, new) = self.intern_variant(
                    self.scratch.states.class[id],
                    aux,
                    rounds,
                    Some((id, action)),
                );
                if new && self.node_kind(succ) == NodeKind::Stuck {
                    let mut schedule = self.path_to(id);
                    schedule.push(action);
                    return Some(ExploreVerdict::Refuted {
                        schedule,
                        outcome: Outcome::StuckFixpoint { rounds },
                    });
                }
                self.push_edge(id, action, succ);
                if self.over_budget() {
                    return Some(self.budget_undecided());
                }
                if self.deadline_tripped() {
                    return Some(self.timeout_undecided());
                }
                None
            }
            PureStep::Succ(key, aux) => {
                self.bump_edges();
                let class = self.intern_class_key(key);
                let (succ, new) = self.intern_variant(class, aux, rounds + 1, Some((id, action)));
                if new {
                    if self.node_kind(succ) == NodeKind::Stuck {
                        let mut schedule = self.path_to(id);
                        schedule.push(action);
                        return Some(ExploreVerdict::Refuted {
                            schedule,
                            outcome: Outcome::StuckFixpoint { rounds: rounds + 1 },
                        });
                    }
                    queue.push(succ as u32);
                }
                self.push_edge(id, action, succ);
                if self.over_budget() {
                    return Some(self.budget_undecided());
                }
                if self.deadline_tripped() {
                    return Some(self.timeout_undecided());
                }
                None
            }
        }
    }

    /// Shared scaffolding of a certificate traversal
    /// ([`Semantics::traverse`]): role tracking through a closed state
    /// walk, row-major re-sorting after every action, the
    /// walk-divergence assert, and the final role permutation. `seed`
    /// pre-flags roles exempt from fairness (role-indexed, which at
    /// the start state equals slot-indexed); `step` applies one
    /// action's semantics-specific effect — moving roles and setting
    /// fairness flags — given the current state id.
    pub(crate) fn traverse_roles(
        &self,
        start: usize,
        cycle: &[(CrashRound, usize)],
        seed: impl FnOnce(&mut [bool]),
        mut step: impl FnMut(usize, CrashRound, &mut RoleWalk),
    ) -> CycleCert {
        let (start_class, _, _) = self.state(start);
        let start_cfg = self.class_cfg(start_class);
        let n = start_cfg.len();
        // pos[r] = current coordinate of the robot that began in
        // row-major slot r; role_at[i] = which role sits in slot i.
        let mut walk = RoleWalk {
            pos: start_cfg.positions().to_vec(),
            role_at: (0..n).collect(),
            flags: vec![false; n],
        };
        seed(&mut walk.flags);
        let mut masks = Vec::with_capacity(cycle.len());
        let mut cur = start;
        for &(action, next) in cycle {
            step(cur, action, &mut walk);
            // Re-derive the slot ordering of the new configuration
            // (the identity re-sort when no robot moved).
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&r| polyhex::key(walk.pos[r]));
            walk.role_at = order;
            masks.push(action);
            cur = next;
            debug_assert_eq!(
                &Configuration::new(walk.pos.iter().copied()).canonical(),
                self.class_cfg(self.state(cur).0),
                "certificate walk diverged from the state graph"
            );
        }
        // The walk returned to the start state, translated by delta.
        let mut perm = vec![0usize; n];
        for (slot, &role) in walk.role_at.iter().enumerate() {
            perm[role] = slot;
        }
        CycleCert { masks, perm, flags: walk.flags }
    }

    /// Actions from the initial state to `id`, via BFS parents.
    pub(crate) fn path_to(&self, id: usize) -> Vec<CrashRound> {
        let mut actions = Vec::new();
        let mut cur = id;
        loop {
            let parent = self.scratch.states.parent[cur];
            if parent == NO_PARENT {
                break;
            }
            actions.push(unpack_action(self.scratch.states.parent_action[cur]));
            cur = parent as usize;
        }
        actions.reverse();
        actions
    }

    fn run(&mut self, initial: &Configuration) -> ExploreVerdict {
        let root_aux = self.explorer.semantics.root_aux();
        let (root, _) = self.intern_state(initial, root_aux, 0, None);
        if self.scratch.states.kind[root] == NodeKind::Stuck {
            return ExploreVerdict::Refuted {
                schedule: Vec::new(),
                outcome: Outcome::StuckFixpoint { rounds: 0 },
            };
        }

        // Phase A: BFS over the reachable state graph, one level at a
        // time; the first bad terminal yields a minimal counterexample
        // schedule. All levels share one flat `levels` vector: the
        // current level is the window `[lo, hi)` and children append
        // past `hi`, so advancing `lo` to `hi` is the level barrier —
        // no per-level `Vec` allocation. Children always join the
        // *next* level, so walking each window in order reproduces the
        // historical single-queue FIFO order exactly — discovery
        // order, statistics and schedules are byte-identical with or
        // without the parallel fan-out. The phase timers and level
        // tallies around the loop are write-only telemetry; they never
        // influence the walk.
        let metrics = self.explorer.metrics();
        let watch = telemetry::Stopwatch::started();
        let mut found: Option<ExploreVerdict> = None;
        let mut levels = std::mem::take(&mut self.scratch.levels);
        let mut frontier_buf = std::mem::take(&mut self.scratch.frontier_buf);
        levels.clear();
        levels.push(root as u32);
        let mut lo = 0usize;
        'levels: while lo < levels.len() {
            let hi = levels.len();
            if self.deadline_passed_now() {
                found = Some(self.timeout_undecided());
                break 'levels;
            }
            metrics.levels.inc();
            metrics.frontier_width.record((hi - lo) as u64);
            let threads = self.explorer.opts.threads;
            if S::PARALLEL && threads > 1 && hi - lo >= self.explorer.opts.par_frontier {
                metrics.levels_parallel.inc();
                frontier_buf.clear();
                frontier_buf.extend(
                    levels[lo..hi]
                        .iter()
                        .copied()
                        .filter(|&id| self.scratch.states.kind[id as usize] == NodeKind::Inner),
                );
                if let Some(verdict) =
                    self.expand_level_parallel(&frontier_buf, threads, &mut levels)
                {
                    found = Some(verdict);
                    break 'levels;
                }
            } else {
                for i in lo..hi {
                    let id = levels[i] as usize;
                    if self.scratch.states.kind[id] != NodeKind::Inner {
                        continue;
                    }
                    let explorer = self.explorer;
                    if let Some(verdict) = explorer.semantics().expand(self, id, &mut levels) {
                        found = Some(verdict);
                        break 'levels;
                    }
                    if self.over_budget() {
                        found = Some(self.budget_undecided());
                        break 'levels;
                    }
                }
            }
            lo = hi;
        }
        self.scratch.levels = levels;
        self.scratch.frontier_buf = frontier_buf;
        watch.flush(&metrics.phase_a_ns);
        if let Some(verdict) = found {
            return verdict;
        }

        // Phase B: no bad terminal is reachable. If the graph —
        // quotiented by the equivariance subgroup — is acyclic, every
        // fair schedule terminates, and all terminals are goals: proof.
        let watch = telemetry::Stopwatch::started();
        let acyclic = self.quotient_is_acyclic();
        watch.flush(&metrics.phase_b_ns);
        if acyclic {
            return ExploreVerdict::Proof;
        }
        if self.deadline_passed_now() {
            return self.timeout_undecided();
        }

        // Phase C: hunt for a fairly-pumpable cycle with the bounded
        // certificate-composition heuristic. This runs first because
        // its refutation schedules are the golden-pinned ones.
        let watch = telemetry::Stopwatch::started();
        let cycle = self.find_fair_cycle();
        watch.flush(&metrics.phase_c_ns);
        if let Some(verdict) = cycle {
            return verdict;
        }

        // Phase D: the heuristic is incomplete (bounded simple cycles
        // through one start node, bounded compositions), so decide
        // exactly on the role-tracking product automaton — a proof or a
        // stitched refutation lasso, undecided only if the product
        // itself overflows its cap (DESIGN.md §15).
        let watch = telemetry::Stopwatch::started();
        let verdict = self.decide_fair_product();
        watch.flush(&metrics.phase_d_ns);
        verdict
    }

    /// Expands one BFS level with a parallel pure-enumeration pass and
    /// a deterministic in-order merge. Workers compute each inner
    /// state's [`PureStep`] list against the frozen level-start search
    /// (shared immutably — no locks, no interleaving); the merge then
    /// replays every list through [`Search::apply_step`] in frontier
    /// order. A verdict discovered at frontier position `i` discards
    /// the speculative work of positions `> i`, exactly as the serial
    /// loop never would have expanded them.
    fn expand_level_parallel(
        &mut self,
        inner: &[u32],
        threads: usize,
        next: &mut Vec<u32>,
    ) -> Option<ExploreVerdict> {
        let explorer = self.explorer;
        let step_lists: Vec<StepBuf<S::Aux>> = {
            let shared: &Self = self;
            parallel::stealing::par_map_stealing(inner, threads, |&id| {
                let mut out = explorer
                    .step_bufs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop()
                    .unwrap_or_default();
                explorer.semantics().expand_pure(shared, id as usize, &mut out);
                out
            })
        };
        for (&id, mut steps) in inner.iter().zip(step_lists) {
            for (action, step) in steps.drain(..) {
                if let Some(verdict) = self.apply_step(id as usize, action, step, next) {
                    return Some(verdict);
                }
            }
            explorer
                .step_bufs
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(steps);
            if self.over_budget() {
                return Some(self.budget_undecided());
            }
        }
        None
    }

    /// Whether the state graph, with nodes identified up to the
    /// algorithm's equivariance subgroup, is acyclic. The quotient is
    /// what must be checked: a subtree skipped by the stabilizer
    /// reduction is isomorphic to an explored one, so cycles in the
    /// full graph correspond exactly to closed walks in the quotient.
    ///
    /// Orbit keys are packed: each symmetry image is transformed,
    /// sorted and folded into a `(u128, u32)` pair on the stack — the
    /// class bits plus the permuted aux bits — and the orbit minimum of
    /// those pairs names the quotient node. Packing is injective, so
    /// the orbit partition is exactly the one unpacked
    /// `(Vec<Coord>, aux)` keys would induce — only the (free) choice
    /// of representative changed, which cannot affect whether the
    /// quotient graph has a cycle.
    fn quotient_is_acyclic(&self) -> bool {
        if self.explorer.group.len() == 1 {
            // Identity-only group: the orbit key of a state is the
            // state itself, so the quotient *is* the explored graph —
            // run the cycle DFS directly on it, skipping the per-state
            // orbit packing and the quotient interning entirely.
            return self.state_graph_acyclic();
        }
        let mut qid_of_key: HashMap<(u128, u32), usize> = HashMap::new();
        let mut qid: Vec<usize> = Vec::with_capacity(self.scratch.states.len());
        for i in 0..self.scratch.states.len() {
            let (s_class, s_aux) = (self.scratch.states.class[i], self.scratch.states.aux[i]);
            let positions = self.scratch.arena.get(s_class).positions();
            let n = positions.len();
            let key = self
                .explorer
                .group
                .iter()
                .map(|sym| {
                    let mut mapped = [ORIGIN; PackedClass::MAX_ROBOTS];
                    for (m, &p) in mapped[..n].iter_mut().zip(positions) {
                        *m = sym.apply(p);
                    }
                    // Sort slot indices by the row-major order of the
                    // images: slot `k` of the transformed canonical
                    // form holds the robot from original slot `idx[k]`.
                    let mut idx: [usize; PackedClass::MAX_ROBOTS] = std::array::from_fn(|i| i);
                    idx[..n].sort_unstable_by_key(|&i| polyhex::key(mapped[i]));
                    let delta = mapped[idx[0]];
                    let mut cells = [ORIGIN; PackedClass::MAX_ROBOTS];
                    let mut inv = [0usize; PackedClass::MAX_ROBOTS];
                    for k in 0..n {
                        cells[k] = mapped[idx[k]] - delta;
                        inv[idx[k]] = k;
                    }
                    let aux = S::permute_aux(s_aux, n, |i| inv[i], *sym);
                    (PackedClass::of_sorted(&cells[..n]).bits(), S::aux_bits(aux))
                })
                .min()
                .expect("the group contains the identity");
            let next = qid_of_key.len();
            qid.push(*qid_of_key.entry(key).or_insert(next));
        }
        let nq = qid_of_key.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nq];
        for i in 0..self.scratch.states.len() {
            for e in self.edges_of(i) {
                adj[qid[i]].push(qid[e.to as usize]);
            }
        }
        // Iterative three-colour DFS.
        let mut colour = vec![0u8; nq]; // 0 white, 1 grey, 2 black
        for start in 0..nq {
            if colour[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < adj[node].len() {
                    let to = adj[node][*next];
                    *next += 1;
                    match colour[to] {
                        0 => {
                            colour[to] = 1;
                            stack.push((to, 0));
                        }
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                } else {
                    colour[node] = 2;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Three-colour cycle DFS straight over the explored state graph —
    /// the identity-group specialization of [`Self::quotient_is_acyclic`].
    fn state_graph_acyclic(&self) -> bool {
        let n = self.scratch.states.len();
        let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
        for start in 0..n {
            if colour[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let es = self.edges_of(node);
                if *next < es.len() {
                    let to = es[*next].to as usize;
                    *next += 1;
                    match colour[to] {
                        0 => {
                            colour[to] = 1;
                            stack.push((to, 0));
                        }
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                } else {
                    colour[node] = 2;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Searches strongly connected components of the explored graph for
    /// a cycle whose pumped execution is fair; returns the refutation
    /// lasso if one is found.
    fn find_fair_cycle(&self) -> Option<ExploreVerdict> {
        let sccs = self.tarjan_sccs();
        for scc in sccs {
            let has_cycle =
                scc.len() > 1 || self.edges_of(scc[0]).iter().any(|e| e.to as usize == scc[0]);
            if !has_cycle {
                continue;
            }
            let in_scc: std::collections::HashSet<usize> = scc.iter().copied().collect();
            for &start in &scc {
                if self.deadline_passed_now() {
                    return Some(self.timeout_undecided());
                }
                let cycles = self.collect_cycles(start, &in_scc);
                if cycles.is_empty() {
                    continue;
                }
                let certs: Vec<CycleCert> = cycles
                    .iter()
                    .map(|c| self.explorer.semantics.traverse(self, start, c))
                    .collect();
                for cert in &certs {
                    if cert.is_fair() {
                        return Some(self.lasso(start, cert));
                    }
                }
                // Single cycles may starve a parked robot that another
                // cycle through the same state activates: compose them.
                let mut acc = certs[0].clone();
                for round in 1..=self.explorer.opts.fair_depth {
                    acc = acc.compose(&certs[round % certs.len()]);
                    if acc.is_fair() {
                        return Some(self.lasso(start, &acc));
                    }
                }
            }
        }
        None
    }

    /// Simple cycles through `start` inside its SCC, as action/state
    /// sequences, found by bounded DFS (deterministic budgets).
    fn collect_cycles(
        &self,
        start: usize,
        in_scc: &std::collections::HashSet<usize>,
    ) -> Vec<Vec<(CrashRound, usize)>> {
        const MAX_CYCLES: usize = 32;
        const NODE_BUDGET: usize = 20_000;
        let depth_cap = self.explorer.opts.fair_depth;
        let mut cycles = Vec::new();
        let mut budget = NODE_BUDGET;
        let mut on_path = vec![false; self.scratch.states.len()];
        let mut path: Vec<(CrashRound, usize)> = Vec::new();
        self.dfs_cycles(
            start,
            start,
            in_scc,
            depth_cap,
            &mut budget,
            &mut on_path,
            &mut path,
            &mut cycles,
            MAX_CYCLES,
        );
        cycles
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_cycles(
        &self,
        node: usize,
        start: usize,
        in_scc: &std::collections::HashSet<usize>,
        depth_left: usize,
        budget: &mut usize,
        on_path: &mut [bool],
        path: &mut Vec<(CrashRound, usize)>,
        cycles: &mut Vec<Vec<(CrashRound, usize)>>,
        max_cycles: usize,
    ) {
        if depth_left == 0 || cycles.len() >= max_cycles || *budget == 0 {
            return;
        }
        *budget -= 1;
        on_path[node] = true;
        for &PackedEdge { action, to } in self.edges_of(node) {
            let (action, to) = (unpack_action(action), to as usize);
            if to == start {
                let mut cycle = path.clone();
                cycle.push((action, to));
                cycles.push(cycle);
                if cycles.len() >= max_cycles {
                    break;
                }
                continue;
            }
            if !in_scc.contains(&to) || on_path[to] {
                continue;
            }
            path.push((action, to));
            self.dfs_cycles(
                to,
                start,
                in_scc,
                depth_left - 1,
                budget,
                on_path,
                path,
                cycles,
                max_cycles,
            );
            path.pop();
        }
        on_path[node] = false;
    }

    /// Builds the lasso refutation: BFS prefix to `start`, then the
    /// certificate's actions; replaying it runs to the step limit
    /// without settling at a goal.
    fn lasso(&self, start: usize, cert: &CycleCert) -> ExploreVerdict {
        let mut schedule = self.path_to(start);
        schedule.extend_from_slice(&cert.masks);
        let rounds = movement_rounds(&schedule);
        ExploreVerdict::Refuted { schedule, outcome: Outcome::StepLimit { rounds } }
    }

    /// Tarjan's SCC algorithm (iterative), components in deterministic
    /// order.
    fn tarjan_sccs(&self) -> Vec<Vec<usize>> {
        let n = self.scratch.states.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        let mut counter = 0usize;
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ei)) = call.last_mut() {
                if *ei == 0 {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let es = self.edges_of(v);
                if *ei < es.len() {
                    let w = es[*ei].to as usize;
                    *ei += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        sccs
    }

    /// Phase D: the *complete* fair-cycle decision. Phase C's heuristic
    /// (bounded simple cycles through one start node, bounded
    /// compositions) can miss fair pumps whose witness needs a longer
    /// or non-simple closed walk; this phase decides each cyclic SCC
    /// exactly on the role-tracking product automaton (DESIGN.md §15):
    ///
    /// * a reachable product structure covering every role yields a
    ///   stitched refutation lasso;
    /// * no coverage — even with stabilizer relabelings folded in —
    ///   proves no fair schedule can stay in the SCC forever, and once
    ///   every SCC is ruled out, every fair schedule reaches a (good)
    ///   terminal: proof;
    /// * only a product overflow (or the symmetric corner case noted in
    ///   [`Search::product_fair_cycle`]) stays undecided.
    fn decide_fair_product(&self) -> ExploreVerdict {
        for scc in self.tarjan_sccs() {
            if self.deadline_passed_now() {
                return self.timeout_undecided();
            }
            let has_cycle =
                scc.len() > 1 || self.edges_of(scc[0]).iter().any(|e| e.to as usize == scc[0]);
            if !has_cycle {
                continue;
            }
            match self.product_fair_cycle(&scc) {
                ProductOutcome::Refuted(verdict) => return verdict,
                ProductOutcome::NoFairCycle => {}
                ProductOutcome::Undecided => {
                    // An expired deadline surfaces here as an aborted
                    // product sweep; attribute it honestly instead of
                    // blaming the fair-depth cap.
                    if self.deadline_passed_now() {
                        return self.timeout_undecided();
                    }
                    return ExploreVerdict::Undecided {
                        depth: self.explorer.opts.fair_depth,
                        reason: UndecidedReason::FairDepth,
                    };
                }
            }
        }
        ExploreVerdict::Proof
    }

    /// Decides one cyclic SCC on the product automaton over
    /// `(state, slot → role assignment)` pairs.
    ///
    /// Every SCC-internal edge gets a one-traversal certificate (a pure
    /// function of the edge): the induced slot permutation plus the
    /// slots whose occupant satisfies fairness on that edge. The
    /// reachable product from `(scc[0], identity)` is strongly
    /// connected — closed walks at a state induce a sub*group* of slot
    /// permutations, so every reachable assignment can be walked back —
    /// which reduces generalized-Büchi acceptance to one reachability
    /// sweep: a fair pump exists iff the union of reachable product
    /// edges' covered-role masks is complete.
    ///
    /// A second sweep folds in the stabilizer permutations as
    /// flag-free ε-edges: executions of the *full* (un-deduped) system
    /// map onto explored walks only up to stabilizer relabeling, so a
    /// proof must also rule out coverage under those relabelings. The
    /// asymmetric corner — coverage complete only *with* ε-edges —
    /// would need deduped actions to stitch a concrete schedule and is
    /// reported undecided instead of guessed.
    fn product_fair_cycle(&self, scc: &[usize]) -> ProductOutcome {
        let n = self.info(self.scratch.states.class[scc[0]]).robots();
        let all_roles: u16 = (1u16 << n) - 1;
        let semantics = self.explorer.semantics();
        let mut edges_of: Vec<Vec<ProductEdge>> = Vec::with_capacity(scc.len());
        for &u in scc {
            let mut list = Vec::new();
            for e in self.edges_of(u) {
                let to = e.to as usize;
                let Ok(tidx) = scc.binary_search(&to) else { continue };
                let action = unpack_action(e.action);
                let cert = semantics.traverse(self, u, &[(action, to)]);
                let mut perm = [0u8; PackedClass::MAX_ROBOTS];
                let mut flags = 0u16;
                for (r, p) in perm.iter_mut().enumerate().take(n) {
                    *p = cert.perm[r] as u8;
                    if cert.flags[r] {
                        flags |= 1 << r;
                    }
                }
                list.push(ProductEdge {
                    action: pack_action(action),
                    to: tidx as u32,
                    perm,
                    flags,
                });
            }
            edges_of.push(list);
        }

        // Pass 1: edge permutations only — coverage here stitches into
        // a concrete (deduped-action-free) refutation schedule.
        let Some((padj, covered)) = self.product_reach(&edges_of, None, n) else {
            return ProductOutcome::Undecided;
        };
        if covered == all_roles {
            match self.stitch_product_cycle(scc[0], &padj, all_roles) {
                Some(verdict) => return ProductOutcome::Refuted(verdict),
                None => {
                    debug_assert!(false, "full product coverage must stitch a lasso");
                    return ProductOutcome::Undecided;
                }
            }
        }

        // Pass 2: widen with stabilizer ε-edges before claiming a
        // proof. When no SCC state has a nontrivial stabilizer the
        // products coincide and the sweep is skipped.
        let eps_of: Vec<Vec<[u8; PackedClass::MAX_ROBOTS]>> = scc
            .iter()
            .map(|&u| {
                let (class, aux, _) = self.state(u);
                self.explorer
                    .stabilizer_perms(self.class_cfg(class), aux)
                    .into_iter()
                    .map(|perm| {
                        let mut p = [0u8; PackedClass::MAX_ROBOTS];
                        for (i, &j) in perm.iter().enumerate() {
                            p[i] = j as u8;
                        }
                        p
                    })
                    .collect()
            })
            .collect();
        if eps_of.iter().all(Vec::is_empty) {
            return ProductOutcome::NoFairCycle;
        }
        let Some((_, covered_ext)) = self.product_reach(&edges_of, Some(&eps_of), n) else {
            return ProductOutcome::Undecided;
        };
        if covered_ext == all_roles {
            // A fair pump exists up to symmetry, but its concrete
            // schedule would use actions the dedup skipped: honest
            // undecided rather than an unreplayable refutation.
            return ProductOutcome::Undecided;
        }
        ProductOutcome::NoFairCycle
    }

    /// BFS over the product automaton from `(scc index 0, identity)`.
    /// Returns the product adjacency (indexed by discovery order) and
    /// the union of covered-role masks over all reachable product
    /// edges, or `None` when the product outgrows its caps. `eps_of`
    /// adds the flag-free stabilizer relabelings of the second sweep.
    #[allow(clippy::type_complexity)]
    fn product_reach(
        &self,
        edges_of: &[Vec<ProductEdge>],
        eps_of: Option<&[Vec<[u8; PackedClass::MAX_ROBOTS]>]>,
        n: usize,
    ) -> Option<(Vec<Vec<(u32, u32, u16)>>, u16)> {
        // Caps sized as a backstop, not a working budget: the searches
        // that reach Phase D hold a few hundred states, and reachable
        // assignment groups are tiny in practice.
        const NODE_CAP: usize = 1 << 18;
        const EDGE_CAP: usize = 1 << 22;
        let ident = identity_assign(n);
        let mut pid_of: HashMap<(u32, u64), u32> = HashMap::new();
        let mut pnodes: Vec<(u32, u64)> = vec![(0, ident)];
        pid_of.insert((0, ident), 0);
        let mut padj: Vec<Vec<(u32, u32, u16)>> = Vec::new();
        let mut covered: u16 = 0;
        let mut edge_count = 0usize;
        let mut head = 0usize;
        while head < pnodes.len() {
            if self.deadline_tripped() {
                // Reported as an aborted sweep; the caller re-polls the
                // clock to attribute the undecided verdict to the
                // deadline rather than the product caps.
                return None;
            }
            let (sidx, assign) = pnodes[head];
            let mut out = Vec::new();
            let mut visit = |to_sidx: u32,
                             nassign: u64,
                             action: u32,
                             roles: u16,
                             pnodes: &mut Vec<(u32, u64)>|
             -> Option<(u32, u32, u16)> {
                let next_id = pnodes.len() as u32;
                let pid = *pid_of.entry((to_sidx, nassign)).or_insert(next_id);
                if pid == next_id {
                    if pnodes.len() >= NODE_CAP {
                        return None;
                    }
                    pnodes.push((to_sidx, nassign));
                }
                Some((pid, action, roles))
            };
            for e in &edges_of[sidx as usize] {
                let nassign = permute_assign(assign, &e.perm[..n]);
                let roles = flagged_roles(assign, e.flags, n);
                let edge = visit(e.to, nassign, e.action, roles, &mut pnodes)?;
                covered |= roles;
                out.push(edge);
            }
            if let Some(eps) = eps_of {
                for tau in &eps[sidx as usize] {
                    let nassign = permute_assign(assign, &tau[..n]);
                    let edge = visit(sidx, nassign, 0, 0, &mut pnodes)?;
                    out.push(edge);
                }
            }
            edge_count += out.len();
            if edge_count > EDGE_CAP {
                return None;
            }
            padj.push(out);
            head += 1;
        }
        Some((padj, covered))
    }

    /// Stitches an accepting product structure into a refutation lasso:
    /// BFS prefix to the SCC entry state, then a closed product walk
    /// from `(entry, identity)` that traverses, for every role, some
    /// edge covering it. Segments are shortest product paths (BFS in
    /// deterministic discovery order), so the schedule is a pure
    /// function of the explored graph.
    fn stitch_product_cycle(
        &self,
        entry: usize,
        padj: &[Vec<(u32, u32, u16)>],
        all_roles: u16,
    ) -> Option<ExploreVerdict> {
        let mut schedule = self.path_to(entry);
        let mut need = all_roles;
        let mut cur: u32 = 0;
        while need != 0 {
            let leg = product_path(padj, cur, |&(_, _, fm)| fm & need != 0)?;
            for (to, action, fm) in leg {
                schedule.push(unpack_action(action));
                need &= !fm;
                cur = to;
            }
        }
        if cur != 0 {
            let leg = product_path(padj, cur, |&(to, _, _)| to == 0)?;
            for (_, action, _) in leg {
                schedule.push(unpack_action(action));
            }
        }
        let rounds = movement_rounds(&schedule);
        Some(ExploreVerdict::Refuted { schedule, outcome: Outcome::StepLimit { rounds } })
    }
}

/// Outcome of the per-SCC product decision of Phase D.
enum ProductOutcome {
    /// A covering product structure was stitched into a lasso.
    Refuted(ExploreVerdict),
    /// No fair schedule can stay inside this SCC forever.
    NoFairCycle,
    /// The product overflowed its caps, or coverage held only under
    /// stabilizer relabelings (no concrete schedule available).
    Undecided,
}

/// One SCC-internal edge of the base graph, annotated with its
/// single-traversal certificate (slot-indexed at the source state).
struct ProductEdge {
    /// The action, packed like [`PackedEdge::action`].
    action: u32,
    /// Successor, as an index into the sorted SCC member list.
    to: u32,
    /// Induced slot permutation: source slot `s` lands in slot
    /// `perm[s]` of the successor.
    perm: [u8; PackedClass::MAX_ROBOTS],
    /// Source slots whose occupant satisfies fairness on this edge
    /// (it moves, is seen deciding to stay, or is crashed and exempt).
    flags: u16,
}

/// Identity slot → role assignment, nibble-packed (role `s` at slot
/// `s`; [`PackedClass::MAX_ROBOTS`] ≤ 16 keeps every assignment in one
/// `u64`).
fn identity_assign(n: usize) -> u64 {
    let mut assign = 0u64;
    for s in 0..n {
        assign |= (s as u64) << (4 * s);
    }
    assign
}

/// Pushes a nibble-packed assignment through a slot permutation: the
/// role at source slot `s` lands at slot `perm[s]`.
fn permute_assign(assign: u64, perm: &[u8]) -> u64 {
    let mut out = 0u64;
    for (s, &p) in perm.iter().enumerate() {
        let role = (assign >> (4 * s)) & 0xF;
        out |= role << (4 * u64::from(p));
    }
    out
}

/// The roles currently occupying the flagged slots.
fn flagged_roles(assign: u64, flags: u16, n: usize) -> u16 {
    let mut roles = 0u16;
    for s in 0..n {
        if flags & (1 << s) != 0 {
            roles |= 1 << ((assign >> (4 * s)) & 0xF);
        }
    }
    roles
}

/// A reachable product arc: `(target product node, packed action,
/// covered-role mask)` — the adjacency element of
/// [`Search::product_reach`].
type ProductArc = (u32, u32, u16);

/// Deterministic BFS from product node `from` to the first edge
/// satisfying `pred` (checked in discovery order); returns the edge
/// sequence ending with that edge.
fn product_path(
    padj: &[Vec<ProductArc>],
    from: u32,
    pred: impl Fn(&ProductArc) -> bool,
) -> Option<Vec<ProductArc>> {
    let mut parent: Vec<Option<(u32, ProductArc)>> = vec![None; padj.len()];
    let mut seen = vec![false; padj.len()];
    seen[from as usize] = true;
    let mut queue: VecDeque<u32> = VecDeque::from([from]);
    while let Some(p) = queue.pop_front() {
        for e in &padj[p as usize] {
            if pred(e) {
                let mut path = vec![*e];
                let mut cur = p;
                while cur != from {
                    let (prev, pe) = parent[cur as usize].expect("BFS parent chain is rooted");
                    path.push(pe);
                    cur = prev;
                }
                path.reverse();
                return Some(path);
            }
            let (to, _, _) = *e;
            if !seen[to as usize] {
                seen[to as usize] = true;
                parent[to as usize] = Some((p, *e));
                queue.push_back(to);
            }
        }
    }
    None
}

/// The next submask of `set` after `cur` in ascending numeric order
/// (`(cur - set) & set` with wrapping arithmetic). Starting from `0`
/// and advancing until `cur == set` enumerates every submask of `set`
/// ascending — exactly the masks the historical `0..=u8::MAX` scans
/// visited after their `mask & !set != 0` filter, so BFS discovery
/// order (and with it every golden-pinned counterexample schedule) is
/// preserved while the widened 16-bit masks avoid a 65536-iteration
/// sweep per state.
fn next_submask(cur: u16, set: u16) -> u16 {
    cur.wrapping_sub(set) & set
}

impl CrashSemantics {
    /// Builds the per-state expansion context: everything the action
    /// enumeration needs, copied out of the search so the enumeration
    /// is a pure function — runnable from worker threads against a
    /// shared `&Search` as well as inline under `&mut Search`.
    fn prepare<A: Algorithm + ?Sized>(
        &self,
        search: &Search<'_, '_, A, Self>,
        id: usize,
    ) -> CrashExpand {
        let (class, crashed, _) = search.state(id);
        let info = search.info(class);
        let n = info.n as usize;
        let cfg = search.class_cfg(class);
        let mut positions = [ORIGIN; PackedClass::MAX_ROBOTS];
        positions[..n].copy_from_slice(cfg.positions());
        let explorer = search.explorer();
        let perms = if explorer.group().len() > 1 {
            explorer.stabilizer_perms(cfg, crashed)
        } else {
            Vec::new()
        };
        let table = explorer.round_table(cfg.canonical_key(), cfg, &info.moves[..n]);
        CrashExpand {
            crashed,
            budget: self.budget,
            movers: info.movers,
            n,
            moves: info.moves,
            positions,
            perms,
            table,
        }
    }
}

/// The pure expansion context of one crash-semantics state: the crash
/// mask, decision vector, stabilizer permutations and the bit-parallel
/// [`engine::RoundTable`] whose packed occupancy masks replace the
/// scalar per-action collision / connectivity checks on the hot path.
struct CrashExpand {
    crashed: u16,
    budget: u8,
    movers: u16,
    n: usize,
    moves: [Option<Dir>; PackedClass::MAX_ROBOTS],
    positions: [Coord; PackedClass::MAX_ROBOTS],
    perms: Vec<Vec<usize>>,
    table: std::sync::Arc<engine::RoundTable>,
}

impl CrashExpand {
    /// Enumerates every adversary action in the exact historical order
    /// — crash submasks of the live robots ascending, and within each
    /// injection the nonzero activation submasks of the surviving
    /// movers ascending — feeding each `(action, step)` to `sink`.
    /// Stops when `sink` returns `false` or after an unconditionally
    /// terminal step (collision / disconnection), which ends the
    /// expansion in the serial path too.
    fn for_each(&self, mut sink: impl FnMut(CrashRound, PureStep<u16>) -> bool) {
        let live = ((1u16 << self.n) - 1) & !self.crashed;
        let avail = self.budget.saturating_sub(self.crashed.count_ones() as u8);
        let mut crash: u16 = 0;
        'crash: loop {
            'one_crash: {
                if crash.count_ones() > u32::from(avail) {
                    break 'one_crash;
                }
                let after = self.crashed | crash;
                let live_movers = self.movers & !after;
                if live_movers == 0 {
                    // The injection froze every remaining mover: a single
                    // injection-only action to a terminal state. `crash`
                    // is nonzero here — an inner state has a live mover.
                    let action = CrashRound { crash, activate: 0 };
                    let step = if !self.perms.is_empty()
                        && canonical_action(action, &self.perms) != action
                    {
                        PureStep::Dedup
                    } else {
                        PureStep::Variant(after)
                    };
                    if !sink(action, step) {
                        return;
                    }
                    break 'one_crash;
                }
                // Destination occupancy over the round table's node
                // universe, maintained incrementally: each transition of
                // the ascending submask enumeration flips only the
                // activation deltas of the slots whose membership
                // changed — amortized two single-word XORs per action,
                // the Gray-code view of the ascending order.
                let mut occ = self.table.base_occupancy();
                let mut prev: u16 = 0;
                // Nonzero submasks of `live_movers`, ascending.
                let mut mask: u16 = 0;
                while mask != live_movers {
                    mask = next_submask(mask, live_movers);
                    let mut changed = prev ^ mask;
                    while changed != 0 {
                        let slot = changed.trailing_zeros() as usize;
                        changed &= changed - 1;
                        occ ^= self.table.delta(slot);
                    }
                    prev = mask;
                    let action = CrashRound { crash, activate: mask };
                    if !self.perms.is_empty() && canonical_action(action, &self.perms) != action {
                        if !sink(action, PureStep::Dedup) {
                            return;
                        }
                        continue;
                    }
                    let step = self.step_of(after, mask, occ);
                    let terminal = matches!(step, PureStep::Collide(_) | PureStep::Disconnect);
                    if !sink(action, step) || terminal {
                        return;
                    }
                }
            }
            if crash == live || avail == 0 {
                // No remaining crash budget: every further submask of
                // `live` would be skipped as overweight anyway (the
                // historical loop spun through all of them to the same
                // effect), so ending the enumeration here is
                // observationally identical — and for the budget-0
                // adversary it is the entire crash loop.
                break 'crash;
            }
            crash = next_submask(crash, live);
        }
    }

    /// Classifies one non-deduped activation. The table answers the
    /// collision and connectivity questions in a handful of word ops;
    /// the scalar engine is consulted only to materialize the exact
    /// collision report of a refutation (at most once per expansion).
    fn step_of(&self, after: u16, mask: u16, occ: u32) -> PureStep<u16> {
        let n = self.n;
        #[cfg(debug_assertions)]
        self.assert_scalar_agreement(mask, occ);
        if self.table.collides(mask) {
            let mut masked = [None; PackedClass::MAX_ROBOTS];
            for (i, slot) in masked[..n].iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    *slot = self.moves[i];
                }
            }
            let cfg = Configuration::new(self.positions[..n].iter().copied());
            match engine::check_moves(&cfg, &masked[..n]) {
                Err(collision) => return PureStep::Collide(collision),
                Ok(()) => unreachable!("round table over-reported a collision"),
            }
        }
        if !self.table.connected(occ) {
            return PureStep::Disconnect;
        }
        // Legal, connected: fold the successor directly into its packed
        // canonical key. Destinations are distinct (no collision), so
        // the index sort by row-major key is the exact slot relabeling
        // `Configuration::new` would apply — no materialisation needed.
        let mut ends = [ORIGIN; PackedClass::MAX_ROBOTS];
        for (i, end) in ends[..n].iter_mut().enumerate() {
            let p = self.positions[i];
            *end = if mask & (1 << i) != 0 {
                p.step(self.moves[i].expect("activated slots are movers"))
            } else {
                p
            };
        }
        let mut idx: [usize; PackedClass::MAX_ROBOTS] = std::array::from_fn(|i| i);
        idx[..n].sort_unstable_by_key(|&i| polyhex::key(ends[i]));
        let mut cells = [ORIGIN; PackedClass::MAX_ROBOTS];
        let mut aux = 0u16;
        for k in 0..n {
            cells[k] = ends[idx[k]];
            if after & (1 << idx[k]) != 0 {
                // Crashed robots never move, so carrying their slot
                // bits through the re-sort equals re-locating their
                // (unchanged) coordinates in the successor.
                aux |= 1 << k;
            }
        }
        let key = PackedClass::of_sorted(&cells[..n]);
        #[cfg(debug_assertions)]
        {
            let next = Configuration::new(ends[..n].iter().copied());
            debug_assert_eq!(key, next.canonical_key(), "packed successor key diverged");
            debug_assert!(next.is_connected(), "table missed a disconnection");
        }
        PureStep::Succ(key, aux)
    }

    /// Debug-only cross-check: the round table's collision and
    /// connectivity answers must agree with the scalar engine on every
    /// enumerated action, not just the ones that refute.
    #[cfg(debug_assertions)]
    fn assert_scalar_agreement(&self, mask: u16, occ: u32) {
        let n = self.n;
        let mut masked = [None; PackedClass::MAX_ROBOTS];
        for (i, slot) in masked[..n].iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *slot = self.moves[i];
            }
        }
        let cfg = Configuration::new(self.positions[..n].iter().copied());
        let scalar = engine::check_moves(&cfg, &masked[..n]);
        debug_assert_eq!(
            self.table.collides(mask),
            scalar.is_err(),
            "round table collision disagrees with check_moves for mask {mask:#b}"
        );
        if scalar.is_ok() {
            let next = cfg.apply_unchecked(&masked[..n]);
            debug_assert_eq!(
                self.table.connected(occ),
                next.is_connected(),
                "round table connectivity disagrees for mask {mask:#b}"
            );
        }
    }
}

impl Semantics for CrashSemantics {
    type Aux = u16;

    fn root_aux(&self) -> u16 {
        0
    }

    fn aux_bits(aux: u16) -> u32 {
        u32::from(aux)
    }

    fn permute_aux(aux: u16, _n: usize, map: impl Fn(usize) -> usize, _sym: PointSymmetry) -> u16 {
        let mut mapped = 0u16;
        for i in 0..MASK_ROBOTS {
            if aux & (1 << i) != 0 {
                mapped |= 1 << map(i);
            }
        }
        mapped
    }

    fn classify(&self, cfg: &Configuration, info: &ClassInfo, crashed: u16) -> NodeKind {
        if info.movers & !crashed == 0 {
            if (self.goal)(cfg, crashed) {
                NodeKind::Goal
            } else {
                NodeKind::Stuck
            }
        } else {
            NodeKind::Inner
        }
    }

    const PARALLEL: bool = true;

    /// Expands every adversary action of inner state `id`: first the
    /// pure-activation actions (crash budget untouched), then every
    /// crash injection combined with each activation of the surviving
    /// movers — or alone, when it leaves no live mover. Returns a
    /// refutation as soon as a bad terminal is reached.
    ///
    /// The enumeration itself is [`CrashExpand::for_each`] — shared
    /// verbatim with [`Semantics::expand_pure`] — and every step is
    /// applied through [`Search::apply_step`], so the serial path and
    /// the parallel fan-out execute literally the same code.
    fn expand<A: Algorithm + ?Sized>(
        &self,
        search: &mut Search<'_, '_, A, Self>,
        id: usize,
        queue: &mut Vec<u32>,
    ) -> Option<ExploreVerdict> {
        let ctx = self.prepare(search, id);
        let mut verdict = None;
        ctx.for_each(|action, step| {
            verdict = search.apply_step(id, action, step, queue);
            verdict.is_none()
        });
        verdict
    }

    fn expand_pure<A: Algorithm + ?Sized>(
        &self,
        search: &Search<'_, '_, A, Self>,
        id: usize,
        out: &mut Vec<(CrashRound, PureStep<u16>)>,
    ) {
        let ctx = self.prepare(search, id);
        ctx.for_each(|action, step| {
            out.push((action, step));
            true
        });
    }

    /// Concretely traverses a closed state walk once, tracking robot
    /// roles and activation flags.
    fn traverse<A: Algorithm + ?Sized>(
        &self,
        search: &Search<'_, '_, A, Self>,
        start: usize,
        cycle: &[(CrashRound, usize)],
    ) -> CycleCert {
        let (_, start_crashed, _) = search.state(start);
        // Crashed robots are exempt from fairness: never activating
        // them is legitimate, so their orbits are satisfied for free.
        let seed = |flags: &mut [bool]| {
            for (slot, flag) in flags.iter_mut().enumerate() {
                if start_crashed & (1 << slot) != 0 {
                    *flag = true;
                }
            }
        };
        search.traverse_roles(start, cycle, seed, |cur, action, walk| {
            debug_assert_eq!(action.crash, 0, "cycles never cross a crash level");
            let (cur_class, _, _) = search.state(cur);
            let moves = search.info(cur_class).moves;
            for (slot, &decision) in moves[..walk.role_at.len()].iter().enumerate() {
                let role = walk.role_at[slot];
                match decision {
                    None => walk.flags[role] = true, // free activation
                    Some(dir) => {
                        if action.activate & (1 << slot) != 0 {
                            walk.pos[role] = walk.pos[role].step(dir);
                            walk.flags[role] = true;
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, StayAlgorithm};
    use trigrid::ORIGIN;

    fn fsync_goal(cfg: &Configuration, _crashed: u16) -> bool {
        cfg.is_gathered()
    }

    fn cfg(cells: &[(i32, i32)]) -> Configuration {
        Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn budget_zero_has_no_crash_actions() {
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let explorer = Explorer::new(&march, ExploreOptions::default(), 0, fsync_goal);
        let report = explorer.check(&cfg(&[(0, 0), (2, 0)]));
        let ExploreVerdict::Refuted { schedule, .. } = &report.verdict else {
            panic!("two marchers refute under SSYNC: {:?}", report.verdict);
        };
        assert!(schedule.iter().all(|a| a.crash == 0), "budget 0 must never inject");
    }

    #[test]
    fn crash_budget_preserves_a_stay_proof() {
        // StayAlgorithm on the hexagon has no mover anywhere, so the
        // crash budget gives the adversary nothing to exploit: the
        // gathered terminal stays a proof. (That a nonzero budget can
        // flip a budget-0 proof into a refutation is pinned at scale
        // by the crash golden files: 1869 adversary-proof classes vs
        // 11 crash-proof ones.)
        let h = crate::config::hexagon(ORIGIN);
        let explorer = Explorer::new(&StayAlgorithm, ExploreOptions::default(), 1, fsync_goal);
        assert_eq!(explorer.check(&h).verdict, ExploreVerdict::Proof);
    }

    #[test]
    fn injection_freezes_the_lone_mover() {
        // One robot marches east towards its idle neighbour's far side;
        // crashing the mover parks the pair two apart forever: a stuck
        // refutation reachable only through a crash injection.
        let march = FnAlgorithm::new(1, "march-if-clear", |v: &View| {
            (!v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let zero = Explorer::new(&march, ExploreOptions::default(), 0, fsync_goal);
        let one = Explorer::new(&march, ExploreOptions::default(), 1, fsync_goal);
        // Without crashes the east robot disconnects the pair.
        assert!(matches!(
            zero.check(&two).verdict,
            ExploreVerdict::Refuted { outcome: Outcome::Disconnected { .. }, .. }
        ));
        // With one crash the minimal refutation is still 1 action, and
        // budget 1 explores at least as much as budget 0.
        let report = one.check(&two);
        assert!(matches!(report.verdict, ExploreVerdict::Refuted { .. }));
        assert!(report.edges >= zero.check(&two).edges);
    }

    #[test]
    fn movement_rounds_skip_injection_only_actions() {
        let schedule = [
            CrashRound { crash: 0b01, activate: 0 },
            CrashRound { crash: 0, activate: 0b10 },
            CrashRound { crash: 0b10, activate: 0b100 },
        ];
        assert_eq!(movement_rounds(&schedule), 2);
    }

    #[test]
    fn canonical_action_orders_by_crash_then_activation() {
        let swap = vec![1usize, 0];
        let action = CrashRound { crash: 0b10, activate: 0b01 };
        let canon = canonical_action(action, std::slice::from_ref(&swap));
        assert_eq!(canon, CrashRound { crash: 0b01, activate: 0b10 });
    }

    #[test]
    fn crash_aux_permutes_as_a_slot_mask() {
        // 3-cycle 0→1→2→0 on a 3-robot mask; the symmetry itself is
        // irrelevant to a direction-free mask.
        let mapped = CrashSemantics::permute_aux(0b011, 3, |i| (i + 1) % 3, PointSymmetry::Rot(2));
        assert_eq!(mapped, 0b110);
        assert_eq!(CrashSemantics::aux_bits(0b110), 0b110u32);
    }
}
