//! Generic adversary transition-system exploration over a pluggable
//! **semantics**.
//!
//! This module is the BFS / cycle-hunting / stabilizer-dedup heart that
//! used to live inside [`crate::adversary`], generalized twice:
//!
//! 1. PR 3 turned the SSYNC checker into a transition system over
//!    states `(canonical class, crash mask)` with `(crash injection,
//!    activation subset)` actions;
//! 2. this layer abstracts the *state and transition shape itself*
//!    behind the [`Semantics`] trait — a semantics defines the per-state
//!    adversary actions, the successor function, and the packed
//!    auxiliary key stored alongside the translation class (a crash
//!    mask for [`CrashSemantics`]; a per-robot pending-move vector for
//!    the ASYNC model's
//!    [`AsyncSemantics`](crate::async_model::AsyncSemantics)).
//!
//! The search machinery — BFS to the first bad terminal, packed
//! quotient-acyclicity proofs, SCC-based fair-cycle refutations with
//! composable certificates, and stabilizer-subset dedup — is shared by
//! every semantics; only expansion, terminal classification and the
//! certificate traversal are instantiation-specific.
//!
//! The SSYNC adversary checker is the crash semantics with budget **0**
//! and goal `Configuration::is_gathered` — every crash branch below is
//! statically dead in that instantiation, so [`crate::adversary`]
//! produces byte-identical verdicts through this core. The crash-fault
//! checker ([`crate::faults`]) is the same semantics with budget `f`
//! and the relaxed gathering goal. The ASYNC checker
//! ([`crate::async_model`]) swaps in single-robot phase-advance actions
//! over pending-move auxiliary state.
//!
//! Soundness of the exploration (acyclicity ⇒ proof, fair cycle ⇒
//! refutation, stabilizer dedup) is argued in DESIGN.md §7 for the
//! fault-free system, extended to crash faults in DESIGN.md §10 and to
//! the ASYNC discretisation in DESIGN.md §13; the key facts used here
//! for the crash semantics are:
//!
//! * crash injections strictly grow the crash mask, so no cycle of the
//!   state graph contains one — fair-cycle certificates never cross a
//!   crash level;
//! * deferring an injection past rounds in which the crashed robot is
//!   idle anyway yields the same execution, so combining "inject, then
//!   activate" into one transition loses no adversary behaviour;
//! * a goal terminal stays a goal terminal under further injections
//!   (crashing robots only shrinks the set that must gather and never
//!   creates movers), so goal terminals need no crash expansion.
//!
//! # Packed-state core
//!
//! The exploration substrate is built for mechanical sympathy
//! (DESIGN.md §11): translation classes are interned through a
//! [`ClassArena`] keyed by the lossless bit-packed
//! [`PackedClass`](crate::PackedClass) `u128` form (one hash of 16
//! bytes per revisit, the decoded representative stored once per
//! class), per-class decision vectors are computed once through a
//! [`MoveOracle`] that memoizes the algorithm per distinct view, and
//! expansion, stabilizer tests and quotient orbit keys all work in
//! fixed stack buffers. The auxiliary key rides along packed too: the
//! per-state aux ([`Semantics::Aux`]) is a `Copy` bit-packed value
//! whose raw bits fold into the quotient orbit keys. None of this is
//! observable in verdicts or exploration statistics — the adversary and
//! crash golden files pin byte-identical output.

use crate::config::PackedClass;
use crate::engine::{self, Outcome};
use crate::sched::CrashRound;
use crate::visited::ClassArena;
use crate::{view, Algorithm, Configuration, MoveOracle, View};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use trigrid::transform::PointSymmetry;
use trigrid::{Coord, Dir, ORIGIN};

/// Deterministic search budgets for [`Explorer::check`]. All budgets
/// are plain counters, so verdicts never depend on threading or timing.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Cap on distinct states explored per check.
    pub max_states: usize,
    /// Cap on expanded transitions per check.
    pub max_edges: usize,
    /// Depth bound for the fair-cycle search: maximal simple-cycle
    /// length and maximal number of cycle compositions tried.
    pub fair_depth: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        // The fault-free defaults: the connected seven-robot space
        // holds 3652 translation classes, so 4096 states never bind
        // there. Crash instantiations multiply the space by the crash
        // placements and should use [`ExploreOptions::crash`].
        ExploreOptions { max_states: 4096, max_edges: 2_000_000, fair_depth: 12 }
    }
}

impl ExploreOptions {
    /// Budgets sized for crash instantiations: each crash placement
    /// opens its own copy of the class graph, so the state and edge
    /// caps are an order of magnitude above the fault-free defaults.
    #[must_use]
    pub fn crash() -> Self {
        ExploreOptions { max_states: 65_536, max_edges: 16_000_000, fair_depth: 12 }
    }

    /// Budgets sized for the ASYNC semantics: every class fans out into
    /// its reachable pending-vector variants, so the state cap sits two
    /// orders of magnitude above the fault-free class count.
    #[must_use]
    pub fn lcm_async() -> Self {
        ExploreOptions { max_states: 524_288, max_edges: 16_000_000, fair_depth: 12 }
    }
}

/// The goal predicate of a crash-semantics instantiation: whether `cfg`
/// with the given crashed-slot mask counts as a *successful* terminal.
/// Plain function pointer so [`CrashSemantics`] needs no extra type
/// parameter.
pub type Goal = fn(&Configuration, u16) -> bool;

/// Robot capacity of the 16-bit crash / activation slot masks used
/// throughout the exploration layer. The packed class keys are the
/// binding constraint (10 robots), and the compile-time check proves
/// every packable configuration fits the masks — widening
/// [`PackedClass::MAX_ROBOTS`] past 16 would fail the build here, not
/// corrupt masks at runtime.
pub const MASK_ROBOTS: usize = u16::BITS as usize;
const _: () = assert!(PackedClass::MAX_ROBOTS <= MASK_ROBOTS);

/// The classification of one initial class by [`Explorer::check`].
///
/// The schedule of a refutation is a sequence of [`CrashRound`]
/// actions; for budget-0 crash instantiations every `crash` field is
/// zero and the sequence degrades to the activation schedule of
/// [`crate::adversary::AdversaryVerdict::Refuted`]. ASYNC refutations
/// also keep `crash == 0` — each action's `activate` is the one-hot
/// mask of the robot whose LCM phase advances.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ExploreVerdict {
    /// Every fair schedule of the instantiated system reaches a goal
    /// terminal.
    Proof,
    /// A concrete schedule refutes the goal; replaying it must
    /// reproduce `outcome`.
    Refuted {
        /// Per-round adversary actions, indexed like every scheduler:
        /// bit `i` = the `i`-th robot in row-major order of the round's
        /// configuration.
        schedule: Vec<CrashRound>,
        /// The outcome the replay must reproduce. Round counts refer to
        /// the semantics' own round bookkeeping: for the crash
        /// semantics, *movement* rounds (injection-only actions do not
        /// advance the counter); for ASYNC, every phase advance is one
        /// tick.
        outcome: Outcome,
    },
    /// The state graph contains cycles, but no fair counterexample
    /// cycle was found within depth `depth`.
    Undecided {
        /// The fair-cycle search depth that was exhausted.
        depth: usize,
    },
}

impl ExploreVerdict {
    /// Short tag used by reports and golden files.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ExploreVerdict::Proof => "proof",
            ExploreVerdict::Refuted { .. } => "refuted",
            ExploreVerdict::Undecided { .. } => "undecided",
        }
    }
}

/// The result of checking one class: the verdict plus deterministic
/// exploration statistics.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ExploreReport {
    /// The classification.
    pub verdict: ExploreVerdict,
    /// Distinct `(class, aux)` states explored.
    pub states: usize,
    /// Transitions expanded (legal actions executed).
    pub edges: usize,
    /// Actions skipped by the stabilizer symmetry reduction.
    pub deduped: usize,
}

/// Computes the subgroup of D6 under which `algo` is equivariant:
/// `compute(σ·v) = σ·compute(v)` for every view `v` with at most
/// **seven** robots — the only views that can arise in up-to-8 robot
/// configurations. For explorers handling more robots use
/// [`equivariance_group_for`], which widens the view scan to
/// `max_robots - 1` other robots. Algorithms with radius beyond 2 are
/// conservatively treated as asymmetric.
#[must_use]
pub fn equivariance_group<A: Algorithm + ?Sized>(algo: &A) -> Vec<PointSymmetry> {
    equivariance_group_for(algo, 8)
}

/// Like [`equivariance_group`], scanning every view with at most
/// `max_robots - 1` robots — the views that can arise in configurations
/// of up to `max_robots` robots. The n = 7 checkers keep calling the
/// historical 8-robot bound so their deduplication (and hence their
/// golden-pinned schedules) is unchanged; wider explorers must widen
/// the scan or the dedup would be unsound.
#[must_use]
pub fn equivariance_group_for<A: Algorithm + ?Sized>(
    algo: &A,
    max_robots: usize,
) -> Vec<PointSymmetry> {
    let max_others = max_robots.saturating_sub(1) as u32;
    let radius = algo.radius();
    let mut group = vec![PointSymmetry::Rot(0)];
    let labels = view::labels(radius);
    if labels.len() > 18 {
        return group;
    }
    'sym: for &s in &PointSymmetry::ALL[1..] {
        let perm: Vec<usize> = labels
            .iter()
            .map(|&l| view::label_index(radius, s.apply(l)).expect("D6 permutes the label disk"))
            .collect();
        for bits in 0..(1u64 << labels.len()) {
            if bits.count_ones() > max_others {
                continue;
            }
            let mut mapped = 0u64;
            for (i, &j) in perm.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    mapped |= 1 << j;
                }
            }
            let decision = algo.compute(&View::from_bits(radius, bits));
            let image = algo.compute(&View::from_bits(radius, mapped));
            if image != decision.map(|d| s.apply_dir(d)) {
                continue 'sym;
            }
        }
        group.push(s);
    }
    group
}

/// How a discovered state terminates, if it does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Adversary actions remain: the state is expanded.
    Inner,
    /// No action remains and the goal predicate holds.
    Goal,
    /// No action remains and the goal predicate fails.
    Stuck,
}

/// Per-class data computed once when a translation class is first
/// interned: the full decision vector (a pure function of the class —
/// auxiliary state never changes what a robot *would* decide from a
/// fresh Look) in a fixed `Copy` array, so expansion never clones a
/// `Vec`.
#[derive(Clone, Copy)]
pub struct ClassInfo {
    /// Robot count of the class.
    pub(crate) n: u8,
    /// Bitmask of robots whose fresh decision is a move (for the crash
    /// semantics this includes crashed robots — a crashed robot keeps
    /// "deciding", it just never acts).
    pub(crate) movers: u16,
    /// Full decision vector, aligned with the class's positions.
    pub(crate) moves: [Option<Dir>; PackedClass::MAX_ROBOTS],
}

impl ClassInfo {
    /// Robot count of the class.
    #[must_use]
    pub fn robots(&self) -> usize {
        self.n as usize
    }

    /// Bitmask of robots whose fresh decision is a move.
    #[must_use]
    pub fn movers(&self) -> u16 {
        self.movers
    }

    /// The fresh decision of the robot in row-major slot `slot`.
    #[must_use]
    pub fn decision(&self, slot: usize) -> Option<Dir> {
        self.moves[slot]
    }
}

/// A **semantics** of the exploration layer: what a state's auxiliary
/// key is (packed alongside the interned translation class), which
/// adversary actions a state offers, what their successors are, and how
/// a closed walk is traversed for the fairness certificate.
///
/// Implementations in this crate: [`CrashSemantics`] (SSYNC activation
/// subsets plus permanent crash injections — the budget-0 case is the
/// plain SSYNC adversary) and
/// [`AsyncSemantics`](crate::async_model::AsyncSemantics) (single-robot
/// LCM phase advances over pending-move state). The trait is public so
/// the instantiations can live next to their models, but its surface is
/// an internal extension point of this crate: [`Search`]'s mutation
/// methods are crate-private, so foreign implementations cannot drive a
/// search.
pub trait Semantics: Sync + Sized {
    /// The packed per-state auxiliary key stored alongside the class
    /// id. Key equality must coincide with auxiliary-state equality
    /// (the packing is lossless), exactly as
    /// [`PackedClass`](crate::PackedClass) equality coincides with
    /// translation-class equality.
    type Aux: Copy + Eq + std::fmt::Debug + Send + Sync;

    /// The auxiliary key of an initial state (nothing crashed, every
    /// robot idle).
    fn root_aux(&self) -> Self::Aux;

    /// The raw bits of an aux key, folded into packed quotient orbit
    /// keys. Must be injective and monotone in the key's identity —
    /// i.e. a plain re-encoding of `Aux`'s `Eq`.
    fn aux_bits(aux: Self::Aux) -> u32;

    /// The image of `aux` under the point symmetry `sym`, whose induced
    /// slot permutation sends old slot `i` to new slot `map(i)`, for
    /// `n` robots. Semantics whose aux carries directions (the ASYNC
    /// pending vector) must transform them by `sym` too; slot masks
    /// ignore it.
    fn permute_aux(
        aux: Self::Aux,
        n: usize,
        map: impl Fn(usize) -> usize,
        sym: PointSymmetry,
    ) -> Self::Aux;

    /// Classifies a freshly interned state `(cfg's class, aux)`:
    /// [`NodeKind::Inner`] when adversary actions remain, otherwise
    /// goal or stuck.
    fn classify(&self, cfg: &Configuration, info: &ClassInfo, aux: Self::Aux) -> NodeKind;

    /// Expands every adversary action of inner state `id`, interning
    /// successors and pushing newly discovered inner states onto
    /// `queue`. Returns a verdict as soon as a bad terminal is reached
    /// or a search budget is exhausted.
    fn expand<A: Algorithm + ?Sized>(
        &self,
        search: &mut Search<'_, '_, A, Self>,
        id: usize,
        queue: &mut VecDeque<usize>,
    ) -> Option<ExploreVerdict>;

    /// Concretely traverses the closed state walk `cycle` (starting and
    /// ending at `start`) once, tracking robot roles and fairness
    /// flags, and returns the certificate.
    fn traverse<A: Algorithm + ?Sized>(
        &self,
        search: &Search<'_, '_, A, Self>,
        start: usize,
        cycle: &[(CrashRound, usize)],
    ) -> CycleCert;
}

/// The crash-fault semantics (and, at budget 0, the plain SSYNC
/// adversary): states are `(class, crashed-slot mask)`, actions first
/// permanently crash the robots in [`CrashRound::crash`] (allowed while
/// the crash budget lasts) and then activate the robots in
/// [`CrashRound::activate`], which must be non-crashed movers. When an
/// injection leaves no live mover the activation is empty: the
/// configuration is frozen forever.
pub struct CrashSemantics {
    /// Maximal number of robots the adversary may crash in total.
    budget: u8,
    /// Whether a terminal state counts as successful.
    goal: Goal,
}

impl CrashSemantics {
    /// Builds the semantics for the given crash budget and goal.
    ///
    /// # Panics
    /// Panics if `budget >= PackedClass::MAX_ROBOTS`: at least one
    /// robot must stay alive for the goal to be meaningful (the masks
    /// themselves hold [`MASK_ROBOTS`] slots).
    #[must_use]
    pub fn new(budget: u8, goal: Goal) -> Self {
        assert!(
            (budget as usize) < PackedClass::MAX_ROBOTS,
            "crash budget {budget} would allow crashing every robot \
             (capacity {})",
            PackedClass::MAX_ROBOTS
        );
        CrashSemantics { budget, goal }
    }
}

struct StateNode<Aux> {
    /// The translation class, as a dense [`ClassArena`] id; the
    /// canonical representative and decision vector are stored once
    /// per class, not per aux variant.
    class: u32,
    /// The packed auxiliary key (crash mask / pending vector) over the
    /// class's position slots.
    aux: Aux,
    /// Rounds from the initial state, in the semantics' own bookkeeping
    /// (movement rounds for crash — injection-only actions do not
    /// count; phase-advance ticks for ASYNC). This is what replay
    /// outcomes report.
    rounds: usize,
    /// Discovery edge, for schedule reconstruction.
    parent: Option<(usize, CrashRound)>,
    /// Expanded edges `(action, successor id)`.
    edges: Vec<(CrashRound, usize)>,
    kind: NodeKind,
}

/// The mutable role-tracking state of a certificate traversal
/// ([`Search::traverse_roles`]): `pos[r]` is the current coordinate of
/// the robot that began in row-major slot `r`, `role_at[i]` is which
/// role sits in slot `i`, and `flags[r]` records whether role `r` has
/// satisfied fairness so far.
pub(crate) struct RoleWalk {
    pub(crate) pos: Vec<Coord>,
    pub(crate) role_at: Vec<usize>,
    pub(crate) flags: Vec<bool>,
}

/// A fair-cycle certificate: one traversal of a closed state walk.
/// Crash injections strictly grow the crash mask, so every crash
/// action on a cycle has `crash == 0` — and ASYNC actions never carry
/// one at all.
#[derive(Clone)]
pub struct CycleCert {
    /// The actions of the traversal.
    pub(crate) masks: Vec<CrashRound>,
    /// Role permutation: the robot in row-major slot `r` at the start
    /// occupies slot `perm[r]` after the traversal.
    pub(crate) perm: Vec<usize>,
    /// Whether role `r` satisfied fairness during the traversal (it
    /// moved / advanced a phase, was seen deciding to stay — and is
    /// thus activatable for free — or is crashed and exempt).
    pub(crate) flags: Vec<bool>,
}

impl CycleCert {
    /// Whether pumping this traversal forever is fair: every orbit of
    /// the role permutation must contain a flagged role.
    fn is_fair(&self) -> bool {
        let n = self.perm.len();
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut ok = false;
            let mut r = start;
            loop {
                seen[r] = true;
                ok |= self.flags[r];
                r = self.perm[r];
                if r == start {
                    break;
                }
            }
            if !ok {
                return false;
            }
        }
        true
    }

    /// Sequential composition: this traversal followed by `next` (both
    /// starting from the same state).
    fn compose(&self, next: &CycleCert) -> CycleCert {
        let mut masks = self.masks.clone();
        masks.extend_from_slice(&next.masks);
        let perm = self.perm.iter().map(|&p| next.perm[p]).collect();
        let flags = self.flags.iter().zip(&self.perm).map(|(&f, &p)| f || next.flags[p]).collect();
        CycleCert { masks, perm, flags }
    }
}

/// An exhaustive adversary explorer for one algorithm and one
/// [`Semantics`] instantiation.
///
/// Construction computes the algorithm's equivariance subgroup once
/// (it scans every view of the algorithm's radius); reuse one explorer
/// across many [`check`](Explorer::check) calls.
pub struct Explorer<'a, A: Algorithm + ?Sized, S: Semantics = CrashSemantics> {
    /// Memoized decision oracle over the algorithm: every distinct
    /// view is evaluated once per explorer, not once per robot per
    /// state (see [`MoveOracle`]).
    oracle: MoveOracle<'a, A>,
    opts: ExploreOptions,
    group: Vec<PointSymmetry>,
    semantics: S,
    /// Largest robot count [`Explorer::check`] accepts; the
    /// equivariance scan was widened to match, so the stabilizer dedup
    /// stays sound (see [`equivariance_group_for`]).
    max_robots: usize,
}

impl<'a, A: Algorithm + ?Sized> Explorer<'a, A, CrashSemantics> {
    /// Builds a crash-semantics explorer for `algo` with the given
    /// budgets, crash budget and goal predicate, accepting up to 8
    /// robots (the historical bound; use [`Self::new_for_robots`] for
    /// wider configurations).
    ///
    /// # Panics
    /// Panics if `budget >= PackedClass::MAX_ROBOTS`: at least one
    /// robot must stay alive for the goal to be meaningful.
    #[must_use]
    pub fn new(algo: &'a A, opts: ExploreOptions, budget: u8, goal: Goal) -> Self {
        Self::with_semantics(algo, opts, CrashSemantics::new(budget, goal))
    }

    /// Like [`Self::new`], accepting configurations of up to
    /// `max_robots` robots (≤ [`PackedClass::MAX_ROBOTS`]).
    #[must_use]
    pub fn new_for_robots(
        algo: &'a A,
        opts: ExploreOptions,
        budget: u8,
        goal: Goal,
        max_robots: usize,
    ) -> Self {
        Self::with_semantics_for_robots(algo, opts, CrashSemantics::new(budget, goal), max_robots)
    }

    /// The crash budget this explorer was built with.
    #[must_use]
    pub fn budget(&self) -> u8 {
        self.semantics.budget
    }
}

impl<'a, A: Algorithm + ?Sized, S: Semantics> Explorer<'a, A, S> {
    /// Builds an explorer for `algo` over the given semantics, accepting
    /// up to 8 robots. This is the historical constructor: its
    /// equivariance scan (and therefore its dedup decisions and golden
    /// schedules) are byte-identical to the u8-mask era.
    #[must_use]
    pub fn with_semantics(algo: &'a A, opts: ExploreOptions, semantics: S) -> Self {
        Self::with_semantics_for_robots(algo, opts, semantics, 8)
    }

    /// Builds an explorer accepting configurations of up to `max_robots`
    /// robots. The equivariance subgroup is computed over every view
    /// with up to `max_robots - 1` robots (never fewer than the
    /// historical 7), so widening can only shrink the group — dedup
    /// stays sound at every supported count.
    ///
    /// # Panics
    /// Panics if `max_robots` exceeds [`PackedClass::MAX_ROBOTS`].
    #[must_use]
    pub fn with_semantics_for_robots(
        algo: &'a A,
        opts: ExploreOptions,
        semantics: S,
        max_robots: usize,
    ) -> Self {
        assert!(
            max_robots <= PackedClass::MAX_ROBOTS,
            "explorers support at most {} robots",
            PackedClass::MAX_ROBOTS
        );
        let oracle = MoveOracle::new(algo);
        // Scanning the view space for the equivariance subgroup goes
        // through the oracle too: it both dedups the scan's repeated
        // evaluations and pre-warms the memo table with every view the
        // exploration can encounter.
        let group = equivariance_group_for(&oracle, max_robots.max(8));
        Explorer { oracle, opts, group, semantics, max_robots: max_robots.max(8) }
    }

    /// The algorithm's equivariance subgroup (always contains the
    /// identity).
    #[must_use]
    pub fn group(&self) -> &[PointSymmetry] {
        &self.group
    }

    /// The largest robot count this explorer accepts.
    #[must_use]
    pub fn max_robots(&self) -> usize {
        self.max_robots
    }

    /// The semantics this explorer instantiates.
    pub(crate) fn semantics(&self) -> &S {
        &self.semantics
    }

    /// The memoized decision oracle.
    pub(crate) fn oracle(&self) -> &MoveOracle<'a, A> {
        &self.oracle
    }

    /// Classifies `initial` under the exhaustive adversary of this
    /// instantiation.
    ///
    /// # Panics
    /// Panics if `initial` is disconnected or holds more robots than
    /// this explorer was built for (see
    /// [`Self::with_semantics_for_robots`]).
    #[must_use]
    pub fn check(&self, initial: &Configuration) -> ExploreReport {
        assert!(
            initial.len() <= self.max_robots,
            "this explorer was built for at most {} robots (got {}); \
             construct it with new_for_robots / with_semantics_for_robots",
            self.max_robots,
            initial.len()
        );
        assert!(initial.is_connected(), "the paper's model starts connected");
        let mut search = Search {
            explorer: self,
            states: Vec::new(),
            arena: ClassArena::new(),
            info: Vec::new(),
            variants: Vec::new(),
            edges: 0,
            deduped: 0,
        };
        let verdict = search.run(initial);
        ExploreReport {
            verdict,
            states: search.states.len(),
            edges: search.edges,
            deduped: search.deduped,
        }
    }

    /// Index permutations induced on `cfg` by the stabilizer of its
    /// class within the equivariance subgroup (identity omitted),
    /// restricted to permutations that also fix the auxiliary key — a
    /// symmetry that maps, say, a crashed robot onto a live one (or a
    /// pending robot onto an idle one) does not commute with the
    /// auxiliary state. The stabilizer test compares packed class
    /// keys, so non-stabilizing symmetries (the common case) are
    /// rejected without any allocation.
    pub(crate) fn stabilizer_perms(&self, cfg: &Configuration, aux: S::Aux) -> Vec<Vec<usize>> {
        let positions = cfg.positions();
        let n = positions.len();
        let class_key = cfg.canonical_key();
        let mut perms = Vec::new();
        let mut mapped = [ORIGIN; PackedClass::MAX_ROBOTS];
        for &s in &self.group[1..] {
            for (m, &p) in mapped[..n].iter_mut().zip(positions) {
                *m = s.apply(p);
            }
            if PackedClass::of_cells(&mapped[..n]) != class_key {
                continue;
            }
            let delta = *mapped[..n]
                .iter()
                .min_by_key(|c| polyhex::key(**c))
                .expect("configurations are non-empty");
            let perm: Vec<usize> = mapped[..n]
                .iter()
                .map(|&q| {
                    let normalized = q - delta;
                    positions
                        .iter()
                        .position(|&p| p == normalized)
                        .expect("stabilizer permutes the class")
                })
                .collect();
            if S::permute_aux(aux, n, |i| perm[i], s) != aux {
                continue;
            }
            perms.push(perm);
        }
        perms
    }
}

/// Image of a slot bitmask under an index permutation.
fn apply_perm_mask(mask: u16, perm: &[usize]) -> u16 {
    let mut mapped = 0u16;
    for (i, &j) in perm.iter().enumerate() {
        if mask & (1 << i) != 0 {
            mapped |= 1 << j;
        }
    }
    mapped
}

/// Minimal representative of the action's orbit under the index
/// permutations, ordered by `(crash, activate)`.
pub(crate) fn canonical_action(action: CrashRound, perms: &[Vec<usize>]) -> CrashRound {
    let mut best = action;
    for perm in perms {
        let mapped = CrashRound {
            crash: apply_perm_mask(action.crash, perm),
            activate: apply_perm_mask(action.activate, perm),
        };
        if (mapped.crash, mapped.activate) < (best.crash, best.activate) {
            best = mapped;
        }
    }
    best
}

/// Movement rounds of a schedule: injection-only actions do not count.
/// (Every ASYNC action activates one robot, so there the count is the
/// schedule length — one tick per phase advance.)
fn movement_rounds(schedule: &[CrashRound]) -> usize {
    schedule.iter().filter(|a| a.activate != 0).count()
}

/// One `check` call's working state: the interned state graph plus the
/// exploration statistics. [`Semantics`] implementations drive it
/// through the crate-private mutation surface below.
pub struct Search<'c, 'a, A: Algorithm + ?Sized, S: Semantics> {
    explorer: &'c Explorer<'a, A, S>,
    states: Vec<StateNode<S::Aux>>,
    /// Interned translation classes: packed `u128` key → dense id,
    /// decoded canonical representative stored once.
    arena: ClassArena,
    /// Per-class decision data, parallel to the arena ids.
    info: Vec<ClassInfo>,
    /// Per-class state ids, one per aux variant, parallel to the arena
    /// ids.
    variants: Vec<Vec<(S::Aux, usize)>>,
    edges: usize,
    deduped: usize,
}

impl<'c, 'a, A: Algorithm + ?Sized, S: Semantics> Search<'c, 'a, A, S> {
    /// The explorer this search runs under.
    pub(crate) fn explorer(&self) -> &'c Explorer<'a, A, S> {
        self.explorer
    }

    /// The search budgets.
    pub(crate) fn opts(&self) -> ExploreOptions {
        self.explorer.opts
    }

    /// `(class id, aux, rounds)` of state `id`.
    pub(crate) fn state(&self, id: usize) -> (u32, S::Aux, usize) {
        let s = &self.states[id];
        (s.class, s.aux, s.rounds)
    }

    /// The terminal classification of state `id`.
    pub(crate) fn node_kind(&self, id: usize) -> NodeKind {
        self.states[id].kind
    }

    /// The canonical representative of class `class`.
    pub(crate) fn class_cfg(&self, class: u32) -> &Configuration {
        self.arena.get(class)
    }

    /// The per-class decision data of class `class`.
    pub(crate) fn info(&self, class: u32) -> ClassInfo {
        self.info[class as usize]
    }

    /// Counts one expanded transition.
    pub(crate) fn bump_edges(&mut self) {
        self.edges += 1;
    }

    /// Counts one action skipped by the stabilizer reduction.
    pub(crate) fn bump_deduped(&mut self) {
        self.deduped += 1;
    }

    /// Whether a search budget is exhausted.
    pub(crate) fn over_budget(&self) -> bool {
        self.states.len() > self.explorer.opts.max_states
            || self.edges > self.explorer.opts.max_edges
    }

    /// Records the expanded edge `(action, succ)` on state `id`.
    pub(crate) fn push_edge(&mut self, id: usize, action: CrashRound, succ: usize) {
        self.states[id].edges.push((action, succ));
    }

    /// Interns `raw`'s translation class, computing its decision
    /// vector on first sight. This is the explorer's hottest path: the
    /// packed key folds the canonical translation without allocating,
    /// so a revisited class costs one `u128` hash lookup.
    fn intern_class(&mut self, raw: &Configuration) -> u32 {
        let (class, new) = self.arena.intern_key(raw.canonical_key());
        if new {
            let cfg = self.arena.get(class);
            let decisions = engine::compute_moves(cfg, &self.explorer.oracle);
            let mut moves = [None; PackedClass::MAX_ROBOTS];
            moves[..decisions.len()].copy_from_slice(&decisions);
            let movers = decisions.iter().enumerate().fold(0u16, |acc, (i, m)| {
                if m.is_some() {
                    acc | (1 << i)
                } else {
                    acc
                }
            });
            self.info.push(ClassInfo { n: cfg.len() as u8, movers, moves });
            self.variants.push(Vec::new());
        }
        class
    }

    /// Interns the state `(class of raw, aux)` where `aux` is already
    /// expressed over `raw`'s row-major slots. Returns
    /// `(id, newly_inserted)`. Row-major order is translation-invariant
    /// and canonicalisation only translates, so a slot index in `raw`
    /// is its slot in the canonical representative — no canonical
    /// configuration is materialized here.
    pub(crate) fn intern_state(
        &mut self,
        raw: &Configuration,
        aux: S::Aux,
        rounds: usize,
        parent: Option<(usize, CrashRound)>,
    ) -> (usize, bool) {
        let class = self.intern_class(raw);
        self.intern_variant(class, aux, rounds, parent)
    }

    /// Interns the state `(class, aux)` for an already-interned class —
    /// the fast path for actions that leave the configuration (and thus
    /// the slot indexing of the aux) unchanged.
    pub(crate) fn intern_variant(
        &mut self,
        class: u32,
        aux: S::Aux,
        rounds: usize,
        parent: Option<(usize, CrashRound)>,
    ) -> (usize, bool) {
        if let Some(&(_, id)) = self.variants[class as usize].iter().find(|&&(a, _)| a == aux) {
            return (id, false);
        }
        let info = &self.info[class as usize];
        let kind = self.explorer.semantics.classify(self.arena.get(class), info, aux);
        let id = self.states.len();
        self.variants[class as usize].push((aux, id));
        self.states.push(StateNode { class, aux, rounds, parent, edges: Vec::new(), kind });
        (id, true)
    }

    /// Shared scaffolding of a certificate traversal
    /// ([`Semantics::traverse`]): role tracking through a closed state
    /// walk, row-major re-sorting after every action, the
    /// walk-divergence assert, and the final role permutation. `seed`
    /// pre-flags roles exempt from fairness (role-indexed, which at
    /// the start state equals slot-indexed); `step` applies one
    /// action's semantics-specific effect — moving roles and setting
    /// fairness flags — given the current state id.
    pub(crate) fn traverse_roles(
        &self,
        start: usize,
        cycle: &[(CrashRound, usize)],
        seed: impl FnOnce(&mut [bool]),
        mut step: impl FnMut(usize, CrashRound, &mut RoleWalk),
    ) -> CycleCert {
        let (start_class, _, _) = self.state(start);
        let start_cfg = self.class_cfg(start_class);
        let n = start_cfg.len();
        // pos[r] = current coordinate of the robot that began in
        // row-major slot r; role_at[i] = which role sits in slot i.
        let mut walk = RoleWalk {
            pos: start_cfg.positions().to_vec(),
            role_at: (0..n).collect(),
            flags: vec![false; n],
        };
        seed(&mut walk.flags);
        let mut masks = Vec::with_capacity(cycle.len());
        let mut cur = start;
        for &(action, next) in cycle {
            step(cur, action, &mut walk);
            // Re-derive the slot ordering of the new configuration
            // (the identity re-sort when no robot moved).
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&r| polyhex::key(walk.pos[r]));
            walk.role_at = order;
            masks.push(action);
            cur = next;
            debug_assert_eq!(
                &Configuration::new(walk.pos.iter().copied()).canonical(),
                self.class_cfg(self.state(cur).0),
                "certificate walk diverged from the state graph"
            );
        }
        // The walk returned to the start state, translated by delta.
        let mut perm = vec![0usize; n];
        for (slot, &role) in walk.role_at.iter().enumerate() {
            perm[role] = slot;
        }
        CycleCert { masks, perm, flags: walk.flags }
    }

    /// Actions from the initial state to `id`, via BFS parents.
    pub(crate) fn path_to(&self, id: usize) -> Vec<CrashRound> {
        let mut actions = Vec::new();
        let mut cur = id;
        while let Some((parent, action)) = self.states[cur].parent {
            actions.push(action);
            cur = parent;
        }
        actions.reverse();
        actions
    }

    fn run(&mut self, initial: &Configuration) -> ExploreVerdict {
        let root_aux = self.explorer.semantics.root_aux();
        let (root, _) = self.intern_state(initial, root_aux, 0, None);
        if self.states[root].kind == NodeKind::Stuck {
            return ExploreVerdict::Refuted {
                schedule: Vec::new(),
                outcome: Outcome::StuckFixpoint { rounds: 0 },
            };
        }

        // Phase A: BFS over the reachable state graph; the first bad
        // terminal yields a minimal counterexample schedule.
        let mut queue: VecDeque<usize> = VecDeque::from([root]);
        while let Some(id) = queue.pop_front() {
            if self.states[id].kind != NodeKind::Inner {
                continue;
            }
            let semantics = self.explorer.semantics();
            if let Some(verdict) = semantics.expand(self, id, &mut queue) {
                return verdict;
            }
            if self.over_budget() {
                return ExploreVerdict::Undecided { depth: self.explorer.opts.fair_depth };
            }
        }

        // Phase B: no bad terminal is reachable. If the graph —
        // quotiented by the equivariance subgroup — is acyclic, every
        // fair schedule terminates, and all terminals are goals: proof.
        if self.quotient_is_acyclic() {
            return ExploreVerdict::Proof;
        }

        // Phase C: hunt for a fairly-pumpable cycle.
        if let Some(verdict) = self.find_fair_cycle() {
            return verdict;
        }
        ExploreVerdict::Undecided { depth: self.explorer.opts.fair_depth }
    }

    /// Whether the state graph, with nodes identified up to the
    /// algorithm's equivariance subgroup, is acyclic. The quotient is
    /// what must be checked: a subtree skipped by the stabilizer
    /// reduction is isomorphic to an explored one, so cycles in the
    /// full graph correspond exactly to closed walks in the quotient.
    ///
    /// Orbit keys are packed: each symmetry image is transformed,
    /// sorted and folded into a `(u128, u32)` pair on the stack — the
    /// class bits plus the permuted aux bits — and the orbit minimum of
    /// those pairs names the quotient node. Packing is injective, so
    /// the orbit partition is exactly the one unpacked
    /// `(Vec<Coord>, aux)` keys would induce — only the (free) choice
    /// of representative changed, which cannot affect whether the
    /// quotient graph has a cycle.
    fn quotient_is_acyclic(&self) -> bool {
        let mut qid_of_key: HashMap<(u128, u32), usize> = HashMap::new();
        let mut qid: Vec<usize> = Vec::with_capacity(self.states.len());
        for s in &self.states {
            let positions = self.arena.get(s.class).positions();
            let n = positions.len();
            let key = self
                .explorer
                .group
                .iter()
                .map(|sym| {
                    let mut mapped = [ORIGIN; PackedClass::MAX_ROBOTS];
                    for (m, &p) in mapped[..n].iter_mut().zip(positions) {
                        *m = sym.apply(p);
                    }
                    // Sort slot indices by the row-major order of the
                    // images: slot `k` of the transformed canonical
                    // form holds the robot from original slot `idx[k]`.
                    let mut idx: [usize; PackedClass::MAX_ROBOTS] = std::array::from_fn(|i| i);
                    idx[..n].sort_unstable_by_key(|&i| polyhex::key(mapped[i]));
                    let delta = mapped[idx[0]];
                    let mut cells = [ORIGIN; PackedClass::MAX_ROBOTS];
                    let mut inv = [0usize; PackedClass::MAX_ROBOTS];
                    for k in 0..n {
                        cells[k] = mapped[idx[k]] - delta;
                        inv[idx[k]] = k;
                    }
                    let aux = S::permute_aux(s.aux, n, |i| inv[i], *sym);
                    (PackedClass::of_sorted(&cells[..n]).bits(), S::aux_bits(aux))
                })
                .min()
                .expect("the group contains the identity");
            let next = qid_of_key.len();
            qid.push(*qid_of_key.entry(key).or_insert(next));
        }
        let nq = qid_of_key.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nq];
        for (i, s) in self.states.iter().enumerate() {
            for &(_, to) in &s.edges {
                adj[qid[i]].push(qid[to]);
            }
        }
        // Iterative three-colour DFS.
        let mut colour = vec![0u8; nq]; // 0 white, 1 grey, 2 black
        for start in 0..nq {
            if colour[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < adj[node].len() {
                    let to = adj[node][*next];
                    *next += 1;
                    match colour[to] {
                        0 => {
                            colour[to] = 1;
                            stack.push((to, 0));
                        }
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                } else {
                    colour[node] = 2;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Searches strongly connected components of the explored graph for
    /// a cycle whose pumped execution is fair; returns the refutation
    /// lasso if one is found.
    fn find_fair_cycle(&self) -> Option<ExploreVerdict> {
        let sccs = self.tarjan_sccs();
        for scc in sccs {
            let has_cycle =
                scc.len() > 1 || self.states[scc[0]].edges.iter().any(|&(_, to)| to == scc[0]);
            if !has_cycle {
                continue;
            }
            let in_scc: std::collections::HashSet<usize> = scc.iter().copied().collect();
            for &start in &scc {
                let cycles = self.collect_cycles(start, &in_scc);
                if cycles.is_empty() {
                    continue;
                }
                let certs: Vec<CycleCert> = cycles
                    .iter()
                    .map(|c| self.explorer.semantics.traverse(self, start, c))
                    .collect();
                for cert in &certs {
                    if cert.is_fair() {
                        return Some(self.lasso(start, cert));
                    }
                }
                // Single cycles may starve a parked robot that another
                // cycle through the same state activates: compose them.
                let mut acc = certs[0].clone();
                for round in 1..=self.explorer.opts.fair_depth {
                    acc = acc.compose(&certs[round % certs.len()]);
                    if acc.is_fair() {
                        return Some(self.lasso(start, &acc));
                    }
                }
            }
        }
        None
    }

    /// Simple cycles through `start` inside its SCC, as action/state
    /// sequences, found by bounded DFS (deterministic budgets).
    fn collect_cycles(
        &self,
        start: usize,
        in_scc: &std::collections::HashSet<usize>,
    ) -> Vec<Vec<(CrashRound, usize)>> {
        const MAX_CYCLES: usize = 32;
        const NODE_BUDGET: usize = 20_000;
        let depth_cap = self.explorer.opts.fair_depth;
        let mut cycles = Vec::new();
        let mut budget = NODE_BUDGET;
        let mut on_path = vec![false; self.states.len()];
        let mut path: Vec<(CrashRound, usize)> = Vec::new();
        self.dfs_cycles(
            start,
            start,
            in_scc,
            depth_cap,
            &mut budget,
            &mut on_path,
            &mut path,
            &mut cycles,
            MAX_CYCLES,
        );
        cycles
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_cycles(
        &self,
        node: usize,
        start: usize,
        in_scc: &std::collections::HashSet<usize>,
        depth_left: usize,
        budget: &mut usize,
        on_path: &mut [bool],
        path: &mut Vec<(CrashRound, usize)>,
        cycles: &mut Vec<Vec<(CrashRound, usize)>>,
        max_cycles: usize,
    ) {
        if depth_left == 0 || cycles.len() >= max_cycles || *budget == 0 {
            return;
        }
        *budget -= 1;
        on_path[node] = true;
        for &(action, to) in &self.states[node].edges {
            if to == start {
                let mut cycle = path.clone();
                cycle.push((action, to));
                cycles.push(cycle);
                if cycles.len() >= max_cycles {
                    break;
                }
                continue;
            }
            if !in_scc.contains(&to) || on_path[to] {
                continue;
            }
            path.push((action, to));
            self.dfs_cycles(
                to,
                start,
                in_scc,
                depth_left - 1,
                budget,
                on_path,
                path,
                cycles,
                max_cycles,
            );
            path.pop();
        }
        on_path[node] = false;
    }

    /// Builds the lasso refutation: BFS prefix to `start`, then the
    /// certificate's actions; replaying it runs to the step limit
    /// without settling at a goal.
    fn lasso(&self, start: usize, cert: &CycleCert) -> ExploreVerdict {
        let mut schedule = self.path_to(start);
        schedule.extend_from_slice(&cert.masks);
        let rounds = movement_rounds(&schedule);
        ExploreVerdict::Refuted { schedule, outcome: Outcome::StepLimit { rounds } }
    }

    /// Tarjan's SCC algorithm (iterative), components in deterministic
    /// order.
    fn tarjan_sccs(&self) -> Vec<Vec<usize>> {
        let n = self.states.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        let mut counter = 0usize;
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ei)) = call.last_mut() {
                if *ei == 0 {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ei < self.states[v].edges.len() {
                    let w = self.states[v].edges[*ei].1;
                    *ei += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        sccs
    }
}

/// Slot bitmask of the `coords` within `raw` (row-major slot indexing).
fn coords_mask(raw: &Configuration, coords: &[Coord]) -> u16 {
    let mut mask = 0u16;
    for &p in coords {
        let slot = raw
            .positions()
            .iter()
            .position(|&q| q == p)
            .expect("crashed robots occupy nodes of the configuration");
        mask |= 1 << slot;
    }
    mask
}

/// Coordinates of the slots in `mask` within `cfg`, written into a
/// stack buffer (returned as the filled prefix length).
fn mask_coords(
    cfg: &Configuration,
    mask: u16,
    buf: &mut [Coord; PackedClass::MAX_ROBOTS],
) -> usize {
    let mut len = 0;
    for (i, &p) in cfg.positions().iter().enumerate() {
        if mask & (1 << i) != 0 {
            buf[len] = p;
            len += 1;
        }
    }
    len
}

/// The next submask of `set` after `cur` in ascending numeric order
/// (`(cur - set) & set` with wrapping arithmetic). Starting from `0`
/// and advancing until `cur == set` enumerates every submask of `set`
/// ascending — exactly the masks the historical `0..=u8::MAX` scans
/// visited after their `mask & !set != 0` filter, so BFS discovery
/// order (and with it every golden-pinned counterexample schedule) is
/// preserved while the widened 16-bit masks avoid a 65536-iteration
/// sweep per state.
fn next_submask(cur: u16, set: u16) -> u16 {
    cur.wrapping_sub(set) & set
}

impl Semantics for CrashSemantics {
    type Aux = u16;

    fn root_aux(&self) -> u16 {
        0
    }

    fn aux_bits(aux: u16) -> u32 {
        u32::from(aux)
    }

    fn permute_aux(aux: u16, _n: usize, map: impl Fn(usize) -> usize, _sym: PointSymmetry) -> u16 {
        let mut mapped = 0u16;
        for i in 0..MASK_ROBOTS {
            if aux & (1 << i) != 0 {
                mapped |= 1 << map(i);
            }
        }
        mapped
    }

    fn classify(&self, cfg: &Configuration, info: &ClassInfo, crashed: u16) -> NodeKind {
        if info.movers & !crashed == 0 {
            if (self.goal)(cfg, crashed) {
                NodeKind::Goal
            } else {
                NodeKind::Stuck
            }
        } else {
            NodeKind::Inner
        }
    }

    /// Expands every adversary action of inner state `id`: first the
    /// pure-activation actions (crash budget untouched), then every
    /// crash injection combined with each activation of the surviving
    /// movers — or alone, when it leaves no live mover. Returns a
    /// refutation as soon as a bad terminal is reached.
    ///
    /// The state's configuration and decision vector are borrowed
    /// through the arena per iteration (the class data is `Copy` and
    /// the representative is re-indexed where needed), so nothing is
    /// cloned up front.
    fn expand<A: Algorithm + ?Sized>(
        &self,
        search: &mut Search<'_, '_, A, Self>,
        id: usize,
        queue: &mut VecDeque<usize>,
    ) -> Option<ExploreVerdict> {
        let (class, crashed, rounds) = search.state(id);
        let info = search.info(class);
        let n = info.n as usize;
        let movers = info.movers;
        let live = ((1u16 << n) - 1) & !crashed;
        let avail = self.budget.saturating_sub(crashed.count_ones() as u8);
        let explorer = search.explorer();
        let perms = if explorer.group().len() > 1 {
            explorer.stabilizer_perms(search.class_cfg(class), crashed)
        } else {
            Vec::new()
        };
        // Submasks of `live` in ascending numeric order — the same
        // sequence the historical filtered `0..=u8::MAX` scan visited,
        // so BFS discovery order (and every pinned schedule) survives
        // the u8 → u16 widening.
        let mut crash: u16 = 0;
        'crash: loop {
            'one_crash: {
                if crash.count_ones() > u32::from(avail) {
                    break 'one_crash;
                }
                let after = crashed | crash;
                let live_movers = movers & !after;
                if live_movers == 0 {
                    // The injection froze every remaining mover: a single
                    // injection-only action to a terminal state. `crash`
                    // is nonzero here — an inner state has a live mover.
                    // The configuration is unchanged, so the successor is
                    // interned directly at this class with the new mask.
                    let action = CrashRound { crash, activate: 0 };
                    if !perms.is_empty() && canonical_action(action, &perms) != action {
                        search.bump_deduped();
                        break 'one_crash;
                    }
                    search.bump_edges();
                    let (succ, new) =
                        search.intern_variant(class, after, rounds, Some((id, action)));
                    if new && search.node_kind(succ) == NodeKind::Stuck {
                        let mut schedule = search.path_to(id);
                        schedule.push(action);
                        return Some(ExploreVerdict::Refuted {
                            schedule,
                            outcome: Outcome::StuckFixpoint { rounds },
                        });
                    }
                    search.push_edge(id, action, succ);
                    if search.over_budget() {
                        return Some(ExploreVerdict::Undecided { depth: search.opts().fair_depth });
                    }
                    break 'one_crash;
                }
                // Depends only on the injection, not the activation: one
                // computation serves every mask below (empty and
                // allocation-free in budget-0 instantiations).
                let mut crash_buf = [ORIGIN; PackedClass::MAX_ROBOTS];
                let crash_len = mask_coords(search.class_cfg(class), after, &mut crash_buf);
                let crashed_coords = &crash_buf[..crash_len];
                // Nonzero submasks of `live_movers`, ascending.
                let mut mask: u16 = 0;
                while mask != live_movers {
                    mask = next_submask(mask, live_movers);
                    let action = CrashRound { crash, activate: mask };
                    if !perms.is_empty() && canonical_action(action, &perms) != action {
                        search.bump_deduped();
                        continue;
                    }
                    let mut masked = [None; PackedClass::MAX_ROBOTS];
                    for (i, slot) in masked[..n].iter_mut().enumerate() {
                        if mask & (1 << i) != 0 {
                            *slot = info.moves[i];
                        }
                    }
                    // The round semantics are the engine's `check_moves` +
                    // `apply_unchecked` — exactly `step_moves` minus the
                    // per-round `moved` report nobody reads here.
                    let cfg = search.class_cfg(class);
                    match engine::check_moves(cfg, &masked[..n]) {
                        Err(collision) => {
                            let mut schedule = search.path_to(id);
                            schedule.push(action);
                            return Some(ExploreVerdict::Refuted {
                                schedule,
                                outcome: Outcome::Collision { round: rounds, collision },
                            });
                        }
                        Ok(()) => {
                            let next = cfg.apply_unchecked(&masked[..n]);
                            search.bump_edges();
                            if !next.is_connected() {
                                let mut schedule = search.path_to(id);
                                schedule.push(action);
                                return Some(ExploreVerdict::Refuted {
                                    schedule,
                                    outcome: Outcome::Disconnected { round: rounds + 1 },
                                });
                            }
                            let aux = coords_mask(&next, crashed_coords);
                            let (succ, new) =
                                search.intern_state(&next, aux, rounds + 1, Some((id, action)));
                            if new {
                                if search.node_kind(succ) == NodeKind::Stuck {
                                    let mut schedule = search.path_to(id);
                                    schedule.push(action);
                                    return Some(ExploreVerdict::Refuted {
                                        schedule,
                                        outcome: Outcome::StuckFixpoint { rounds: rounds + 1 },
                                    });
                                }
                                queue.push_back(succ);
                            }
                            search.push_edge(id, action, succ);
                        }
                    }
                    if search.over_budget() {
                        return Some(ExploreVerdict::Undecided { depth: search.opts().fair_depth });
                    }
                }
            }
            if crash == live {
                break 'crash;
            }
            crash = next_submask(crash, live);
        }
        None
    }

    /// Concretely traverses a closed state walk once, tracking robot
    /// roles and activation flags.
    fn traverse<A: Algorithm + ?Sized>(
        &self,
        search: &Search<'_, '_, A, Self>,
        start: usize,
        cycle: &[(CrashRound, usize)],
    ) -> CycleCert {
        let (_, start_crashed, _) = search.state(start);
        // Crashed robots are exempt from fairness: never activating
        // them is legitimate, so their orbits are satisfied for free.
        let seed = |flags: &mut [bool]| {
            for (slot, flag) in flags.iter_mut().enumerate() {
                if start_crashed & (1 << slot) != 0 {
                    *flag = true;
                }
            }
        };
        search.traverse_roles(start, cycle, seed, |cur, action, walk| {
            debug_assert_eq!(action.crash, 0, "cycles never cross a crash level");
            let (cur_class, _, _) = search.state(cur);
            let moves = search.info(cur_class).moves;
            for (slot, &decision) in moves[..walk.role_at.len()].iter().enumerate() {
                let role = walk.role_at[slot];
                match decision {
                    None => walk.flags[role] = true, // free activation
                    Some(dir) => {
                        if action.activate & (1 << slot) != 0 {
                            walk.pos[role] = walk.pos[role].step(dir);
                            walk.flags[role] = true;
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, StayAlgorithm};
    use trigrid::ORIGIN;

    fn fsync_goal(cfg: &Configuration, _crashed: u16) -> bool {
        cfg.is_gathered()
    }

    fn cfg(cells: &[(i32, i32)]) -> Configuration {
        Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn budget_zero_has_no_crash_actions() {
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let explorer = Explorer::new(&march, ExploreOptions::default(), 0, fsync_goal);
        let report = explorer.check(&cfg(&[(0, 0), (2, 0)]));
        let ExploreVerdict::Refuted { schedule, .. } = &report.verdict else {
            panic!("two marchers refute under SSYNC: {:?}", report.verdict);
        };
        assert!(schedule.iter().all(|a| a.crash == 0), "budget 0 must never inject");
    }

    #[test]
    fn crash_budget_preserves_a_stay_proof() {
        // StayAlgorithm on the hexagon has no mover anywhere, so the
        // crash budget gives the adversary nothing to exploit: the
        // gathered terminal stays a proof. (That a nonzero budget can
        // flip a budget-0 proof into a refutation is pinned at scale
        // by the crash golden files: 1869 adversary-proof classes vs
        // 11 crash-proof ones.)
        let h = crate::config::hexagon(ORIGIN);
        let explorer = Explorer::new(&StayAlgorithm, ExploreOptions::default(), 1, fsync_goal);
        assert_eq!(explorer.check(&h).verdict, ExploreVerdict::Proof);
    }

    #[test]
    fn injection_freezes_the_lone_mover() {
        // One robot marches east towards its idle neighbour's far side;
        // crashing the mover parks the pair two apart forever: a stuck
        // refutation reachable only through a crash injection.
        let march = FnAlgorithm::new(1, "march-if-clear", |v: &View| {
            (!v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let zero = Explorer::new(&march, ExploreOptions::default(), 0, fsync_goal);
        let one = Explorer::new(&march, ExploreOptions::default(), 1, fsync_goal);
        // Without crashes the east robot disconnects the pair.
        assert!(matches!(
            zero.check(&two).verdict,
            ExploreVerdict::Refuted { outcome: Outcome::Disconnected { .. }, .. }
        ));
        // With one crash the minimal refutation is still 1 action, and
        // budget 1 explores at least as much as budget 0.
        let report = one.check(&two);
        assert!(matches!(report.verdict, ExploreVerdict::Refuted { .. }));
        assert!(report.edges >= zero.check(&two).edges);
    }

    #[test]
    fn movement_rounds_skip_injection_only_actions() {
        let schedule = [
            CrashRound { crash: 0b01, activate: 0 },
            CrashRound { crash: 0, activate: 0b10 },
            CrashRound { crash: 0b10, activate: 0b100 },
        ];
        assert_eq!(movement_rounds(&schedule), 2);
    }

    #[test]
    fn canonical_action_orders_by_crash_then_activation() {
        let swap = vec![1usize, 0];
        let action = CrashRound { crash: 0b10, activate: 0b01 };
        let canon = canonical_action(action, std::slice::from_ref(&swap));
        assert_eq!(canon, CrashRound { crash: 0b01, activate: 0b10 });
    }

    #[test]
    fn crash_aux_permutes_as_a_slot_mask() {
        // 3-cycle 0→1→2→0 on a 3-robot mask; the symmetry itself is
        // irrelevant to a direction-free mask.
        let mapped = CrashSemantics::permute_aux(0b011, 3, |i| (i + 1) % 3, PointSymmetry::Rot(2));
        assert_eq!(mapped, 0b110);
        assert_eq!(CrashSemantics::aux_bits(0b110), 0b110u32);
    }
}
