//! Exhaustive SSYNC adversary model checking.
//!
//! The paper proves Theorem 2 only under FSYNC and leaves weaker
//! synchrony open (§V). The sweep pipeline *samples* SSYNC with
//! round-robin and random schedulers — it can refute but never certify.
//! This module closes the gap for a single initial class: it explores
//! **every** nonempty activation subset in every reachable round over
//! the graph of canonical translation classes, and returns one of
//!
//! * [`AdversaryVerdict::Proof`] — *every* fair SSYNC schedule gathers,
//! * [`AdversaryVerdict::Refuted`] — some schedule provably does not;
//!   the verdict carries a minimal activation schedule replayable
//!   through [`sched::run_scheduled`] (see [`replay`]),
//! * [`AdversaryVerdict::Undecided`] — the class graph is cyclic but no
//!   fair counterexample cycle was found within the search depth.
//!
//! # Soundness (sketch — the full argument is DESIGN.md §7)
//!
//! A round's successor depends only on the activated robots **that
//! would move**; activating a robot whose decision is *stay* changes
//! nothing. The checker therefore expands the `2^m − 1` nonempty
//! subsets of the `m` movers — together with the free choice of idle
//! robots this covers all `2^7 − 1` activation subsets. Subsets that
//! activate no mover are self-loops; a *fair* schedule (every robot
//! performs infinitely many cycles) cannot take them forever, so they
//! are excluded. Reaching a collision, a disconnection or a stuck
//! fixpoint refutes outright. If the reachable graph — quotiented by
//! the algorithm's symmetry group, see below — is acyclic, every fair
//! schedule reaches a terminal, and all terminals are gathered: proof.
//! Otherwise the checker hunts for a cycle that can be pumped *fairly*:
//! tracking robots through one traversal yields a permutation of roles,
//! and the pumped execution is fair iff every permutation orbit
//! contains a robot that either moves or is observed deciding to stay
//! (such a robot can be activated for free) during the traversal.
//!
//! # Symmetry reduction
//!
//! Before expansion the checker computes the subgroup of the D6 point
//! group under which the **algorithm itself** is equivariant
//! (`compute(σ·view) = σ·compute(view)` for every view). Activation
//! subsets related by a stabilizer of the current class *within that
//! subgroup* produce isomorphic subtrees and are deduplicated.
//! Restricting to algorithm-equivariant symmetries is what makes the
//! reduction sound: robots agree on the x-axis and chirality, so an
//! arbitrary D6 stabilizer of the configuration does **not** commute
//! with the algorithm.

use crate::engine::{self, Limits, Outcome};
use crate::sched::{self, ScheduleReplay};
use crate::visited::ClassMap;
use crate::{view, Algorithm, Configuration, Execution, View};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use trigrid::transform::PointSymmetry;
use trigrid::{Coord, Dir};

/// Search budgets for [`Checker::check`]. All budgets are deterministic
/// counters, so verdicts never depend on threading or timing.
#[derive(Clone, Copy, Debug)]
pub struct AdversaryOptions {
    /// Cap on distinct classes explored per check (the connected
    /// seven-robot space holds 3652, so the default never binds there).
    pub max_classes: usize,
    /// Cap on expanded edges per check.
    pub max_edges: usize,
    /// Depth bound for the fair-cycle search: maximal simple-cycle
    /// length and maximal number of cycle compositions tried.
    pub fair_depth: usize,
}

/// Default fair-cycle search depth (the `D` of `--sched adversary:D`).
pub const DEFAULT_FAIR_DEPTH: usize = 12;

impl Default for AdversaryOptions {
    fn default() -> Self {
        AdversaryOptions { max_classes: 4096, max_edges: 2_000_000, fair_depth: DEFAULT_FAIR_DEPTH }
    }
}

/// The classification of one initial class under the SSYNC adversary.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum AdversaryVerdict {
    /// Every fair SSYNC schedule gathers from this class.
    Proof,
    /// A concrete schedule refutes gathering. `schedule[r]` is the
    /// activation bitmask of round `r` (bit `i` = the `i`-th robot in
    /// row-major order of the round's configuration). `outcome` is what
    /// replaying the schedule through [`sched::run_scheduled`] ends
    /// with: a collision, a disconnection, a stuck fixpoint, or — for a
    /// fair non-gathering cycle — [`Outcome::StepLimit`] after the
    /// recorded lasso.
    Refuted {
        /// Per-round activation bitmasks.
        schedule: Vec<u8>,
        /// The outcome the replay must reproduce.
        outcome: Outcome,
    },
    /// The class graph contains cycles, but no fair counterexample
    /// cycle was found within depth `depth` — neither verdict is
    /// certified.
    Undecided {
        /// The fair-cycle search depth that was exhausted.
        depth: usize,
    },
}

impl AdversaryVerdict {
    /// Short tag used by reports and golden files.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AdversaryVerdict::Proof => "proof",
            AdversaryVerdict::Refuted { .. } => "refuted",
            AdversaryVerdict::Undecided { .. } => "undecided",
        }
    }
}

/// The result of checking one class: the verdict plus deterministic
/// exploration statistics.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AdversaryReport {
    /// The classification.
    pub verdict: AdversaryVerdict,
    /// Distinct canonical classes explored.
    pub classes: usize,
    /// Activation-subset edges expanded (legal rounds executed).
    pub edges: usize,
    /// Subsets skipped by the stabilizer symmetry reduction.
    pub deduped: usize,
}

/// An incremental FNV-1a 64-bit hasher — the one hash implementation
/// behind [`schedule_hash`] and the sweep pipeline's verdict digest.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes one byte.
    pub fn write(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Mixes a byte slice.
    pub fn write_all(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write(b);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a hash of a counterexample schedule, for compact golden files.
#[must_use]
pub fn schedule_hash(schedule: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_all(schedule);
    h.finish()
}

/// Replays a [`AdversaryVerdict::Refuted`] schedule through
/// [`sched::run_scheduled`]; returns `None` for other verdicts. The
/// replayed execution must end with exactly the verdict's `outcome`.
#[must_use]
pub fn replay<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    verdict: &AdversaryVerdict,
) -> Option<Execution> {
    let AdversaryVerdict::Refuted { schedule, outcome } = verdict else {
        return None;
    };
    let max_rounds = match outcome {
        Outcome::StuckFixpoint { rounds } => rounds + 1,
        Outcome::StepLimit { rounds } => *rounds,
        Outcome::Collision { .. } | Outcome::Disconnected { .. } => schedule.len().max(1),
        _ => schedule.len() + 1,
    };
    let mut replayer = ScheduleReplay::new(schedule.clone());
    let limits = Limits { max_rounds, detect_livelock: false };
    Some(sched::run_scheduled(initial, algo, &mut replayer, limits))
}

/// Computes the subgroup of D6 under which `algo` is equivariant:
/// `compute(σ·v) = σ·compute(v)` for every view `v` with at most
/// **seven** robots — the only views that can arise in the up-to-8
/// robot configurations [`Checker::check`] accepts. Algorithms with
/// radius beyond 2 are conservatively treated as asymmetric.
#[must_use]
pub fn equivariance_group<A: Algorithm + ?Sized>(algo: &A) -> Vec<PointSymmetry> {
    let radius = algo.radius();
    let mut group = vec![PointSymmetry::Rot(0)];
    let labels = view::labels(radius);
    if labels.len() > 18 {
        return group;
    }
    'sym: for &s in &PointSymmetry::ALL[1..] {
        let perm: Vec<usize> = labels
            .iter()
            .map(|&l| view::label_index(radius, s.apply(l)).expect("D6 permutes the label disk"))
            .collect();
        for bits in 0..(1u64 << labels.len()) {
            if bits.count_ones() > 7 {
                continue;
            }
            let mut mapped = 0u64;
            for (i, &j) in perm.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    mapped |= 1 << j;
                }
            }
            let decision = algo.compute(&View::from_bits(radius, bits));
            let image = algo.compute(&View::from_bits(radius, mapped));
            if image != decision.map(|d| s.apply_dir(d)) {
                continue 'sym;
            }
        }
        group.push(s);
    }
    group
}

/// How a discovered class terminates, if it does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeKind {
    /// Movers exist: the class is expanded.
    Inner,
    /// Full activation moves nobody and the class is gathered.
    Gathered,
    /// Full activation moves nobody but the class is not gathered.
    Stuck,
}

struct StateNode {
    /// Canonical representative of the translation class.
    cfg: Configuration,
    /// Full decision vector, aligned with `cfg.positions()`.
    moves: Vec<Option<Dir>>,
    /// Bitmask of robots whose decision is a move.
    movers: u8,
    /// BFS depth (rounds from the initial class).
    depth: usize,
    /// Discovery edge, for schedule reconstruction.
    parent: Option<(usize, u8)>,
    /// Expanded edges `(activation mask, successor id)`.
    edges: Vec<(u8, usize)>,
    kind: NodeKind,
}

/// A fair-cycle certificate: one traversal of a closed class walk.
#[derive(Clone)]
struct CycleCert {
    /// The activation masks of the traversal.
    masks: Vec<u8>,
    /// Role permutation: the robot in row-major slot `r` at the start
    /// occupies slot `perm[r]` after the traversal.
    perm: Vec<usize>,
    /// Whether role `r` moved, or was seen deciding to stay (and is
    /// thus activatable for free), during the traversal.
    flags: Vec<bool>,
}

impl CycleCert {
    /// Whether pumping this traversal forever is fair: every orbit of
    /// the role permutation must contain a flagged role.
    fn is_fair(&self) -> bool {
        let n = self.perm.len();
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut ok = false;
            let mut r = start;
            loop {
                seen[r] = true;
                ok |= self.flags[r];
                r = self.perm[r];
                if r == start {
                    break;
                }
            }
            if !ok {
                return false;
            }
        }
        true
    }

    /// Sequential composition: this traversal followed by `next` (both
    /// starting from the same class).
    fn compose(&self, next: &CycleCert) -> CycleCert {
        let mut masks = self.masks.clone();
        masks.extend_from_slice(&next.masks);
        let perm = self.perm.iter().map(|&p| next.perm[p]).collect();
        let flags = self.flags.iter().zip(&self.perm).map(|(&f, &p)| f || next.flags[p]).collect();
        CycleCert { masks, perm, flags }
    }
}

/// An exhaustive SSYNC adversary checker for one algorithm.
///
/// Construction computes the algorithm's equivariance subgroup once
/// (it scans every view of the algorithm's radius); reuse one checker
/// across many [`check`](Checker::check) calls.
pub struct Checker<'a, A: Algorithm + ?Sized> {
    algo: &'a A,
    opts: AdversaryOptions,
    group: Vec<PointSymmetry>,
}

impl<'a, A: Algorithm + ?Sized> Checker<'a, A> {
    /// Builds a checker for `algo` with the given budgets.
    #[must_use]
    pub fn new(algo: &'a A, opts: AdversaryOptions) -> Self {
        let group = equivariance_group(algo);
        Checker { algo, opts, group }
    }

    /// The algorithm's equivariance subgroup (always contains the
    /// identity).
    #[must_use]
    pub fn group(&self) -> &[PointSymmetry] {
        &self.group
    }

    /// Classifies `initial` under the exhaustive SSYNC adversary.
    ///
    /// # Panics
    /// Panics if `initial` is disconnected or holds more than 8 robots
    /// (activation masks are bytes).
    #[must_use]
    pub fn check(&self, initial: &Configuration) -> AdversaryReport {
        assert!(initial.len() <= 8, "activation masks are bytes: at most 8 robots");
        assert!(initial.is_connected(), "the paper's model starts connected");
        let mut search = Search {
            checker: self,
            states: Vec::new(),
            ids: ClassMap::new(),
            edges: 0,
            deduped: 0,
        };
        let verdict = search.run(initial);
        AdversaryReport {
            verdict,
            classes: search.states.len(),
            edges: search.edges,
            deduped: search.deduped,
        }
    }

    /// Index permutations induced on `cfg` by the stabilizer of its
    /// class within the equivariance subgroup (identity omitted).
    fn stabilizer_perms(&self, cfg: &Configuration) -> Vec<Vec<usize>> {
        let positions = cfg.positions();
        let mut perms = Vec::new();
        for &s in &self.group[1..] {
            let mapped: Vec<Coord> = positions.iter().map(|&p| s.apply(p)).collect();
            let canon = polyhex::canonical_translation(&mapped);
            if canon != positions {
                continue;
            }
            let delta = *mapped
                .iter()
                .min_by_key(|c| polyhex::key(**c))
                .expect("configurations are non-empty");
            let perm: Vec<usize> = mapped
                .iter()
                .map(|&q| {
                    let normalized = q - delta;
                    positions
                        .iter()
                        .position(|&p| p == normalized)
                        .expect("stabilizer permutes the class")
                })
                .collect();
            perms.push(perm);
        }
        perms
    }
}

/// Minimal representative of `mask`'s orbit under the index
/// permutations.
fn canonical_mask(mask: u8, perms: &[Vec<usize>]) -> u8 {
    let mut best = mask;
    for perm in perms {
        let mut mapped = 0u8;
        for (i, &j) in perm.iter().enumerate() {
            if mask & (1 << i) != 0 {
                mapped |= 1 << j;
            }
        }
        best = best.min(mapped);
    }
    best
}

/// One `check` call's working state.
struct Search<'c, 'a, A: Algorithm + ?Sized> {
    checker: &'c Checker<'a, A>,
    states: Vec<StateNode>,
    ids: ClassMap<usize>,
    edges: usize,
    deduped: usize,
}

impl<A: Algorithm + ?Sized> Search<'_, '_, A> {
    /// Interns the class of `cfg`, computing its decisions on first
    /// sight. Returns `(id, newly_inserted)`. Canonicalises exactly
    /// once — this is the checker's hottest path.
    fn intern(
        &mut self,
        cfg: &Configuration,
        depth: usize,
        parent: Option<(usize, u8)>,
    ) -> (usize, bool) {
        let canonical = cfg.canonical();
        if let Some(&id) = self.ids.get_canonical(&canonical) {
            return (id, false);
        }
        let moves = engine::compute_moves(&canonical, self.checker.algo);
        let movers =
            moves
                .iter()
                .enumerate()
                .fold(0u8, |acc, (i, m)| if m.is_some() { acc | (1 << i) } else { acc });
        let kind = if movers == 0 {
            if canonical.is_gathered() {
                NodeKind::Gathered
            } else {
                NodeKind::Stuck
            }
        } else {
            NodeKind::Inner
        };
        let id = self.states.len();
        self.ids.insert_canonical(canonical.clone(), id);
        self.states.push(StateNode {
            cfg: canonical,
            moves,
            movers,
            depth,
            parent,
            edges: Vec::new(),
            kind,
        });
        (id, true)
    }

    /// Activation masks from the initial class to `id`, via BFS parents.
    fn path_to(&self, id: usize) -> Vec<u8> {
        let mut masks = Vec::new();
        let mut cur = id;
        while let Some((parent, mask)) = self.states[cur].parent {
            masks.push(mask);
            cur = parent;
        }
        masks.reverse();
        masks
    }

    fn run(&mut self, initial: &Configuration) -> AdversaryVerdict {
        let (root, _) = self.intern(initial, 0, None);
        if self.states[root].kind == NodeKind::Stuck {
            return AdversaryVerdict::Refuted {
                schedule: Vec::new(),
                outcome: Outcome::StuckFixpoint { rounds: 0 },
            };
        }

        // Phase A: BFS over the reachable class graph; the first bad
        // terminal yields a minimal counterexample schedule.
        let mut queue: VecDeque<usize> = VecDeque::from([root]);
        while let Some(id) = queue.pop_front() {
            if self.states[id].kind != NodeKind::Inner {
                continue;
            }
            let cfg = self.states[id].cfg.clone();
            let moves = self.states[id].moves.clone();
            let movers = self.states[id].movers;
            let depth = self.states[id].depth;
            let perms = if self.checker.group.len() > 1 {
                self.checker.stabilizer_perms(&cfg)
            } else {
                Vec::new()
            };
            for mask in 1..=u8::MAX {
                if mask & !movers != 0 {
                    continue;
                }
                if !perms.is_empty() && canonical_mask(mask, &perms) != mask {
                    self.deduped += 1;
                    continue;
                }
                let masked: Vec<Option<Dir>> = moves
                    .iter()
                    .enumerate()
                    .map(|(i, m)| if mask & (1 << i) != 0 { *m } else { None })
                    .collect();
                match engine::step_moves(&cfg, &masked) {
                    Err(collision) => {
                        let mut schedule = self.path_to(id);
                        schedule.push(mask);
                        return AdversaryVerdict::Refuted {
                            schedule,
                            outcome: Outcome::Collision { round: depth, collision },
                        };
                    }
                    Ok(result) => {
                        self.edges += 1;
                        if !result.config.is_connected() {
                            let mut schedule = self.path_to(id);
                            schedule.push(mask);
                            return AdversaryVerdict::Refuted {
                                schedule,
                                outcome: Outcome::Disconnected { round: depth + 1 },
                            };
                        }
                        let (succ, new) = self.intern(&result.config, depth + 1, Some((id, mask)));
                        if new {
                            if self.states[succ].kind == NodeKind::Stuck {
                                let mut schedule = self.path_to(id);
                                schedule.push(mask);
                                return AdversaryVerdict::Refuted {
                                    schedule,
                                    outcome: Outcome::StuckFixpoint { rounds: depth + 1 },
                                };
                            }
                            queue.push_back(succ);
                        }
                        self.states[id].edges.push((mask, succ));
                    }
                }
                if self.states.len() > self.checker.opts.max_classes
                    || self.edges > self.checker.opts.max_edges
                {
                    return AdversaryVerdict::Undecided { depth: self.checker.opts.fair_depth };
                }
            }
        }

        // Phase B: no bad terminal is reachable. If the graph —
        // quotiented by the equivariance subgroup — is acyclic, every
        // fair schedule terminates, and all terminals gather: proof.
        if self.quotient_is_acyclic() {
            return AdversaryVerdict::Proof;
        }

        // Phase C: hunt for a fairly-pumpable cycle.
        if let Some(verdict) = self.find_fair_cycle() {
            return verdict;
        }
        AdversaryVerdict::Undecided { depth: self.checker.opts.fair_depth }
    }

    /// Whether the class graph, with nodes identified up to the
    /// algorithm's equivariance subgroup, is acyclic. The quotient is
    /// what must be checked: a subtree skipped by the stabilizer
    /// reduction is isomorphic to an explored one, so cycles in the
    /// full graph correspond exactly to closed walks in the quotient.
    fn quotient_is_acyclic(&self) -> bool {
        use std::collections::HashMap;
        let mut qid_of_key: HashMap<Vec<Coord>, usize> = HashMap::new();
        let mut qid: Vec<usize> = Vec::with_capacity(self.states.len());
        for s in &self.states {
            let key = self
                .checker
                .group
                .iter()
                .map(|sym| {
                    let mapped: Vec<Coord> =
                        s.cfg.positions().iter().map(|&p| sym.apply(p)).collect();
                    polyhex::canonical_translation(&mapped)
                })
                .min()
                .expect("the group contains the identity");
            let next = qid_of_key.len();
            qid.push(*qid_of_key.entry(key).or_insert(next));
        }
        let nq = qid_of_key.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nq];
        for (i, s) in self.states.iter().enumerate() {
            for &(_, to) in &s.edges {
                adj[qid[i]].push(qid[to]);
            }
        }
        // Iterative three-colour DFS.
        let mut colour = vec![0u8; nq]; // 0 white, 1 grey, 2 black
        for start in 0..nq {
            if colour[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = 1;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < adj[node].len() {
                    let to = adj[node][*next];
                    *next += 1;
                    match colour[to] {
                        0 => {
                            colour[to] = 1;
                            stack.push((to, 0));
                        }
                        1 => return false, // back edge: cycle
                        _ => {}
                    }
                } else {
                    colour[node] = 2;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Searches strongly connected components of the explored graph for
    /// a cycle whose pumped execution is fair; returns the refutation
    /// lasso if one is found.
    fn find_fair_cycle(&self) -> Option<AdversaryVerdict> {
        let sccs = self.tarjan_sccs();
        for scc in sccs {
            let has_cycle =
                scc.len() > 1 || self.states[scc[0]].edges.iter().any(|&(_, to)| to == scc[0]);
            if !has_cycle {
                continue;
            }
            let in_scc: std::collections::HashSet<usize> = scc.iter().copied().collect();
            for &start in &scc {
                let cycles = self.collect_cycles(start, &in_scc);
                if cycles.is_empty() {
                    continue;
                }
                let certs: Vec<CycleCert> =
                    cycles.iter().map(|c| self.build_cert(start, c)).collect();
                for cert in &certs {
                    if cert.is_fair() {
                        return Some(self.lasso(start, cert));
                    }
                }
                // Single cycles may starve a parked robot that another
                // cycle through the same class activates: compose them.
                let mut acc = certs[0].clone();
                for round in 1..=self.checker.opts.fair_depth {
                    acc = acc.compose(&certs[round % certs.len()]);
                    if acc.is_fair() {
                        return Some(self.lasso(start, &acc));
                    }
                }
            }
        }
        None
    }

    /// Simple cycles through `start` inside its SCC, as mask/state
    /// sequences, found by bounded DFS (deterministic budgets).
    fn collect_cycles(
        &self,
        start: usize,
        in_scc: &std::collections::HashSet<usize>,
    ) -> Vec<Vec<(u8, usize)>> {
        const MAX_CYCLES: usize = 32;
        const NODE_BUDGET: usize = 20_000;
        let depth_cap = self.checker.opts.fair_depth;
        let mut cycles = Vec::new();
        let mut budget = NODE_BUDGET;
        let mut on_path = vec![false; self.states.len()];
        let mut path: Vec<(u8, usize)> = Vec::new();
        self.dfs_cycles(
            start,
            start,
            in_scc,
            depth_cap,
            &mut budget,
            &mut on_path,
            &mut path,
            &mut cycles,
            MAX_CYCLES,
        );
        cycles
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_cycles(
        &self,
        node: usize,
        start: usize,
        in_scc: &std::collections::HashSet<usize>,
        depth_left: usize,
        budget: &mut usize,
        on_path: &mut [bool],
        path: &mut Vec<(u8, usize)>,
        cycles: &mut Vec<Vec<(u8, usize)>>,
        max_cycles: usize,
    ) {
        if depth_left == 0 || cycles.len() >= max_cycles || *budget == 0 {
            return;
        }
        *budget -= 1;
        on_path[node] = true;
        for &(mask, to) in &self.states[node].edges {
            if to == start {
                let mut cycle = path.clone();
                cycle.push((mask, to));
                cycles.push(cycle);
                if cycles.len() >= max_cycles {
                    break;
                }
                continue;
            }
            if !in_scc.contains(&to) || on_path[to] {
                continue;
            }
            path.push((mask, to));
            self.dfs_cycles(
                to,
                start,
                in_scc,
                depth_left - 1,
                budget,
                on_path,
                path,
                cycles,
                max_cycles,
            );
            path.pop();
        }
        on_path[node] = false;
    }

    /// Concretely traverses a closed class walk once, tracking robot
    /// roles and activation flags.
    fn build_cert(&self, start: usize, cycle: &[(u8, usize)]) -> CycleCert {
        let n = self.states[start].cfg.len();
        // pos[r] = current coordinate of the robot that began in
        // row-major slot r; role_at[i] = which role sits in slot i.
        let mut pos: Vec<Coord> = self.states[start].cfg.positions().to_vec();
        let mut role_at: Vec<usize> = (0..n).collect();
        let mut flags = vec![false; n];
        let mut masks = Vec::with_capacity(cycle.len());
        let mut cur = start;
        for &(mask, next) in cycle {
            let moves = &self.states[cur].moves;
            for slot in 0..n {
                let role = role_at[slot];
                match moves[slot] {
                    None => flags[role] = true, // free activation
                    Some(dir) => {
                        if mask & (1 << slot) != 0 {
                            pos[role] = pos[role].step(dir);
                            flags[role] = true;
                        }
                    }
                }
            }
            // Re-derive the slot ordering of the new configuration.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&r| polyhex::key(pos[r]));
            role_at = order;
            masks.push(mask);
            cur = next;
            debug_assert_eq!(
                Configuration::new(pos.iter().copied()).canonical(),
                self.states[cur].cfg,
                "certificate walk diverged from the class graph"
            );
        }
        // The walk returned to the start class, translated by delta.
        let mut perm = vec![0usize; n];
        for (slot, &role) in role_at.iter().enumerate() {
            perm[role] = slot;
        }
        CycleCert { masks, perm, flags }
    }

    /// Builds the lasso refutation: BFS prefix to `start`, then the
    /// certificate's masks; replaying it runs to the step limit without
    /// gathering.
    fn lasso(&self, start: usize, cert: &CycleCert) -> AdversaryVerdict {
        let mut schedule = self.path_to(start);
        schedule.extend_from_slice(&cert.masks);
        let rounds = schedule.len();
        AdversaryVerdict::Refuted { schedule, outcome: Outcome::StepLimit { rounds } }
    }

    /// Tarjan's SCC algorithm (iterative), components in deterministic
    /// order.
    fn tarjan_sccs(&self) -> Vec<Vec<usize>> {
        let n = self.states.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        let mut counter = 0usize;
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ei)) = call.last_mut() {
                if *ei == 0 {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ei < self.states[v].edges.len() {
                    let w = self.states[v].edges[*ei].1;
                    *ei += 1;
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        sccs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, StayAlgorithm};
    use trigrid::ORIGIN;

    fn cfg(cells: &[(i32, i32)]) -> Configuration {
        Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    fn check<A: Algorithm>(algo: &A, initial: &Configuration) -> AdversaryReport {
        Checker::new(algo, AdversaryOptions::default()).check(initial)
    }

    /// Asserts a refuted verdict replays to exactly its recorded
    /// outcome and a non-gathered final configuration.
    fn assert_replays<A: Algorithm>(algo: &A, initial: &Configuration, report: &AdversaryReport) {
        let AdversaryVerdict::Refuted { outcome, .. } = &report.verdict else {
            panic!("expected a refutation, got {:?}", report.verdict);
        };
        let ex = replay(initial, algo, &report.verdict).expect("refutations replay");
        assert_eq!(&ex.outcome, outcome, "replay must reproduce the recorded outcome");
        if matches!(outcome, Outcome::StepLimit { .. }) {
            assert!(!ex.final_config.is_gathered(), "a lasso replay must not end gathered");
        }
    }

    #[test]
    fn gathered_fixpoint_is_proof() {
        let h = crate::config::hexagon(ORIGIN);
        let report = check(&StayAlgorithm, &h);
        assert_eq!(report.verdict, AdversaryVerdict::Proof);
        assert_eq!(report.classes, 1);
    }

    #[test]
    fn stuck_fixpoint_is_refuted_with_empty_schedule() {
        let line = cfg(&[(0, 0), (2, 0), (4, 0)]);
        let report = check(&StayAlgorithm, &line);
        assert_eq!(
            report.verdict,
            AdversaryVerdict::Refuted {
                schedule: vec![],
                outcome: Outcome::StuckFixpoint { rounds: 0 }
            }
        );
        assert_replays(&StayAlgorithm, &line, &report);
    }

    #[test]
    fn lone_marcher_is_a_fair_livelock() {
        // One robot marching east forever: every schedule activates it,
        // the pumped cycle is fair, and gathering never happens.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let lone = Configuration::new([ORIGIN]);
        let report = check(&march, &lone);
        match &report.verdict {
            AdversaryVerdict::Refuted { outcome: Outcome::StepLimit { .. }, schedule } => {
                assert!(!schedule.is_empty());
            }
            other => panic!("expected a step-limit lasso, got {other:?}"),
        }
        assert_replays(&march, &lone, &report);
    }

    #[test]
    fn ssync_breaks_the_fsync_train() {
        // Two robots marching east form a legal FSYNC train, but the
        // adversary activates only the west robot, which walks onto its
        // idle neighbour: a minimal 1-round collision schedule.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&march, &two);
        match &report.verdict {
            AdversaryVerdict::Refuted {
                schedule,
                outcome: Outcome::Collision { round: 0, .. },
            } => {
                assert_eq!(schedule.len(), 1, "counterexample must be minimal");
            }
            other => panic!("expected an immediate collision, got {other:?}"),
        }
        assert_replays(&march, &two, &report);
    }

    #[test]
    fn fleeing_robot_is_refuted_by_disconnection() {
        let flee = FnAlgorithm::new(1, "flee", |v: &View| {
            (v.neighbor(Dir::W) && !v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&flee, &two);
        match &report.verdict {
            AdversaryVerdict::Refuted { outcome: Outcome::Disconnected { .. }, .. } => {}
            other => panic!("expected disconnection, got {other:?}"),
        }
        assert_replays(&flee, &two, &report);
    }

    #[test]
    fn stay_is_fully_equivariant_and_march_is_not() {
        assert_eq!(equivariance_group(&StayAlgorithm).len(), 12);
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        // Marching east commutes only with the identity and the mirror
        // across the x-axis (which fixes E).
        let group = equivariance_group(&march);
        assert!(group.contains(&PointSymmetry::Rot(0)));
        assert!(group.contains(&PointSymmetry::Ref(0)));
        assert_eq!(group.len(), 2);
    }

    #[test]
    fn symmetric_algorithm_dedups_subsets() {
        // A rotation-equivariant moving rule: a robot with exactly one
        // neighbour steps 60° counter-clockwise of it. (Reflections do
        // not commute with "counter-clockwise", so the group is C6.)
        let spin = FnAlgorithm::new(1, "spin", |v: &View| {
            (v.robot_count() == 1).then(|| {
                Dir::ALL.into_iter().find(|&d| v.neighbor(d)).expect("one neighbour").rotate_ccw(1)
            })
        });
        assert_eq!(equivariance_group(&spin).len(), 6);
        // The 2-robot pair is stabilized by the 180° rotation, which
        // swaps the two singleton activations: one of them is skipped.
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&spin, &two);
        assert!(report.deduped > 0, "stabilizer reduction must fire: {report:?}");
        assert!(matches!(report.verdict, AdversaryVerdict::Refuted { .. }));
    }

    #[test]
    fn eighth_robot_activations_are_enumerated() {
        // Eight robots in a row, marching east when clear: the only
        // mover is the easternmost robot — the *highest* row-major
        // index, bit 7 of the activation mask. Its only move
        // disconnects the line, so the verdict must be a refutation;
        // an enumeration that stopped at 7-bit masks would see no
        // edges at all and unsoundly report a proof.
        let march = FnAlgorithm::new(1, "march-if-clear", |v: &View| {
            (!v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let line = Configuration::new((0..8).map(|i| Coord::new(2 * i, 0)));
        let report = check(&march, &line);
        match &report.verdict {
            AdversaryVerdict::Refuted { schedule, outcome: Outcome::Disconnected { round: 1 } } => {
                assert_eq!(schedule, &vec![0x80], "bit 7 names the easternmost robot");
            }
            other => panic!("expected a 1-round disconnection, got {other:?}"),
        }
        assert_replays(&march, &line, &report);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let three = cfg(&[(0, 0), (2, 0), (1, 1)]);
        let checker = Checker::new(&march, AdversaryOptions::default());
        let a = checker.check(&three);
        let b = checker.check(&three);
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_hash_distinguishes_schedules() {
        assert_ne!(schedule_hash(&[1, 2, 3]), schedule_hash(&[3, 2, 1]));
        assert_eq!(schedule_hash(&[]), schedule_hash(&[]));
    }

    #[test]
    fn replay_returns_none_for_proof_and_undecided() {
        let h = crate::config::hexagon(ORIGIN);
        assert!(replay(&h, &StayAlgorithm, &AdversaryVerdict::Proof).is_none());
        assert!(replay(&h, &StayAlgorithm, &AdversaryVerdict::Undecided { depth: 3 }).is_none());
    }
}
