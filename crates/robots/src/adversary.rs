//! Exhaustive SSYNC adversary model checking.
//!
//! The paper proves Theorem 2 only under FSYNC and leaves weaker
//! synchrony open (§V). The sweep pipeline *samples* SSYNC with
//! round-robin and random schedulers — it can refute but never certify.
//! This module closes the gap for a single initial class: it explores
//! **every** nonempty activation subset in every reachable round over
//! the graph of canonical translation classes, and returns one of
//!
//! * [`AdversaryVerdict::Proof`] — *every* fair SSYNC schedule gathers,
//! * [`AdversaryVerdict::Refuted`] — some schedule provably does not;
//!   the verdict carries a minimal activation schedule replayable
//!   through [`sched::run_scheduled`] (see [`replay`]),
//! * [`AdversaryVerdict::Undecided`] — the class graph is cyclic but no
//!   fair counterexample cycle was found within the search depth.
//!
//! Since the crash-fault subsystem landed, the BFS / fair-cycle /
//! stabilizer-dedup machinery lives in [`crate::explore`]; this module
//! is the **crash-budget-0** instantiation of that transition system
//! with the paper's gathering goal. The instantiation is exact: with a
//! zero budget every crash branch of the explorer is dead, so this
//! checker's verdicts are byte-identical to the pre-refactor ones (the
//! golden files in `tests/golden/adversary-*.json` pin that). The
//! explorer's packed-state core (interned `u128` class keys, memoized
//! move oracle — DESIGN.md §11) is likewise verdict-transparent: the
//! same goldens pin it.
//!
//! # Soundness (sketch — the full argument is DESIGN.md §7)
//!
//! A round's successor depends only on the activated robots **that
//! would move**; activating a robot whose decision is *stay* changes
//! nothing. The checker therefore expands the `2^m − 1` nonempty
//! subsets of the `m` movers — together with the free choice of idle
//! robots this covers all `2^7 − 1` activation subsets. Subsets that
//! activate no mover are self-loops; a *fair* schedule (every robot
//! performs infinitely many cycles) cannot take them forever, so they
//! are excluded. Reaching a collision, a disconnection or a stuck
//! fixpoint refutes outright. If the reachable graph — quotiented by
//! the algorithm's symmetry group, see below — is acyclic, every fair
//! schedule reaches a terminal, and all terminals are gathered: proof.
//! Otherwise the checker hunts for a cycle that can be pumped *fairly*:
//! tracking robots through one traversal yields a permutation of roles,
//! and the pumped execution is fair iff every permutation orbit
//! contains a robot that either moves or is observed deciding to stay
//! (such a robot can be activated for free) during the traversal.
//!
//! # Symmetry reduction
//!
//! Before expansion the checker computes the subgroup of the D6 point
//! group under which the **algorithm itself** is equivariant
//! (`compute(σ·view) = σ·compute(view)` for every view). Activation
//! subsets related by a stabilizer of the current class *within that
//! subgroup* produce isomorphic subtrees and are deduplicated.
//! Restricting to algorithm-equivariant symmetries is what makes the
//! reduction sound: robots agree on the x-axis and chirality, so an
//! arbitrary D6 stabilizer of the configuration does **not** commute
//! with the algorithm.

use crate::engine::{Limits, Outcome};
use crate::explore::{ExploreOptions, ExploreVerdict, Explorer, UndecidedReason};
use crate::sched::{self, CrashRound, ScheduleReplay};
use crate::{Algorithm, Configuration, Execution};
use serde::{Deserialize, Serialize};
use trigrid::transform::PointSymmetry;

pub use crate::explore::equivariance_group;

/// Search budgets for [`Checker::check`]. All budgets are deterministic
/// counters, so verdicts never depend on threading or timing.
#[derive(Clone, Copy, Debug)]
pub struct AdversaryOptions {
    /// Cap on distinct classes explored per check (the connected
    /// seven-robot space holds 3652, so the default never binds there).
    pub max_classes: usize,
    /// Cap on expanded edges per check.
    pub max_edges: usize,
    /// Depth bound for the fair-cycle search: maximal simple-cycle
    /// length and maximal number of cycle compositions tried.
    pub fair_depth: usize,
}

/// Default fair-cycle search depth (the `D` of `--sched adversary:D`).
pub const DEFAULT_FAIR_DEPTH: usize = 12;

impl Default for AdversaryOptions {
    fn default() -> Self {
        AdversaryOptions { max_classes: 4096, max_edges: 2_000_000, fair_depth: DEFAULT_FAIR_DEPTH }
    }
}

impl AdversaryOptions {
    /// Budgets sized for an `n`-robot space. For n ≤ 7 these are
    /// exactly [`AdversaryOptions::default`] — the historical budgets
    /// the golden digests were pinned under. Wider spaces raise the
    /// state and edge caps so they cover the whole connected class
    /// space: the budget-0 adversary never leaves it (collisions and
    /// disconnections refute immediately; moves preserve the robot
    /// count), so a cap at least the connected-class count can never
    /// trip. n = 8 has 16689 connected classes with at most `2^8 - 1`
    /// activation edges each, hence 32768 classes / 16M edges.
    ///
    /// The fair-cycle depth stays at the historical 12 for every `n`:
    /// it only bounds the Phase C *heuristic* (raising it to 48 was
    /// measured to decide zero additional n = 8 classes), and the
    /// complete product-automaton decision (Phase D, DESIGN.md §15)
    /// settles whatever the heuristic leaves behind regardless of this
    /// knob.
    #[must_use]
    pub fn for_robots(n: usize) -> Self {
        let defaults = Self::default();
        match n {
            0..=7 => defaults,
            8 => AdversaryOptions { max_classes: 1 << 15, max_edges: 16_000_000, ..defaults },
            9 => AdversaryOptions { max_classes: 1 << 18, max_edges: 128_000_000, ..defaults },
            _ => AdversaryOptions { max_classes: 1 << 21, max_edges: 1_000_000_000, ..defaults },
        }
    }
}

impl From<AdversaryOptions> for ExploreOptions {
    fn from(opts: AdversaryOptions) -> Self {
        ExploreOptions {
            max_states: opts.max_classes,
            max_edges: opts.max_edges,
            fair_depth: opts.fair_depth,
            ..ExploreOptions::default()
        }
    }
}

/// The classification of one initial class under the SSYNC adversary.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum AdversaryVerdict {
    /// Every fair SSYNC schedule gathers from this class.
    Proof,
    /// A concrete schedule refutes gathering. `schedule[r]` is the
    /// activation bitmask of round `r` (bit `i` = the `i`-th robot in
    /// row-major order of the round's configuration). `outcome` is what
    /// replaying the schedule through [`sched::run_scheduled`] ends
    /// with: a collision, a disconnection, a stuck fixpoint, or — for a
    /// fair non-gathering cycle — [`Outcome::StepLimit`] after the
    /// recorded lasso.
    Refuted {
        /// Per-round activation bitmasks.
        schedule: Vec<u16>,
        /// The outcome the replay must reproduce.
        outcome: Outcome,
    },
    /// Neither verdict was certified within the search budgets.
    Undecided {
        /// The fair-cycle search depth that was exhausted (or would
        /// have applied, for BFS-budget trips).
        depth: usize,
        /// Which budget tripped: the class cap, the edge cap, or the
        /// fair-cycle depth.
        #[serde(default)]
        reason: UndecidedReason,
    },
}

impl AdversaryVerdict {
    /// Short tag used by reports and golden files.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AdversaryVerdict::Proof => "proof",
            AdversaryVerdict::Refuted { .. } => "refuted",
            AdversaryVerdict::Undecided { .. } => "undecided",
        }
    }
}

/// The result of checking one class: the verdict plus deterministic
/// exploration statistics.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AdversaryReport {
    /// The classification.
    pub verdict: AdversaryVerdict,
    /// Distinct canonical classes explored.
    pub classes: usize,
    /// Activation-subset edges expanded (legal rounds executed).
    pub edges: usize,
    /// Subsets skipped by the stabilizer symmetry reduction.
    pub deduped: usize,
}

/// An incremental FNV-1a 64-bit hasher — the one hash implementation
/// behind [`schedule_hash`] and the sweep pipeline's verdict digest.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes one byte.
    pub fn write(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Mixes a byte slice.
    pub fn write_all(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write(b);
        }
    }

    /// Mixes a 16-bit activation/crash mask as a LEB128-style varint:
    /// a mask below `0x80` emits the single byte it has always been; a
    /// wider mask emits a continuation byte (`low 7 bits | 0x80`)
    /// followed by the high bits. Every mask a ≤ 7-robot schedule can
    /// contain stays below `0x80`, so all historical digests are
    /// byte-identical under the u8 → u16 mask widening.
    pub fn write_mask(&mut self, mask: u16) {
        if mask < 0x80 {
            self.write(mask as u8);
        } else {
            self.write((mask & 0x7f) as u8 | 0x80);
            self.write((mask >> 7) as u8);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a hash of a counterexample schedule, for compact golden files.
/// Masks are mixed through [`Fnv64::write_mask`], so hashes over
/// ≤ 7-robot schedules equal the historical byte-per-round ones.
#[must_use]
pub fn schedule_hash(schedule: &[u16]) -> u64 {
    let mut h = Fnv64::new();
    for &mask in schedule {
        h.write_mask(mask);
    }
    h.finish()
}

/// Replays a [`AdversaryVerdict::Refuted`] schedule through
/// [`sched::run_scheduled`]; returns `None` for other verdicts. The
/// replayed execution must end with exactly the verdict's `outcome`.
#[must_use]
pub fn replay<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    verdict: &AdversaryVerdict,
) -> Option<Execution> {
    let AdversaryVerdict::Refuted { schedule, outcome } = verdict else {
        return None;
    };
    let max_rounds = match outcome {
        Outcome::StuckFixpoint { rounds } => rounds + 1,
        Outcome::StepLimit { rounds } => *rounds,
        Outcome::Collision { .. } | Outcome::Disconnected { .. } => schedule.len().max(1),
        _ => schedule.len() + 1,
    };
    let mut replayer = ScheduleReplay::new(schedule.clone());
    let limits = Limits { max_rounds, detect_livelock: false };
    Some(sched::run_scheduled(initial, algo, &mut replayer, limits))
}

/// The goal of the fault-free instantiation: the paper's gathered
/// hexagon (Definition 1). The crash mask is statically zero here.
fn fsync_goal(cfg: &Configuration, _crashed: u16) -> bool {
    cfg.is_gathered()
}

/// An exhaustive SSYNC adversary checker for one algorithm: the
/// [`Explorer`] instantiated with crash budget **0** and the paper's
/// gathering goal.
///
/// Construction computes the algorithm's equivariance subgroup once
/// (it scans every view of the algorithm's radius); reuse one checker
/// across many [`check`](Checker::check) calls.
pub struct Checker<'a, A: Algorithm + ?Sized> {
    explorer: Explorer<'a, A>,
}

impl<'a, A: Algorithm + ?Sized> Checker<'a, A> {
    /// Builds a checker for `algo` with the given budgets. The checker
    /// accepts configurations of up to 8 robots; use
    /// [`for_robots`](Checker::for_robots) for larger spaces.
    #[must_use]
    pub fn new(algo: &'a A, opts: AdversaryOptions) -> Self {
        Checker { explorer: Explorer::new(algo, opts.into(), 0, fsync_goal) }
    }

    /// Builds a checker accepting configurations of up to `max_robots`
    /// robots (at most [`crate::PackedClass::MAX_ROBOTS`]).
    ///
    /// # Panics
    /// Panics if `max_robots` exceeds the packed-key capacity.
    #[must_use]
    pub fn for_robots(algo: &'a A, opts: AdversaryOptions, max_robots: usize) -> Self {
        Checker { explorer: Explorer::new_for_robots(algo, opts.into(), 0, fsync_goal, max_robots) }
    }

    /// The algorithm's equivariance subgroup (always contains the
    /// identity).
    #[must_use]
    pub fn group(&self) -> &[PointSymmetry] {
        self.explorer.group()
    }

    /// Sets the within-class BFS fan-out width (`1` = serial, `0` = all
    /// cores). Verdicts are identical at every setting (see
    /// [`Explorer::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.explorer.set_threads(threads);
    }

    /// Arms (or clears) the cooperative per-class wall-clock deadline
    /// (see [`Explorer::set_class_timeout`]): an expired deadline
    /// degrades the class to `Undecided` with
    /// [`UndecidedReason::Timeout`] instead of running unbounded.
    pub fn set_class_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.explorer.set_class_timeout(timeout);
    }

    /// Arms (or clears) the deterministic per-class byte budget (see
    /// [`Explorer::set_mem_budget`]): an overrun degrades the class to
    /// `Undecided` with [`UndecidedReason::MemBudget`].
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.explorer.set_mem_budget(budget);
    }

    /// A point-in-time telemetry snapshot of the underlying explorer:
    /// phase wall times, memo hit rates, verdict tallies and BFS shape
    /// histograms (see [`Explorer::metrics_snapshot`]). Strictly
    /// out-of-band — verdicts and digests never depend on it.
    #[must_use]
    pub fn metrics_snapshot(&self) -> telemetry::Snapshot {
        self.explorer.metrics_snapshot()
    }

    /// Classifies `initial` under the exhaustive SSYNC adversary.
    ///
    /// # Panics
    /// Panics if `initial` is disconnected or holds more robots than
    /// the checker was built for (8 by default; see
    /// [`for_robots`](Checker::for_robots)).
    #[must_use]
    pub fn check(&self, initial: &Configuration) -> AdversaryReport {
        let report = self.explorer.check(initial);
        let verdict = match report.verdict {
            ExploreVerdict::Proof => AdversaryVerdict::Proof,
            ExploreVerdict::Undecided { depth, reason } => {
                AdversaryVerdict::Undecided { depth, reason }
            }
            ExploreVerdict::Refuted { schedule, outcome } => AdversaryVerdict::Refuted {
                schedule: schedule
                    .iter()
                    .map(|&CrashRound { crash, activate }| {
                        debug_assert_eq!(crash, 0, "budget 0 never injects crashes");
                        activate
                    })
                    .collect(),
                outcome,
            },
        };
        AdversaryReport {
            verdict,
            classes: report.states,
            edges: report.edges,
            deduped: report.deduped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Outcome;
    use crate::{FnAlgorithm, StayAlgorithm, View};
    use trigrid::{Coord, Dir, ORIGIN};

    fn cfg(cells: &[(i32, i32)]) -> Configuration {
        Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    fn check<A: Algorithm>(algo: &A, initial: &Configuration) -> AdversaryReport {
        Checker::new(algo, AdversaryOptions::default()).check(initial)
    }

    /// Asserts a refuted verdict replays to exactly its recorded
    /// outcome and a non-gathered final configuration.
    fn assert_replays<A: Algorithm>(algo: &A, initial: &Configuration, report: &AdversaryReport) {
        let AdversaryVerdict::Refuted { outcome, .. } = &report.verdict else {
            panic!("expected a refutation, got {:?}", report.verdict);
        };
        let ex = replay(initial, algo, &report.verdict).expect("refutations replay");
        assert_eq!(&ex.outcome, outcome, "replay must reproduce the recorded outcome");
        if matches!(outcome, Outcome::StepLimit { .. }) {
            let moves = crate::engine::compute_moves(&ex.final_config, algo);
            assert!(
                !(ex.final_config.is_gathered() && moves.iter().all(Option::is_none)),
                "a lasso replay must not settle at a goal fixpoint"
            );
        }
    }

    #[test]
    fn gathered_fixpoint_is_proof() {
        let h = crate::config::hexagon(ORIGIN);
        let report = check(&StayAlgorithm, &h);
        assert_eq!(report.verdict, AdversaryVerdict::Proof);
        assert_eq!(report.classes, 1);
    }

    #[test]
    fn stuck_fixpoint_is_refuted_with_empty_schedule() {
        // A 4-line exceeds the ball four robots gather into (a 3-line
        // would count as gathered under the n-aware goal).
        let line = cfg(&[(0, 0), (2, 0), (4, 0), (6, 0)]);
        let report = check(&StayAlgorithm, &line);
        assert_eq!(
            report.verdict,
            AdversaryVerdict::Refuted {
                schedule: vec![],
                outcome: Outcome::StuckFixpoint { rounds: 0 }
            }
        );
        assert_replays(&StayAlgorithm, &line, &report);
    }

    #[test]
    fn lone_marcher_is_a_fair_livelock() {
        // One robot marching east forever: every schedule activates it,
        // the pumped cycle is fair, and gathering never happens.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let lone = Configuration::new([ORIGIN]);
        let report = check(&march, &lone);
        match &report.verdict {
            AdversaryVerdict::Refuted { outcome: Outcome::StepLimit { .. }, schedule } => {
                assert!(!schedule.is_empty());
            }
            other => panic!("expected a step-limit lasso, got {other:?}"),
        }
        assert_replays(&march, &lone, &report);
    }

    #[test]
    fn ssync_breaks_the_fsync_train() {
        // Two robots marching east form a legal FSYNC train, but the
        // adversary activates only the west robot, which walks onto its
        // idle neighbour: a minimal 1-round collision schedule.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&march, &two);
        match &report.verdict {
            AdversaryVerdict::Refuted {
                schedule,
                outcome: Outcome::Collision { round: 0, .. },
            } => {
                assert_eq!(schedule.len(), 1, "counterexample must be minimal");
            }
            other => panic!("expected an immediate collision, got {other:?}"),
        }
        assert_replays(&march, &two, &report);
    }

    #[test]
    fn fleeing_robot_is_refuted_by_disconnection() {
        let flee = FnAlgorithm::new(1, "flee", |v: &View| {
            (v.neighbor(Dir::W) && !v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&flee, &two);
        match &report.verdict {
            AdversaryVerdict::Refuted { outcome: Outcome::Disconnected { .. }, .. } => {}
            other => panic!("expected disconnection, got {other:?}"),
        }
        assert_replays(&flee, &two, &report);
    }

    #[test]
    fn stay_is_fully_equivariant_and_march_is_not() {
        assert_eq!(equivariance_group(&StayAlgorithm).len(), 12);
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        // Marching east commutes only with the identity and the mirror
        // across the x-axis (which fixes E).
        let group = equivariance_group(&march);
        assert!(group.contains(&PointSymmetry::Rot(0)));
        assert!(group.contains(&PointSymmetry::Ref(0)));
        assert_eq!(group.len(), 2);
    }

    #[test]
    fn symmetric_algorithm_dedups_subsets() {
        // A rotation-equivariant moving rule: a robot with exactly one
        // neighbour steps 60° counter-clockwise of it. (Reflections do
        // not commute with "counter-clockwise", so the group is C6.)
        let spin = FnAlgorithm::new(1, "spin", |v: &View| {
            (v.robot_count() == 1).then(|| {
                Dir::ALL.into_iter().find(|&d| v.neighbor(d)).expect("one neighbour").rotate_ccw(1)
            })
        });
        assert_eq!(equivariance_group(&spin).len(), 6);
        // The 2-robot pair is stabilized by the 180° rotation, which
        // swaps the two singleton activations: one of them is skipped.
        let two = cfg(&[(0, 0), (2, 0)]);
        let report = check(&spin, &two);
        assert!(report.deduped > 0, "stabilizer reduction must fire: {report:?}");
        assert!(matches!(report.verdict, AdversaryVerdict::Refuted { .. }));
    }

    #[test]
    fn eighth_robot_activations_are_enumerated() {
        // Eight robots in a row, marching east when clear: the only
        // mover is the easternmost robot — the *highest* row-major
        // index, bit 7 of the activation mask. Its only move
        // disconnects the line, so the verdict must be a refutation;
        // an enumeration that stopped at 7-bit masks would see no
        // edges at all and unsoundly report a proof.
        let march = FnAlgorithm::new(1, "march-if-clear", |v: &View| {
            (!v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let line = Configuration::new((0..8).map(|i| Coord::new(2 * i, 0)));
        let report = check(&march, &line);
        match &report.verdict {
            AdversaryVerdict::Refuted { schedule, outcome: Outcome::Disconnected { round: 1 } } => {
                assert_eq!(schedule, &vec![0x80], "bit 7 names the easternmost robot");
            }
            other => panic!("expected a 1-round disconnection, got {other:?}"),
        }
        assert_replays(&march, &line, &report);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let three = cfg(&[(0, 0), (2, 0), (1, 1)]);
        let checker = Checker::new(&march, AdversaryOptions::default());
        let a = checker.check(&three);
        let b = checker.check(&three);
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_hash_distinguishes_schedules() {
        assert_ne!(schedule_hash(&[1, 2, 3]), schedule_hash(&[3, 2, 1]));
        assert_eq!(schedule_hash(&[]), schedule_hash(&[]));
    }

    #[test]
    fn replay_returns_none_for_proof_and_undecided() {
        let h = crate::config::hexagon(ORIGIN);
        assert!(replay(&h, &StayAlgorithm, &AdversaryVerdict::Proof).is_none());
        assert!(replay(
            &h,
            &StayAlgorithm,
            &AdversaryVerdict::Undecided { depth: 3, reason: UndecidedReason::FairDepth }
        )
        .is_none());
    }
}
