//! The FSYNC execution engine with the paper's collision semantics.
//!
//! A *round* (one synchronous Look-Compute-Move cycle of all robots,
//! §II-A) computes every robot's move from its view, validates the
//! simultaneous moves against the three prohibited behaviours of the
//! paper:
//!
//! * **(a)** two robots traverse the same edge in opposite directions
//!   (an edge *swap*),
//! * **(b)** a robot moves onto a node where another robot stays,
//! * **(c)** several robots move onto the same empty node,
//!
//! and then applies them. (b) and (c) are both "two robots end on the
//! same node"; moving into a node vacated in the same round (a "train")
//! is legal.
//!
//! The [`run`] loop additionally detects:
//!
//! * **gathered fixpoint** — no robot moves and the configuration is the
//!   seven-robot hexagon (success per Definition 1),
//! * **stuck fixpoint** — no robot moves but gathering is not achieved,
//! * **livelock** — the translation class of the configuration repeats;
//!   since algorithms are deterministic and translation-invariant, a
//!   repeat implies an infinite loop (this is how the Fig. 12/13
//!   oscillations of the impossibility proof manifest),
//! * **disconnection** — the configuration splits; the paper argues an
//!   oblivious robot with an empty view can never deterministically
//!   rejoin, so this is terminal.

use crate::visited::ClassMap;
use crate::{Algorithm, Configuration, View};
use serde::{Deserialize, Serialize};
use trigrid::{Coord, Dir};

/// A single robot's move in a round.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Move {
    /// The node the robot left.
    pub from: Coord,
    /// The direction it moved.
    pub dir: Dir,
}

impl Move {
    /// The node the robot arrived at.
    #[must_use]
    pub fn to(&self) -> Coord {
        self.from.step(self.dir)
    }
}

/// A collision as defined in §II-A of the paper.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RoundCollision {
    /// Prohibited behaviour (a): two robots traversed the same edge in
    /// opposite directions.
    Swap {
        /// One endpoint of the contested edge.
        a: Coord,
        /// The other endpoint.
        b: Coord,
    },
    /// Prohibited behaviours (b)/(c): at least two robots ended the
    /// round on the same node.
    SharedTarget {
        /// The contested node.
        target: Coord,
        /// Previous positions of all robots that ended there.
        sources: Vec<Coord>,
    },
}

/// Computes every robot's move decision for the current configuration,
/// aligned with `config.positions()`.
#[must_use]
pub fn compute_moves<A: Algorithm + ?Sized>(config: &Configuration, algo: &A) -> Vec<Option<Dir>> {
    let radius = algo.radius();
    config.positions().iter().map(|&p| algo.compute(&View::observe(config, p, radius))).collect()
}

/// Validates simultaneous moves against the paper's collision rules.
///
/// # Errors
/// Returns the first detected [`RoundCollision`] (swaps are reported
/// before shared targets).
pub fn check_moves(config: &Configuration, moves: &[Option<Dir>]) -> Result<(), RoundCollision> {
    let positions = config.positions();
    debug_assert_eq!(positions.len(), moves.len());

    // (a) edge swaps: a mover whose destination is an occupied node whose
    // occupant moves to the mover's origin.
    let index_of = |c: Coord| positions.iter().position(|&p| p == c);
    for (i, (&p, m)) in positions.iter().zip(moves).enumerate() {
        let Some(d) = m else { continue };
        let dest = p.step(*d);
        if let Some(j) = index_of(dest) {
            if j != i {
                if let Some(dj) = moves[j] {
                    if dest.step(dj) == p {
                        return Err(RoundCollision::Swap { a: p, b: dest });
                    }
                }
            }
        }
    }

    // (b)/(c) shared destinations. Configurations are small (≤ 8
    // robots in every checker workload), so a pairwise scan beats
    // sorting and — on the hot all-clear path — allocates nothing.
    // The reported collision is identical to the historical
    // sorted-scan formulation: the contested node with the smallest
    // row-major key, its sources in row-major origin order.
    let dest_of = |i: usize| moves[i].map_or(positions[i], |d| positions[i].step(d));
    let mut target: Option<Coord> = None;
    for i in 0..positions.len() {
        let di = dest_of(i);
        for j in i + 1..positions.len() {
            if di == dest_of(j) && target.is_none_or(|t| polyhex::key(di) < polyhex::key(t)) {
                target = Some(di);
            }
        }
    }
    if let Some(target) = target {
        let sources =
            (0..positions.len()).filter(|&i| dest_of(i) == target).map(|i| positions[i]).collect();
        return Err(RoundCollision::SharedTarget { target, sources });
    }
    Ok(())
}

/// Precomputed bit-parallel round tables: collision and connectivity
/// classification of **every** SSYNC activation subset of one round as
/// word operations over a fixed node universe (current positions ∪
/// mover targets, ≤ 32 nodes).
///
/// The exploration checkers expand `2^m − 1` activation subsets of the
/// `m` movers per state. Building the table once per state replaces
/// the per-subset scalar pipeline (mask the decision vector, pairwise
/// collision scan, materialise the successor, coordinate flood fill)
/// with a handful of `u16`/`u32` ops per subset:
///
/// * [`collides`](Self::collides) — whether activating exactly `act`
///   is a prohibited round, agreeing with [`check_moves`] on the
///   masked decision vector;
/// * [`occupancy`](Self::occupancy) — the successor's node bitmask for
///   collision-free subsets, maintained incrementally via per-slot
///   XOR [`delta`](Self::delta)s (a robot's move toggles exactly two
///   universe bits, and legality makes the fold exact);
/// * [`connected`](Self::connected) — bitmask flood fill over
///   precomputed adjacency rows
///   ([`trigrid::path::mask_connected`]), agreeing with
///   `Configuration::is_connected` on the materialised successor.
///
/// Collision structure: a mover targeting a non-mover's node collides
/// whenever it activates (`always_collide`); a mover targeting a
/// *mover*'s node collides exactly when that occupant idles
/// (`needs`); two movers sharing a target — or mutually swapping —
/// collide exactly when both activate (`pairs`). Trains (moving into
/// a node vacated the same round) fall into the `needs` case and are
/// legal. The property tests pin all three methods against the scalar
/// reference on random configurations.
pub struct RoundTable {
    /// Universe size: robot count plus distinct off-configuration
    /// targets.
    nodes: usize,
    /// Slots with a move decision.
    movers: u16,
    /// Bitmask of the current positions (universe nodes `0..robots`).
    occ0: u32,
    /// Per-slot occupancy toggle: `bit(pos) ^ bit(target)` for movers.
    delta: [u32; 16],
    /// Mover slots whose activation alone already collides.
    always_collide: u16,
    /// `needs[i]`: mover slots whose node mover `i` targets — `i`
    /// collides iff it activates while any of them idles.
    needs: [u16; 16],
    /// Slots with a nonempty `needs` row.
    needy: u16,
    /// Slot pairs that collide exactly when both activate (shared
    /// targets and edge swaps).
    pairs: Vec<u16>,
    /// Adjacency rows of the universe (grid distance 1).
    adj: [u32; 32],
}

impl RoundTable {
    /// Builds the table for one configuration and its full decision
    /// vector (aligned with `config.positions()`).
    ///
    /// # Panics
    /// Panics if the configuration holds more than 16 robots — subsets
    /// are `u16` masks (and the ≤ 32-node universe bound follows).
    #[must_use]
    pub fn new(config: &Configuration, moves: &[Option<Dir>]) -> RoundTable {
        let positions = config.positions();
        let n = positions.len();
        assert!(n <= 16, "round tables index activation subsets by u16 masks");
        debug_assert_eq!(n, moves.len());

        // Universe: positions first (node i = slot i), then distinct
        // off-configuration targets.
        let mut coords = [trigrid::ORIGIN; 32];
        coords[..n].copy_from_slice(positions);
        let mut nodes = n;
        let mut movers = 0u16;
        let mut target = [usize::MAX; 16];
        for (i, m) in moves.iter().enumerate() {
            let Some(d) = m else { continue };
            movers |= 1 << i;
            let t = positions[i].step(*d);
            target[i] = coords[..nodes].iter().position(|&c| c == t).unwrap_or_else(|| {
                coords[nodes] = t;
                nodes += 1;
                nodes - 1
            });
        }

        let mut always_collide = 0u16;
        let mut needs = [0u16; 16];
        let mut pairs = Vec::new();
        for i in 0..n {
            if movers & (1 << i) == 0 {
                continue;
            }
            let ti = target[i];
            if ti < n {
                // Targeting an occupied node: occupant ti must vacate.
                if movers & (1 << ti) != 0 {
                    needs[i] |= 1 << ti;
                    if target[ti] == i && i < ti {
                        pairs.push((1 << i) | (1 << ti)); // edge swap
                    }
                } else {
                    always_collide |= 1 << i;
                }
            }
            for (j, &tj) in target.iter().enumerate().take(n).skip(i + 1) {
                if movers & (1 << j) != 0 && tj == ti {
                    pairs.push((1 << i) | (1 << j)); // shared target
                }
            }
        }
        let needy = (0..n).filter(|&i| needs[i] != 0).fold(0u16, |acc, i| acc | (1 << i));

        let mut adj = [0u32; 32];
        for a in 0..nodes {
            for b in a + 1..nodes {
                if coords[a].distance(coords[b]) == 1 {
                    adj[a] |= 1 << b;
                    adj[b] |= 1 << a;
                }
            }
        }

        let occ0 = (1u32 << n) - 1;
        let delta = std::array::from_fn(|i| {
            if movers & (1 << i) != 0 {
                (1u32 << i) ^ (1u32 << target[i])
            } else {
                0
            }
        });
        RoundTable { nodes, movers, occ0, delta, always_collide, needs, needy, pairs, adj }
    }

    /// Slots with a move decision (legal activation subsets that make
    /// progress are the nonempty submasks).
    #[must_use]
    pub fn movers(&self) -> u16 {
        self.movers
    }

    /// Whether activating exactly `act` (⊆ [`movers`](Self::movers))
    /// is a prohibited round.
    #[must_use]
    pub fn collides(&self, act: u16) -> bool {
        debug_assert_eq!(act & !self.movers, 0);
        if act & self.always_collide != 0 {
            return true;
        }
        let mut pending = act & self.needy;
        while pending != 0 {
            let i = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if self.needs[i] & !act != 0 {
                return true;
            }
        }
        self.pairs.iter().any(|&p| p & !act == 0)
    }

    /// The occupancy bitmask before any activation.
    #[must_use]
    pub fn base_occupancy(&self) -> u32 {
        self.occ0
    }

    /// The occupancy toggle of slot `i`'s move (zero for non-movers):
    /// fold with XOR to maintain occupancy across subset enumeration.
    #[must_use]
    pub fn delta(&self, slot: usize) -> u32 {
        self.delta[slot]
    }

    /// The successor occupancy of a collision-free subset, from
    /// scratch.
    #[must_use]
    pub fn occupancy(&self, act: u16) -> u32 {
        let mut occ = self.occ0;
        let mut bits = act;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            occ ^= self.delta[i];
        }
        occ
    }

    /// Whether an occupancy bitmask (of a collision-free subset) is
    /// connected on the grid.
    #[must_use]
    pub fn connected(&self, occ: u32) -> bool {
        trigrid::path::mask_connected(&self.adj[..self.nodes], occ)
    }
}

/// The outcome of one legal round: the successor configuration plus the
/// moves that were actually performed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoundResult {
    /// The configuration after the round.
    pub config: Configuration,
    /// The moves performed (robots that stayed are omitted), in
    /// row-major order of their origins.
    pub moved: Vec<Move>,
}

impl RoundResult {
    /// Whether any robot moved this round.
    #[must_use]
    pub fn progressed(&self) -> bool {
        !self.moved.is_empty()
    }
}

/// Validates and applies a full vector of per-robot move decisions
/// (aligned with `config.positions()`). This is the **single**
/// implementation of the paper's round semantics: the FSYNC runner, the
/// SSYNC schedulers, the adversary model checker and the impossibility
/// simulator all execute rounds through this function.
///
/// # Errors
/// Returns the collision if the simultaneous moves are illegal.
pub fn step_moves(
    config: &Configuration,
    moves: &[Option<Dir>],
) -> Result<RoundResult, RoundCollision> {
    check_moves(config, moves)?;
    let moved: Vec<Move> = config
        .positions()
        .iter()
        .zip(moves)
        .filter_map(|(&p, m)| m.map(|dir| Move { from: p, dir }))
        .collect();
    Ok(RoundResult { config: config.apply_unchecked(moves), moved })
}

/// Restricts a full decision vector to the activated robots: inactive
/// robots stay regardless of what they would have decided. This is the
/// entire semantics of SSYNC activation.
#[must_use]
pub fn masked_moves(full: &[Option<Dir>], active: &[bool]) -> Vec<Option<Dir>> {
    debug_assert_eq!(full.len(), active.len());
    full.iter().zip(active).map(|(m, &a)| if a { *m } else { None }).collect()
}

/// Executes one SSYNC round: the robots flagged in `active` perform a
/// full Look-Compute-Move cycle, the rest are idle.
///
/// # Errors
/// Returns the collision if the simultaneous moves are illegal.
pub fn step_masked<A: Algorithm + ?Sized>(
    config: &Configuration,
    algo: &A,
    active: &[bool],
) -> Result<RoundResult, RoundCollision> {
    let full = compute_moves(config, algo);
    step_moves(config, &masked_moves(&full, active))
}

/// Executes one SSYNC round under a *frozen-robot* (crash-fault) mask:
/// robots flagged in `frozen` are permanently crashed — they never act,
/// not even when `active` selects them, but they still occupy their
/// node and appear in every view exactly like a live robot.
///
/// This is the reference form of the crash-masking rule
/// (`active && !frozen`, then a plain masked round): the crash
/// checker's replay loop ([`crate::faults::run_crash_schedule`])
/// open-codes the same rule so it can reuse its precomputed decision
/// vector for fixpoint detection — the property tests pin the two
/// paths against each other. The goal relaxation lives in
/// [`crate::faults`], not here.
///
/// # Errors
/// Returns the collision if the simultaneous moves are illegal.
pub fn step_frozen<A: Algorithm + ?Sized>(
    config: &Configuration,
    algo: &A,
    active: &[bool],
    frozen: &[bool],
) -> Result<RoundResult, RoundCollision> {
    debug_assert_eq!(active.len(), frozen.len());
    let thawed: Vec<bool> = active.iter().zip(frozen).map(|(&a, &f)| a && !f).collect();
    step_masked(config, algo, &thawed)
}

/// Executes one FSYNC round: compute, validate, apply.
///
/// # Errors
/// Returns the collision if the simultaneous moves are illegal.
pub fn step<A: Algorithm + ?Sized>(
    config: &Configuration,
    algo: &A,
) -> Result<(Configuration, Vec<Move>), RoundCollision> {
    let moves = compute_moves(config, algo);
    step_moves(config, &moves).map(|r| (r.config, r.moved))
}

/// Stopping parameters for [`run`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Limits {
    /// Hard cap on the number of rounds.
    pub max_rounds: usize,
    /// Whether to detect livelocks by canonical-class repetition (sound
    /// for deterministic FSYNC; must be disabled for randomised
    /// schedulers).
    pub detect_livelock: bool,
}

impl Default for Limits {
    fn default() -> Self {
        // Any legal 7-robot FSYNC execution visits each of the 3652
        // connected classes at most once, so 20_000 is far beyond any
        // non-livelocked run.
        Limits { max_rounds: 20_000, detect_livelock: true }
    }
}

/// How an execution ended.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Outcome {
    /// Reached the gathering-achieved configuration and stopped
    /// (Definition 1 satisfied).
    Gathered {
        /// Rounds until the fixpoint was reached.
        rounds: usize,
    },
    /// Reached a fixpoint that is not a gathered configuration.
    StuckFixpoint {
        /// Rounds until the fixpoint.
        rounds: usize,
    },
    /// The translation class of the configuration repeated: the
    /// deterministic execution loops forever.
    Livelock {
        /// Round at which the repeated class was first seen.
        entry: usize,
        /// Cycle length.
        period: usize,
    },
    /// A prohibited simultaneous move occurred.
    Collision {
        /// Round in which it happened (0-based).
        round: usize,
        /// The violation.
        collision: RoundCollision,
    },
    /// The configuration became disconnected.
    Disconnected {
        /// First round after which the configuration was disconnected.
        round: usize,
    },
    /// `max_rounds` elapsed without any other outcome.
    StepLimit {
        /// The configured limit.
        rounds: usize,
    },
    /// A model-checking budget exhausted before a verdict was
    /// certified. Never produced by an execution — this is the honest
    /// witness column for an undecided checker verdict (the sweep
    /// pipeline's `outcome_of_*_verdict` mapping), which previously
    /// mislabeled budget exhaustion as [`Outcome::StepLimit`] with a
    /// fabricated round count.
    Undecided {
        /// Which search budget tripped.
        reason: crate::explore::UndecidedReason,
    },
}

impl Outcome {
    /// Whether this outcome is a successful gathering.
    #[must_use]
    pub fn is_gathered(&self) -> bool {
        matches!(self, Outcome::Gathered { .. })
    }
}

/// The result of running an algorithm from an initial configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Execution {
    /// The initial configuration.
    pub initial: Configuration,
    /// The final configuration when the run stopped.
    pub final_config: Configuration,
    /// Why the run stopped.
    pub outcome: Outcome,
    /// The visited configurations (including the initial one); only
    /// populated by [`run_traced`].
    pub trace: Option<Vec<Configuration>>,
}

/// The shared execution loop behind [`run`], [`run_traced`] and
/// `sched::run_scheduled`: one round-semantics implementation for every
/// scheduler.
///
/// `select` returns the activation flags for a round (`None` = everyone,
/// the FSYNC fast path that skips masking entirely). An all-`false`
/// selection is promoted to full activation — the fairness convention
/// that keeps executions live.
///
/// Termination tests run against the **full** decision vector, so a
/// configuration only counts as a fixpoint when no robot would move even
/// if activated. Livelock detection by class repetition is applied when
/// `limits.detect_livelock` is set; it is sound only for schedulers
/// whose selection does not depend on the round index (FSYNC), and
/// callers with other schedulers must disable it.
pub(crate) fn run_loop<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    limits: Limits,
    mut select: impl FnMut(usize, usize) -> Option<Vec<bool>>,
    mut on_config: impl FnMut(&Configuration),
) -> (Configuration, Outcome) {
    let mut seen: ClassMap<usize> = ClassMap::new();
    let mut cfg = initial.clone();
    on_config(&cfg);
    for round in 0..limits.max_rounds {
        let full = compute_moves(&cfg, algo);
        if full.iter().all(Option::is_none) {
            let outcome = if cfg.is_gathered() {
                Outcome::Gathered { rounds: round }
            } else {
                Outcome::StuckFixpoint { rounds: round }
            };
            return (cfg, outcome);
        }
        if limits.detect_livelock {
            if let Some(&entry) = seen.get(&cfg) {
                return (cfg, Outcome::Livelock { entry, period: round - entry });
            }
            seen.insert(&cfg, round);
        }
        let moves = match select(round, cfg.len()) {
            None => full,
            Some(mut flags) => {
                flags.resize(cfg.len(), false);
                if flags.iter().all(|&b| !b) {
                    full // fairness: never a fully idle round
                } else {
                    masked_moves(&full, &flags)
                }
            }
        };
        match step_moves(&cfg, &moves) {
            Err(collision) => return (cfg, Outcome::Collision { round, collision }),
            Ok(result) => cfg = result.config,
        }
        on_config(&cfg);
        if !cfg.is_connected() {
            return (cfg, Outcome::Disconnected { round: round + 1 });
        }
    }
    (cfg, Outcome::StepLimit { rounds: limits.max_rounds })
}

/// Runs the algorithm from `initial` under FSYNC until a terminal
/// outcome, without recording the trace.
#[must_use]
pub fn run<A: Algorithm + ?Sized>(initial: &Configuration, algo: &A, limits: Limits) -> Execution {
    let (final_config, outcome) = run_loop(initial, algo, limits, |_, _| None, |_| ());
    Execution { initial: initial.clone(), final_config, outcome, trace: None }
}

/// Like [`run`], additionally recording every visited configuration.
#[must_use]
pub fn run_traced<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    limits: Limits,
) -> Execution {
    let mut trace = Vec::new();
    let (final_config, outcome) =
        run_loop(initial, algo, limits, |_, _| None, |c| trace.push(c.clone()));
    Execution { initial: initial.clone(), final_config, outcome, trace: Some(trace) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, StayAlgorithm};
    use trigrid::ORIGIN;

    fn cfg(cells: &[(i32, i32)]) -> Configuration {
        Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    /// Every robot marches east forever.
    fn march_east() -> impl Algorithm {
        FnAlgorithm::new(1, "march-east", |_| Some(Dir::E))
    }

    #[test]
    fn stay_on_hexagon_is_gathered() {
        let h = crate::config::hexagon(ORIGIN);
        let ex = run(&h, &StayAlgorithm, Limits::default());
        assert_eq!(ex.outcome, Outcome::Gathered { rounds: 0 });
    }

    #[test]
    fn stay_on_line_is_stuck() {
        // Four robots spanning three edges cannot fit the radius-1
        // ball four robots gather into: a dead fixpoint. (A 3-line
        // would count as gathered under the n-aware goal.)
        let line = cfg(&[(0, 0), (2, 0), (4, 0), (6, 0)]);
        let ex = run(&line, &StayAlgorithm, Limits::default());
        assert_eq!(ex.outcome, Outcome::StuckFixpoint { rounds: 0 });
    }

    #[test]
    fn marching_east_is_a_livelock_up_to_translation() {
        // Everyone moves east forever: the translation class repeats
        // immediately after one round.
        let line = cfg(&[(0, 0), (2, 0)]);
        let ex = run(&line, &march_east(), Limits::default());
        assert_eq!(ex.outcome, Outcome::Livelock { entry: 0, period: 1 });
    }

    #[test]
    fn livelock_detection_handles_more_than_eight_robots() {
        // Nine robots exceed the packed class-key window; the livelock
        // ClassMap must fall back to unpacked keys, not panic.
        let line = Configuration::new((0..9).map(|i| Coord::new(2 * i, 0)));
        let ex = run(&line, &march_east(), Limits::default());
        assert_eq!(ex.outcome, Outcome::Livelock { entry: 0, period: 1 });
    }

    #[test]
    fn swap_collision_detected() {
        // Two adjacent robots each move onto the other's node: behaviour (a).
        let a = FnAlgorithm::new(1, "swap", |v: &View| {
            if v.neighbor(Dir::E) {
                Some(Dir::E)
            } else if v.neighbor(Dir::W) {
                Some(Dir::W)
            } else {
                None
            }
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let ex = run(&two, &a, Limits::default());
        match ex.outcome {
            Outcome::Collision { round: 0, collision: RoundCollision::Swap { a, b } } => {
                assert_eq!((a, b), (ORIGIN, Coord::new(2, 0)));
            }
            other => panic!("expected swap collision, got {other:?}"),
        }
    }

    #[test]
    fn moving_onto_stationary_robot_is_collision() {
        // Behaviour (b): west robot moves east onto a robot that stays.
        let a = FnAlgorithm::new(1, "pushy", |v: &View| v.neighbor(Dir::E).then_some(Dir::E));
        // Three in a line: the leftmost moves onto the middle (which also
        // tries to move east onto the right one, which stays...). Use two:
        // right robot has no east neighbour -> stays; left moves onto it.
        let two = cfg(&[(0, 0), (2, 0)]);
        let ex = run(&two, &a, Limits::default());
        match ex.outcome {
            Outcome::Collision {
                round: 0,
                collision: RoundCollision::SharedTarget { target, sources },
            } => {
                assert_eq!(target, Coord::new(2, 0));
                assert_eq!(sources.len(), 2);
            }
            other => panic!("expected shared-target collision, got {other:?}"),
        }
    }

    #[test]
    fn two_movers_to_same_empty_node_is_collision() {
        // Behaviour (c): the robots at (1,1) and (1,-1) both move into the
        // empty node (2,0) — (1,1) steps SE because it has a SW neighbour,
        // (1,-1) steps NE because it has a NW neighbour; the anchor (0,0)
        // sees no SW/NW neighbour and stays.
        let c = FnAlgorithm::new(1, "merge", |v: &View| {
            if v.neighbor(Dir::SW) {
                Some(Dir::SE)
            } else if v.neighbor(Dir::NW) {
                Some(Dir::NE)
            } else {
                None
            }
        });
        let three = cfg(&[(0, 0), (1, 1), (1, -1)]);
        let ex = run(&three, &c, Limits::default());
        match ex.outcome {
            Outcome::Collision {
                round: 0,
                collision: RoundCollision::SharedTarget { target, sources },
            } => {
                assert_eq!(target, Coord::new(2, 0));
                assert_eq!(sources, vec![Coord::new(1, -1), Coord::new(1, 1)]);
            }
            other => panic!("expected shared-target collision, got {other:?}"),
        }
    }

    #[test]
    fn trains_are_legal() {
        // A column of two robots both moving east: the follower enters the
        // node the leader vacates. Legal per §II-A.
        let two = cfg(&[(0, 0), (2, 0)]);
        let moves = vec![Some(Dir::E), Some(Dir::E)];
        assert_eq!(check_moves(&two, &moves), Ok(()));
    }

    #[test]
    fn disconnection_detected() {
        // The east robot runs away east; the other has no east neighbour
        // and stays... make only robots with a W neighbour move east.
        let a = FnAlgorithm::new(1, "flee", |v: &View| {
            (v.neighbor(Dir::W) && !v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let ex = run(&two, &a, Limits::default());
        assert_eq!(ex.outcome, Outcome::Disconnected { round: 1 });
        assert_eq!(ex.final_config, cfg(&[(0, 0), (4, 0)]));
    }

    #[test]
    fn step_reports_applied_moves() {
        let two = cfg(&[(0, 0), (2, 0)]);
        let (next, moves) = step(&two, &march_east()).unwrap();
        assert_eq!(next, cfg(&[(2, 0), (4, 0)]));
        assert_eq!(moves.len(), 2);
        assert!(moves.iter().all(|m| m.dir == Dir::E));
        assert_eq!(moves[0].to(), moves[0].from.step(Dir::E));
    }

    #[test]
    fn run_traced_records_every_configuration() {
        let a = FnAlgorithm::new(1, "flee", |v: &View| {
            (v.neighbor(Dir::W) && !v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let two = cfg(&[(0, 0), (2, 0)]);
        let ex = run_traced(&two, &a, Limits::default());
        let trace = ex.trace.unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0], two);
        assert_eq!(trace[1], cfg(&[(0, 0), (4, 0)]));
    }

    #[test]
    fn step_limit_respected() {
        // march-east with livelock detection disabled must hit the cap.
        let two = cfg(&[(0, 0), (2, 0)]);
        let limits = Limits { max_rounds: 17, detect_livelock: false };
        let ex = run(&two, &march_east(), limits);
        assert_eq!(ex.outcome, Outcome::StepLimit { rounds: 17 });
        assert_eq!(ex.final_config, cfg(&[(34, 0), (36, 0)]));
    }

    #[test]
    fn outcome_is_gathered_helper() {
        assert!(Outcome::Gathered { rounds: 3 }.is_gathered());
        assert!(!Outcome::StuckFixpoint { rounds: 3 }.is_gathered());
    }
}
