//! The crash-fault scenario model: gathering despite up to `f`
//! permanently crashed robots.
//!
//! The paper proves gathering only in the fault-free FSYNC model and
//! names weaker models as future work (§V); [`crate::adversary`]
//! settled the SSYNC axis. This module opens the next canonical axis:
//! an adversary that, on top of choosing SSYNC activations, may
//! **permanently crash** up to `f` robots. A crashed robot never
//! performs another Look-Compute-Move cycle, but it keeps occupying its
//! node and appears in every view exactly like a live robot — crashes
//! are invisible to the algorithm.
//!
//! Because the crashed robots cannot join any gathering point, the goal
//! is relaxed (the standard relaxation for crash-fault gathering): the
//! execution succeeds when it reaches a fixpoint of the *live* robots
//! in which all live robots fit inside one closed ball of the smallest
//! radius that could hold the full `n`-robot swarm
//! ([`crate::min_gather_radius`]) — see [`relaxed_gathered`]. The
//! radius depends on the *total* robot count, never on how many are
//! still live, so the goal is closed under further crash injections
//! (DESIGN.md §10 and §14). For seven robots and `f = 0` this
//! coincides exactly with the paper's hexagon (Definition 1), which is
//! why the fault-free checker is this model's `f = 0` instantiation.
//!
//! [`CrashChecker`] classifies an initial class as
//! **f-crash-proof** (every fair schedule with at most `f` crashes
//! gathers the live robots), **refuted** (a minimal replayable
//! schedule + crash assignment reaches a collision, a disconnection, a
//! dead fixpoint or a fair non-gathering cycle), or **undecided** at
//! the fair-cycle search depth. Refutations replay through the engine
//! via [`replay`]. The exploration core is [`crate::explore`] — its
//! packed-state representation and memoized move oracle (DESIGN.md
//! §11) carry this checker's full-space classification; the crash
//! golden files pin that the packing is verdict-transparent. The
//! soundness argument is DESIGN.md §10.

use crate::adversary::Fnv64;
use crate::engine::{self, Execution, Limits, Outcome};
use crate::explore::{ExploreOptions, Explorer};
use crate::sched::{CrashRound, CrashSchedule};
use crate::{Algorithm, CapacityError, Configuration};
use trigrid::transform::PointSymmetry;
use trigrid::Coord;

pub use crate::explore::{ExploreReport as CrashReport, ExploreVerdict as CrashVerdict};

/// Search parameters for [`CrashChecker`].
#[derive(Clone, Copy, Debug)]
pub struct CrashOptions {
    /// Maximal number of robots the adversary may crash (`f`).
    pub crashes: u8,
    /// Budgets of the underlying explorer.
    pub explore: ExploreOptions,
}

impl Default for CrashOptions {
    fn default() -> Self {
        CrashOptions { crashes: 1, explore: ExploreOptions::crash() }
    }
}

impl CrashOptions {
    /// Options for budget `f` with the given fair-cycle search depth.
    #[must_use]
    pub fn new(crashes: u8, fair_depth: usize) -> Self {
        CrashOptions { crashes, explore: ExploreOptions { fair_depth, ..ExploreOptions::crash() } }
    }
}

/// Whether the configuration counts as *relaxed-gathered* for the given
/// crashed-slot mask: every non-crashed robot lies within one closed
/// ball of radius [`crate::min_gather_radius`]`(cfg.len())` — the
/// smallest ball that could hold the *total* robot count. One or zero
/// live robots are vacuously gathered.
///
/// The radius is a function of the total count, **not** the live
/// count: crashing robots only shrinks the live set, so a goal state
/// stays a goal under every further injection — the closure property
/// the explorer's terminal classification relies on (DESIGN.md §10,
/// §14). With no crashes and seven robots this is exactly the paper's
/// gathered hexagon — a radius-1 ball holds seven nodes, so all seven
/// robots fill it.
#[must_use]
pub fn relaxed_gathered(cfg: &Configuration, crashed: u16) -> bool {
    let live: Vec<Coord> = cfg
        .positions()
        .iter()
        .enumerate()
        .filter(|(i, _)| crashed & (1 << *i) == 0)
        .map(|(_, &p)| p)
        .collect();
    let Some(&first) = live.first() else {
        return true;
    };
    if live.len() == 1 {
        return true;
    }
    let r = crate::config::min_gather_radius(cfg.len());
    // Any center covering every live robot is within `r` of `first`,
    // so scanning the disk around `first` is complete.
    trigrid::region::disk(first, r)
        .into_iter()
        .any(|center| live.iter().all(|&p| center.distance(p) <= r))
}

/// Slot bitmask of the `crashed` coordinates within `cfg` (row-major
/// slot indexing, like every scheduler mask).
///
/// # Panics
/// Panics if a coordinate is not a robot node of `cfg`, or if `cfg`
/// holds more than [`crate::explore::MASK_ROBOTS`] robots.
#[must_use]
pub fn crash_mask(cfg: &Configuration, crashed: &[Coord]) -> u16 {
    assert!(
        cfg.len() <= crate::explore::MASK_ROBOTS,
        "crash masks are 16-bit: at most {} robots",
        crate::explore::MASK_ROBOTS
    );
    let mut mask = 0u16;
    for &p in crashed {
        let slot = cfg
            .positions()
            .iter()
            .position(|&q| q == p)
            .expect("crashed robots occupy nodes of the configuration");
        mask |= 1 << slot;
    }
    mask
}

/// Whether `cfg` is a *successful* terminal of the crash model: no live
/// robot would move even if activated, and the live robots are
/// relaxed-gathered.
#[must_use]
pub fn is_goal_fixpoint<A: Algorithm + ?Sized>(
    cfg: &Configuration,
    algo: &A,
    crashed: &[Coord],
) -> bool {
    let mask = crash_mask(cfg, crashed);
    let moves = engine::compute_moves(cfg, algo);
    let live_mover = moves.iter().enumerate().any(|(i, m)| mask & (1 << i) == 0 && m.is_some());
    !live_mover && relaxed_gathered(cfg, mask)
}

/// FNV-1a hash of a crash-fault schedule (crash mask then activation
/// mask per round, each through [`Fnv64::write_mask`] so ≤ 7-robot
/// schedules hash exactly as in the byte-mask era), for compact golden
/// files — the crash-model counterpart of
/// [`crate::adversary::schedule_hash`].
#[must_use]
pub fn schedule_hash(schedule: &[CrashRound]) -> u64 {
    let mut h = Fnv64::new();
    for action in schedule {
        h.write_mask(action.crash);
        h.write_mask(action.activate);
    }
    h.finish()
}

/// An exhaustive crash-fault adversary checker for one algorithm: the
/// [`Explorer`] instantiated with crash budget `f` and the
/// [`relaxed_gathered`] goal.
///
/// Construction computes the algorithm's equivariance subgroup once;
/// reuse one checker across many [`check`](CrashChecker::check) calls.
pub struct CrashChecker<'a, A: Algorithm + ?Sized> {
    explorer: Explorer<'a, A>,
}

impl<'a, A: Algorithm + ?Sized> CrashChecker<'a, A> {
    /// Builds a checker for `algo` with the given crash budget and
    /// search options. The checker accepts configurations of up to 8
    /// robots; use [`for_robots`](CrashChecker::for_robots) for larger
    /// spaces.
    ///
    /// # Panics
    /// Panics if `opts.crashes >= PackedClass::MAX_ROBOTS`.
    #[must_use]
    pub fn new(algo: &'a A, opts: CrashOptions) -> Self {
        CrashChecker { explorer: Explorer::new(algo, opts.explore, opts.crashes, relaxed_gathered) }
    }

    /// Builds a checker accepting configurations of up to `max_robots`
    /// robots (at most [`crate::PackedClass::MAX_ROBOTS`]).
    ///
    /// # Panics
    /// Panics if `max_robots` exceeds the packed-key capacity.
    #[must_use]
    pub fn for_robots(algo: &'a A, opts: CrashOptions, max_robots: usize) -> Self {
        CrashChecker {
            explorer: Explorer::new_for_robots(
                algo,
                opts.explore,
                opts.crashes,
                relaxed_gathered,
                max_robots,
            ),
        }
    }

    /// The algorithm's equivariance subgroup.
    #[must_use]
    pub fn group(&self) -> &[PointSymmetry] {
        self.explorer.group()
    }

    /// The crash budget `f`.
    #[must_use]
    pub fn crashes(&self) -> u8 {
        self.explorer.budget()
    }

    /// Sets the within-class BFS fan-out width (`1` = serial, `0` = all
    /// cores). Verdicts are identical at every setting (see
    /// [`Explorer::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.explorer.set_threads(threads);
    }

    /// Arms (or clears) the cooperative per-class wall-clock deadline
    /// (see [`Explorer::set_class_timeout`]).
    pub fn set_class_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.explorer.set_class_timeout(timeout);
    }

    /// Arms (or clears) the deterministic per-class byte budget (see
    /// [`Explorer::set_mem_budget`]).
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.explorer.set_mem_budget(budget);
    }

    /// A point-in-time telemetry snapshot of the underlying explorer:
    /// phase wall times, memo hit rates, verdict tallies and BFS shape
    /// histograms (see [`Explorer::metrics_snapshot`]). Strictly
    /// out-of-band — verdicts and digests never depend on it.
    #[must_use]
    pub fn metrics_snapshot(&self) -> telemetry::Snapshot {
        self.explorer.metrics_snapshot()
    }

    /// Classifies `initial` under the exhaustive `f`-crash SSYNC
    /// adversary.
    ///
    /// # Panics
    /// Panics if `initial` is disconnected or holds more robots than
    /// the checker was built for (8 by default; see
    /// [`for_robots`](CrashChecker::for_robots)).
    #[must_use]
    pub fn check(&self, initial: &Configuration) -> CrashReport {
        self.explorer.check(initial)
    }

    /// Like [`check`](CrashChecker::check), but returns a typed
    /// [`CapacityError`] instead of panicking when `initial` holds
    /// more robots than the checker was built for.
    ///
    /// # Errors
    /// [`CapacityError::TooManyRobots`] when `initial.len()` exceeds
    /// the checker's robot capacity.
    pub fn try_check(&self, initial: &Configuration) -> Result<CrashReport, CapacityError> {
        let max = self.explorer.max_robots();
        if initial.len() > max {
            return Err(CapacityError::TooManyRobots { robots: initial.len(), max });
        }
        Ok(self.explorer.check(initial))
    }
}

/// The result of replaying a crash-fault schedule: the execution plus
/// the final crashed coordinates.
#[derive(Clone, Debug)]
pub struct CrashExecution {
    /// The replayed execution; `trace` is always recorded.
    pub execution: Execution,
    /// Coordinates of the crashed robots at the end, in discovery
    /// order.
    pub crashed: Vec<Coord>,
    /// Crash events as `(trace index, coordinate)`: the robot at
    /// `coordinate` crashed when the trace held `trace index + 1`
    /// configurations — it must still occupy that node in every later
    /// trace entry.
    pub events: Vec<(usize, Coord)>,
}

/// Replays a crash-fault schedule through the engine's round semantics
/// ([`engine::step_moves`]). Each recorded round first lands its crash
/// injections (freezing those robots' coordinates forever), then
/// activates the recorded non-crashed robots; rounds beyond the
/// schedule activate every live robot. The run terminates with
///
/// * [`Outcome::Gathered`] / [`Outcome::StuckFixpoint`] when no live
///   robot would move even under full activation (the goal is
///   [`relaxed_gathered`]),
/// * [`Outcome::Collision`] / [`Outcome::Disconnected`] as in FSYNC,
/// * [`Outcome::StepLimit`] after `limits.max_rounds` *movement*
///   rounds — injection-only rounds and rounds that move nobody do not
///   advance the counter (matching the explorer's round bookkeeping).
#[must_use]
pub fn run_crash_schedule<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    schedule: &CrashSchedule,
    limits: Limits,
) -> CrashExecution {
    assert!(
        initial.len() <= crate::explore::MASK_ROBOTS,
        "crash masks are 16-bit: at most {} robots",
        crate::explore::MASK_ROBOTS
    );
    let mut cfg = initial.clone();
    let mut trace = vec![cfg.clone()];
    let mut frozen: Vec<Coord> = Vec::new();
    let mut events: Vec<(usize, Coord)> = Vec::new();
    let mut rounds = 0usize;
    let mut next = 0usize;
    let outcome = loop {
        let full = engine::compute_moves(&cfg, algo);
        let crashed: Vec<bool> = cfg.positions().iter().map(|p| frozen.contains(p)).collect();
        if full.iter().zip(&crashed).all(|(m, &c)| c || m.is_none()) {
            let mask = crash_mask(&cfg, &frozen);
            break if relaxed_gathered(&cfg, mask) {
                Outcome::Gathered { rounds }
            } else {
                Outcome::StuckFixpoint { rounds }
            };
        }
        if rounds >= limits.max_rounds {
            break Outcome::StepLimit { rounds: limits.max_rounds };
        }
        let entry = schedule.rounds().get(next).copied();
        next += 1;
        let (crash, activate) = match entry {
            Some(action) => (action.crash, action.activate),
            // Beyond the schedule: no more crashes, everyone live acts.
            None => (0, u16::MAX),
        };
        for (i, &p) in cfg.positions().iter().enumerate() {
            if crash & (1 << i) != 0 && !frozen.contains(&p) {
                frozen.push(p);
                events.push((trace.len() - 1, p));
            }
        }
        let moves: Vec<_> = full
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let live = !frozen.contains(&cfg.positions()[i]);
                if live && activate & (1 << i) != 0 {
                    *m
                } else {
                    None
                }
            })
            .collect();
        if moves.iter().all(Option::is_none) {
            continue; // injection-only (or mover-free) round
        }
        match engine::step_moves(&cfg, &moves) {
            Err(collision) => break Outcome::Collision { round: rounds, collision },
            Ok(result) => {
                cfg = result.config;
                rounds += 1;
                trace.push(cfg.clone());
                if !cfg.is_connected() {
                    break Outcome::Disconnected { round: rounds };
                }
            }
        }
    };
    CrashExecution {
        execution: Execution {
            initial: initial.clone(),
            final_config: cfg,
            outcome,
            trace: Some(trace),
        },
        crashed: frozen,
        events,
    }
}

/// Replays a [`CrashVerdict::Refuted`] schedule through
/// [`run_crash_schedule`]; returns `None` for other verdicts. The
/// replayed execution must end with exactly the verdict's `outcome`.
#[must_use]
pub fn replay<A: Algorithm + ?Sized>(
    initial: &Configuration,
    algo: &A,
    verdict: &CrashVerdict,
) -> Option<CrashExecution> {
    let CrashVerdict::Refuted { schedule, outcome } = verdict else {
        return None;
    };
    let movement = schedule.iter().filter(|a| a.activate != 0).count();
    let max_rounds = match outcome {
        Outcome::StuckFixpoint { rounds } => rounds + 1,
        Outcome::StepLimit { rounds } => *rounds,
        Outcome::Collision { .. } | Outcome::Disconnected { .. } => movement.max(1),
        _ => movement + 1,
    };
    let limits = Limits { max_rounds, detect_livelock: false };
    Some(run_crash_schedule(initial, algo, &CrashSchedule::new(schedule.clone()), limits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnAlgorithm, StayAlgorithm, View};
    use trigrid::{Dir, ORIGIN};

    fn cfg(cells: &[(i32, i32)]) -> Configuration {
        Configuration::new(cells.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn relaxed_gathering_accepts_balls_and_sub_balls() {
        let h = crate::config::hexagon(ORIGIN);
        assert!(relaxed_gathered(&h, 0), "the full hexagon is gathered");
        // Crash any one robot: the remaining six still fit the ball.
        for slot in 0..7 {
            assert!(relaxed_gathered(&h, 1 << slot));
        }
        // A line of three fits the ball centred on its middle robot; a
        // line of four does not, but crashing an end robot shrinks the
        // live set back into a ball.
        let line3 = cfg(&[(0, 0), (2, 0), (4, 0)]);
        assert!(relaxed_gathered(&line3, 0), "a 3-line sits inside one ball");
        let line4 = cfg(&[(0, 0), (2, 0), (4, 0), (6, 0)]);
        assert!(!relaxed_gathered(&line4, 0));
        assert!(relaxed_gathered(&line4, 0b0001), "crashing an end robot re-gathers the rest");
        assert!(!relaxed_gathered(&line4, 0b0010), "the live span is still 3 edges wide");
    }

    #[test]
    fn relaxed_gathering_is_vacuous_below_two_live_robots() {
        let two = cfg(&[(0, 0), (6, 0)]);
        assert!(relaxed_gathered(&two, 0b11));
        assert!(relaxed_gathered(&two, 0b01));
        assert!(relaxed_gathered(&Configuration::new([ORIGIN]), 0));
    }

    #[test]
    fn crash_mask_round_trips_coordinates() {
        let line = cfg(&[(0, 0), (2, 0), (4, 0)]);
        assert_eq!(crash_mask(&line, &[Coord::new(2, 0)]), 0b010);
        assert_eq!(crash_mask(&line, &[Coord::new(4, 0), Coord::new(0, 0)]), 0b101);
        assert_eq!(crash_mask(&line, &[]), 0);
    }

    #[test]
    fn crashed_robot_freezes_in_replay() {
        // Both robots march east; the schedule crashes the west robot
        // in round 0 and activates the east one: the frozen robot must
        // stay at the origin while the other walks away and
        // disconnects the pair.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let two = cfg(&[(0, 0), (2, 0)]);
        let schedule = CrashSchedule::new(vec![CrashRound { crash: 0b01, activate: 0b10 }]);
        let limits = Limits { max_rounds: 10, detect_livelock: false };
        let run = run_crash_schedule(&two, &march, &schedule, limits);
        assert_eq!(run.execution.outcome, Outcome::Disconnected { round: 1 });
        assert_eq!(run.crashed, vec![ORIGIN]);
        let trace = run.execution.trace.as_ref().expect("trace recorded");
        assert!(trace.iter().all(|c| c.contains(ORIGIN)), "the crashed robot never moves");
    }

    #[test]
    fn injection_only_round_does_not_advance_the_round_counter() {
        // A wanderer plus a stayer two nodes behind it: crashing the
        // wanderer in an injection-only round freezes the pair at span
        // 2 — a (relaxed-gathered) fixpoint after zero movement rounds.
        let march = FnAlgorithm::new(1, "march-if-clear", |v: &View| {
            (!v.neighbor(Dir::E)).then_some(Dir::E)
        });
        let pair = cfg(&[(0, 0), (2, 0)]);
        let schedule = CrashSchedule::new(vec![CrashRound { crash: 0b10, activate: 0 }]);
        let limits = Limits { max_rounds: 10, detect_livelock: false };
        let run = run_crash_schedule(&pair, &march, &schedule, limits);
        assert_eq!(run.execution.outcome, Outcome::Gathered { rounds: 0 });
        assert_eq!(run.crashed, vec![Coord::new(2, 0)]);
    }

    #[test]
    fn checker_refutes_the_marching_pair_and_replays() {
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let two = cfg(&[(0, 0), (2, 0)]);
        let checker = CrashChecker::new(&march, CrashOptions::default());
        assert_eq!(checker.crashes(), 1);
        let report = checker.check(&two);
        let CrashVerdict::Refuted { outcome, .. } = &report.verdict else {
            panic!("marching east cannot crash-gather: {:?}", report.verdict);
        };
        let run = replay(&two, &march, &report.verdict).expect("refutations replay");
        assert_eq!(&run.execution.outcome, outcome, "replay reproduces the verdict outcome");
    }

    #[test]
    fn stay_on_a_ball_is_crash_proof() {
        // StayAlgorithm never moves, so any non-ball class is stuck —
        // but from the gathered hexagon every crash keeps the live
        // robots inside the ball: proof even with the full budget.
        let h = crate::config::hexagon(ORIGIN);
        for f in [0u8, 1, 3] {
            let checker = CrashChecker::new(&StayAlgorithm, CrashOptions::new(f, 12));
            assert_eq!(checker.check(&h).verdict, CrashVerdict::Proof, "f = {f}");
        }
    }

    #[test]
    fn goal_fixpoint_helper_matches_model() {
        let h = crate::config::hexagon(ORIGIN);
        assert!(is_goal_fixpoint(&h, &StayAlgorithm, &[]));
        assert!(is_goal_fixpoint(&h, &StayAlgorithm, &[ORIGIN]));
        let line4 = cfg(&[(0, 0), (2, 0), (4, 0), (6, 0)]);
        assert!(!is_goal_fixpoint(&line4, &StayAlgorithm, &[]));
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        assert!(!is_goal_fixpoint(&h, &march, &[]), "movers forbid a fixpoint");
    }

    #[test]
    fn replay_returns_none_for_proof_and_undecided() {
        let h = crate::config::hexagon(ORIGIN);
        assert!(replay(&h, &StayAlgorithm, &CrashVerdict::Proof).is_none());
        assert!(replay(
            &h,
            &StayAlgorithm,
            &CrashVerdict::Undecided { depth: 4, reason: Default::default() }
        )
        .is_none());
    }

    #[test]
    fn crash_schedule_hash_distinguishes_crash_patterns() {
        let a = vec![CrashRound { crash: 1, activate: 2 }];
        let b = vec![CrashRound { crash: 2, activate: 1 }];
        assert_ne!(schedule_hash(&a), schedule_hash(&b));
        assert_eq!(schedule_hash(&[]), schedule_hash(&[]));
    }
}
