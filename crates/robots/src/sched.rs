//! Activation schedulers beyond FSYNC.
//!
//! The paper proves its results in the fully synchronous model and
//! leaves weaker synchrony as future work (§V). This module provides the
//! machinery to *experiment* with that question: a [`Scheduler`] decides
//! which robots are activated each round; activated robots perform a
//! full Look-Compute-Move cycle atomically (the SSYNC model), others are
//! idle.
//!
//! Livelock detection by state repetition is unsound under
//! non-deterministic or round-dependent scheduling; [`run_scheduled`]
//! honours `limits.detect_livelock`, and callers must disable it for
//! any scheduler other than [`FullSync`] (the sweep pipeline does this
//! automatically). The round cap plus the explicit all-active fixpoint
//! test keep every execution finite either way.
//!
//! All round execution goes through [`engine::step_moves`] via the
//! shared engine loop — the scheduler layer adds only activation
//! masking, never its own collision semantics.
//!
//! The crash-fault model records richer schedules: [`CrashSchedule`]
//! carries per-round crash injections alongside activations and is
//! replayed by [`crate::faults::run_crash_schedule`].

use crate::engine::{Execution, Limits};
use crate::{engine, Algorithm, Configuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Chooses the set of robots activated in each round.
///
/// Robots are anonymous; "robot `i`" refers to the `i`-th position in
/// the row-major ordering of the *current* configuration. Schedulers are
/// adversaries or random processes, so this instability is part of the
/// model being explored, not a bug.
pub trait Scheduler {
    /// Returns the activation flags for a round with `n` robots.
    /// An all-`false` result is treated as "activate everyone" to keep
    /// executions live (the standard fairness assumption).
    fn select(&mut self, round: usize, n: usize) -> Vec<bool>;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "scheduler"
    }
}

/// The FSYNC scheduler: everyone, every round.
pub struct FullSync;

impl Scheduler for FullSync {
    fn select(&mut self, _round: usize, n: usize) -> Vec<bool> {
        vec![true; n]
    }
    fn name(&self) -> &str {
        "fsync"
    }
}

/// Activates exactly one robot per round, cycling through indices —
/// a maximally sequential (centralised) scheduler.
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn select(&mut self, round: usize, n: usize) -> Vec<bool> {
        let mut flags = vec![false; n];
        if n > 0 {
            flags[round % n] = true;
        }
        flags
    }
    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Activates each robot independently with probability `p` (re-drawing
/// when the result is empty), seeded for reproducibility.
pub struct RandomSubset {
    rng: StdRng,
    p: f64,
}

impl RandomSubset {
    /// Creates a random scheduler with activation probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    #[must_use]
    pub fn new(seed: u64, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "activation probability must be in (0, 1]");
        Self { rng: StdRng::seed_from_u64(seed), p }
    }
}

impl Scheduler for RandomSubset {
    fn select(&mut self, _round: usize, n: usize) -> Vec<bool> {
        loop {
            let flags: Vec<bool> = (0..n).map(|_| self.rng.random_bool(self.p)).collect();
            if flags.iter().any(|&b| b) {
                return flags;
            }
        }
    }
    fn name(&self) -> &str {
        "random-subset"
    }
}

/// Replays a recorded activation schedule: round `r` activates exactly
/// the robots whose bit is set in `masks[r]` (bit `i` = the `i`-th robot
/// in row-major order of the current configuration — the same indexing
/// every [`Scheduler`] uses). Rounds beyond the recorded schedule
/// activate everyone.
///
/// This is how the adversary model checker's counterexample schedules
/// are replayed through [`run_scheduled`].
pub struct ScheduleReplay {
    masks: Vec<u16>,
}

impl ScheduleReplay {
    /// Wraps a recorded mask sequence.
    #[must_use]
    pub fn new(masks: Vec<u16>) -> Self {
        ScheduleReplay { masks }
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }
}

impl Scheduler for ScheduleReplay {
    fn select(&mut self, round: usize, n: usize) -> Vec<bool> {
        match self.masks.get(round) {
            Some(&mask) => (0..n).map(|i| mask & (1 << i) != 0).collect(),
            None => vec![true; n],
        }
    }
    fn name(&self) -> &str {
        "replay"
    }
}

/// One round of a crash-fault schedule: the adversary first
/// *permanently crashes* the robots in `crash`, then activates the
/// robots in `activate`. Both masks use the standard scheduler
/// indexing — bit `i` = the `i`-th robot in row-major order of the
/// round's configuration (row-major order is translation-invariant, so
/// the indexing survives canonicalisation).
///
/// `activate == 0` is an *injection-only* round: crashes land but no
/// robot performs a Look-Compute-Move cycle, and replay round counters
/// do not advance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CrashRound {
    /// Robots permanently crashed at the start of this round.
    pub crash: u16,
    /// Robots activated this round (crashed robots are ignored).
    pub activate: u16,
}

/// A replayable crash-fault schedule: the per-round crash injections
/// and activations recorded by the crash-model explorer
/// ([`crate::faults`]). Rounds beyond the recorded schedule activate
/// every non-crashed robot; crashed robots never activate again —
/// they keep occupying their node and appearing in views.
///
/// This is to [`crate::faults::replay`] what [`ScheduleReplay`] is to
/// the fault-free adversary checker.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CrashSchedule {
    rounds: Vec<CrashRound>,
}

impl CrashSchedule {
    /// Wraps a recorded action sequence.
    #[must_use]
    pub fn new(rounds: Vec<CrashRound>) -> Self {
        CrashSchedule { rounds }
    }

    /// The recorded actions, in round order.
    #[must_use]
    pub fn rounds(&self) -> &[CrashRound] {
        &self.rounds
    }

    /// Number of recorded rounds (including injection-only rounds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total number of robots the schedule crashes.
    #[must_use]
    pub fn crash_count(&self) -> u32 {
        self.rounds.iter().map(|r| r.crash.count_ones()).sum()
    }
}

/// Runs `algo` from `initial` under the given activation scheduler.
///
/// Terminates with [`Outcome::Gathered`]/[`Outcome::StuckFixpoint`] when
/// a *full* activation would move nobody (so the configuration is a true
/// fixpoint), with a collision/disconnection outcome as in FSYNC, with
/// [`Outcome::Livelock`] if `limits.detect_livelock` is set and a class
/// repeats (sound only for round-independent deterministic schedulers
/// such as [`FullSync`]), or with [`Outcome::StepLimit`].
///
/// [`Outcome::Gathered`]: crate::Outcome::Gathered
/// [`Outcome::StuckFixpoint`]: crate::Outcome::StuckFixpoint
/// [`Outcome::Livelock`]: crate::Outcome::Livelock
/// [`Outcome::StepLimit`]: crate::Outcome::StepLimit
#[must_use]
pub fn run_scheduled<A: Algorithm + ?Sized, S: Scheduler>(
    initial: &Configuration,
    algo: &A,
    sched: &mut S,
    limits: Limits,
) -> Execution {
    let (final_config, outcome) =
        engine::run_loop(initial, algo, limits, |round, n| Some(sched.select(round, n)), |_| ());
    Execution { initial: initial.clone(), final_config, outcome, trace: None }
}

/// Like [`run_scheduled`], additionally recording every visited
/// configuration (including the initial one), exactly as
/// [`engine::run_traced`] does.
#[must_use]
pub fn run_scheduled_traced<A: Algorithm + ?Sized, S: Scheduler>(
    initial: &Configuration,
    algo: &A,
    sched: &mut S,
    limits: Limits,
) -> Execution {
    let mut trace = Vec::new();
    let (final_config, outcome) = engine::run_loop(
        initial,
        algo,
        limits,
        |round, n| Some(sched.select(round, n)),
        |c| trace.push(c.clone()),
    );
    Execution { initial: initial.clone(), final_config, outcome, trace: Some(trace) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Outcome;
    use crate::{FnAlgorithm, StayAlgorithm, View};
    use trigrid::{Coord, Dir, ORIGIN};

    fn two() -> Configuration {
        Configuration::new([ORIGIN, Coord::new(2, 0)])
    }

    #[test]
    fn full_sync_selects_everyone() {
        assert_eq!(FullSync.select(3, 4), vec![true; 4]);
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin;
        assert_eq!(rr.select(0, 3), vec![true, false, false]);
        assert_eq!(rr.select(1, 3), vec![false, true, false]);
        assert_eq!(rr.select(4, 3), vec![false, true, false]);
    }

    #[test]
    fn random_subset_never_empty_and_reproducible() {
        let mut a = RandomSubset::new(9, 0.3);
        let mut b = RandomSubset::new(9, 0.3);
        for round in 0..50 {
            let fa = a.select(round, 5);
            assert!(fa.iter().any(|&x| x));
            assert_eq!(fa, b.select(round, 5));
        }
    }

    #[test]
    #[should_panic(expected = "activation probability")]
    fn random_subset_rejects_zero_probability() {
        let _ = RandomSubset::new(0, 0.0);
    }

    #[test]
    fn scheduled_run_detects_fixpoint() {
        let h = crate::config::hexagon(ORIGIN);
        let ex = run_scheduled(&h, &StayAlgorithm, &mut RoundRobin, Limits::default());
        assert_eq!(ex.outcome, Outcome::Gathered { rounds: 0 });
    }

    #[test]
    fn round_robin_serialises_moves() {
        // Under FSYNC these two robots would swap (collision); activating
        // one at a time turns the swap into a legal shuffle and the run
        // hits the step limit instead.
        let swap = FnAlgorithm::new(1, "swap", |v: &View| {
            if v.neighbor(Dir::E) {
                Some(Dir::E)
            } else if v.neighbor(Dir::W) {
                Some(Dir::W)
            } else {
                None
            }
        });
        let fsync = engine::run(&two(), &swap, Limits::default());
        assert!(matches!(fsync.outcome, Outcome::Collision { .. }));

        let limits = Limits { max_rounds: 40, detect_livelock: false };
        let ssync = run_scheduled(&two(), &swap, &mut RoundRobin, limits);
        // One active robot moving onto the stationary other is behaviour
        // (b): still a collision, but now of SharedTarget kind.
        assert!(matches!(
            ssync.outcome,
            Outcome::Collision { collision: crate::RoundCollision::SharedTarget { .. }, .. }
        ));
    }

    #[test]
    fn scheduled_step_limit() {
        // A lone robot marching east never terminates: the cap fires.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        let lone = Configuration::new([ORIGIN]);
        let limits = Limits { max_rounds: 10, detect_livelock: false };
        let ex = run_scheduled(&lone, &march, &mut RandomSubset::new(3, 0.5), limits);
        assert_eq!(ex.outcome, Outcome::StepLimit { rounds: 10 });
        assert_eq!(ex.final_config, Configuration::new([Coord::new(20, 0)]));
    }

    #[test]
    fn partial_activation_can_turn_fsync_safety_into_collision() {
        // march-east on two adjacent robots is a legal train under FSYNC,
        // but if only the west robot is activated it walks onto the idle
        // east robot — the SSYNC adversary breaks the train.
        let march = FnAlgorithm::new(1, "march", |_: &View| Some(Dir::E));
        struct WestOnly;
        impl Scheduler for WestOnly {
            fn select(&mut self, _round: usize, n: usize) -> Vec<bool> {
                let mut f = vec![false; n];
                f[0] = true; // positions are row-major sorted: index 0 is westmost here
                f
            }
        }
        let ex = run_scheduled(&two(), &march, &mut WestOnly, Limits::default());
        assert!(matches!(
            ex.outcome,
            Outcome::Collision { collision: crate::RoundCollision::SharedTarget { .. }, .. }
        ));
    }
}
